//! The router against a live fleet: fills replicate, a killed shard
//! degrades to failover instead of client-visible errors, hedged
//! requests beat a slow primary, and the routed batch runner produces
//! local-harness-shaped reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dexlego_dex::writer::write_dex;
use dexlego_droidbench::appgen::corpus_apps;
use dexlego_harness::json::Value;
use dexlego_harness::{job_key, HarnessConfig, JobReport, JobSpec, PoolExecutor};
use dexlego_router::{run_batch_routed, Ring, Router, RouterConfig};
use dexlego_service::{Client, Daemon, ExtractRequest, PipelinedClient, Reply, ServiceConfig};
use dexlego_store::{Store, StoreConfig, TempDir};

fn corpus_requests(count: usize) -> Vec<ExtractRequest> {
    corpus_apps(count, 40)
        .into_iter()
        .enumerate()
        .map(|(i, (_, app))| {
            let dex = write_dex(&app.dex).expect("serialise generated app");
            let mut req = ExtractRequest::new(dex, &app.entry);
            req.name = Some(format!("fleet{i:02}"));
            req
        })
        .collect()
}

fn start_fleet(n: usize) -> (Vec<TempDir>, Vec<Daemon>, Vec<String>) {
    let dirs: Vec<TempDir> = (0..n)
        .map(|i| TempDir::new(&format!("fleet-backend-{i}")).unwrap())
        .collect();
    let daemons: Vec<Daemon> = dirs
        .iter()
        .map(|dir| Daemon::start(ServiceConfig::new(dir.path())).expect("backend starts"))
        .collect();
    let addrs = daemons.iter().map(|d| d.addr().to_string()).collect();
    (dirs, daemons, addrs)
}

fn extract_all(client: &mut PipelinedClient, reqs: &[ExtractRequest]) -> Vec<Value> {
    let mut ids = Vec::new();
    for req in reqs {
        ids.push(client.send_extract(req).expect("send"));
    }
    let mut replies = vec![Value::Null; reqs.len()];
    for _ in 0..reqs.len() {
        let (id, reply) = client.recv_any().expect("reply");
        let Some(dexlego_service::RequestId::Num(id)) = id else {
            panic!("tagged request lost its id");
        };
        let slot = ids.iter().position(|&x| x == id).expect("known id");
        match reply {
            Reply::Ok(value) => replies[slot] = value,
            other => panic!("fleet produced a non-ok reply: {other:?}"),
        }
    }
    replies
}

/// Fill a 3-backend fleet through the router, kill one shard, and read
/// everything back: zero error replies, and the surviving replicas
/// serve (mostly cached) results.
#[test]
fn killed_shard_degrades_to_failover_not_errors() {
    let (_dirs, daemons, addrs) = start_fleet(3);
    let mut config = RouterConfig::new(addrs);
    // Hedging off for determinism: this test is about failover.
    config.hedge_ms = 5_000;
    let router = Router::start(config).expect("router starts");
    let front = router.addr().to_string();

    let reqs = corpus_requests(6);
    let mut client = PipelinedClient::connect(&front).expect("connect front");
    let fills = extract_all(&mut client, &reqs);
    assert_eq!(fills.len(), 6);
    for value in &fills {
        assert_eq!(value.get("cached").and_then(Value::as_bool), Some(false));
        assert!(
            value.get("entry").is_none(),
            "router plumbing must not leak into front replies"
        );
    }

    // Let the replication backfills drain before pulling the plug.
    std::thread::sleep(Duration::from_millis(400));

    // Kill shard 0 abruptly (drain, socket closes; further connects are
    // refused — the router sees exactly what a crashed process causes).
    let mut daemons = daemons;
    let victim = daemons.remove(0);
    victim.trigger_shutdown();
    victim.wait();

    let reads = extract_all(&mut client, &reqs);
    let cached = reads
        .iter()
        .filter(|v| v.get("cached").and_then(Value::as_bool) == Some(true))
        .count();
    assert!(
        cached >= reqs.len() / 2,
        "replication kept most results warm: {cached}/{} cached",
        reqs.len()
    );

    // Fleet stats still answer (the dead shard is skipped) and carry
    // the router's own counters.
    let mut stats_conn = Client::connect(&front).expect("stats conn");
    let stats = stats_conn.stats().expect("stats");
    let router_stats = stats.get("router").expect("router counters");
    let routed = router_stats
        .get("routed")
        .and_then(Value::as_u64)
        .expect("routed count");
    assert!(routed >= 12, "all extracts were routed: {routed}");
    let fills = router_stats
        .get("replica_fills")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(fills > 0, "fresh fills were replicated");
    let Some(Value::Arr(fleet)) = stats.get("fleet").cloned() else {
        panic!("stats carry per-backend fleet health: {stats:?}");
    };
    assert_eq!(fleet.len(), 3);

    client.shutdown().expect("front shutdown");
    router.wait();
    for daemon in daemons {
        daemon.trigger_shutdown();
        daemon.wait();
    }
}

/// A slow primary is out-raced by a hedge to the next replica: the
/// client sees the fast backend's answer well before the slow one
/// finishes, and the router records the hedge win.
#[test]
fn hedged_request_beats_a_slow_primary() {
    let delays: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let dirs: Vec<TempDir> = (0..2)
        .map(|i| TempDir::new(&format!("hedge-{i}")).unwrap())
        .collect();
    let daemons: Vec<Daemon> = dirs
        .iter()
        .zip(&delays)
        .map(|(dir, delay)| {
            let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
            let delay = Arc::clone(delay);
            let exec: PoolExecutor = Arc::new(move |spec: JobSpec| {
                let ms = delay.load(Ordering::SeqCst);
                if ms > 0 {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                (JobReport::empty(spec.name.clone(), None), Some(Vec::new()))
            });
            Daemon::start_with_executor(ServiceConfig::new(dir.path()), store, exec)
                .expect("daemon starts")
        })
        .collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr().to_string()).collect();

    let req = {
        let mut reqs = corpus_requests(1);
        reqs.remove(0)
    };
    // The test must slow whichever backend the ring makes primary, so
    // recompute the placement exactly as the router will.
    let config = RouterConfig::new(addrs.clone());
    let ring = Ring::new(&addrs, config.vnodes, config.seed);
    let spec = req.to_spec("probe").expect("valid request");
    let key = job_key(&spec).expect("cacheable");
    let primary = ring.candidates(Ring::key_position(&key))[0];
    delays[primary].store(500, Ordering::SeqCst);

    let mut config = config;
    config.hedge_ms = 40;
    let router = Router::start(config).expect("router starts");
    let front = router.addr().to_string();

    let mut client = PipelinedClient::connect(&front).expect("connect");
    let started = Instant::now();
    client.send_extract(&req).expect("send");
    let (_, reply) = client.recv_any().expect("reply");
    let elapsed = started.elapsed();
    assert!(matches!(reply, Reply::Ok(_)), "hedged extract succeeds");
    assert!(
        elapsed < Duration::from_millis(400),
        "hedge beat the 500ms primary: took {elapsed:?}"
    );

    let mut stats_conn = Client::connect(&front).expect("stats conn");
    let stats = stats_conn.stats().expect("stats");
    let router_stats = stats.get("router").expect("router counters");
    assert_eq!(
        router_stats.get("hedges").and_then(Value::as_u64),
        Some(1),
        "exactly one hedge fired"
    );
    assert_eq!(
        router_stats.get("hedge_wins").and_then(Value::as_u64),
        Some(1),
        "the hedge won"
    );

    client.shutdown().expect("front shutdown");
    router.wait();
    for daemon in daemons {
        daemon.trigger_shutdown();
        daemon.wait();
    }
}

/// The routed batch runner: a local-harness-shaped [`RunReport`] out of
/// a fleet, with the second run served from the fleet's caches.
#[test]
fn routed_batch_runs_against_the_fleet() {
    let (_dirs, daemons, addrs) = start_fleet(2);
    let mut config = RouterConfig::new(addrs);
    config.hedge_ms = 5_000;
    let router = Router::start(config).expect("router starts");
    let front = router.addr().to_string();

    let jobs: Vec<JobSpec> = corpus_apps(4, 40)
        .into_iter()
        .enumerate()
        .map(|(i, (_, app))| JobSpec::new(&format!("batch{i}"), app.dex.clone(), &app.entry))
        .collect();

    let harness = HarnessConfig::with_workers(2);
    let cold = run_batch_routed(&front, jobs.clone(), &harness);
    assert!(cold.ok(), "cold routed batch succeeds: {:?}", cold.jobs);
    assert_eq!(cold.cache_hits(), 0);

    let warm = run_batch_routed(&front, jobs, &harness);
    assert!(warm.ok(), "warm routed batch succeeds");
    assert_eq!(warm.cache_hits(), 4, "second run is all fleet cache hits");

    // Wire-inexpressible jobs fail their report instead of running
    // wrong remotely.
    let mut tampered = corpus_apps(1, 40)
        .into_iter()
        .map(|(_, app)| JobSpec::new("tampered", app.dex, &app.entry))
        .next()
        .unwrap();
    tampered.tampers = vec![dexlego_droidbench::TamperSpec {
        native_class: "LTamper;".to_owned(),
        native_name: "patch".to_owned(),
        target: ("LTamper;".to_owned(), "run".to_owned(), "()V".to_owned()),
        patches: Vec::new(),
    }];
    let report = run_batch_routed(&front, vec![tampered], &harness);
    assert!(!report.ok(), "tampered jobs are refused, not mis-run");

    let mut front_client = Client::connect(&front).expect("connect");
    front_client.shutdown().expect("shutdown");
    router.wait();
    for daemon in daemons {
        daemon.trigger_shutdown();
        daemon.wait();
    }
}
