//! Consistent-hash ring properties under random fleets and keyspaces:
//! candidate orders are permutations, placement is deterministic, load
//! splits roughly evenly, and — the property the design rests on —
//! growing the fleet by one backend moves only about `1/(n+1)` of the
//! keyspace, so a scale-out does not stampede the fleet's caches.

use dexlego_router::Ring;
use proptest::collection::vec;
use proptest::prelude::*;

fn fleet(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
}

/// Deterministic position spread: a 64-bit Weyl sequence covers the
/// ring far more evenly than `i` alone.
fn positions(count: u64) -> impl Iterator<Item = u64> {
    (0..count).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every candidate list is a permutation of the whole fleet, and
    /// rebuilding the ring from the same inputs reproduces it exactly.
    #[test]
    fn candidates_are_permutations_and_deterministic(
        n in 1usize..8,
        vnodes in 1usize..96,
        seed in any::<u64>(),
        samples in vec(any::<u64>(), 1..64),
    ) {
        let ring = Ring::new(&fleet(n), vnodes, seed);
        let again = Ring::new(&fleet(n), vnodes, seed);
        for &pos in &samples {
            let order = ring.candidates(pos);
            prop_assert_eq!(&order, &again.candidates(pos));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    /// Adding one backend to a fleet of `n` moves roughly `1/(n+1)` of
    /// the keyspace: no key moves between two surviving backends, and
    /// the moved fraction stays well under a modulo-style reshuffle
    /// (which moves `n/(n+1)` of everything).
    #[test]
    fn growing_the_fleet_moves_about_one_share(
        n in 2usize..7,
        seed in any::<u64>(),
    ) {
        const SAMPLES: u64 = 4_000;
        let before = Ring::new(&fleet(n), 64, seed);
        let after = Ring::new(&fleet(n + 1), 64, seed);
        let mut moved = 0u64;
        for pos in positions(SAMPLES) {
            let old = before.owner(pos);
            let new = after.owner(pos);
            if old != new {
                // Consistent hashing only ever moves keys *to* the new
                // backend; movement between survivors would mean the
                // old placements were disturbed.
                prop_assert_eq!(new, n, "keys only move to the newcomer");
                moved += 1;
            }
        }
        let fraction = moved as f64 / SAMPLES as f64;
        let fair = 1.0 / (n as f64 + 1.0);
        prop_assert!(
            fraction < 2.0 * fair,
            "moved {fraction:.3}, fair share {fair:.3}: churn stays near 1/(n+1)"
        );
        prop_assert!(
            fraction > 0.2 * fair,
            "moved {fraction:.3}: the newcomer takes real load"
        );
    }

    /// Virtual nodes keep the split roughly even: no backend owns more
    /// than ~3x or less than ~1/4 of its fair share.
    #[test]
    fn virtual_nodes_balance_the_load(
        n in 2usize..6,
        seed in any::<u64>(),
    ) {
        const SAMPLES: u64 = 4_000;
        let ring = Ring::new(&fleet(n), 128, seed);
        let mut counts = vec![0u64; n];
        for pos in positions(SAMPLES) {
            counts[ring.owner(pos)] += 1;
        }
        let fair = SAMPLES as f64 / n as f64;
        for (backend, &count) in counts.iter().enumerate() {
            let ratio = count as f64 / fair;
            prop_assert!(
                (0.25..3.0).contains(&ratio),
                "backend {backend} owns {count}/{SAMPLES} ({ratio:.2}x fair)"
            );
        }
    }
}
