//! The DexLego fleet router.
//!
//! ```text
//! dexlego-router --backend HOST:PORT [--backend HOST:PORT ...]
//!                [--addr HOST:PORT] [--replicas N] [--hedge-ms N]
//!                [--vnodes N] [--seed N] [--workers N]
//! ```
//!
//! Binds the front socket (port 0 picks an ephemeral port), prints
//! `dexlego-router: listening on <addr>` on stdout, and serves the
//! `dexlegod` wire dialect until a front `shutdown` request drains it.
//! Backends are dialled lazily, so the fleet may come up in any order.
//! Exits 0 after a graceful shutdown.

use std::process::ExitCode;

use dexlego_router::{Router, RouterConfig};

fn parse_args() -> Result<RouterConfig, String> {
    let mut listen = "127.0.0.1:0".to_owned();
    let mut backends: Vec<String> = Vec::new();
    let mut replicas: Option<usize> = None;
    let mut hedge_ms: Option<u64> = None;
    let mut vnodes: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut workers: Option<usize> = None;

    fn parse_num<T: std::str::FromStr>(name: &str, raw: String) -> Result<T, String> {
        raw.parse().map_err(|_| format!("{name} expects a number"))
    }

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => listen = value("--addr")?,
            "--backend" => backends.push(value("--backend")?),
            "--replicas" => replicas = Some(parse_num("--replicas", value("--replicas")?)?),
            "--hedge-ms" => hedge_ms = Some(parse_num("--hedge-ms", value("--hedge-ms")?)?),
            "--vnodes" => vnodes = Some(parse_num("--vnodes", value("--vnodes")?)?),
            "--seed" => seed = Some(parse_num("--seed", value("--seed")?)?),
            "--workers" => workers = Some(parse_num("--workers", value("--workers")?)?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if backends.is_empty() {
        return Err("at least one --backend is required".to_owned());
    }

    let mut config = RouterConfig::new(backends);
    config.listen = listen;
    if let Some(r) = replicas {
        config.replicas = r.max(1);
    }
    if let Some(ms) = hedge_ms {
        config.hedge_ms = ms;
    }
    if let Some(v) = vnodes {
        config.vnodes = v.max(1);
    }
    if let Some(s) = seed {
        config.seed = s;
    }
    if let Some(w) = workers {
        config.workers = w.max(1);
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(reason) => {
            eprintln!("dexlego-router: {reason}");
            return ExitCode::FAILURE;
        }
    };
    let fleet = config.backends.join(", ");
    let router = match Router::start(config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("dexlego-router: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The launch script greps this line for the resolved port.
    println!("dexlego-router: listening on {}", router.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!("dexlego-router: fleet: {fleet}");
    router.wait();
    eprintln!("dexlego-router: drained, exiting");
    ExitCode::SUCCESS
}
