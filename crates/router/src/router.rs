//! The routing tier: a `dexlegod`-protocol front end over a fleet of
//! `dexlegod` backends.
//!
//! For each extract the router computes the store key *client-side*
//! (the same `job_key` the daemon uses), places it on the consistent
//! ring, and forwards to the key's primary replica. Each time a full
//! hedge budget elapses unanswered it fires another copy at the next
//! untried replica — first answer wins, losers are cancelled — so a
//! request escapes even when a hedge target is itself stuck. A fresh
//! extraction is
//! replicated to the rest of the replica set; a cache hit served by a
//! non-primary replica triggers a read-repair backfill of the primary.
//! Replication payloads travel on the background repair thread (an
//! explicit `fetch` from the backend that served the result, then
//! `backfill` offers to the targets), so hot-path replies never carry
//! entry bytes the client did not ask for. Backends that keep failing are
//! ejected for a growing probation window, and a dead shard degrades
//! to cache misses on its neighbours — a client sees an error only
//! when the whole fleet is unreachable.
//!
//! The front side speaks the exact daemon dialect — ids, deadlines,
//! `stats`, `shutdown` — so [`dexlego_service::Client`] and
//! [`dexlego_service::PipelinedClient`] work against a router without
//! knowing it is one.

use std::collections::HashSet;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dexlego_harness::job_key;
use dexlego_harness::json::{self, Value};
use dexlego_service::{parse_request_line, ExtractRequest, Reply, Request, RequestId};
use dexlego_store::entry::encode as encode_entry;
use dexlego_store::hex::from_hex;
use dexlego_store::Key;

use crate::backend::{Backend, Event, HealthConfig, Waiter};
use crate::ring::Ring;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Front bind address; port 0 picks an ephemeral port.
    pub listen: String,
    /// Backend addresses — the fleet. Order is identity: the ring is a
    /// pure function of these strings, so every router configured with
    /// the same list routes identically.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the ring.
    pub vnodes: usize,
    /// Ring placement seed.
    pub seed: u64,
    /// Replication factor: how many backends should end up holding
    /// each result (and how far hedging reaches).
    pub replicas: usize,
    /// Latency budget before a hedge fires at the next replica,
    /// milliseconds.
    pub hedge_ms: u64,
    /// Hard per-request fleet budget, milliseconds (bounds requests
    /// that carry no deadline of their own).
    pub request_timeout_ms: u64,
    /// Routing worker threads (concurrent tagged requests in flight).
    pub workers: usize,
    /// Backend health gate.
    pub health: HealthConfig,
}

impl RouterConfig {
    /// Loop-back config on an ephemeral port over `backends`.
    #[must_use]
    pub fn new(backends: Vec<String>) -> RouterConfig {
        RouterConfig {
            listen: "127.0.0.1:0".to_owned(),
            backends,
            vnodes: 64,
            seed: 0x6465_786c_6567_6f00, // "dexlego\0"
            replicas: 2,
            hedge_ms: 30,
            request_timeout_ms: 30_000,
            workers: 8,
            health: HealthConfig::default(),
        }
    }
}

/// Router-level counters, all monotonically increasing.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Extracts routed.
    pub routed: u64,
    /// Hedge requests fired.
    pub hedges: u64,
    /// Winners that were the hedged (non-first) send.
    pub hedge_wins: u64,
    /// Sends retried on another replica after a transport loss or shed.
    pub failovers: u64,
    /// Backfills scheduled because a fresh fill must reach the rest of
    /// its replica set.
    pub replica_fills: u64,
    /// Backfills scheduled because a non-primary replica served a hit
    /// the primary was missing.
    pub read_repairs: u64,
    /// Cancels sent to revoke hedged losers.
    pub cancels: u64,
    /// Requests answered with an error because the whole fleet was
    /// unreachable.
    pub fleet_errors: u64,
}

/// A routing task handed to the worker pool.
type Job = Box<dyn FnOnce() + Send>;

enum RepairJob {
    /// An entry payload already in hand: offer it to `target`.
    Push {
        target: usize,
        key: Key,
        entry: Vec<u8>,
    },
    /// Pull the entry from `source` (which just served it) and offer it
    /// to each of `targets`. Extract replies stay thin — the payload
    /// transfer happens here, off the request hot path.
    Pull {
        source: usize,
        targets: Vec<usize>,
        key: Key,
    },
}

struct Ctx {
    config: RouterConfig,
    ring: Ring,
    backends: Vec<Arc<Backend>>,
    stats: Mutex<RouterStats>,
    started: Instant,
    seq: AtomicU64,
    shutting_down: AtomicBool,
    repair_tx: Mutex<Option<mpsc::Sender<RepairJob>>>,
    job_tx: Mutex<Option<mpsc::Sender<Job>>>,
    /// `(target, key)` pairs already repaired/replicated, so hedged hits
    /// do not re-offer the same entry every read. Bounded: cleared
    /// wholesale when full (a re-repair is a harmless `put_if_absent`).
    repaired: Mutex<HashSet<(usize, Key)>>,
}

impl Ctx {
    fn schedule_push(&self, target: usize, key: Key, entry: &[u8]) {
        self.schedule(RepairJob::Push {
            target,
            key,
            entry: entry.to_vec(),
        });
    }

    fn schedule_pull(&self, source: usize, targets: Vec<usize>, key: Key) {
        self.schedule(RepairJob::Pull {
            source,
            targets,
            key,
        });
    }

    fn schedule(&self, job: RepairJob) {
        let tx = self.repair_tx.lock().expect("repair lock").clone();
        if let Some(tx) = tx {
            let _ = tx.send(job);
        }
    }

    /// Records that `key` is being offered to `target`; returns false if
    /// that offer already happened (and should be skipped).
    fn first_offer(&self, target: usize, key: Key) -> bool {
        let mut repaired = self.repaired.lock().expect("repaired lock");
        if repaired.len() >= 65_536 {
            repaired.clear();
        }
        repaired.insert((target, key))
    }

    fn submit(&self, job: Job) {
        let tx = self.job_tx.lock().expect("job lock").clone();
        let rejected = match tx {
            Some(tx) => match tx.send(job) {
                Ok(()) => None,
                Err(mpsc::SendError(job)) => Some(job),
            },
            None => Some(job),
        };
        // Pool gone (drain): run inline rather than drop the reply.
        if let Some(job) = rejected {
            job();
        }
    }
}

/// A running router; dropping the handle does not stop it — use
/// [`Router::trigger_shutdown`] + [`Router::wait`].
pub struct Router {
    ctx: Arc<Ctx>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    repair: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Router {
    /// Binds the front socket, spawns the accept/worker/repair threads,
    /// and returns the handle. Backends are dialled lazily on first
    /// use, so a fleet can be wired up in any order.
    ///
    /// # Errors
    ///
    /// Binding the listen address fails.
    ///
    /// # Panics
    ///
    /// An empty backend list (a router that can route nowhere is a
    /// configuration bug).
    pub fn start(config: RouterConfig) -> io::Result<Router> {
        assert!(
            !config.backends.is_empty(),
            "router needs at least one backend"
        );
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let ring = Ring::new(&config.backends, config.vnodes.max(1), config.seed);
        let backends: Vec<Arc<Backend>> = config
            .backends
            .iter()
            .enumerate()
            .map(|(i, addr)| Backend::new(i, addr, config.health.clone()))
            .collect();

        let (repair_tx, repair_rx) = mpsc::channel::<RepairJob>();
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let ctx = Arc::new(Ctx {
            ring,
            backends,
            stats: Mutex::new(RouterStats::default()),
            started: Instant::now(),
            seq: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            repair_tx: Mutex::new(Some(repair_tx)),
            job_tx: Mutex::new(Some(job_tx)),
            repaired: Mutex::new(HashSet::new()),
            config,
        });

        let repair_ctx = Arc::clone(&ctx);
        let repair = std::thread::spawn(move || {
            for job in repair_rx {
                match job {
                    RepairJob::Push { target, key, entry } => {
                        let _ = repair_ctx.backends[target].send_backfill(&key, &entry);
                    }
                    RepairJob::Pull {
                        source,
                        targets,
                        key,
                    } => {
                        let Some(entry) = fetch_entry(&repair_ctx, source, &key) else {
                            continue;
                        };
                        for target in targets {
                            let _ = repair_ctx.backends[target].send_backfill(&key, &entry);
                        }
                    }
                }
            }
        });

        let workers: Vec<JoinHandle<()>> = (0..ctx.config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&job_rx);
                std::thread::spawn(move || loop {
                    let job = rx.lock().expect("job queue lock").recv();
                    match job {
                        Ok(job) => job(),
                        Err(_) => break,
                    }
                })
            })
            .collect();

        let accept_ctx = Arc::clone(&ctx);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_ctx.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_ctx = Arc::clone(&accept_ctx);
                std::thread::spawn(move || serve_conn(&conn_ctx, stream));
            }
        });

        Ok(Router {
            ctx,
            addr,
            accept: Some(accept),
            repair: Some(repair),
            workers,
        })
    }

    /// The bound front address.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Starts a drain exactly as a front `shutdown` request would.
    pub fn trigger_shutdown(&self) {
        begin_shutdown(&self.ctx, self.addr);
    }

    /// Blocks until the router has drained: the accept loop has exited
    /// and the routing and repair workers have finished their queues.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Closing the channels lets the workers drain and exit.
        self.ctx.job_tx.lock().expect("job lock").take();
        self.ctx.repair_tx.lock().expect("repair lock").take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(repair) = self.repair.take() {
            let _ = repair.join();
        }
    }
}

fn begin_shutdown(ctx: &Arc<Ctx>, addr: std::net::SocketAddr) {
    if ctx.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the accept loop so it observes the flag.
    let _ = TcpStream::connect(addr);
}

/// Prefixes the id member, mirroring the daemon's reply framing.
fn with_id(id: &RequestId, reply: &str) -> String {
    debug_assert!(reply.starts_with('{') && !reply.starts_with("{}"));
    format!("{{\"id\": {}, {}", id.encode(), &reply[1..])
}

fn error_reply(reason: &str) -> String {
    json::object(&[
        ("status", json::string("error")),
        ("reason", json::string(reason)),
    ])
}

fn write_reply(writer: &Mutex<TcpStream>, id: Option<&RequestId>, body: &str) {
    let line = match id {
        Some(id) => with_id(id, body),
        None => body.to_owned(),
    };
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(&line);
    framed.push('\n');
    let mut stream = writer.lock().expect("front writer lock");
    let _ = stream.write_all(framed.as_bytes());
    let _ = stream.flush();
}

fn serve_conn(ctx: &Arc<Ctx>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let local_addr = stream.local_addr().ok();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        let (id, request) = parse_request_line(trimmed);
        match request {
            Err(reason) => write_reply(&writer, id.as_ref(), &error_reply(&reason)),
            Ok(Request::Ping) => write_reply(
                &writer,
                id.as_ref(),
                &json::object(&[("status", json::string("ok"))]),
            ),
            Ok(Request::Stats) => {
                let body = stats_reply(ctx);
                write_reply(&writer, id.as_ref(), &body);
            }
            Ok(Request::Shutdown) => {
                write_reply(
                    &writer,
                    id.as_ref(),
                    &json::object(&[("status", json::string("ok"))]),
                );
                if let Some(addr) = local_addr {
                    begin_shutdown(ctx, addr);
                }
                return;
            }
            Ok(Request::Cancel(_)) => {
                // The router dispatches extracts the moment they arrive,
                // so there is never a front-side pending queue to revoke
                // from; report the no-op honestly.
                write_reply(
                    &writer,
                    id.as_ref(),
                    &json::object(&[
                        ("status", json::string("ok")),
                        ("cancelled", "false".to_owned()),
                    ]),
                );
            }
            Ok(Request::Backfill { key, entry }) => {
                let body = route_backfill(ctx, key, &entry);
                write_reply(&writer, id.as_ref(), &body);
            }
            Ok(Request::Fetch(key)) => {
                let body = route_fetch(ctx, &key);
                write_reply(&writer, id.as_ref(), &body);
            }
            Ok(Request::Extract(req)) => match id {
                // Tagged: fan out through the worker pool so many
                // requests ride this connection concurrently.
                Some(id) => {
                    let job_ctx = Arc::clone(ctx);
                    let job_writer = Arc::clone(&writer);
                    ctx.submit(Box::new(move || {
                        let body = route_extract(&job_ctx, &req);
                        write_reply(&job_writer, Some(&id), &body);
                    }));
                }
                // Id-less: the ordered compatibility dialect. Routing
                // inline on the connection thread preserves strict
                // request-order replies for free.
                None => {
                    let body = route_extract(ctx, &req);
                    write_reply(&writer, None, &body);
                }
            },
        }
        if ctx.shutting_down.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Removes `keys` members from an object value (no-op otherwise).
fn strip_members(value: Value, keys: &[&str]) -> Value {
    match value {
        Value::Obj(members) => Value::Obj(
            members
                .into_iter()
                .filter(|(k, _)| !keys.contains(&k.as_str()))
                .collect(),
        ),
        other => other,
    }
}

/// Re-encodes a backend reply for the front connection. The backend's
/// own `id` echo is stripped (the front framing adds the front id).
fn encode_reply(reply: &Reply) -> String {
    match reply {
        Reply::Ok(value) => strip_members(value.clone(), &["id"]).to_json(),
        Reply::Failed {
            job_status,
            detail,
            report,
        } => {
            let mut members = vec![
                ("status", json::string("failed")),
                ("job_status", json::string(job_status)),
            ];
            if let Some(detail) = detail {
                members.push(("detail", json::string(detail)));
            }
            members.push(("report", report.to_json()));
            json::object(&members)
        }
        Reply::Overloaded { in_flight } => json::object(&[
            ("status", json::string("overloaded")),
            ("in_flight", in_flight.to_string()),
        ]),
        Reply::DeadlineExceeded { waited_ms } => json::object(&[
            ("status", json::string("deadline_exceeded")),
            ("waited_ms", waited_ms.to_string()),
        ]),
        Reply::Error(reason) => error_reply(reason),
    }
}

/// Routes one extract through the fleet and returns the front reply
/// body (id-less; the caller frames it).
#[allow(clippy::too_many_lines)]
fn route_extract(ctx: &Arc<Ctx>, req: &ExtractRequest) -> String {
    let seq = ctx.seq.fetch_add(1, Ordering::Relaxed);
    let fallback = format!("req{seq:06}");
    let spec = match req.to_spec(&fallback) {
        Ok(spec) => spec,
        Err(reason) => return error_reply(&reason),
    };
    // The client-side key computation: identical input digest to the
    // backend's own, so router placement and backend storage agree.
    let key = job_key(&spec);
    let pos = key.map_or_else(|| Ring::data_position(&req.dex), |k| Ring::key_position(&k));
    let candidates = ctx.ring.candidates(pos);
    let r = ctx.config.replicas.clamp(1, candidates.len());
    let replica_set: Vec<usize> = candidates[..r].to_vec();

    // Forwarded copy. `want_entry` is passed through untouched: the
    // hot-path reply stays thin, and the repair thread pulls the entry
    // with an explicit `fetch` when replication or read-repair needs
    // it.
    let fwd = req.clone();

    ctx.stats.lock().expect("stats lock").routed += 1;

    let started = Instant::now();
    let deadline = started
        + req
            .deadline_ms
            .map_or(Duration::from_millis(ctx.config.request_timeout_ms), |ms| {
                Duration::from_millis(ms.min(ctx.config.request_timeout_ms))
            });
    let hedge_after = Duration::from_millis(ctx.config.hedge_ms);

    let waiter = Waiter::new();
    let mut cursor = 0usize;
    let mut outstanding: Vec<(usize, u64)> = Vec::new();
    let mut fallback_reply: Option<String> = None;
    let first_backend;

    // First send: walk the candidate order until a backend accepts.
    loop {
        if cursor >= candidates.len() {
            ctx.stats.lock().expect("stats lock").fleet_errors += 1;
            return error_reply("no backend available");
        }
        let b = candidates[cursor];
        cursor += 1;
        if !ctx.backends[b].available() {
            continue;
        }
        if let Some(id) = ctx.backends[b].send_extract(&fwd, &waiter) {
            first_backend = b;
            outstanding.push((b, id));
            break;
        }
    }
    let mut last_send = Instant::now();

    loop {
        // Hedge ladder: while untried candidates remain, another copy
        // fires each time a full hedge budget elapses unanswered, so a
        // request escapes even when the first hedge lands on a shard
        // that is itself stuck.  Bounded by the candidate list.
        let hedge_at = (!outstanding.is_empty() && cursor < candidates.len())
            .then_some(last_send + hedge_after);
        let wake = hedge_at.map_or(deadline, |h| h.min(deadline));
        let events = waiter.wait_until(wake);

        if events.is_empty() {
            if Instant::now() >= deadline {
                for (b, pending_id) in outstanding {
                    ctx.backends[b].cancel(pending_id);
                }
                return fallback_reply.unwrap_or_else(|| {
                    let waited = started.elapsed().as_millis();
                    json::object(&[
                        ("status", json::string("deadline_exceeded")),
                        ("waited_ms", waited.to_string()),
                    ])
                });
            }
            // Hedge budget elapsed: fire a copy at the next candidate.
            let mut sent = false;
            while cursor < candidates.len() {
                let b = candidates[cursor];
                cursor += 1;
                if !ctx.backends[b].available() {
                    continue;
                }
                if let Some(id) = ctx.backends[b].send_extract(&fwd, &waiter) {
                    outstanding.push((b, id));
                    last_send = Instant::now();
                    sent = true;
                    break;
                }
            }
            if sent {
                ctx.stats.lock().expect("stats lock").hedges += 1;
            }
            continue;
        }

        for event in events {
            match event {
                Event::Lost(b) => {
                    outstanding.retain(|(x, _)| *x != b);
                }
                Event::Reply(b, reply) => {
                    outstanding.retain(|(x, _)| *x != b);
                    match reply {
                        Reply::Ok(value) => {
                            return finish_ok(
                                ctx,
                                req,
                                key,
                                &replica_set,
                                first_backend,
                                b,
                                value,
                                outstanding,
                            );
                        }
                        terminal @ Reply::Failed { .. } => {
                            // A definitive job outcome: retrying on a
                            // replica would just fail the same way.
                            let mut stats = ctx.stats.lock().expect("stats lock");
                            if b != first_backend {
                                stats.hedge_wins += 1;
                            }
                            drop(stats);
                            for (ob, oid) in outstanding {
                                ctx.backends[ob].cancel(oid);
                                ctx.stats.lock().expect("stats lock").cancels += 1;
                            }
                            return encode_reply(&terminal);
                        }
                        soft @ (Reply::Overloaded { .. }
                        | Reply::DeadlineExceeded { .. }
                        | Reply::Error(_)) => {
                            // This backend shed or garbled the request;
                            // remember its answer but try further
                            // replicas before giving it to the client.
                            fallback_reply = Some(encode_reply(&soft));
                        }
                    }
                }
            }
        }

        // Everything in flight died or shed: fail over down the ring.
        if outstanding.is_empty() {
            let mut sent = false;
            while cursor < candidates.len() {
                let b = candidates[cursor];
                cursor += 1;
                if !ctx.backends[b].available() {
                    continue;
                }
                if let Some(id) = ctx.backends[b].send_extract(&fwd, &waiter) {
                    outstanding.push((b, id));
                    last_send = Instant::now();
                    sent = true;
                    break;
                }
            }
            if sent {
                ctx.stats.lock().expect("stats lock").failovers += 1;
            } else {
                return fallback_reply.unwrap_or_else(|| {
                    ctx.stats.lock().expect("stats lock").fleet_errors += 1;
                    error_reply("all backends unavailable")
                });
            }
        }
    }
}

/// Winner bookkeeping for a successful reply from backend `winner`:
/// cancel the losers, schedule replication / read-repair, and shape
/// the front reply.
#[allow(clippy::too_many_arguments)]
fn finish_ok(
    ctx: &Arc<Ctx>,
    req: &ExtractRequest,
    key: Option<Key>,
    replica_set: &[usize],
    first_backend: usize,
    winner: usize,
    value: Value,
    losers: Vec<(usize, u64)>,
) -> String {
    {
        let mut stats = ctx.stats.lock().expect("stats lock");
        if winner != first_backend {
            stats.hedge_wins += 1;
        }
        stats.cancels += losers.len() as u64;
    }
    for (b, id) in losers {
        ctx.backends[b].cancel(id);
    }

    if let Some(key) = key {
        let cached = value
            .get("cached")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        // If the front asked for the entry itself the reply already
        // carries it — reuse it instead of re-fetching.
        let entry = value
            .get("entry")
            .and_then(Value::as_str)
            .and_then(from_hex);
        let targets: Vec<usize> = if cached {
            // A replica served a hit the primary did not: repair the
            // primary so the next read finds it in one hop.
            if winner == replica_set[0] {
                Vec::new()
            } else {
                vec![replica_set[0]]
            }
        } else {
            // Fresh fill: fan it out to the rest of the replica set.
            replica_set
                .iter()
                .copied()
                .filter(|&b| b != winner)
                .collect()
        };
        // Offer each (target, key) once: hedged hits would otherwise
        // re-repair the same key on every read.
        let targets: Vec<usize> = targets
            .into_iter()
            .filter(|&b| ctx.first_offer(b, key))
            .collect();
        if !targets.is_empty() {
            {
                let mut stats = ctx.stats.lock().expect("stats lock");
                if cached {
                    stats.read_repairs += 1;
                } else {
                    stats.replica_fills += targets.len() as u64;
                }
            }
            if let Some(entry) = entry {
                for b in targets {
                    ctx.schedule_push(b, key, &entry);
                }
            } else {
                ctx.schedule_pull(winner, targets, key);
            }
        }
    }

    // The entry payload is router plumbing; forward it only when the
    // front client asked for it itself.
    let strip: &[&str] = if req.want_entry {
        &["id"]
    } else {
        &["id", "entry"]
    };
    strip_members(value, strip).to_json()
}

/// Pulls the entry payload for `key` from `source` with an explicit
/// `fetch` round-trip (the repair thread's read path). `None` when the
/// backend is unreachable, times out, or no longer has the entry.
fn fetch_entry(ctx: &Arc<Ctx>, source: usize, key: &Key) -> Option<Vec<u8>> {
    let waiter = Waiter::new();
    ctx.backends[source].send_fetch(key, &waiter)?;
    let deadline = Instant::now() + Duration::from_millis(ctx.config.request_timeout_ms);
    // A fetch has exactly one in-flight request, so the first event (or a
    // timeout's empty batch) settles it.
    match waiter.wait_until(deadline).into_iter().next() {
        Some(Event::Reply(_, Reply::Ok(value))) => value
            .get("entry")
            .and_then(Value::as_str)
            .and_then(from_hex),
        _ => None, // timed out, transport lost, or the entry is gone
    }
}

/// Routes a front-side fetch: ask the key's replicas in placement
/// order, return the first entry found (with the same shape a backend
/// answers), `found: false` if no replica has it.
fn route_fetch(ctx: &Arc<Ctx>, key: &Key) -> String {
    let candidates = ctx.ring.candidates(Ring::key_position(key));
    let r = ctx.config.replicas.clamp(1, candidates.len());
    for &b in &candidates[..r] {
        if let Some(entry) = fetch_entry(ctx, b, key) {
            return json::object(&[
                ("status", json::string("ok")),
                ("found", "true".to_owned()),
                ("entry", json::string(&dexlego_store::hex::to_hex(&entry))),
            ]);
        }
    }
    json::object(&[
        ("status", json::string("ok")),
        ("found", "false".to_owned()),
    ])
}

/// Routes a front-side backfill to the key's replica set and reports
/// whether any replica newly stored it.
fn route_backfill(ctx: &Arc<Ctx>, key: Key, entry: &dexlego_store::CachedResult) -> String {
    let payload = encode_entry(entry);
    let pos = Ring::key_position(&key);
    let candidates = ctx.ring.candidates(pos);
    let r = ctx.config.replicas.clamp(1, candidates.len());
    let waiter = Waiter::new();
    let mut expected = 0usize;
    for &b in &candidates[..r] {
        if ctx.backends[b]
            .send_backfill_waited(&key, &payload, &waiter)
            .is_some()
        {
            expected += 1;
        }
    }
    if expected == 0 {
        ctx.stats.lock().expect("stats lock").fleet_errors += 1;
        return error_reply("no backend available");
    }
    let deadline = Instant::now() + Duration::from_millis(ctx.config.request_timeout_ms);
    let mut stored = false;
    let mut heard = 0usize;
    while heard < expected {
        let events = waiter.wait_until(deadline);
        if events.is_empty() {
            break;
        }
        for event in events {
            heard += 1;
            if let Event::Reply(_, Reply::Ok(value)) = event {
                stored |= value
                    .get("stored")
                    .and_then(Value::as_bool)
                    .unwrap_or(false);
            }
        }
    }
    json::object(&[
        ("status", json::string("ok")),
        ("stored", stored.to_string()),
    ])
}

/// Numeric-summing recursive merge for backend stats objects.
fn merge_stats(into: &mut Value, from: &Value) {
    match (into, from) {
        (Value::Obj(am), Value::Obj(bm)) => {
            for (k, bv) in bm {
                if let Some((_, av)) = am.iter_mut().find(|(ak, _)| ak == k) {
                    merge_stats(av, bv);
                } else {
                    am.push((k.clone(), bv.clone()));
                }
            }
        }
        (Value::Num(ar), Value::Num(br)) => {
            if let (Some(a), Some(b)) = (ar.parse::<u64>().ok(), br.parse::<u64>().ok()) {
                *ar = (a + b).to_string();
            }
        }
        _ => {}
    }
}

/// Fans `stats` out to every reachable backend and aggregates: numeric
/// counters sum, `uptime_ms` is the fleet maximum, and the router adds
/// its own `router` / `fleet` members.
fn stats_reply(ctx: &Arc<Ctx>) -> String {
    let waiter = Waiter::new();
    let mut expected = 0usize;
    for backend in &ctx.backends {
        if backend.available() && backend.send_op("stats", &waiter).is_some() {
            expected += 1;
        }
    }
    let deadline = Instant::now() + Duration::from_millis(1_000);
    let mut merged: Option<Value> = None;
    let mut max_uptime: u64 = 0;
    let mut heard = 0usize;
    while heard < expected {
        let events = waiter.wait_until(deadline);
        if events.is_empty() {
            break;
        }
        for event in events {
            heard += 1;
            let Event::Reply(_, Reply::Ok(value)) = event else {
                continue;
            };
            let Some(stats) = value.get("stats").cloned() else {
                continue;
            };
            max_uptime =
                max_uptime.max(stats.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0));
            match merged.as_mut() {
                Some(acc) => merge_stats(acc, &stats),
                None => merged = Some(stats),
            }
        }
    }
    let mut merged = merged.unwrap_or(Value::Obj(Vec::new()));
    if let Value::Obj(members) = &mut merged {
        // Summed uptimes are meaningless; report the eldest backend.
        members.retain(|(k, _)| k != "uptime_ms" && k != "router" && k != "fleet");
        members.push(("uptime_ms".to_owned(), Value::Num(max_uptime.to_string())));
        let s = ctx.stats.lock().expect("stats lock");
        let router_obj = json::object(&[
            ("routed", s.routed.to_string()),
            ("hedges", s.hedges.to_string()),
            ("hedge_wins", s.hedge_wins.to_string()),
            ("failovers", s.failovers.to_string()),
            ("replica_fills", s.replica_fills.to_string()),
            ("read_repairs", s.read_repairs.to_string()),
            ("cancels", s.cancels.to_string()),
            ("fleet_errors", s.fleet_errors.to_string()),
            ("uptime_ms", ctx.started.elapsed().as_millis().to_string()),
        ]);
        drop(s);
        let fleet: Vec<String> = ctx
            .backends
            .iter()
            .map(|b| {
                json::object(&[
                    ("addr", json::string(b.addr())),
                    ("up", b.available().to_string()),
                    ("consecutive_failures", b.consecutive_failures().to_string()),
                    ("sent", b.sent.load(Ordering::Relaxed).to_string()),
                    ("lost", b.lost.load(Ordering::Relaxed).to_string()),
                    (
                        "backfills_sent",
                        b.backfills_sent.load(Ordering::Relaxed).to_string(),
                    ),
                ])
            })
            .collect();
        members.push((
            "router".to_owned(),
            dexlego_harness::json::parse(&router_obj).expect("router stats are valid json"),
        ));
        members.push((
            "fleet".to_owned(),
            dexlego_harness::json::parse(&json::array(&fleet)).expect("fleet stats are valid json"),
        ));
    }
    format!("{{\"status\": \"ok\", \"stats\": {}}}", merged.to_json())
}
