//! A [`run_batch_cached`](dexlego_harness::run_batch_cached)-compatible
//! batch runner that routes every job through a router (or a single
//! daemon — the wire dialect is identical): same [`RunReport`] out,
//! but the extraction work and the cache live in the fleet.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

use dexlego_dex::writer::write_dex;
use dexlego_harness::pool::run_batch_with;
use dexlego_harness::{HarnessConfig, JobReport, JobSpec, JobStatus, RunReport};
use dexlego_service::{Client, ExtractReply, ExtractRequest};

/// How often a shed (`overloaded`) job is retried before giving up.
const SHED_RETRIES: u32 = 5;
/// Reconnect attempts after a mid-batch transport failure.
const TRANSPORT_RETRIES: u32 = 3;

fn wire_request(spec: &JobSpec) -> Result<ExtractRequest, String> {
    if !spec.tampers.is_empty() {
        // The wire protocol deliberately cannot describe tampering
        // natives; silently running the un-tampered app remotely would
        // produce a wrong-but-plausible result.
        return Err("tampered jobs cannot be routed; run them locally".to_owned());
    }
    let dex = write_dex(&spec.dex).map_err(|e| format!("serialise dex: {e}"))?;
    let mut req = ExtractRequest::new(dex, &spec.entry);
    req.name = Some(spec.name.clone());
    req.packer = spec.packer.map(|id| id.profile().name.to_owned());
    req.seeds = spec.seeds.clone();
    req.events = spec.events;
    req.fuel = spec.fuel;
    req.conformance = spec.check_conformance;
    Ok(req)
}

fn failure(spec: &JobSpec, reason: String) -> JobReport {
    let mut report = JobReport::empty(spec.name.clone(), spec.packer.map(|id| id.profile().name));
    report.status = JobStatus::SetupFailed(reason);
    report
}

fn run_one(addr: &str, pool: &Mutex<Vec<Client>>, spec: &JobSpec) -> JobReport {
    let req = match wire_request(spec) {
        Ok(req) => req,
        Err(reason) => return failure(spec, reason),
    };
    let mut transport_budget = TRANSPORT_RETRIES;
    let mut shed_budget = SHED_RETRIES;
    loop {
        let mut client = match pool.lock().expect("client pool lock").pop() {
            Some(client) => client,
            None => match Client::connect(addr) {
                Ok(client) => client,
                Err(e) => {
                    if transport_budget == 0 {
                        return failure(spec, format!("connect {addr}: {e}"));
                    }
                    transport_budget -= 1;
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            },
        };
        match client.extract(&req) {
            Ok(ExtractReply::Done { report, .. }) => {
                pool.lock().expect("client pool lock").push(client);
                return JobReport::from_json(&report)
                    .unwrap_or_else(|e| failure(spec, format!("undecodable report: {e}")));
            }
            Ok(ExtractReply::Failed { job_status, detail }) => {
                pool.lock().expect("client pool lock").push(client);
                let mut report =
                    JobReport::empty(spec.name.clone(), spec.packer.map(|id| id.profile().name));
                report.status = JobStatus::from_label(&job_status, detail.as_deref()).unwrap_or(
                    JobStatus::SetupFailed(format!("unknown failure label {job_status:?}")),
                );
                return report;
            }
            Ok(ExtractReply::Overloaded) => {
                pool.lock().expect("client pool lock").push(client);
                if shed_budget == 0 {
                    return failure(spec, "fleet overloaded".to_owned());
                }
                shed_budget -= 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            Ok(ExtractReply::DeadlineExceeded { waited_ms }) => {
                pool.lock().expect("client pool lock").push(client);
                return failure(spec, format!("shed after waiting {waited_ms}ms"));
            }
            Err(e) => {
                // The connection is suspect; drop it and retry on a
                // fresh one (extracts are idempotent — the fleet cache
                // absorbs the duplicate).
                drop(client);
                if transport_budget == 0 {
                    return failure(spec, format!("transport: {e}"));
                }
                transport_budget -= 1;
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Runs `jobs` against the daemon-protocol endpoint at `addr` (a
/// router fronting a fleet, or a single `dexlegod`) on
/// `config.workers` local threads, returning the same [`RunReport`] a
/// local [`run_batch_cached`](dexlego_harness::run_batch_cached) run
/// produces. Connections are pooled and reused across jobs; shed jobs
/// retry with backoff; a job the wire cannot express (tampering
/// natives) fails its report rather than running wrong remotely.
#[must_use]
pub fn run_batch_routed(addr: &str, jobs: Vec<JobSpec>, config: &HarnessConfig) -> RunReport {
    let pool: Mutex<Vec<Client>> = Mutex::new(Vec::new());
    run_batch_with(jobs, config, |spec| run_one(addr, &pool, &spec))
}

/// One-line human summary of a routed batch, mirroring the local
/// harness output (`name status wall_ms`).
///
/// # Errors
///
/// Propagates write failures on `out`.
pub fn print_batch_summary(out: &mut impl Write, report: &RunReport) -> std::io::Result<()> {
    for job in &report.jobs {
        writeln!(
            out,
            "{} {} {:.1}ms{}",
            job.name,
            job.status.label(),
            job.wall_us as f64 / 1000.0,
            if job.cached { " (cached)" } else { "" },
        )?;
    }
    writeln!(
        out,
        "{} jobs, {} ok, {} cached, {:.1}ms wall",
        report.jobs.len(),
        report.jobs.iter().filter(|j| !j.failed()).count(),
        report.cache_hits(),
        report.wall_us as f64 / 1000.0,
    )
}
