//! A managed connection to one `dexlegod` backend: multiplexed sends,
//! a reader thread that routes replies to parked waiters, and a health
//! gate that ejects a repeatedly-failing backend for a growing
//! probation window instead of hammering it.
//!
//! The failure contract is all a caller needs: every send either
//! returns an id (the reply or a [`Event::Lost`] for it will reach the
//! waiter eventually) or `None` (nothing went out — route elsewhere).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dexlego_service::{
    Backoff, ClientError, ExtractRequest, PipelinedClient, PipelinedSender, Reply, RequestId,
};
use dexlego_store::Key;

/// What a routing thread hears about its forwarded requests.
#[derive(Debug)]
pub enum Event {
    /// Backend `idx` answered the request the waiter registered.
    Reply(usize, Reply),
    /// Backend `idx`'s connection died with the request outstanding;
    /// its reply is never coming.
    Lost(usize),
}

/// A mailbox one routing thread parks on while backends work. Reader
/// threads deliver [`Event`]s; the router drains them as they land.
pub struct Waiter {
    events: Mutex<Vec<Event>>,
    cv: Condvar,
}

impl Waiter {
    /// A fresh, empty mailbox.
    #[must_use]
    pub fn new() -> Arc<Waiter> {
        Arc::new(Waiter {
            events: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        })
    }

    /// Drops an event in and wakes the parked router.
    pub fn deliver(&self, event: Event) {
        self.events.lock().expect("waiter lock").push(event);
        self.cv.notify_one();
    }

    /// Blocks until at least one event is present or `deadline` passes;
    /// drains and returns whatever is there (empty = timed out).
    pub fn wait_until(&self, deadline: Instant) -> Vec<Event> {
        let mut events = self.events.lock().expect("waiter lock");
        loop {
            if !events.is_empty() {
                return std::mem::take(&mut *events);
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let (guard, _) = self
                .cv
                .wait_timeout(events, deadline - now)
                .expect("waiter lock");
            events = guard;
        }
    }
}

/// Health-gate tuning.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures before the backend is ejected.
    pub eject_after: u32,
    /// First probation window, milliseconds.
    pub probation_base_ms: u64,
    /// Probation cap, milliseconds.
    pub probation_cap_ms: u64,
    /// Dial attempts per connect (with client-side backoff between).
    pub connect_attempts: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            eject_after: 2,
            probation_base_ms: 200,
            probation_cap_ms: 5_000,
            connect_attempts: 1,
        }
    }
}

#[derive(Debug, Default)]
struct Health {
    consecutive_failures: u32,
    ejected_until: Option<Instant>,
}

type PendingMap = Mutex<HashMap<u64, Arc<Waiter>>>;

struct Conn {
    tx: PipelinedSender,
    pending: Arc<PendingMap>,
}

/// One backend: its address, at most one live connection, and its
/// health record.
pub struct Backend {
    index: usize,
    addr: String,
    cfg: HealthConfig,
    conn: Mutex<Option<Conn>>,
    health: Mutex<Health>,
    /// Requests successfully written to this backend.
    pub sent: AtomicU64,
    /// Requests whose connection died before a reply.
    pub lost: AtomicU64,
    /// Backfill offers shipped to this backend.
    pub backfills_sent: AtomicU64,
}

impl Backend {
    /// A backend at `addr`, position `index` in the fleet.
    #[must_use]
    pub fn new(index: usize, addr: &str, cfg: HealthConfig) -> Arc<Backend> {
        Arc::new(Backend {
            index,
            addr: addr.to_owned(),
            cfg,
            conn: Mutex::new(None),
            health: Mutex::new(Health::default()),
            sent: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            backfills_sent: AtomicU64::new(0),
        })
    }

    /// The backend's position in the fleet (its [`Event`] identity).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The backend's address (its ring identity).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the health gate admits traffic right now. An ejected
    /// backend becomes available again when its probation expires —
    /// the next send is the half-open probe, and its outcome decides
    /// whether the ejection ends or doubles.
    #[must_use]
    pub fn available(&self) -> bool {
        let health = self.health.lock().expect("health lock");
        match health.ejected_until {
            Some(until) => Instant::now() >= until,
            None => true,
        }
    }

    /// Consecutive failures currently on record.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.health
            .lock()
            .expect("health lock")
            .consecutive_failures
    }

    fn record_success(&self) {
        let mut health = self.health.lock().expect("health lock");
        health.consecutive_failures = 0;
        health.ejected_until = None;
    }

    fn record_failure(&self) {
        let mut health = self.health.lock().expect("health lock");
        health.consecutive_failures = health.consecutive_failures.saturating_add(1);
        if health.consecutive_failures >= self.cfg.eject_after {
            let exponent = health.consecutive_failures - self.cfg.eject_after;
            let window = self
                .cfg
                .probation_base_ms
                .saturating_mul(1u64 << exponent.min(16))
                .min(self.cfg.probation_cap_ms);
            health.ejected_until = Some(Instant::now() + Duration::from_millis(window));
        }
    }

    /// Delivers [`Event::Lost`] to everything parked on `pending`.
    fn fail_pending(&self, pending: &PendingMap) {
        let drained: Vec<Arc<Waiter>> = pending
            .lock()
            .expect("pending lock")
            .drain()
            .map(|(_, w)| w)
            .collect();
        self.lost.fetch_add(drained.len() as u64, Ordering::Relaxed);
        for waiter in drained {
            waiter.deliver(Event::Lost(self.index));
        }
    }

    /// Dials the backend and spawns the reader thread that routes its
    /// replies. The reader owns the connection's pending map; when the
    /// connection dies it clears the slot (if still current), records
    /// the failure, and fails every parked waiter.
    fn dial(self: &Arc<Self>) -> Result<Conn, ClientError> {
        let client = PipelinedClient::connect_retry(
            &self.addr,
            self.cfg.connect_attempts,
            &mut Backoff::new(5, 100),
        )?;
        let (tx, mut rx) = client.split();
        let pending: Arc<PendingMap> = Arc::new(Mutex::new(HashMap::new()));
        let reader_pending = Arc::clone(&pending);
        let this = Arc::clone(self);
        std::thread::spawn(move || {
            loop {
                match rx.recv_any() {
                    Ok((Some(RequestId::Num(id)), reply)) => {
                        let waiter = reader_pending.lock().expect("pending lock").remove(&id);
                        // No waiter: a cancelled loser's straggling
                        // reply, or a fire-and-forget ack. Drop it.
                        if let Some(waiter) = waiter {
                            waiter.deliver(Event::Reply(this.index, reply));
                        }
                    }
                    // Replies this client never asks for (id-less or
                    // string-tagged); ignore rather than die.
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            let mut slot = this.conn.lock().expect("conn lock");
            let current = slot
                .as_ref()
                .is_some_and(|c| Arc::ptr_eq(&c.pending, &reader_pending));
            if current {
                *slot = None;
            }
            drop(slot);
            this.record_failure();
            this.fail_pending(&reader_pending);
        });
        Ok(Conn { tx, pending })
    }

    /// The shared send path: ensures a connection, encodes via `enc`,
    /// registers the waiter (if any) under the new id, and flushes.
    /// `None` means nothing went out; the connection (if any) has been
    /// torn down and the failure recorded.
    fn send_with(
        self: &Arc<Self>,
        waiter: Option<&Arc<Waiter>>,
        enc: impl FnOnce(&mut PipelinedSender) -> Result<u64, ClientError>,
    ) -> Option<u64> {
        let mut slot = self.conn.lock().expect("conn lock");
        if slot.is_none() {
            if !self.available() {
                return None;
            }
            match self.dial() {
                Ok(conn) => *slot = Some(conn),
                Err(_) => {
                    self.record_failure();
                    return None;
                }
            }
        }
        let conn = slot.as_mut().expect("connection just ensured");
        let pending = Arc::clone(&conn.pending);
        let outcome = enc(&mut conn.tx).and_then(|id| {
            if let Some(waiter) = waiter {
                pending
                    .lock()
                    .expect("pending lock")
                    .insert(id, Arc::clone(waiter));
            }
            conn.tx.flush().map(|()| id)
        });
        match outcome {
            Ok(id) => {
                self.record_success();
                self.sent.fetch_add(1, Ordering::Relaxed);
                Some(id)
            }
            Err(_) => {
                // Flush may have died after the waiter was registered:
                // pull our own id back out so the caller's `None` and a
                // delivered Lost can't both describe this request, then
                // fail whatever else was in flight.
                let dead = slot.take();
                drop(slot);
                if let Some(dead) = dead {
                    dead.pending
                        .lock()
                        .expect("pending lock")
                        .retain(|_, w| waiter.is_none_or(|ours| !Arc::ptr_eq(w, ours)));
                    self.fail_pending(&dead.pending);
                }
                self.record_failure();
                None
            }
        }
    }

    /// Forwards an extract; the reply lands in `waiter`.
    pub fn send_extract(
        self: &Arc<Self>,
        req: &ExtractRequest,
        waiter: &Arc<Waiter>,
    ) -> Option<u64> {
        self.send_with(Some(waiter), |tx| tx.send_extract(req))
    }

    /// Forwards a simple op (`ping`, `stats`); the reply lands in
    /// `waiter`.
    pub fn send_op(self: &Arc<Self>, op: &str, waiter: &Arc<Waiter>) -> Option<u64> {
        self.send_with(Some(waiter), |tx| tx.send_op(op))
    }

    /// Fire-and-forget backfill offer; the ack is discarded.
    pub fn send_backfill(self: &Arc<Self>, key: &Key, entry_payload: &[u8]) -> bool {
        let sent = self
            .send_with(None, |tx| tx.send_backfill(key, entry_payload))
            .is_some();
        if sent {
            self.backfills_sent.fetch_add(1, Ordering::Relaxed);
        }
        sent
    }

    /// Backfill offer whose ack the caller wants to hear (the front-side
    /// backfill op reports whether any replica stored the entry).
    pub fn send_backfill_waited(
        self: &Arc<Self>,
        key: &Key,
        entry_payload: &[u8],
        waiter: &Arc<Waiter>,
    ) -> Option<u64> {
        let id = self.send_with(Some(waiter), |tx| tx.send_backfill(key, entry_payload));
        if id.is_some() {
            self.backfills_sent.fetch_add(1, Ordering::Relaxed);
        }
        id
    }

    /// Sends a `fetch` for the stored entry under `key`, delivering the
    /// reply to `waiter`. This is how the repair thread pulls entry
    /// payloads — extract replies stay thin and the transfer happens
    /// off the request hot path.
    pub fn send_fetch(self: &Arc<Self>, key: &Key, waiter: &Arc<Waiter>) -> Option<u64> {
        self.send_with(Some(waiter), |tx| tx.send_fetch(key))
    }

    /// Revokes a hedged loser: forgets its waiter registration (a
    /// straggling reply is dropped by the reader) and asks the backend
    /// to drop the request if it has not been dispatched yet.
    pub fn cancel(self: &Arc<Self>, id: u64) {
        {
            let slot = self.conn.lock().expect("conn lock");
            if let Some(conn) = slot.as_ref() {
                conn.pending.lock().expect("pending lock").remove(&id);
            } else {
                return; // connection already gone; nothing to revoke
            }
        }
        let _ = self.send_with(None, |tx| tx.send_cancel(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejection_opens_after_threshold_and_expires() {
        let cfg = HealthConfig {
            eject_after: 2,
            probation_base_ms: 20,
            probation_cap_ms: 100,
            connect_attempts: 1,
        };
        let backend = Backend::new(0, "127.0.0.1:1", cfg);
        assert!(backend.available());
        backend.record_failure();
        assert!(backend.available(), "one failure is not ejection");
        backend.record_failure();
        assert!(!backend.available(), "threshold reached: ejected");
        std::thread::sleep(Duration::from_millis(30));
        assert!(backend.available(), "probation expired: half-open probe");
        backend.record_success();
        assert_eq!(backend.consecutive_failures(), 0);
        assert!(backend.available());
    }

    #[test]
    fn waiter_times_out_empty_and_drains_delivered_events() {
        let waiter = Waiter::new();
        let empty = waiter.wait_until(Instant::now() + Duration::from_millis(10));
        assert!(empty.is_empty());
        waiter.deliver(Event::Lost(3));
        let events = waiter.wait_until(Instant::now() + Duration::from_millis(10));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], Event::Lost(3)));
    }
}
