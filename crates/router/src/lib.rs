//! `dexlego-router`: a sharding tier in front of a fleet of `dexlegod`
//! backends.
//!
//! The paper's harness extracts one app at a time; the service tier
//! (PR 8) made one daemon serve many clients. This crate scales the
//! other axis: many daemons behind one endpoint. The router computes
//! each job's content-addressed store key itself — the same SHA-1
//! input digest the daemon uses — and places it on a consistent-hash
//! ring of backends, so every extraction lands where its cached result
//! lives. Around that placement it layers the reliability mechanics a
//! fleet needs: hedged retries against the tail, R-way replication of
//! fresh results, read-repair when replicas drift, and per-backend
//! health ejection so a dead shard degrades to cache misses instead of
//! client-visible errors.
//!
//! Both faces speak the `dexlegod` newline-JSON dialect, so existing
//! clients, the load harness, and the bench drive a fleet unchanged.

#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod ring;
pub mod router;

pub use backend::{Backend, Event, HealthConfig, Waiter};
pub use batch::{print_batch_summary, run_batch_routed};
pub use ring::Ring;
pub use router::{Router, RouterConfig, RouterStats};
