//! The consistent-hash ring that maps store keys to backends.
//!
//! Each backend contributes `vnodes` points to a 64-bit ring; a key is
//! hashed to a point and owned by the first backend point at or after
//! it (wrapping). Virtual nodes smooth the load split, and consistent
//! hashing bounds churn: adding or removing one backend of `n` moves
//! roughly `1/n` of the keyspace, leaving every other backend's cached
//! results where they are.
//!
//! Placement is a pure function of `(seed, backend names, vnodes)` —
//! every router instance with the same fleet configuration computes the
//! same ring, so routers need no coordination and a restarted router
//! sends keys exactly where its predecessor did.

use dexlego_dex::checksum::sha1;
use dexlego_store::Key;

/// A point on the ring: position, owning backend index.
#[derive(Debug, Clone, Copy)]
struct Point {
    at: u64,
    backend: usize,
}

/// An immutable consistent-hash ring over a fixed backend list.
#[derive(Debug, Clone)]
pub struct Ring {
    points: Vec<Point>,
    backends: usize,
}

/// First 8 digest bytes as a big-endian ring position.
fn position(data: &[u8]) -> u64 {
    let digest = sha1(data);
    u64::from_be_bytes(digest[..8].try_into().expect("sha1 is 20 bytes"))
}

impl Ring {
    /// Builds the ring for `names` (backend identities, typically their
    /// addresses) with `vnodes` points each, derived from `seed`.
    ///
    /// # Panics
    ///
    /// When `names` is empty or `vnodes` is zero — an empty ring routes
    /// nothing and is always a configuration bug.
    #[must_use]
    pub fn new(names: &[String], vnodes: usize, seed: u64) -> Ring {
        assert!(!names.is_empty(), "a ring needs at least one backend");
        assert!(vnodes > 0, "a backend needs at least one virtual node");
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (backend, name) in names.iter().enumerate() {
            for vnode in 0..vnodes {
                // The point input pins the placement function: seed,
                // identity, vnode index, unambiguously delimited.
                let material = format!("{seed:016x}|{name}|{vnode}");
                points.push(Point {
                    at: position(material.as_bytes()),
                    backend,
                });
            }
        }
        points.sort_by_key(|p| (p.at, p.backend));
        Ring {
            points,
            backends: names.len(),
        }
    }

    /// How many backends the ring spans.
    #[must_use]
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The ring position a store key hashes to.
    #[must_use]
    pub fn key_position(key: &Key) -> u64 {
        let bytes = key.bytes();
        u64::from_be_bytes(bytes[..8].try_into().expect("key is 20 bytes"))
    }

    /// The ring position for arbitrary bytes — placement for uncacheable
    /// jobs that have no store key.
    #[must_use]
    pub fn data_position(data: &[u8]) -> u64 {
        position(data)
    }

    /// Every backend in preference order for `pos`: the owner first,
    /// then each distinct backend met walking clockwise. The first `r`
    /// entries are the replica set; the tail is the failover order.
    #[must_use]
    pub fn candidates(&self, pos: u64) -> Vec<usize> {
        let start = self
            .points
            .partition_point(|p| p.at < pos)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for i in 0..self.points.len() {
            let p = self.points[(start + i) % self.points.len()];
            if !seen[p.backend] {
                seen[p.backend] = true;
                order.push(p.backend);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// The owning backend for `pos` (the first candidate).
    #[must_use]
    pub fn owner(&self, pos: u64) -> usize {
        self.candidates(pos)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("backend-{i}")).collect()
    }

    #[test]
    fn same_inputs_build_the_same_ring() {
        let a = Ring::new(&names(3), 64, 7);
        let b = Ring::new(&names(3), 64, 7);
        for pos in [0u64, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(a.candidates(pos), b.candidates(pos));
        }
    }

    #[test]
    fn candidates_are_distinct_and_complete() {
        let ring = Ring::new(&names(4), 32, 1);
        for i in 0..1000u64 {
            let order = ring.candidates(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "all backends appear exactly once");
        }
    }

    #[test]
    fn single_backend_owns_everything() {
        let ring = Ring::new(&names(1), 8, 0);
        assert_eq!(ring.candidates(12345), vec![0]);
    }
}
