//! Capability-axis tests for the static taint engine: each test pins the
//! behaviour difference that separates the three tool profiles.

use dexlego_analysis::tools::{all_tools, droidsafe, flowdroid, horndroid};
use dexlego_analysis::{analyze, AnalysisConfig};
use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::{Insn, Opcode};
use dexlego_dex::DexFile;

const SRC_CLASS: &str = "Lcom/dexlego/Sensitive;";
const SRC: &str = "getSensitiveData";
const NET: &str = "Lcom/dexlego/Net;";

fn move_result_obj(m: &mut dexlego_dalvik::builder::MethodBuilder<'_>, reg: u32) {
    let mut mr = Insn::of(Opcode::MoveResultObject);
    mr.a = reg;
    m.asm.push(mr);
}

fn call_source(m: &mut dexlego_dalvik::builder::MethodBuilder<'_>, reg: u32) {
    m.invoke(
        Opcode::InvokeStatic,
        SRC_CLASS,
        SRC,
        &[],
        "Ljava/lang/String;",
        &[],
    );
    move_result_obj(m, reg);
}

fn call_sink(m: &mut dexlego_dalvik::builder::MethodBuilder<'_>, reg: u32) {
    m.invoke(
        Opcode::InvokeStatic,
        NET,
        "send",
        &["Ljava/lang/String;"],
        "V",
        &[reg],
    );
}

fn direct_leak_dex() -> DexFile {
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 2, |m| {
            call_source(m, 0);
            call_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.build().unwrap()
}

#[test]
fn all_tools_find_direct_leak() {
    let dex = direct_leak_dex();
    for tool in all_tools() {
        let result = tool.run(&dex);
        assert!(result.leaky(), "{} must flag direct leak", tool.name);
    }
}

#[test]
fn no_tool_flags_clean_app() {
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 2, |m| {
            m.const_str(0, "hello");
            call_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    for tool in all_tools() {
        assert!(!tool.run(&dex).leaky(), "{} false positive", tool.name);
    }
}

#[test]
fn overwrite_kill_separates_flow_sensitivity() {
    // v0 = source; v0 = "clean"; sink(v0): a flow-sensitive analysis kills
    // the taint; flow-insensitive (DroidSafe) reports it.
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 2, |m| {
            call_source(m, 0);
            m.const_str(0, "clean");
            call_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(
        !flowdroid().run(&dex).leaky(),
        "FlowDroid is flow-sensitive"
    );
    assert!(
        !horndroid().run(&dex).leaky(),
        "HornDroid is flow-sensitive"
    );
    assert!(
        droidsafe().run(&dex).leaky(),
        "DroidSafe is flow-insensitive"
    );
}

#[test]
fn implicit_flow_only_horndroid() {
    // if (source-derived flag != 0) { leakedValue = "1" } sink(leakedValue)
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 4, |m| {
            call_source(m, 0);
            // length of the secret controls the branch (explicit taint into
            // the condition register, then only implicit flow onward).
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/String;",
                "length",
                &[],
                "I",
                &[0],
            );
            let mut mr = Insn::of(Opcode::MoveResult);
            mr.a = 1;
            m.asm.push(mr);
            let skip = m.asm.new_label();
            m.const_str(2, "zero");
            m.asm.if_z(Opcode::IfEqz, 1, skip);
            m.const_str(2, "nonzero");
            m.asm.bind(skip);
            call_sink(m, 2);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(!flowdroid().run(&dex).leaky());
    assert!(!droidsafe().run(&dex).leaky());
    assert!(
        horndroid().run(&dex).leaky(),
        "HornDroid models implicit flows"
    );
}

#[test]
fn icc_flow_missed_by_flowdroid() {
    // Component A: putExtra(source); Component B: sink(getExtra()).
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/A;", |c| {
        c.static_method("sendIt", &[], "V", 3, |m| {
            call_source(m, 0);
            m.const_str(1, "key");
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Icc;",
                "putExtra",
                &["Ljava/lang/String;", "Ljava/lang/String;"],
                "V",
                &[1, 0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("Lapp/B;", |c| {
        c.static_method("receiveIt", &[], "V", 3, |m| {
            m.const_str(0, "key");
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Icc;",
                "getExtra",
                &["Ljava/lang/String;"],
                "Ljava/lang/String;",
                &[0],
            );
            move_result_obj(m, 1);
            call_sink(m, 1);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(!flowdroid().run(&dex).leaky(), "FlowDroid lacks ICC");
    assert!(droidsafe().run(&dex).leaky(), "DroidSafe models ICC");
    assert!(horndroid().run(&dex).leaky(), "HornDroid models ICC");
}

#[test]
fn unknown_index_array_flow_dropped_by_horndroid_only() {
    // arr[i] = source with i from Input.nextInt(); sink(arr[0]).
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 6, |m| {
            call_source(m, 0);
            m.asm.const4(1, 4);
            m.new_array(2, 1, "[Ljava/lang/String;");
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Input;",
                "nextInt",
                &[],
                "I",
                &[],
            );
            let mut mr = Insn::of(Opcode::MoveResult);
            mr.a = 3;
            m.asm.push(mr);
            m.asm.binop(Opcode::AputObject, 0, 2, 3);
            m.asm.const4(4, 0);
            m.asm.binop(Opcode::AgetObject, 5, 2, 4);
            call_sink(m, 5);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(flowdroid().run(&dex).leaky(), "coarse arrays keep the flow");
    assert!(droidsafe().run(&dex).leaky(), "coarse arrays keep the flow");
    assert!(
        !horndroid().run(&dex).leaky(),
        "value-sensitive arrays drop unknown-index writes"
    );
}

#[test]
fn deep_call_chain_exceeds_droidsafe_depth() {
    // source -> f1 -> ... -> f8 -> sink (chain of 8 wrappers).
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        for i in 0..8u32 {
            let next_call: String = if i == 7 {
                String::new()
            } else {
                format!("f{}", i + 1)
            };
            c.static_method(
                &format!("f{i}"),
                &["Ljava/lang/String;"],
                "V",
                1,
                move |m| {
                    let p = m.param_reg(0);
                    if next_call.is_empty() {
                        call_sink(m, p);
                    } else {
                        m.invoke(
                            Opcode::InvokeStatic,
                            "Lapp/Main;",
                            &next_call,
                            &["Ljava/lang/String;"],
                            "V",
                            &[p],
                        );
                    }
                    m.asm.ret(Opcode::ReturnVoid, 0);
                },
            );
        }
        c.static_method("go", &[], "V", 2, |m| {
            call_source(m, 0);
            m.invoke(
                Opcode::InvokeStatic,
                "Lapp/Main;",
                "f0",
                &["Ljava/lang/String;"],
                "V",
                &[0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(flowdroid().run(&dex).leaky(), "unbounded depth");
    assert!(horndroid().run(&dex).leaky(), "unbounded depth");
    assert!(!droidsafe().run(&dex).leaky(), "depth-limited analysis");
}

#[test]
fn constant_string_reflection_resolved_by_all() {
    // Method m = Class.forName("app.Hidden").getMethod("leak"); m.invoke(...)
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Hidden;", |c| {
        c.static_method("leakIt", &["Ljava/lang/String;"], "V", 1, |m| {
            let p = m.param_reg(0);
            call_sink(m, p);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 6, |m| {
            m.const_str(0, "app.Hidden");
            m.invoke(
                Opcode::InvokeStatic,
                "Ljava/lang/Class;",
                "forName",
                &["Ljava/lang/String;"],
                "Ljava/lang/Class;",
                &[0],
            );
            move_result_obj(m, 1);
            m.const_str(2, "leakIt");
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/Class;",
                "getMethod",
                &["Ljava/lang/String;"],
                "Ljava/lang/reflect/Method;",
                &[1, 2],
            );
            move_result_obj(m, 3);
            call_source(m, 4);
            m.asm.const4(5, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/reflect/Method;",
                "invoke",
                &["Ljava/lang/Object;", "[Ljava/lang/Object;"],
                "Ljava/lang/Object;",
                &[3, 5, 4],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    // The paper-era FlowDroid does not resolve reflection by itself; the
    // string-analysis-equipped tools do.
    assert!(!flowdroid().run(&dex).leaky(), "FlowDroid lacks reflection");
    assert!(
        droidsafe().run(&dex).leaky(),
        "DroidSafe resolves constants"
    );
    assert!(
        horndroid().run(&dex).leaky(),
        "HornDroid resolves constants"
    );
}

#[test]
fn encrypted_reflection_missed_by_all() {
    // The class name string is decrypted at runtime; no tool resolves it.
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Hidden;", |c| {
        c.static_method("leakIt", &["Ljava/lang/String;"], "V", 1, |m| {
            let p = m.param_reg(0);
            call_sink(m, p);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 6, |m| {
            m.const_str(0, "APP\u{2e}hIDDEN"); // junk that decrypts at runtime
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Crypto;",
                "decrypt",
                &["Ljava/lang/String;"],
                "Ljava/lang/String;",
                &[0],
            );
            move_result_obj(m, 0);
            m.invoke(
                Opcode::InvokeStatic,
                "Ljava/lang/Class;",
                "forName",
                &["Ljava/lang/String;"],
                "Ljava/lang/Class;",
                &[0],
            );
            move_result_obj(m, 1);
            m.const_str(2, "leakIt");
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/Class;",
                "getMethod",
                &["Ljava/lang/String;"],
                "Ljava/lang/reflect/Method;",
                &[1, 2],
            );
            move_result_obj(m, 3);
            call_source(m, 4);
            m.asm.const4(5, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/reflect/Method;",
                "invoke",
                &["Ljava/lang/Object;", "[Ljava/lang/Object;"],
                "Ljava/lang/Object;",
                &[3, 5, 4],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    for tool in all_tools() {
        assert!(
            !tool.run(&dex).leaky(),
            "{}: encrypted reflection is unresolvable statically",
            tool.name
        );
    }
}

#[test]
fn dead_code_flow_is_reported_by_all() {
    // The leaking method is never called — entry-point over-approximation
    // still reports it (the dead-code false-positive mechanism).
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("neverCalled", &[], "V", 2, |m| {
            call_source(m, 0);
            call_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("go", &[], "V", 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    for tool in all_tools() {
        assert!(tool.run(&dex).leaky(), "{}: dead code analyzed", tool.name);
    }
}

#[test]
fn field_flow_across_methods() {
    // callback A stores tainted data in a static field; callback B reads
    // and leaks it. All tools connect field flows.
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_field("stash", "Ljava/lang/String;", None);
        c.static_method("writeIt", &[], "V", 2, |m| {
            call_source(m, 0);
            m.sput(
                Opcode::SputObject,
                0,
                "Lapp/Main;",
                "stash",
                "Ljava/lang/String;",
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("readIt", &[], "V", 2, |m| {
            m.sget(
                Opcode::SgetObject,
                0,
                "Lapp/Main;",
                "stash",
                "Ljava/lang/String;",
            );
            call_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    for tool in all_tools() {
        assert!(tool.run(&dex).leaky(), "{}: static-field flow", tool.name);
    }
}

#[test]
fn stringbuilder_propagation() {
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 3, |m| {
            call_source(m, 0);
            m.new_instance(1, "Ljava/lang/StringBuilder;");
            m.invoke(
                Opcode::InvokeDirect,
                "Ljava/lang/StringBuilder;",
                "<init>",
                &[],
                "V",
                &[1],
            );
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/StringBuilder;",
                "append",
                &["Ljava/lang/String;"],
                "Ljava/lang/StringBuilder;",
                &[1, 0],
            );
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/StringBuilder;",
                "toString",
                &[],
                "Ljava/lang/String;",
                &[1],
            );
            move_result_obj(m, 2);
            call_sink(m, 2);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    for tool in all_tools() {
        assert!(tool.run(&dex).leaky(), "{}: StringBuilder flow", tool.name);
    }
}

/// Builds the virtual-dispatch fixture: `Lapp/Base;->poke` has no body, so
/// the engine's name+descriptor fallback merges every `poke` in the app.
/// `Lapp/C;` (extends Base) is clean; the unrelated `Lapp/Z;` leaks its
/// argument. `receiver` assembles the receiver into v1 before the call.
fn dispatch_dex(receiver: impl FnOnce(&mut dexlego_dalvik::builder::MethodBuilder<'_>)) -> DexFile {
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Base;", |_| {});
    pb.class("Lapp/C;", |c| {
        c.superclass("Lapp/Base;");
        c.method("poke", &["Ljava/lang/String;"], "V", 0, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("Lapp/Z;", |c| {
        c.method("poke", &["Ljava/lang/String;"], "V", 1, |m| {
            let arg = m.param_reg(0);
            call_sink(m, arg);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 3, |m| {
            call_source(m, 0);
            receiver(m);
            m.invoke(
                Opcode::InvokeVirtual,
                "Lapp/Base;",
                "poke",
                &["Ljava/lang/String;"],
                "V",
                &[1, 0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.build().unwrap()
}

#[test]
fn hierarchy_prunes_provably_disjoint_dispatch_targets() {
    // The receiver is statically `Lapp/C;`, and the hierarchy proves
    // `Lapp/Z;` can never be its runtime class, so Z's leaking summary
    // must not produce a false positive.
    let dex = dispatch_dex(|m| {
        m.new_instance(1, "Lapp/C;");
    });
    for tool in all_tools() {
        assert!(
            !tool.run(&dex).leaky(),
            "{}: disjoint dispatch target not pruned",
            tool.name
        );
    }
}

#[test]
fn unknown_receiver_type_keeps_full_dispatch_fallback() {
    // Merging `Lapp/C;` and `Lapp/Z;` receivers joins to Object, which
    // proves nothing — the fallback must still include Z's leak (no new
    // false negatives from the pruning).
    let dex = dispatch_dex(|m| {
        m.asm.const4(2, 1);
        let els = m.asm.new_label();
        let join = m.asm.new_label();
        let mut b = Insn::of(Opcode::IfEqz);
        b.a = 2;
        m.asm.branch(b, els);
        m.new_instance(1, "Lapp/C;");
        m.asm.goto(join);
        m.asm.bind(els);
        m.new_instance(1, "Lapp/Z;");
        m.asm.bind(join);
    });
    for tool in all_tools() {
        assert!(
            tool.run(&dex).leaky(),
            "{}: unknown receiver must keep the over-approximation",
            tool.name
        );
    }
}

#[test]
fn hierarchy_dispatch_ablation_shows_the_precision_win() {
    // A/B over the same benign sample: every tool profile with
    // `hierarchy_dispatch` disabled falls back to the untyped
    // name+descriptor over-approximation and reports a false positive;
    // the typed engine (the shipped profiles) reports clean. Together
    // with `unknown_receiver_type_keeps_full_dispatch_fallback` this is
    // the strictly-fewer-false-positives / zero-new-false-negatives
    // contract of the typed IR.
    let dex = dispatch_dex(|m| {
        m.new_instance(1, "Lapp/C;");
    });
    for tool in all_tools() {
        let untyped = AnalysisConfig {
            hierarchy_dispatch: false,
            ..tool.config.clone()
        };
        assert!(
            analyze(&dex, &untyped).leaky(),
            "{}: untyped dispatch should over-approximate here",
            tool.name
        );
        assert!(
            !tool.run(&dex).leaky(),
            "{}: typed dispatch should prune the false positive",
            tool.name
        );
    }
}
