//! Edge-case tests for the static taint engine: leak-site counting, chain
//! depth accounting, ICC hop depth, benign structures, and the
//! Known-constant lattice.

use dexlego_analysis::taint::{analyze, AnalysisConfig};
use dexlego_analysis::tools::{all_tools, droidsafe, horndroid};
use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::{Insn, Opcode};

fn mr_obj(m: &mut dexlego_dalvik::builder::MethodBuilder<'_>, reg: u32) {
    let mut mr = Insn::of(Opcode::MoveResultObject);
    mr.a = reg;
    m.asm.push(mr);
}

fn call_source(m: &mut dexlego_dalvik::builder::MethodBuilder<'_>, reg: u32) {
    m.invoke(
        Opcode::InvokeStatic,
        "Lcom/dexlego/Sensitive;",
        "getSensitiveData",
        &[],
        "Ljava/lang/String;",
        &[],
    );
    mr_obj(m, reg);
}

fn call_sink(m: &mut dexlego_dalvik::builder::MethodBuilder<'_>, reg: u32) {
    m.invoke(
        Opcode::InvokeStatic,
        "Lcom/dexlego/Net;",
        "send",
        &["Ljava/lang/String;"],
        "V",
        &[reg],
    );
}

#[test]
fn distinct_sink_sites_are_counted_separately() {
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 2, |m| {
            call_source(m, 0);
            call_sink(m, 0);
            call_sink(m, 0);
            call_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    let result = analyze(&dex, &AnalysisConfig::default());
    assert_eq!(result.leaks.len(), 3, "one leak per sink call site");
}

#[test]
fn depth_counts_interprocedural_hops() {
    // source -> w1 -> w2 -> sink: the meeting point sees the full chain.
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("w2", &["Ljava/lang/String;"], "V", 1, |m| {
            let p = m.param_reg(0);
            call_sink(m, p);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("w1", &["Ljava/lang/String;"], "V", 1, |m| {
            let p = m.param_reg(0);
            m.invoke(
                Opcode::InvokeStatic,
                "Lapp/Main;",
                "w2",
                &["Ljava/lang/String;"],
                "V",
                &[p],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("go", &[], "V", 2, |m| {
            call_source(m, 0);
            m.invoke(
                Opcode::InvokeStatic,
                "Lapp/Main;",
                "w1",
                &["Ljava/lang/String;"],
                "V",
                &[0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    let result = analyze(&dex, &AnalysisConfig::default());
    // The shallowest report of the flow sits in `go` at the w1 call.
    let min_depth = result.leaks.iter().map(|l| l.depth).min().unwrap();
    assert!(min_depth >= 2, "chain depth accounted: {min_depth}");
    // A depth cap below the chain suppresses it; above keeps it.
    let capped = analyze(
        &dex,
        &AnalysisConfig {
            max_call_depth: Some(1),
            ..AnalysisConfig::default()
        },
    );
    assert!(!capped.leaky(), "cap 1 suppresses a 2-hop chain");
    let roomy = analyze(
        &dex,
        &AnalysisConfig {
            max_call_depth: Some(6),
            ..AnalysisConfig::default()
        },
    );
    assert!(roomy.leaky(), "cap 6 keeps it");
}

#[test]
fn icc_through_wrapper_returns() {
    // putExtra(source-through-a-return) ... getExtra -> sink.
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/A;", |c| {
        c.static_method("fetch", &[], "Ljava/lang/String;", 2, |m| {
            call_source(m, 0);
            m.asm.ret(Opcode::ReturnObject, 0);
        });
        c.static_method("sendIt", &[], "V", 3, |m| {
            m.invoke(
                Opcode::InvokeStatic,
                "Lapp/A;",
                "fetch",
                &[],
                "Ljava/lang/String;",
                &[],
            );
            mr_obj(m, 0);
            m.const_str(1, "k");
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Icc;",
                "putExtra",
                &["Ljava/lang/String;", "Ljava/lang/String;"],
                "V",
                &[1, 0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("Lapp/B;", |c| {
        c.static_method("recv", &[], "V", 3, |m| {
            m.const_str(0, "k");
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Icc;",
                "getExtra",
                &["Ljava/lang/String;"],
                "Ljava/lang/String;",
                &[0],
            );
            mr_obj(m, 1);
            call_sink(m, 1);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(droidsafe().run(&dex).leaky());
    assert!(horndroid().run(&dex).leaky());
}

#[test]
fn overwrite_then_retaint_found_by_flow_sensitive() {
    // v = source; v = "clean"; v = source; sink(v): the *second* taint
    // survives strong updates.
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 2, |m| {
            call_source(m, 0);
            m.const_str(0, "clean");
            call_source(m, 0);
            call_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    for tool in all_tools() {
        assert!(tool.run(&dex).leaky(), "{}", tool.name);
    }
}

#[test]
fn taint_survives_cross_register_shuffle() {
    // Moving taint through several registers and a concat keeps it alive.
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 6, |m| {
            call_source(m, 0);
            m.asm.move_reg(dexlego_dalvik::asm::MoveKind::Object, 1, 0);
            m.asm.move_reg(dexlego_dalvik::asm::MoveKind::Object, 2, 1);
            m.const_str(3, "-suffix");
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/String;",
                "concat",
                &["Ljava/lang/String;"],
                "Ljava/lang/String;",
                &[2, 3],
            );
            mr_obj(m, 4);
            call_sink(m, 4);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    for tool in all_tools() {
        assert!(tool.run(&dex).leaky(), "{}", tool.name);
    }
}

#[test]
fn conflicting_constants_join_to_unknown_reflection_unresolved() {
    // Two paths define different method-name constants; the join loses the
    // constant so the reflective target stays unresolved even for the
    // string-tracking tools. (Conservative under-approximation.)
    let mut pb = ProgramBuilder::new();
    pb.class("Lapp/Hidden;", |c| {
        c.static_method("leakIt", &["Ljava/lang/String;"], "V", 1, |m| {
            let p = m.param_reg(0);
            call_sink(m, p);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("other", &["Ljava/lang/String;"], "V", 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &["I"], "V", 8, |m| {
            let flag = m.param_reg(0);
            let (other, join) = (m.asm.new_label(), m.asm.new_label());
            m.const_str(2, "leakIt");
            m.asm.if_z(Opcode::IfNez, flag, other);
            m.asm.goto(join);
            m.asm.bind(other);
            m.const_str(2, "other");
            m.asm.bind(join);
            m.const_str(0, "app.Hidden");
            m.invoke(
                Opcode::InvokeStatic,
                "Ljava/lang/Class;",
                "forName",
                &["Ljava/lang/String;"],
                "Ljava/lang/Class;",
                &[0],
            );
            mr_obj(m, 1);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/Class;",
                "getMethod",
                &["Ljava/lang/String;"],
                "Ljava/lang/reflect/Method;",
                &[1, 2],
            );
            mr_obj(m, 3);
            call_source(m, 4);
            m.asm.const4(5, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/reflect/Method;",
                "invoke",
                &["Ljava/lang/Object;", "[Ljava/lang/Object;"],
                "Ljava/lang/Object;",
                &[3, 5, 4],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    assert!(!droidsafe().run(&dex).leaky());
    assert!(!horndroid().run(&dex).leaky());
}

#[test]
fn framework_classes_are_not_analyzed_as_roots() {
    // A leak-shaped method inside a com.dexlego class must not count.
    let mut pb = ProgramBuilder::new();
    pb.class("Lcom/dexlego/Helper;", |c| {
        c.static_method("leakish", &[], "V", 2, |m| {
            call_source(m, 0);
            call_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("Lapp/Main;", |c| {
        c.static_method("go", &[], "V", 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    for tool in all_tools() {
        assert!(!tool.run(&dex).leaky(), "{}", tool.name);
    }
}
