//! Dynamic taint-analysis tool emulations: TaintDroid and TaintART
//! (paper §V-B2, Table IV).
//!
//! Both tools track explicit data flow at runtime — which our simulated
//! runtime already does through slot taints — and both share documented
//! blind spots that this module reproduces mechanically:
//!
//! * **implicit flows** are not tracked (the interpreter does not propagate
//!   taint through branch conditions),
//! * **taint through external files** is lost (the `Files.read` native
//!   returns untainted data),
//! * **callback-delivered leaks** are missed (the trackers monitor the
//!   launched component's execution; sink events arriving from
//!   framework-driven callbacks are outside their instrumented window),
//! * **TaintDroid runs on an emulator**, so emulator-detecting samples
//!   behave benignly under it.

use dexlego_runtime::observer::RuntimeObserver;
use dexlego_runtime::{Runtime, RuntimeEvent};

/// Configuration of a dynamic taint tracker.
#[derive(Debug, Clone, Copy)]
pub struct DynamicTool {
    /// Tool name as in Table IV.
    pub name: &'static str,
    /// Whether the analysis environment is an emulator.
    pub on_emulator: bool,
    /// Whether sink events fired from framework-driven callbacks are
    /// attributed to the app under analysis.
    pub tracks_callbacks: bool,
}

/// The TaintDroid emulation (emulator-based, Dalvik-era).
pub fn taintdroid() -> DynamicTool {
    DynamicTool {
        name: "TaintDroid",
        on_emulator: true,
        tracks_callbacks: false,
    }
}

/// The TaintART emulation (on-device, ART-based).
pub fn taintart() -> DynamicTool {
    DynamicTool {
        name: "TaintART",
        on_emulator: false,
        tracks_callbacks: false,
    }
}

impl DynamicTool {
    /// Runs the application under this tracker and counts detected leaks
    /// (tainted sink events the tool attributes to the app).
    ///
    /// `setup` prepares the runtime (loads the DEX, registers sample
    /// natives); `drive` executes the app.
    pub fn detect_leaks<S, D>(&self, setup: S, mut drive: D) -> usize
    where
        S: FnOnce(&mut Runtime),
        D: FnMut(&mut Runtime, &mut dyn RuntimeObserver),
    {
        let mut rt = Runtime::new();
        rt.env.is_emulator = self.on_emulator;
        setup(&mut rt);
        let mut obs = dexlego_runtime::observer::NullObserver;
        drive(&mut rt, &mut obs);
        rt.log
            .events()
            .iter()
            .filter(|e| match e {
                RuntimeEvent::SinkCall {
                    arg_taint,
                    callback_depth,
                    ..
                } => *arg_taint != 0 && (self.tracks_callbacks || *callback_depth == 0),
                _ => false,
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dexlego_runtime::events::SinkKind;
    use dexlego_runtime::Slot;

    #[test]
    fn callback_leaks_filtered_when_untracked() {
        let tool = taintart();
        let leaks = tool.detect_leaks(
            |_| {},
            |rt, _obs| {
                // Simulate one main-context leak and one callback leak.
                rt.log.push(RuntimeEvent::SinkCall {
                    kind: SinkKind::Sms,
                    arg_taint: 1,
                    payload: "main".into(),
                    caller: None,
                    callback_depth: 0,
                });
                rt.log.push(RuntimeEvent::SinkCall {
                    kind: SinkKind::Sms,
                    arg_taint: 1,
                    payload: "callback".into(),
                    caller: None,
                    callback_depth: 1,
                });
                let _ = Slot::of(0);
            },
        );
        assert_eq!(leaks, 1);
    }

    #[test]
    fn taintdroid_runs_on_emulator_and_taintart_on_device() {
        let mut flag = None;
        taintdroid().detect_leaks(|rt| flag = Some(rt.env.is_emulator), |_, _| {});
        assert_eq!(flag, Some(true));
        taintart().detect_leaks(|rt| flag = Some(rt.env.is_emulator), |_, _| {});
        assert_eq!(flag, Some(false));
    }
}
