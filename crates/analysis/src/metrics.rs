//! Classification metrics: sensitivity, specificity, and F-measure
//! (the paper's Formula 1).

/// A confusion-matrix accumulator over per-sample verdicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Leaky samples flagged leaky.
    pub tp: usize,
    /// Benign samples flagged leaky.
    pub fp: usize,
    /// Benign samples flagged benign.
    pub tn: usize,
    /// Leaky samples flagged benign.
    pub fn_: usize,
}

impl Confusion {
    /// Records one sample verdict.
    pub fn record(&mut self, ground_truth_leaky: bool, flagged_leaky: bool) {
        match (ground_truth_leaky, flagged_leaky) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// `tp / (tp + fn)`.
    pub fn sensitivity(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// `tn / (tn + fp)`.
    pub fn specificity(&self) -> f64 {
        let denom = self.tn + self.fp;
        if denom == 0 {
            return 0.0;
        }
        self.tn as f64 / denom as f64
    }

    /// The paper's Formula 1: the harmonic mean of sensitivity and
    /// specificity.
    pub fn f_measure(&self) -> f64 {
        f_measure(self.sensitivity(), self.specificity())
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// `2 * sens * spec / (sens + spec)` (Formula 1).
pub fn f_measure(sensitivity: f64, specificity: f64) -> f64 {
    if sensitivity + specificity == 0.0 {
        return 0.0;
    }
    2.0 * sensitivity * specificity / (sensitivity + specificity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_paper_shape() {
        // Perfect classifier.
        assert!((f_measure(1.0, 1.0) - 1.0).abs() < 1e-12);
        // Degenerate.
        assert_eq!(f_measure(0.0, 0.0), 0.0);
        // Harmonic mean is below the arithmetic mean.
        let f = f_measure(0.9, 0.5);
        assert!(f < 0.7 && f > 0.6);
    }

    #[test]
    fn confusion_accumulates() {
        let mut c = Confusion::default();
        c.record(true, true); // tp
        c.record(true, false); // fn
        c.record(false, true); // fp
        c.record(false, false); // tn
        assert_eq!((c.tp, c.fn_, c.fp, c.tn), (1, 1, 1, 1));
        assert!((c.sensitivity() - 0.5).abs() < 1e-12);
        assert!((c.specificity() - 0.5).abs() < 1e-12);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn paper_table_ii_f_measures_reproduce() {
        // Sanity check of Formula 1 against the paper's reported numbers:
        // FlowDroid original: TP 81, FP 10 over 111 leaky / 23 benign
        // gives F ≈ 63%; with DexLego TP 95 / FP 4 gives F ≈ 84%.
        let orig = Confusion {
            tp: 81,
            fp: 10,
            tn: 13,
            fn_: 30,
        };
        assert!(
            (orig.f_measure() - 0.63).abs() < 0.02,
            "{}",
            orig.f_measure()
        );
        let dexlego = Confusion {
            tp: 95,
            fp: 4,
            tn: 19,
            fn_: 16,
        };
        assert!(
            (dexlego.f_measure() - 0.84).abs() < 0.02,
            "{}",
            dexlego.f_measure()
        );
    }
}
