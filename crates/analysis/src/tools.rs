//! Capability profiles of the three evaluated static analysis tools.
//!
//! The axes are drawn from each tool's documented design (see DESIGN.md for
//! the mapping and its approximations):
//!
//! * **FlowDroid** — precise flow-sensitive taint analysis with strong
//!   lifecycle/callback handling, but no implicit flows and no
//!   inter-component (ICC) modelling (ICC is IccTA's extension).
//! * **DroidSafe** — flow-*insensitive* whole-program analysis over a
//!   comprehensive Android model (ICC included), known to hit scalability
//!   limits on deep call chains.
//! * **HornDroid** — value- and flow-sensitive Horn-clause analysis with
//!   implicit-flow support; its value sensitivity is approximated by
//!   precise array-index reasoning.

use dexlego_dex::DexFile;

use crate::taint::{analyze, AnalysisConfig, AnalysisResult};

/// A named static-analysis tool profile.
#[derive(Debug, Clone)]
pub struct ToolProfile {
    /// Tool name as used in the paper's tables.
    pub name: &'static str,
    /// Engine configuration implementing the profile.
    pub config: AnalysisConfig,
}

impl ToolProfile {
    /// Runs this tool on a DEX file.
    pub fn run(&self, dex: &DexFile) -> AnalysisResult {
        analyze(dex, &self.config)
    }
}

/// The FlowDroid profile. Reflection is off even for constant strings:
/// the FlowDroid of the paper's era resolved reflective calls only with
/// extra tooling, which is one of the capability gaps DexLego closes.
pub fn flowdroid() -> ToolProfile {
    ToolProfile {
        name: "FlowDroid",
        config: AnalysisConfig {
            flow_sensitive: true,
            implicit_flows: false,
            icc: false,
            precise_arrays: false,
            reflection_constant_strings: false,
            hierarchy_dispatch: true,
            max_call_depth: None,
            max_global_iterations: 20,
        },
    }
}

/// The DroidSafe profile.
pub fn droidsafe() -> ToolProfile {
    ToolProfile {
        name: "DroidSafe",
        config: AnalysisConfig {
            flow_sensitive: false,
            implicit_flows: false,
            icc: true,
            precise_arrays: false,
            reflection_constant_strings: true,
            hierarchy_dispatch: true,
            max_call_depth: Some(6),
            max_global_iterations: 20,
        },
    }
}

/// The HornDroid profile.
pub fn horndroid() -> ToolProfile {
    ToolProfile {
        name: "HornDroid",
        config: AnalysisConfig {
            flow_sensitive: true,
            implicit_flows: true,
            icc: true,
            precise_arrays: true,
            reflection_constant_strings: true,
            hierarchy_dispatch: true,
            max_call_depth: None,
            max_global_iterations: 20,
        },
    }
}

/// All three profiles, in the order of the paper's tables.
pub fn all_tools() -> Vec<ToolProfile> {
    vec![flowdroid(), droidsafe(), horndroid()]
}
