//! Source/sink classification and framework-method taint summaries shared
//! by the static engine and the dynamic trackers.

/// How the static engine should treat a framework method invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameworkModel {
    /// Returns freshly tainted sensitive data.
    Source,
    /// Leaks the taint of the given argument slots (0 = receiver or first
    /// arg of a static call).
    Sink(Vec<usize>),
    /// Propagates the union of all argument taints to the return value.
    PropagateToReturn,
    /// Propagates argument taints into the receiver (slot 0) and to the
    /// return value (e.g. `StringBuilder.append`).
    PropagateToReceiverAndReturn,
    /// Writes its value argument into the inter-component store
    /// (`putExtra`-like). Slot index of the value argument given.
    IccPut(usize),
    /// Reads from the inter-component store (`getExtra`-like).
    IccGet,
    /// No taint effect.
    Neutral,
}

/// Classifies a framework method by `class->name` signature prefix.
///
/// # Example
///
/// ```
/// use dexlego_analysis::sources_sinks::{classify, FrameworkModel};
/// assert_eq!(
///     classify("Landroid/telephony/TelephonyManager;", "getDeviceId"),
///     FrameworkModel::Source
/// );
/// ```
pub fn classify(class: &str, name: &str) -> FrameworkModel {
    match (class, name) {
        ("Landroid/telephony/TelephonyManager;", "getDeviceId" | "getSimSerialNumber")
        | ("Landroid/location/LocationManager;", "getLastKnownLocation")
        | ("Landroid/net/wifi/WifiInfo;", "getSSID")
        | ("Lcom/dexlego/Sensitive;", "getSensitiveData") => FrameworkModel::Source,
        // sendTextMessage(dest, scAddr, text, sentIntent, deliveryIntent):
        // slot 0 is the receiver, the text is slot 3.
        ("Landroid/telephony/SmsManager;", "sendTextMessage") => FrameworkModel::Sink(vec![3]),
        ("Landroid/util/Log;", "i" | "d" | "e" | "w") => FrameworkModel::Sink(vec![1]),
        ("Lcom/dexlego/Net;", "send") => FrameworkModel::Sink(vec![0]),
        (
            "Ljava/lang/String;",
            "concat" | "valueOf" | "toLowerCase" | "trim" | "length" | "hashCode" | "equals",
        ) => FrameworkModel::PropagateToReturn,
        ("Ljava/lang/StringBuilder;", "append" | "appendInt") => {
            FrameworkModel::PropagateToReceiverAndReturn
        }
        ("Ljava/lang/StringBuilder;", "toString") => FrameworkModel::PropagateToReturn,
        ("Ljava/lang/Object;", "toString") => FrameworkModel::PropagateToReturn,
        ("Lcom/dexlego/Crypto;", "decrypt") => FrameworkModel::PropagateToReturn,
        ("Ljava/lang/Integer;", "parseInt") => FrameworkModel::PropagateToReturn,
        ("Lcom/dexlego/Icc;", "putExtra") => FrameworkModel::IccPut(1),
        ("Lcom/dexlego/Icc;", "getExtra") => FrameworkModel::IccGet,
        // Files.write / Files.read intentionally Neutral: no evaluated tool
        // models leaks through the external filesystem (Table IV,
        // PrivateDataLeak3).
        _ => FrameworkModel::Neutral,
    }
}

/// Whether a class descriptor belongs to the (simulated) framework rather
/// than application code.
pub fn is_framework_class(desc: &str) -> bool {
    desc.starts_with("Ljava/")
        || desc.starts_with("Landroid/")
        || desc.starts_with("Ldalvik/")
        || desc.starts_with("Lcom/dexlego/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_slots_match_framework_signatures() {
        assert_eq!(
            classify("Landroid/telephony/SmsManager;", "sendTextMessage"),
            FrameworkModel::Sink(vec![3])
        );
        assert_eq!(
            classify("Lcom/dexlego/Net;", "send"),
            FrameworkModel::Sink(vec![0])
        );
    }

    #[test]
    fn files_are_neutral() {
        assert_eq!(
            classify("Lcom/dexlego/Files;", "write"),
            FrameworkModel::Neutral
        );
        assert_eq!(
            classify("Lcom/dexlego/Files;", "read"),
            FrameworkModel::Neutral
        );
    }

    #[test]
    fn framework_prefixes() {
        assert!(is_framework_class("Ljava/lang/String;"));
        assert!(is_framework_class("Lcom/dexlego/Modification;"));
        assert!(!is_framework_class("Lcom/test/Main;"));
    }
}
