//! The whole-program static taint engine.
//!
//! A register-level abstract interpreter over Dalvik bytecode with
//! interprocedural method summaries, a field-based heap abstraction, and a
//! global fixpoint. Capability axes (flow sensitivity, implicit flows, ICC
//! modelling, array precision, reflection string resolution, call-depth
//! bound) are configuration, which is how the three tool profiles in
//! [`crate::tools`] differ.

use std::collections::{HashMap, HashSet, VecDeque};

use dexlego_dalvik::{Insn, Opcode};
use dexlego_dex::DexFile;
use dexlego_verifier::{
    verify_dex_typed, ClassHierarchy, TypeId, TypedDex, TypedIr, VerifyOptions,
};

use crate::sources_sinks::{classify, is_framework_class, FrameworkModel};

/// Engine configuration: the capability axes of a static analysis tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Strong updates and CFG-ordered propagation (false = flow-insensitive
    /// union over all statements, DroidSafe-style).
    pub flow_sensitive: bool,
    /// Model implicit flows through tainted branch conditions.
    pub implicit_flows: bool,
    /// Connect inter-component `putExtra`/`getExtra` pairs.
    pub icc: bool,
    /// Value-sensitive array modelling: writes at statically unknown
    /// indices are assumed not to alias later reads (an approximation of
    /// HornDroid's value sensitivity; see DESIGN.md).
    pub precise_arrays: bool,
    /// Resolve reflective calls whose class/method names are compile-time
    /// constant strings.
    pub reflection_constant_strings: bool,
    /// Prune virtual-dispatch fallback targets the class hierarchy proves
    /// impossible for the receiver's verifier-inferred static type
    /// (false = the untyped name+descriptor over-approximation, kept as an
    /// ablation of the typed IR's precision win).
    pub hierarchy_dispatch: bool,
    /// Maximum source-to-sink call-chain length (None = unbounded);
    /// models analysis depth/scalability limits.
    pub max_call_depth: Option<u32>,
    /// Cap on global fixpoint iterations.
    pub max_global_iterations: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            flow_sensitive: true,
            implicit_flows: false,
            icc: true,
            precise_arrays: false,
            reflection_constant_strings: true,
            hierarchy_dispatch: true,
            max_call_depth: None,
            max_global_iterations: 20,
        }
    }
}

/// One detected source-to-sink flow.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Leak {
    /// Method containing the sink call.
    pub method: String,
    /// `dex_pc` of the sink invocation.
    pub dex_pc: u32,
    /// Interprocedural hop count of the full chain.
    pub depth: u32,
}

/// Analysis output.
#[derive(Debug, Clone, Default)]
pub struct AnalysisResult {
    /// All detected leaks, deduplicated by (method, pc).
    pub leaks: Vec<Leak>,
    /// Methods analysed.
    pub methods_analyzed: usize,
}

impl AnalysisResult {
    /// Whether any leak was found (the per-sample verdict).
    pub fn leaky(&self) -> bool {
        !self.leaks.is_empty()
    }
}

// ---- abstract domain --------------------------------------------------------

/// Taint of a register: an optional source chain (with hop depth) plus a
/// bitmask of parameter slots it may derive from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Taint {
    source: Option<u32>,
    params: u64,
}

impl Taint {
    const CLEAN: Taint = Taint {
        source: None,
        params: 0,
    };
    fn from_param(slot: usize) -> Taint {
        Taint {
            source: None,
            params: 1u64 << slot.min(63),
        }
    }
    fn source(depth: u32) -> Taint {
        Taint {
            source: Some(depth),
            params: 0,
        }
    }
    fn join(self, other: Taint) -> Taint {
        Taint {
            source: match (self.source, other.source) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            params: self.params | other.params,
        }
    }
    fn is_clean(self) -> bool {
        self.source.is_none() && self.params == 0
    }
    fn bump(self) -> Taint {
        Taint {
            source: self.source.map(|d| d + 1),
            params: self.params,
        }
    }
}

/// Constant tracked in a register (for reflection resolution and array
/// index precision).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum Known {
    #[default]
    None,
    Str(String),
    Int(i64),
    Class(String),
    Method(String, String),
}

#[derive(Debug, Clone, PartialEq, Default)]
struct Reg {
    taint: Taint,
    known: Known,
}

fn join_regs(a: &[Reg], b: &[Reg]) -> Vec<Reg> {
    a.iter()
        .zip(b)
        .map(|(x, y)| Reg {
            taint: x.taint.join(y.taint),
            // `Known::None` is the bottom of the constant lattice ("not yet
            // defined"), so a constant survives joining with it; two
            // *different* constants join to unknown.
            known: match (&x.known, &y.known) {
                (Known::None, k) | (k, Known::None) => k.clone(),
                (k1, k2) if k1 == k2 => k1.clone(),
                _ => Known::None,
            },
        })
        .collect()
}

// ---- summaries --------------------------------------------------------------

#[derive(Debug, Clone, Default, PartialEq)]
struct Summary {
    arg_to_ret: u64,
    source_to_ret: Option<u32>,
    arg_to_sink: HashMap<usize, u32>,
}

#[derive(Debug, Default, PartialEq, Clone)]
struct Globals {
    fields: HashMap<String, Taint>,
    icc: Option<u32>,
}

struct Engine<'a> {
    dex: &'a DexFile,
    config: &'a AnalysisConfig,
    /// Typed IR per application method, straight from the verifier's
    /// fixpoint: decoded instructions, normal-flow successor indices
    /// (branch targets validated, switch payloads resolved, exception
    /// edges excluded), and per-instruction register frames.
    methods: Vec<std::sync::Arc<TypedIr>>,
    /// The DEX class hierarchy, shared with the verifier.
    hier: std::sync::Arc<ClassHierarchy>,
    /// Declaring-class type id per method, aligned with `methods`.
    class_ids: Vec<Option<TypeId>>,
    by_sig: HashMap<String, usize>,
    by_name_desc: HashMap<(String, String), Vec<usize>>,
    summaries: HashMap<String, Summary>,
    globals: Globals,
    leaks: HashSet<Leak>,
}

/// Runs the engine over every method of `dex`.
///
/// All application methods are treated as analysis roots (real tools
/// over-approximate Android entry points the same way; this is what makes
/// dead-code false positives possible on original DEX files and impossible
/// on DexLego's executed-code-only output).
pub fn analyze(dex: &DexFile, config: &AnalysisConfig) -> AnalysisResult {
    // One fixpoint, two consumers: the verifier's typed dataflow already
    // built every CFG and register frame, so the taint engine starts from
    // its IR instead of re-deriving either.
    let TypedDex {
        hierarchy, methods, ..
    } = verify_dex_typed(dex, &VerifyOptions::errors_only());
    let methods: Vec<std::sync::Arc<TypedIr>> = methods
        .into_iter()
        .filter(|m| !is_framework_class(&m.class))
        .collect();
    let class_ids: Vec<Option<TypeId>> =
        methods.iter().map(|m| hierarchy.lookup(&m.class)).collect();

    let mut by_sig = HashMap::new();
    let mut by_name_desc: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (i, m) in methods.iter().enumerate() {
        by_sig.insert(m.signature.clone(), i);
        by_name_desc
            .entry((m.name.clone(), descriptor_of_sig(&m.signature)))
            .or_default()
            .push(i);
    }

    let mut engine = Engine {
        dex,
        config,
        methods,
        hier: hierarchy,
        class_ids,
        by_sig,
        by_name_desc,
        summaries: HashMap::new(),
        globals: Globals::default(),
        leaks: HashSet::new(),
    };

    for _ in 0..config.max_global_iterations {
        let before_summaries = engine.summaries.clone();
        let before_globals = engine.globals.clone();
        engine.leaks.clear();
        for i in 0..engine.methods.len() {
            engine.analyze_method(i);
        }
        if engine.summaries == before_summaries && engine.globals == before_globals {
            break;
        }
    }

    let mut leaks: Vec<Leak> = engine.leaks.into_iter().collect();
    leaks.sort_by(|a, b| (&a.method, a.dex_pc).cmp(&(&b.method, b.dex_pc)));
    // Deduplicate per call site, keeping the shallowest chain.
    leaks.dedup_by(|a, b| a.method == b.method && a.dex_pc == b.dex_pc);
    AnalysisResult {
        leaks,
        methods_analyzed: engine.methods.len(),
    }
}

fn descriptor_of_sig(sig: &str) -> String {
    sig.split_once("->")
        .and_then(|(_, rest)| rest.find('(').map(|i| rest[i..].to_owned()))
        .unwrap_or_default()
}

impl Engine<'_> {
    fn analyze_method(&mut self, index: usize) {
        // Two passes when implicit flows are on: the first discovers tainted
        // branch conditions, the second applies the implicit context.
        let ctx = self.run_method(index, Taint::CLEAN);
        if self.config.implicit_flows && !ctx.is_clean() {
            self.run_method(index, ctx);
        }
    }

    /// Runs the abstract interpretation of one method under the given
    /// implicit context; returns the union of branch-condition taints seen.
    fn run_method(&mut self, index: usize, implicit_ctx: Taint) -> Taint {
        let info = &self.methods[index];
        let registers = info.registers as usize;
        let ins = info.ins as usize;
        let sig = info.signature.clone();
        let insn_count = info.insns.len();

        // Initial state: parameters in the top `ins` registers.
        let mut init = vec![Reg::default(); registers];
        for (slot, reg) in init.iter_mut().skip(registers - ins).enumerate() {
            reg.taint = Taint::from_param(slot);
        }

        let mut branch_taint = Taint::CLEAN;
        let mut summary = Summary::default();

        if insn_count == 0 {
            return branch_taint;
        }

        if self.config.flow_sensitive {
            // Worklist over instruction granularity (block-free but
            // flow-ordered; joins happen at every instruction). Successor
            // indices come straight from the typed IR.
            let mut states: Vec<Option<Vec<Reg>>> = vec![None; insn_count];
            states[0] = Some(init);
            let mut work: VecDeque<usize> = VecDeque::new();
            work.push_back(0);
            let mut visits = vec![0usize; insn_count];
            while let Some(i) = work.pop_front() {
                visits[i] += 1;
                if visits[i] > 64 {
                    continue; // widen by truncation; states are finite anyway
                }
                let state = states[i].clone().unwrap_or_default();
                let (next_state, succs) = self.transfer(
                    index,
                    i,
                    state,
                    &mut summary,
                    &mut branch_taint,
                    implicit_ctx,
                );
                for succ in succs {
                    match &mut states[succ] {
                        Some(entry) => {
                            let joined = join_regs(entry, &next_state);
                            if joined != *entry {
                                *entry = joined;
                                work.push_back(succ);
                            }
                        }
                        slot => {
                            *slot = Some(next_state.clone());
                            work.push_back(succ);
                        }
                    }
                }
            }
        } else {
            // Flow-insensitive: one shared state, no strong updates,
            // iterate to a local fixpoint.
            let mut state = init;
            for _ in 0..8 {
                let before = state.clone();
                for i in 0..insn_count {
                    let (next, _) = self.transfer_insensitive(
                        index,
                        i,
                        state.clone(),
                        &mut summary,
                        &mut branch_taint,
                        implicit_ctx,
                    );
                    state = join_regs(&state, &next);
                }
                if state == before {
                    break;
                }
            }
        }

        let changed = self.summaries.get(&sig) != Some(&summary);
        if changed {
            let entry = self.summaries.entry(sig).or_default();
            // Join monotonically.
            entry.arg_to_ret |= summary.arg_to_ret;
            entry.source_to_ret = match (entry.source_to_ret, summary.source_to_ret) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            for (k, v) in summary.arg_to_sink {
                let slot = entry.arg_to_sink.entry(k).or_insert(v);
                *slot = (*slot).min(v);
            }
        }
        branch_taint
    }

    fn transfer_insensitive(
        &mut self,
        index: usize,
        i: usize,
        state: Vec<Reg>,
        summary: &mut Summary,
        branch_taint: &mut Taint,
        implicit_ctx: Taint,
    ) -> (Vec<Reg>, Vec<usize>) {
        self.transfer(index, i, state, summary, branch_taint, implicit_ctx)
    }

    /// Abstract transfer of instruction `i`; returns successor indices.
    #[allow(clippy::too_many_lines)]
    fn transfer(
        &mut self,
        index: usize,
        i: usize,
        mut state: Vec<Reg>,
        summary: &mut Summary,
        branch_taint: &mut Taint,
        implicit_ctx: Taint,
    ) -> (Vec<Reg>, Vec<usize>) {
        // Normal-flow successors from the typed IR: validated branch
        // targets, resolved switch payload entries, and fall-through —
        // exception edges excluded, matching the engine's handler-blind
        // over-approximation.
        let (pc, insn, succs) = {
            let ti = &self.methods[index].insns[i];
            (ti.pc, ti.insn.clone(), ti.succs.clone())
        };

        let get = |state: &[Reg], r: u32| state.get(r as usize).cloned().unwrap_or_default();
        let set = |state: &mut [Reg], r: u32, v: Reg| {
            if let Some(slot) = state.get_mut(r as usize) {
                *slot = v;
            }
        };

        match insn.op {
            Opcode::Move
            | Opcode::MoveFrom16
            | Opcode::Move16
            | Opcode::MoveObject
            | Opcode::MoveObjectFrom16
            | Opcode::MoveObject16
            | Opcode::MoveWide
            | Opcode::MoveWideFrom16
            | Opcode::MoveWide16 => {
                let v = get(&state, insn.b);
                set(&mut state, insn.a, v);
            }
            Opcode::Const4
            | Opcode::Const16
            | Opcode::Const
            | Opcode::ConstHigh16
            | Opcode::ConstWide16
            | Opcode::ConstWide32
            | Opcode::ConstWide
            | Opcode::ConstWideHigh16 => {
                set(
                    &mut state,
                    insn.a,
                    Reg {
                        taint: Taint::CLEAN,
                        known: Known::Int(insn.lit),
                    },
                );
            }
            Opcode::ConstString | Opcode::ConstStringJumbo => {
                let s = self.dex.string(insn.idx).unwrap_or_default().to_owned();
                set(
                    &mut state,
                    insn.a,
                    Reg {
                        taint: Taint::CLEAN,
                        known: Known::Str(s),
                    },
                );
            }
            Opcode::ConstClass => {
                let c = self
                    .dex
                    .type_descriptor(insn.idx)
                    .unwrap_or_default()
                    .to_owned();
                set(
                    &mut state,
                    insn.a,
                    Reg {
                        taint: Taint::CLEAN,
                        known: Known::Class(c),
                    },
                );
            }
            op if op.is_conditional_branch() => {
                let mut t = get(&state, insn.a).taint;
                if matches!(op.format(), dexlego_dalvik::Format::F22t) {
                    t = t.join(get(&state, insn.b).taint);
                }
                *branch_taint = branch_taint.join(t);
            }
            Opcode::Goto | Opcode::Goto16 | Opcode::Goto32 => {}
            Opcode::PackedSwitch | Opcode::SparseSwitch => {
                *branch_taint = branch_taint.join(get(&state, insn.a).taint);
            }
            Opcode::Return | Opcode::ReturnObject | Opcode::ReturnWide => {
                let t = get(&state, insn.a).taint.join(implicit_ctx);
                summary.arg_to_ret |= t.params;
                if let Some(d) = t.source {
                    let bumped = d + 1;
                    summary.source_to_ret =
                        Some(summary.source_to_ret.map_or(bumped, |cur| cur.min(bumped)));
                }
            }
            Opcode::Aget
            | Opcode::AgetWide
            | Opcode::AgetObject
            | Opcode::AgetBoolean
            | Opcode::AgetByte
            | Opcode::AgetChar
            | Opcode::AgetShort => {
                let arr = get(&state, insn.b);
                set(
                    &mut state,
                    insn.a,
                    Reg {
                        taint: arr.taint,
                        known: Known::None,
                    },
                );
            }
            Opcode::Aput
            | Opcode::AputWide
            | Opcode::AputObject
            | Opcode::AputBoolean
            | Opcode::AputByte
            | Opcode::AputChar
            | Opcode::AputShort => {
                let idx_known = matches!(get(&state, insn.c).known, Known::Int(_));
                if !self.config.precise_arrays || idx_known {
                    let val = get(&state, insn.a).taint;
                    let arr = get(&state, insn.b);
                    set(
                        &mut state,
                        insn.b,
                        Reg {
                            taint: arr.taint.join(val),
                            known: arr.known,
                        },
                    );
                }
            }
            Opcode::Sget
            | Opcode::SgetWide
            | Opcode::SgetObject
            | Opcode::SgetBoolean
            | Opcode::SgetByte
            | Opcode::SgetChar
            | Opcode::SgetShort
            | Opcode::Iget
            | Opcode::IgetWide
            | Opcode::IgetObject
            | Opcode::IgetBoolean
            | Opcode::IgetByte
            | Opcode::IgetChar
            | Opcode::IgetShort => {
                let field = self.dex.field_signature(insn.idx).unwrap_or_default();
                let taint = self
                    .globals
                    .fields
                    .get(&field)
                    .copied()
                    .unwrap_or(Taint::CLEAN);
                set(
                    &mut state,
                    insn.a,
                    Reg {
                        taint,
                        known: Known::None,
                    },
                );
            }
            Opcode::Sput
            | Opcode::SputWide
            | Opcode::SputObject
            | Opcode::SputBoolean
            | Opcode::SputByte
            | Opcode::SputChar
            | Opcode::SputShort
            | Opcode::Iput
            | Opcode::IputWide
            | Opcode::IputObject
            | Opcode::IputBoolean
            | Opcode::IputByte
            | Opcode::IputChar
            | Opcode::IputShort => {
                let field = self.dex.field_signature(insn.idx).unwrap_or_default();
                let val = get(&state, insn.a).taint.join(implicit_ctx);
                // Fields carry source taint only: parameter bits are
                // meaningless outside the current frame.
                if val.source.is_some() {
                    let entry = self.globals.fields.entry(field).or_insert(Taint::CLEAN);
                    *entry = entry.join(Taint {
                        source: val.source,
                        params: 0,
                    });
                }
            }
            op if op.is_invoke() => {
                let args: Vec<Reg> = insn.regs.iter().map(|&r| get(&state, r)).collect();
                // The receiver's static type from the verifier frame, used
                // to prune infeasible virtual-dispatch fallbacks.
                let recv_ty = if matches!(op, Opcode::InvokeStatic | Opcode::InvokeStaticRange) {
                    None
                } else {
                    insn.regs
                        .first()
                        .and_then(|&r| self.methods[index].insns[i].ref_type(r))
                };
                let ret =
                    self.apply_invoke(&insn, &args, recv_ty, pc, index, summary, implicit_ctx);
                // move-result writes happen via the following instruction;
                // model by stashing in a pseudo-register... simplest: apply
                // to the *next* instruction if it is a move-result.
                if let Some(next) = self.methods[index].insns.get(i + 1) {
                    if matches!(
                        next.insn.op,
                        Opcode::MoveResult | Opcode::MoveResultWide | Opcode::MoveResultObject
                    ) {
                        let a = next.insn.a;
                        set(&mut state, a, ret);
                    }
                }
                // Receiver mutation for StringBuilder-style propagation.
                if let Some((class, name, _)) = self.invoke_target(&insn) {
                    if let FrameworkModel::PropagateToReceiverAndReturn = classify(&class, &name) {
                        let union = args.iter().fold(Taint::CLEAN, |a, r| a.join(r.taint));
                        if let Some(&recv) = insn.regs.first() {
                            let old = get(&state, recv);
                            set(
                                &mut state,
                                recv,
                                Reg {
                                    taint: old.taint.join(union),
                                    known: old.known,
                                },
                            );
                        }
                    }
                }
            }
            Opcode::MoveResult | Opcode::MoveResultWide | Opcode::MoveResultObject => {
                // Handled alongside the invoke; nothing to do here (the
                // state already contains the result if the predecessor was
                // an invoke).
            }
            Opcode::FilledNewArray | Opcode::FilledNewArrayRange => {
                let union = insn
                    .regs
                    .iter()
                    .fold(Taint::CLEAN, |a, &r| a.join(get(&state, r).taint));
                if let Some(next) = self.methods[index].insns.get(i + 1) {
                    if next.insn.op == Opcode::MoveResultObject {
                        let a = next.insn.a;
                        set(
                            &mut state,
                            a,
                            Reg {
                                taint: union,
                                known: Known::None,
                            },
                        );
                    }
                }
            }
            // Unary/binary arithmetic: dst gets union of operand taints.
            op => {
                let operands: Vec<u32> = match op.format() {
                    dexlego_dalvik::Format::F12x
                    | dexlego_dalvik::Format::F22s
                    | dexlego_dalvik::Format::F22b
                    | dexlego_dalvik::Format::F22x => vec![insn.b],
                    dexlego_dalvik::Format::F23x => vec![insn.b, insn.c],
                    _ => vec![],
                };
                if !operands.is_empty() {
                    let t = operands
                        .iter()
                        .fold(Taint::CLEAN, |a, &r| a.join(get(&state, r).taint));
                    set(
                        &mut state,
                        insn.a,
                        Reg {
                            taint: t,
                            known: Known::None,
                        },
                    );
                }
            }
        }

        (state, succs)
    }

    fn invoke_target(&self, insn: &Insn) -> Option<(String, String, String)> {
        let m = self.dex.method_id(insn.idx).ok()?;
        let class = self.dex.type_descriptor(m.class).ok()?.to_owned();
        let name = self.dex.string(m.name).ok()?.to_owned();
        let sig = self.dex.method_signature(insn.idx).ok()?;
        Some((class, name, sig))
    }

    fn within_depth(&self, depth: u32) -> bool {
        self.config.max_call_depth.is_none_or(|cap| depth <= cap)
    }

    fn report_leak(&mut self, index: usize, pc: u32, depth: u32) {
        if !self.within_depth(depth) {
            return;
        }
        self.leaks.insert(Leak {
            method: self.methods[index].signature.clone(),
            dex_pc: pc,
            depth,
        });
    }

    fn app_summary_for(
        &self,
        class: &str,
        name: &str,
        desc: &str,
        recv_ty: Option<TypeId>,
    ) -> Option<Summary> {
        let sig = format!("{class}->{name}{desc}");
        if let Some(&i) = self.by_sig.get(&sig) {
            return self.summaries.get(&self.methods[i].signature).cloned();
        }
        // Virtual/interface dispatch fallback: any app method with the same
        // name and descriptor (over-approximation), minus candidates the
        // class hierarchy proves impossible — the runtime receiver is a
        // subtype of its static type, so a method declared in a provably
        // disjoint class can never be selected.
        let candidates = self.by_name_desc.get(&(name.to_owned(), desc.to_owned()))?;
        let mut merged = Summary::default();
        let mut found = false;
        for &i in candidates {
            if self.config.hierarchy_dispatch {
                if let (Some(t), Some(c)) = (recv_ty, self.class_ids[i]) {
                    if self.hier.provably_disjoint(c, t) {
                        continue;
                    }
                }
            }
            if let Some(s) = self.summaries.get(&self.methods[i].signature) {
                found = true;
                merged.arg_to_ret |= s.arg_to_ret;
                merged.source_to_ret = match (merged.source_to_ret, s.source_to_ret) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                for (&k, &v) in &s.arg_to_sink {
                    let e = merged.arg_to_sink.entry(k).or_insert(v);
                    *e = (*e).min(v);
                }
            }
        }
        found.then_some(merged)
    }

    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn apply_invoke(
        &mut self,
        insn: &Insn,
        args: &[Reg],
        recv_ty: Option<TypeId>,
        pc: u32,
        index: usize,
        summary: &mut Summary,
        implicit_ctx: Taint,
    ) -> Reg {
        let Some((class, name, sig)) = self.invoke_target(insn) else {
            return Reg::default();
        };
        let desc = descriptor_of_sig(&sig);
        let arg_union = args.iter().fold(Taint::CLEAN, |a, r| a.join(r.taint));

        // Reflection: Method.invoke on a statically known target.
        if class == "Ljava/lang/reflect/Method;" && name == "invoke" {
            if self.config.reflection_constant_strings {
                if let Some(Known::Method(tclass, tname)) = args.first().map(|r| r.known.clone()) {
                    if let Some((t_sig_desc, t_summary)) = self.resolve_reflective(&tclass, &tname)
                    {
                        let _ = t_sig_desc;
                        // Receiver + boxed args both flow into the callee.
                        let passed = args
                            .get(1)
                            .map(|r| r.taint)
                            .unwrap_or(Taint::CLEAN)
                            .join(args.get(2).map(|r| r.taint).unwrap_or(Taint::CLEAN))
                            .join(implicit_ctx);
                        return self.apply_app_summary(
                            &t_summary,
                            &[passed, passed],
                            pc,
                            index,
                            summary,
                        );
                    }
                }
            }
            return Reg::default();
        }

        // Reflection bookkeeping for Known tracking.
        if class == "Ljava/lang/Class;" && name == "forName" {
            if let Some(Known::Str(s)) = args.first().map(|r| r.known.clone()) {
                let desc = if s.starts_with('L') && s.ends_with(';') {
                    s
                } else {
                    format!("L{};", s.replace('.', "/"))
                };
                return Reg {
                    taint: Taint::CLEAN,
                    known: Known::Class(desc),
                };
            }
            return Reg::default();
        }
        if class == "Ljava/lang/Class;" && name == "getMethod" {
            if let (Some(Known::Class(c)), Some(Known::Str(n))) = (
                args.first().map(|r| r.known.clone()),
                args.get(1).map(|r| r.known.clone()),
            ) {
                return Reg {
                    taint: Taint::CLEAN,
                    known: Known::Method(c, n),
                };
            }
            return Reg::default();
        }
        if class == "Ljava/lang/Object;" && name == "getClass" {
            return Reg::default();
        }

        if is_framework_class(&class) {
            match classify(&class, &name) {
                FrameworkModel::Source => {
                    return Reg {
                        taint: Taint::source(0),
                        known: Known::None,
                    }
                }
                FrameworkModel::Sink(slots) => {
                    for slot in slots {
                        let t = args
                            .get(slot)
                            .map(|r| r.taint)
                            .unwrap_or(Taint::CLEAN)
                            .join(implicit_ctx);
                        if let Some(d) = t.source {
                            self.report_leak(index, pc, d);
                        }
                        for p in 0..64 {
                            if t.params & (1 << p) != 0 {
                                let e = summary.arg_to_sink.entry(p).or_insert(0);
                                *e = 0;
                            }
                        }
                    }
                    return Reg::default();
                }
                FrameworkModel::PropagateToReturn
                | FrameworkModel::PropagateToReceiverAndReturn => {
                    return Reg {
                        taint: arg_union,
                        known: Known::None,
                    }
                }
                FrameworkModel::IccPut(slot) => {
                    if self.config.icc {
                        let t = args
                            .get(slot)
                            .map(|r| r.taint)
                            .unwrap_or(Taint::CLEAN)
                            .join(implicit_ctx);
                        if let Some(d) = t.source {
                            let bumped = d + 1;
                            self.globals.icc =
                                Some(self.globals.icc.map_or(bumped, |c| c.min(bumped)));
                        }
                    }
                    return Reg::default();
                }
                FrameworkModel::IccGet => {
                    if self.config.icc {
                        if let Some(d) = self.globals.icc {
                            return Reg {
                                taint: Taint::source(d),
                                known: Known::None,
                            };
                        }
                    }
                    return Reg::default();
                }
                FrameworkModel::Neutral => return Reg::default(),
            }
        }

        // Application callee.
        match self.app_summary_for(&class, &name, &desc, recv_ty) {
            Some(callee) => {
                let taints: Vec<Taint> = args.iter().map(|r| r.taint.join(implicit_ctx)).collect();
                self.apply_app_summary(&callee, &taints, pc, index, summary)
            }
            None => Reg::default(),
        }
    }

    fn resolve_reflective(&self, class: &str, name: &str) -> Option<(String, Summary)> {
        // Match any method of the class with the given name.
        for (i, m) in self.methods.iter().enumerate() {
            if m.class == class && m.name == name {
                let sum = self.summaries.get(&self.methods[i].signature).cloned()?;
                return Some((m.signature.clone(), sum));
            }
        }
        None
    }

    fn apply_app_summary(
        &mut self,
        callee: &Summary,
        arg_taints: &[Taint],
        pc: u32,
        index: usize,
        summary: &mut Summary,
    ) -> Reg {
        // Arg-to-sink flows.
        for (&slot, &hops) in &callee.arg_to_sink {
            let Some(&t) = arg_taints.get(slot) else {
                continue;
            };
            if let Some(d) = t.source {
                self.report_leak(index, pc, d + hops + 1);
            }
            for p in 0..64 {
                if t.params & (1 << p) != 0 {
                    let e = summary.arg_to_sink.entry(p).or_insert(hops + 1);
                    *e = (*e).min(hops + 1);
                }
            }
        }
        // Return taint.
        let mut ret = Taint::CLEAN;
        if let Some(d) = callee.source_to_ret {
            ret = ret.join(Taint::source(d));
        }
        for (slot, &t) in arg_taints.iter().enumerate() {
            if callee.arg_to_ret & (1 << slot.min(63)) != 0 {
                ret = ret.join(t.bump());
            }
        }
        Reg {
            taint: ret,
            known: Known::None,
        }
    }
}
