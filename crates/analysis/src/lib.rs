#![forbid(unsafe_code)]

//! Static and dynamic taint-analysis tools for the DexLego evaluation.
//!
//! This crate supplies the *consumers* of DexLego's reassembled DEX files:
//!
//! * [`taint`] — a whole-program static taint engine over
//!   [`dexlego_dex::DexFile`]s: per-method register-level propagation
//!   (flow-sensitive or -insensitive), interprocedural method summaries,
//!   field-based heap abstraction, constant tracking for reflection
//!   resolution, optional implicit-flow and inter-component modelling.
//! * [`tools`] — capability profiles emulating FlowDroid, DroidSafe, and
//!   HornDroid. The profiles differ along documented axes (flow
//!   sensitivity, implicit flows, ICC modelling, array precision, call
//!   depth) so that the *relative* behaviour of the three tools on the
//!   benchmark corpus reproduces the paper's Tables II/III and Figure 5.
//! * [`dynamic`] — TaintDroid/TaintART emulations running on the simulated
//!   runtime, with their documented blind spots (no implicit flows, no
//!   callback-context tracking, emulator detectability, taint loss through
//!   files) for Table IV.
//! * [`metrics`] — sensitivity/specificity/F-measure (the paper's
//!   Formula 1).

pub mod dynamic;
pub mod metrics;
pub mod sources_sinks;
pub mod taint;
pub mod tools;

pub use metrics::{f_measure, Confusion};
pub use taint::{analyze, AnalysisConfig, AnalysisResult};
pub use tools::{droidsafe, flowdroid, horndroid, ToolProfile};
