//! Property-based tests for the instruction codec and assembler.

use dexlego_dalvik::insn::{Decoded, Insn};
use dexlego_dalvik::{decode_insn, decode_method, encode_insn, Format, MethodAssembler, Opcode};
use proptest::prelude::*;

/// Strategy producing a random valid instruction for a random opcode.
fn insn_strategy() -> impl Strategy<Value = Insn> {
    let opcode = proptest::sample::select(Opcode::ALL.to_vec());
    (opcode, any::<u64>(), any::<i64>(), any::<u32>()).prop_map(|(op, regs, lit, idx)| {
        let mut insn = Insn::of(op);
        let r = |shift: u32, mask: u64| ((regs >> shift) & mask) as u32;
        match op.format() {
            Format::F10x => {}
            Format::F12x => {
                insn.a = r(0, 0xf);
                insn.b = r(4, 0xf);
            }
            Format::F11n => {
                insn.a = r(0, 0xf);
                insn.lit = lit.rem_euclid(16) - 8;
            }
            Format::F11x => insn.a = r(0, 0xff),
            Format::F10t => insn.off = (lit.rem_euclid(255) - 127) as i32,
            Format::F20t => {
                insn.off = (lit.rem_euclid(65535) - 32767) as i32;
            }
            Format::F21t => {
                insn.a = r(0, 0xff);
                insn.off = (lit.rem_euclid(65535) - 32767) as i32;
            }
            Format::F22x => {
                insn.a = r(0, 0xff);
                insn.b = r(8, 0xffff);
            }
            Format::F21s => {
                insn.a = r(0, 0xff);
                insn.lit = lit.rem_euclid(65536) - 32768;
            }
            Format::F21h => {
                insn.a = r(0, 0xff);
                let shift = if op == Opcode::ConstWideHigh16 {
                    48
                } else {
                    16
                };
                insn.lit = (lit.rem_euclid(65536) - 32768) << shift;
            }
            Format::F21c => {
                insn.a = r(0, 0xff);
                insn.idx = idx & 0xffff;
            }
            Format::F23x => {
                insn.a = r(0, 0xff);
                insn.b = r(8, 0xff);
                insn.c = r(16, 0xff);
            }
            Format::F22b => {
                insn.a = r(0, 0xff);
                insn.b = r(8, 0xff);
                insn.lit = lit.rem_euclid(256) - 128;
            }
            Format::F22t | Format::F22s => {
                insn.a = r(0, 0xf);
                insn.b = r(4, 0xf);
                if matches!(op.format(), Format::F22t) {
                    insn.off = (lit.rem_euclid(65535) - 32767) as i32;
                } else {
                    insn.lit = lit.rem_euclid(65536) - 32768;
                }
            }
            Format::F22c => {
                insn.a = r(0, 0xf);
                insn.b = r(4, 0xf);
                insn.idx = idx & 0xffff;
            }
            Format::F32x => {
                insn.a = r(0, 0xffff);
                insn.b = r(16, 0xffff);
            }
            Format::F30t => insn.off = lit as i32,
            Format::F31t => {
                insn.a = r(0, 0xff);
                insn.off = lit as i32;
            }
            Format::F31i => {
                insn.a = r(0, 0xff);
                insn.lit = i64::from(lit as i32);
            }
            Format::F31c => {
                insn.a = r(0, 0xff);
                insn.idx = idx;
            }
            Format::F35c => {
                let count = (regs % 6) as usize;
                insn.idx = idx & 0xffff;
                insn.regs = (0..count).map(|i| r(4 * i as u32 + 8, 0xf)).collect();
            }
            Format::F3rc => {
                let count = (regs % 20) as u32;
                let start = r(32, 0xfff);
                insn.idx = idx & 0xffff;
                insn.regs = (start..start + count).collect();
            }
            Format::F51l => {
                insn.a = r(0, 0xff);
                insn.lit = lit;
            }
        }
        insn
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → decode is the identity on valid instructions.
    #[test]
    fn insn_codec_roundtrips(insn in insn_strategy()) {
        let units = encode_insn(&insn).unwrap();
        prop_assert_eq!(units.len(), insn.units());
        let back = decode_insn(&units, 0).unwrap();
        prop_assert_eq!(back, Decoded::Insn(insn));
    }

    /// Decoding never panics on arbitrary code units.
    #[test]
    fn decode_never_panics(units in proptest::collection::vec(any::<u16>(), 1..12)) {
        let _ = decode_insn(&units, 0);
        let _ = decode_method(&units);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A straight-line program of random constants and arithmetic always
    /// assembles and decodes back to the same instruction count.
    #[test]
    fn assembler_straight_line(ops in proptest::collection::vec((0u8..4, any::<i8>()), 1..40)) {
        let mut asm = MethodAssembler::new();
        for (kind, v) in &ops {
            match kind {
                0 => {
                    asm.const4(0, i64::from(*v));
                }
                1 => {
                    asm.binop_lit8(Opcode::AddIntLit8, 1, 0, i64::from(*v));
                }
                2 => {
                    asm.nop();
                }
                _ => {
                    asm.binop(Opcode::XorInt, 0, 0, 1);
                }
            }
        }
        asm.ret(Opcode::ReturnVoid, 0);
        let units = asm.assemble().unwrap();
        let decoded = decode_method(&units).unwrap();
        prop_assert_eq!(decoded.len(), ops.len() + 1);
    }

    /// Random forward/backward jump structures resolve (no undefined
    /// labels, offsets in range after auto-widening).
    #[test]
    fn assembler_jump_soup(jumps in proptest::collection::vec(0usize..8, 1..8), pad in 1usize..200) {
        let mut asm = MethodAssembler::new();
        let labels: Vec<_> = (0..8).map(|_| asm.new_label()).collect();
        for &j in &jumps {
            asm.goto(labels[j]);
            for _ in 0..pad {
                asm.nop();
            }
        }
        for &l in &labels {
            asm.bind(l);
            asm.nop();
        }
        asm.ret(Opcode::ReturnVoid, 0);
        let units = asm.assemble().unwrap();
        prop_assert!(decode_method(&units).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Canonicalisation of a random interned program yields a model that
    /// passes strict verification, round-trips through the writer, and is
    /// a fixpoint of canonicalisation.
    #[test]
    fn canonicalize_random_programs(
        names in proptest::collection::vec("[a-z]{1,6}", 1..5),
        lits in proptest::collection::vec(-8i64..8, 1..6),
    ) {
        use dexlego_dalvik::builder::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        for (i, name) in names.iter().enumerate() {
            let class = format!("Lgen/{name}{i};");
            let lits = lits.clone();
            let callee = format!("Lgen/{}{};", names[(i + 1) % names.len()], (i + 1) % names.len());
            pb.class(&class, move |c| {
                c.static_field("f", "I", None);
                c.static_method("m", &[], "V", 3, move |m| {
                    for &v in &lits {
                        m.asm.const4(0, v);
                    }
                    m.const_str(1, "shared");
                    m.sget(Opcode::Sget, 2, &callee, "f", "I");
                    m.invoke(Opcode::InvokeStatic, &callee, "m", &[], "V", &[]);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            });
        }
        let dex = pb.build().unwrap();
        let canonical = dexlego_dalvik::canon::canonicalize(&dex).unwrap();
        dexlego_dex::verify::verify(&canonical, dexlego_dex::verify::Strictness::Sorted).unwrap();
        let twice = dexlego_dalvik::canon::canonicalize(&canonical).unwrap();
        prop_assert_eq!(&twice, &canonical);
        let bytes = dexlego_dex::writer::write_dex(&canonical).unwrap();
        let back = dexlego_dex::reader::read_dex(&bytes).unwrap();
        prop_assert_eq!(&back, &canonical);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any method the builder emits — constants, arithmetic, wide pairs,
    /// guarded branches, switches, calls with move-result — survives
    /// encode → decode → verify with zero bytecode-verifier errors, both
    /// as the in-memory model and after a full writer/reader round trip.
    #[test]
    fn built_methods_verify_cleanly(
        ops in proptest::collection::vec((0u8..8, any::<i8>()), 1..30),
    ) {
        use dexlego_dalvik::asm::MoveKind;
        use dexlego_dalvik::builder::ProgramBuilder;
        use dexlego_dalvik::Insn;
        use dexlego_verifier::VerifyOptions;

        let mut pb = ProgramBuilder::new();
        let class = "Lgen/Prop;";
        pb.class(class, |c| {
            c.static_method("g", &[], "I", 1, |m| {
                m.asm.const4(0, 3);
                m.asm.ret(Opcode::Return, 0);
            });
            let ops = ops.clone();
            c.static_method("m", &[], "V", 6, move |m| {
                // Prologue defines every register the body may touch:
                // v0/v1/v4/v5 int, (v2, v3) wide.
                m.asm.const4(0, 0);
                m.asm.const4(1, 1);
                m.asm.const_wide(2, 9);
                m.asm.const4(4, 0);
                m.asm.const4(5, 0);
                for &(kind, v) in &ops {
                    match kind {
                        0 => {
                            m.asm.const4(0, i64::from(v % 8));
                        }
                        1 => {
                            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, i64::from(v));
                        }
                        2 => {
                            m.asm.binop(Opcode::XorInt, 0, 0, 1);
                        }
                        3 => {
                            // Guarded block: both paths leave all registers
                            // in joinable states.
                            let skip = m.asm.new_label();
                            m.asm.if_z(Opcode::IfEqz, 4, skip);
                            m.asm.binop_lit8(Opcode::MulIntLit8, 1, 1, 3);
                            m.asm.bind(skip);
                        }
                        4 => {
                            let mut neg = Insn::of(Opcode::NegLong);
                            neg.a = 2;
                            neg.b = 2;
                            m.asm.push(neg);
                        }
                        5 => {
                            m.invoke(Opcode::InvokeStatic, class, "g", &[], "I", &[]);
                            let mut mr = Insn::of(Opcode::MoveResult);
                            mr.a = 5;
                            m.asm.push(mr);
                        }
                        6 => {
                            let (a, b) = (m.asm.new_label(), m.asm.new_label());
                            let done = m.asm.new_label();
                            m.asm.packed_switch(4, 0, vec![a, b]);
                            m.asm.goto(done);
                            m.asm.bind(a);
                            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 1);
                            m.asm.goto(done);
                            m.asm.bind(b);
                            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 2);
                            m.asm.bind(done);
                        }
                        _ => {
                            m.asm.move_reg(MoveKind::Single, 4, 0);
                        }
                    }
                }
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        let dex = pb.build().unwrap();
        let options = VerifyOptions::errors_only();
        let diags = dexlego_verifier::verify_dex(&dex, &options);
        prop_assert!(diags.is_empty(), "model: {:?}", diags);

        // Full byte-level round trip, then verify what a consumer would read.
        let canonical = dexlego_dalvik::canon::canonicalize(&dex).unwrap();
        let bytes = dexlego_dex::writer::write_dex(&canonical).unwrap();
        let back = dexlego_dex::reader::read_dex(&bytes).unwrap();
        let diags = dexlego_verifier::verify_dex(&back, &options);
        prop_assert!(diags.is_empty(), "roundtrip: {:?}", diags);
    }
}
