//! Extracting a subset of classes from a [`DexFile`] into a fresh,
//! self-contained [`DexFile`] (used by multi-DEX packers that split an
//! application across separately encrypted payloads).

use dexlego_dex::file::{EncodedField, EncodedMethod};
use dexlego_dex::value::EncodedValue;
use dexlego_dex::{ClassDef, CodeItem, DexFile};

use crate::decode::decode_method;
use crate::encode::encode_decoded;
use crate::insn::Decoded;
use crate::opcode::IndexKind;
use crate::Result;

/// Copies the classes selected by `keep` into a new model, re-interning
/// every pool reference (including those embedded in instruction streams).
///
/// # Errors
///
/// Fails if a kept method's bytecode cannot be decoded.
///
/// # Example
///
/// ```
/// use dexlego_dex::{DexFile, ClassDef};
/// use dexlego_dalvik::subset::extract_classes;
///
/// # fn main() -> Result<(), dexlego_dalvik::DalvikError> {
/// let mut dex = DexFile::new();
/// let a = dex.intern_type("La;");
/// let b = dex.intern_type("Lb;");
/// dex.add_class(ClassDef::new(a));
/// dex.add_class(ClassDef::new(b));
/// let only_a = extract_classes(&dex, |d| d == "La;")?;
/// assert!(only_a.find_class("La;").is_some());
/// assert!(only_a.find_class("Lb;").is_none());
/// # Ok(())
/// # }
/// ```
pub fn extract_classes(dex: &DexFile, mut keep: impl FnMut(&str) -> bool) -> Result<DexFile> {
    let mut out = DexFile::new();
    for class in dex.class_defs() {
        let Ok(desc) = dex.type_descriptor(class.class_idx) else {
            continue;
        };
        if !keep(desc) {
            continue;
        }
        let class_idx = out.intern_type(desc);
        let mut def = ClassDef::new(class_idx);
        def.access = class.access;
        def.superclass = class
            .superclass
            .and_then(|t| dex.type_descriptor(t).ok())
            .map(|d| out.intern_type(d));
        def.interfaces = class
            .interfaces
            .iter()
            .filter_map(|&t| dex.type_descriptor(t).ok())
            .map(|d| out.intern_type(d))
            .collect();
        def.static_values = class
            .static_values
            .iter()
            .map(|v| remap_value(dex, &mut out, v))
            .collect();
        if let Some(data) = &class.class_data {
            let out_data = def.class_data.as_mut().expect("fresh class data");
            for (is_static, fields) in [(true, &data.static_fields), (false, &data.instance_fields)]
            {
                for field in fields {
                    let Ok(id) = dex.field_id(field.field_idx) else {
                        continue;
                    };
                    let (Ok(c), Ok(t), Ok(n)) = (
                        dex.type_descriptor(id.class),
                        dex.type_descriptor(id.type_),
                        dex.string(id.name),
                    ) else {
                        continue;
                    };
                    let encoded = EncodedField {
                        field_idx: out.intern_field(c, t, n),
                        access: field.access,
                    };
                    if is_static {
                        out_data.static_fields.push(encoded);
                    } else {
                        out_data.instance_fields.push(encoded);
                    }
                }
            }
            for (is_direct, methods) in
                [(true, &data.direct_methods), (false, &data.virtual_methods)]
            {
                for method in methods {
                    let Some(idx) = intern_method_ref(dex, &mut out, method.method_idx) else {
                        continue;
                    };
                    let code = match &method.code {
                        Some(code) => Some(remap_code(dex, &mut out, code)?),
                        None => None,
                    };
                    let encoded = EncodedMethod {
                        method_idx: idx,
                        access: method.access,
                        code,
                    };
                    if is_direct {
                        out_data.direct_methods.push(encoded);
                    } else {
                        out_data.virtual_methods.push(encoded);
                    }
                }
            }
            out_data.static_fields.sort_by_key(|f| f.field_idx);
            out_data.instance_fields.sort_by_key(|f| f.field_idx);
            out_data.direct_methods.sort_by_key(|m| m.method_idx);
            out_data.virtual_methods.sort_by_key(|m| m.method_idx);
        }
        out.add_class(def);
    }
    Ok(out)
}

fn intern_method_ref(dex: &DexFile, out: &mut DexFile, idx: u32) -> Option<u32> {
    let id = dex.method_id(idx).ok()?;
    let class = dex.type_descriptor(id.class).ok()?.to_owned();
    let name = dex.string(id.name).ok()?.to_owned();
    let proto = dex.proto(id.proto).ok()?;
    let params: Vec<String> = proto
        .parameters
        .iter()
        .filter_map(|&t| dex.type_descriptor(t).ok().map(str::to_owned))
        .collect();
    let ret = dex.type_descriptor(proto.return_type).ok()?.to_owned();
    let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
    Some(out.intern_method(&class, &name, &ret, &param_refs))
}

fn intern_field_ref(dex: &DexFile, out: &mut DexFile, idx: u32) -> Option<u32> {
    let id = dex.field_id(idx).ok()?;
    let class = dex.type_descriptor(id.class).ok()?.to_owned();
    let type_ = dex.type_descriptor(id.type_).ok()?.to_owned();
    let name = dex.string(id.name).ok()?.to_owned();
    Some(out.intern_field(&class, &type_, &name))
}

fn remap_value(dex: &DexFile, out: &mut DexFile, value: &EncodedValue) -> EncodedValue {
    match value {
        EncodedValue::String(i) => match dex.string(*i) {
            Ok(s) => EncodedValue::String(out.intern_string(s)),
            Err(_) => EncodedValue::Null,
        },
        EncodedValue::Type(i) => match dex.type_descriptor(*i) {
            Ok(t) => EncodedValue::Type(out.intern_type(t)),
            Err(_) => EncodedValue::Null,
        },
        EncodedValue::Array(items) => {
            EncodedValue::Array(items.iter().map(|v| remap_value(dex, out, v)).collect())
        }
        other => other.clone(),
    }
}

fn remap_code(dex: &DexFile, out: &mut DexFile, code: &CodeItem) -> Result<CodeItem> {
    let mut new = code.clone();
    let mut units = code.insns.clone();
    for (pc, decoded) in decode_method(&code.insns)? {
        if let Decoded::Insn(mut insn) = decoded {
            let mapped = match insn.op.index_kind() {
                IndexKind::None => continue,
                IndexKind::String => dex.string(insn.idx).ok().map(|s| out.intern_string(s)),
                IndexKind::Type => dex
                    .type_descriptor(insn.idx)
                    .ok()
                    .map(|t| out.intern_type(t)),
                IndexKind::Field => intern_field_ref(dex, out, insn.idx),
                IndexKind::Method => intern_method_ref(dex, out, insn.idx),
            };
            let Some(mapped) = mapped else { continue };
            if mapped != insn.idx {
                insn.idx = mapped;
                let encoded = encode_decoded(&Decoded::Insn(insn))?;
                units[pc as usize..pc as usize + encoded.len()].copy_from_slice(&encoded);
            }
        }
    }
    new.insns = units;
    for handler in &mut new.handlers {
        for clause in &mut handler.catches {
            if let Ok(t) = dex.type_descriptor(clause.type_idx) {
                clause.type_idx = out.intern_type(t);
            }
        }
    }
    Ok(new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::opcode::Opcode;

    #[test]
    fn subset_is_self_contained_and_runs_references() {
        let mut pb = ProgramBuilder::new();
        pb.class("La/Keep;", |c| {
            c.static_method("go", &[], "V", 2, |m| {
                m.const_str(0, "kept-string");
                m.invoke(Opcode::InvokeStatic, "La/Drop;", "helper", &[], "V", &[]);
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        pb.class("La/Drop;", |c| {
            c.static_method("helper", &[], "V", 1, |m| {
                m.const_str(0, "dropped-string");
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        let dex = pb.build().unwrap();
        let subset = extract_classes(&dex, |d| d == "La/Keep;").unwrap();
        assert!(subset.find_class("La/Keep;").is_some());
        assert!(subset.find_class("La/Drop;").is_none());
        // Cross-class method reference survives as a method_id.
        assert!(subset
            .method_ids()
            .iter()
            .any(|m| subset.type_descriptor(m.class).unwrap() == "La/Drop;"));
        // The kept code decodes and its string resolves in the new pools.
        let class = subset.find_class("La/Keep;").unwrap();
        let code = class.class_data.as_ref().unwrap().direct_methods[0]
            .code
            .as_ref()
            .unwrap();
        let insns = decode_method(&code.insns).unwrap();
        let cs = insns[0].1.as_insn().unwrap();
        assert_eq!(subset.string(cs.idx).unwrap(), "kept-string");
        dexlego_dex::verify::verify(&subset, dexlego_dex::verify::Strictness::Referential).unwrap();
    }

    /// Kept classes may reference pool entries whose only *owner* is a
    /// dropped class: the dropped class's fields, methods, type, and strings
    /// interned on its behalf. Extraction must re-intern those into the new
    /// pools (at new indices) rather than let stale indices dangle.
    #[test]
    fn reinterns_pool_entries_owned_by_dropped_classes() {
        use crate::builder::StaticInit;

        let mut pb = ProgramBuilder::new();
        // The dropped class is built first and floods the pools so every
        // index the kept class uses shifts after extraction.
        pb.class("La/Drop;", |c| {
            c.static_field("flag", "I", Some(StaticInit::Int(7)));
            c.static_method("pad", &[], "V", 4, |m| {
                for i in 0..12 {
                    m.const_str(0, &format!("pad-{i}"));
                }
                m.new_instance(1, "La/DropOnly0;");
                m.new_instance(1, "La/DropOnly1;");
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
            c.static_method("make", &[], "Ljava/lang/String;", 2, |m| {
                m.const_str(0, "made");
                m.asm.ret(Opcode::ReturnObject, 0);
            });
        });
        pb.class("La/Keep;", |c| {
            c.static_method("go", &[], "V", 3, |m| {
                // Field of the dropped class.
                m.sget(Opcode::Sget, 0, "La/Drop;", "flag", "I");
                // Method of the dropped class, with move-result.
                m.invoke(
                    Opcode::InvokeStatic,
                    "La/Drop;",
                    "make",
                    &[],
                    "Ljava/lang/String;",
                    &[],
                );
                let mut mr = crate::Insn::of(Opcode::MoveResultObject);
                mr.a = 1;
                m.asm.push(mr);
                // The dropped class's own type.
                m.const_class(2, "La/Drop;");
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        let dex = pb.build().unwrap();

        // Record the original indices the kept body uses.
        let orig_class = dex.find_class("La/Keep;").unwrap();
        let orig_code = orig_class.class_data.as_ref().unwrap().direct_methods[0]
            .code
            .as_ref()
            .unwrap();
        let orig: Vec<u32> = decode_method(&orig_code.insns)
            .unwrap()
            .iter()
            .filter_map(|(_, d)| d.as_insn())
            .filter(|i| i.op.index_kind() != IndexKind::None)
            .map(|i| i.idx)
            .collect();

        let subset = extract_classes(&dex, |d| d == "La/Keep;").unwrap();
        assert!(subset.find_class("La/Drop;").is_none());

        let class = subset.find_class("La/Keep;").unwrap();
        let code = class.class_data.as_ref().unwrap().direct_methods[0]
            .code
            .as_ref()
            .unwrap();
        let insns = decode_method(&code.insns).unwrap();

        // sget: the field reference resolves in the new pool to the same
        // (class, name, type) triple.
        let sget = insns[0].1.as_insn().unwrap();
        assert_eq!(sget.op, Opcode::Sget);
        let field = subset.field_id(sget.idx).unwrap();
        assert_eq!(subset.type_descriptor(field.class).unwrap(), "La/Drop;");
        assert_eq!(subset.string(field.name).unwrap(), "flag");
        assert_eq!(subset.type_descriptor(field.type_).unwrap(), "I");

        // invoke: the method reference resolves with its full prototype.
        let invoke = insns[1].1.as_insn().unwrap();
        assert_eq!(
            subset.method_signature(invoke.idx).unwrap(),
            "La/Drop;->make()Ljava/lang/String;"
        );

        // const-class: the dropped type is still in the type pool.
        let cc = insns[3].1.as_insn().unwrap();
        assert_eq!(cc.op, Opcode::ConstClass);
        assert_eq!(subset.type_descriptor(cc.idx).unwrap(), "La/Drop;");

        // The indices actually moved: the pad strings and drop-only types
        // are gone, so at least one reference was rewritten in the stream.
        let new: Vec<u32> = insns
            .iter()
            .filter_map(|(_, d)| d.as_insn())
            .filter(|i| i.op.index_kind() != IndexKind::None)
            .map(|i| i.idx)
            .collect();
        assert_ne!(orig, new, "expected re-interned instruction indices");
        assert!(subset.strings().len() < dex.strings().len());

        dexlego_dex::verify::verify(&subset, dexlego_dex::verify::Strictness::Referential).unwrap();
    }

    /// Catch-clause exception types owned only by dropped classes are
    /// re-interned into the subset's type pool.
    #[test]
    fn reinterns_catch_types_from_dropped_classes() {
        use dexlego_dex::code::EncodedCatchHandler;
        use dexlego_dex::code::{CatchClause, TryItem};

        let mut pb = ProgramBuilder::new();
        pb.class("La/DropExc;", |c| {
            c.static_method("noop", &[], "V", 1, |m| {
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        pb.class("La/Keep;", |c| {
            c.static_method("guarded", &[], "V", 2, |m| {
                m.new_instance(0, "Ljava/lang/Object;");
                m.asm.ret(Opcode::ReturnVoid, 0);
                let mut mex = crate::Insn::of(Opcode::MoveException);
                mex.a = 1;
                m.asm.push(mex);
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        let mut dex = pb.build().unwrap();
        let exc_type = dex.intern_type("La/DropExc;");
        {
            let class = dex
                .class_defs_mut()
                .iter_mut()
                .find(|c| c.class_idx != exc_type)
                .unwrap();
            let code = class.class_data.as_mut().unwrap().direct_methods[0]
                .code
                .as_mut()
                .unwrap();
            code.tries.push(TryItem {
                start_addr: 0,
                insn_count: 2,
                handler_index: 0,
            });
            code.handlers.push(EncodedCatchHandler {
                catches: vec![CatchClause {
                    type_idx: exc_type,
                    addr: 3,
                }],
                catch_all_addr: None,
            });
        }

        let subset = extract_classes(&dex, |d| d == "La/Keep;").unwrap();
        let class = subset.find_class("La/Keep;").unwrap();
        let code = class.class_data.as_ref().unwrap().direct_methods[0]
            .code
            .as_ref()
            .unwrap();
        let clause = &code.handlers[0].catches[0];
        assert_eq!(
            subset.type_descriptor(clause.type_idx).unwrap(),
            "La/DropExc;"
        );
        dexlego_dex::verify::verify(&subset, dexlego_dex::verify::Strictness::Referential).unwrap();
    }
}
