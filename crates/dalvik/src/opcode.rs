//! The Dalvik 035 opcode table.

/// Instruction encoding formats, named as in the Dalvik documentation: the
/// first digit is the length in 16-bit code units, the second the number of
/// register operands, and the letter encodes the extra payload kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Format {
    F10x,
    F12x,
    F11n,
    F11x,
    F10t,
    F20t,
    F22x,
    F21t,
    F21s,
    F21h,
    F21c,
    F23x,
    F22b,
    F22t,
    F22s,
    F22c,
    F32x,
    F30t,
    F31t,
    F31i,
    F31c,
    F35c,
    F3rc,
    F51l,
}

impl Format {
    /// Instruction length in 16-bit code units.
    pub const fn units(self) -> usize {
        match self {
            Format::F10x | Format::F12x | Format::F11n | Format::F11x | Format::F10t => 1,
            Format::F20t
            | Format::F22x
            | Format::F21t
            | Format::F21s
            | Format::F21h
            | Format::F21c
            | Format::F23x
            | Format::F22b
            | Format::F22t
            | Format::F22s
            | Format::F22c => 2,
            Format::F32x
            | Format::F30t
            | Format::F31t
            | Format::F31i
            | Format::F31c
            | Format::F35c
            | Format::F3rc => 3,
            Format::F51l => 5,
        }
    }
}

/// What kind of constant-pool index an instruction's index operand holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// No index operand.
    None,
    /// String pool index.
    String,
    /// Type pool index.
    Type,
    /// Field pool index.
    Field,
    /// Method pool index.
    Method,
}

macro_rules! opcodes {
    ($(($value:literal, $variant:ident, $mnemonic:literal, $format:ident, $index:ident)),* $(,)?) => {
        /// A Dalvik bytecode opcode.
        ///
        /// The discriminant equals the opcode byte.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum Opcode {
            $($variant = $value),*
        }

        impl Opcode {
            /// Decodes an opcode byte.
            pub const fn from_u8(byte: u8) -> Option<Opcode> {
                match byte {
                    $($value => Some(Opcode::$variant),)*
                    _ => None,
                }
            }

            /// The smali mnemonic.
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mnemonic),*
                }
            }

            /// The encoding format.
            pub const fn format(self) -> Format {
                match self {
                    $(Opcode::$variant => Format::$format),*
                }
            }

            /// What constant-pool index (if any) the instruction carries.
            pub const fn index_kind(self) -> IndexKind {
                match self {
                    $(Opcode::$variant => IndexKind::$index),*
                }
            }

            /// All defined opcodes, in opcode-byte order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant),*];
        }
    };
}

opcodes! {
    (0x00, Nop, "nop", F10x, None),
    (0x01, Move, "move", F12x, None),
    (0x02, MoveFrom16, "move/from16", F22x, None),
    (0x03, Move16, "move/16", F32x, None),
    (0x04, MoveWide, "move-wide", F12x, None),
    (0x05, MoveWideFrom16, "move-wide/from16", F22x, None),
    (0x06, MoveWide16, "move-wide/16", F32x, None),
    (0x07, MoveObject, "move-object", F12x, None),
    (0x08, MoveObjectFrom16, "move-object/from16", F22x, None),
    (0x09, MoveObject16, "move-object/16", F32x, None),
    (0x0a, MoveResult, "move-result", F11x, None),
    (0x0b, MoveResultWide, "move-result-wide", F11x, None),
    (0x0c, MoveResultObject, "move-result-object", F11x, None),
    (0x0d, MoveException, "move-exception", F11x, None),
    (0x0e, ReturnVoid, "return-void", F10x, None),
    (0x0f, Return, "return", F11x, None),
    (0x10, ReturnWide, "return-wide", F11x, None),
    (0x11, ReturnObject, "return-object", F11x, None),
    (0x12, Const4, "const/4", F11n, None),
    (0x13, Const16, "const/16", F21s, None),
    (0x14, Const, "const", F31i, None),
    (0x15, ConstHigh16, "const/high16", F21h, None),
    (0x16, ConstWide16, "const-wide/16", F21s, None),
    (0x17, ConstWide32, "const-wide/32", F31i, None),
    (0x18, ConstWide, "const-wide", F51l, None),
    (0x19, ConstWideHigh16, "const-wide/high16", F21h, None),
    (0x1a, ConstString, "const-string", F21c, String),
    (0x1b, ConstStringJumbo, "const-string/jumbo", F31c, String),
    (0x1c, ConstClass, "const-class", F21c, Type),
    (0x1d, MonitorEnter, "monitor-enter", F11x, None),
    (0x1e, MonitorExit, "monitor-exit", F11x, None),
    (0x1f, CheckCast, "check-cast", F21c, Type),
    (0x20, InstanceOf, "instance-of", F22c, Type),
    (0x21, ArrayLength, "array-length", F12x, None),
    (0x22, NewInstance, "new-instance", F21c, Type),
    (0x23, NewArray, "new-array", F22c, Type),
    (0x24, FilledNewArray, "filled-new-array", F35c, Type),
    (0x25, FilledNewArrayRange, "filled-new-array/range", F3rc, Type),
    (0x26, FillArrayData, "fill-array-data", F31t, None),
    (0x27, Throw, "throw", F11x, None),
    (0x28, Goto, "goto", F10t, None),
    (0x29, Goto16, "goto/16", F20t, None),
    (0x2a, Goto32, "goto/32", F30t, None),
    (0x2b, PackedSwitch, "packed-switch", F31t, None),
    (0x2c, SparseSwitch, "sparse-switch", F31t, None),
    (0x2d, CmplFloat, "cmpl-float", F23x, None),
    (0x2e, CmpgFloat, "cmpg-float", F23x, None),
    (0x2f, CmplDouble, "cmpl-double", F23x, None),
    (0x30, CmpgDouble, "cmpg-double", F23x, None),
    (0x31, CmpLong, "cmp-long", F23x, None),
    (0x32, IfEq, "if-eq", F22t, None),
    (0x33, IfNe, "if-ne", F22t, None),
    (0x34, IfLt, "if-lt", F22t, None),
    (0x35, IfGe, "if-ge", F22t, None),
    (0x36, IfGt, "if-gt", F22t, None),
    (0x37, IfLe, "if-le", F22t, None),
    (0x38, IfEqz, "if-eqz", F21t, None),
    (0x39, IfNez, "if-nez", F21t, None),
    (0x3a, IfLtz, "if-ltz", F21t, None),
    (0x3b, IfGez, "if-gez", F21t, None),
    (0x3c, IfGtz, "if-gtz", F21t, None),
    (0x3d, IfLez, "if-lez", F21t, None),
    (0x44, Aget, "aget", F23x, None),
    (0x45, AgetWide, "aget-wide", F23x, None),
    (0x46, AgetObject, "aget-object", F23x, None),
    (0x47, AgetBoolean, "aget-boolean", F23x, None),
    (0x48, AgetByte, "aget-byte", F23x, None),
    (0x49, AgetChar, "aget-char", F23x, None),
    (0x4a, AgetShort, "aget-short", F23x, None),
    (0x4b, Aput, "aput", F23x, None),
    (0x4c, AputWide, "aput-wide", F23x, None),
    (0x4d, AputObject, "aput-object", F23x, None),
    (0x4e, AputBoolean, "aput-boolean", F23x, None),
    (0x4f, AputByte, "aput-byte", F23x, None),
    (0x50, AputChar, "aput-char", F23x, None),
    (0x51, AputShort, "aput-short", F23x, None),
    (0x52, Iget, "iget", F22c, Field),
    (0x53, IgetWide, "iget-wide", F22c, Field),
    (0x54, IgetObject, "iget-object", F22c, Field),
    (0x55, IgetBoolean, "iget-boolean", F22c, Field),
    (0x56, IgetByte, "iget-byte", F22c, Field),
    (0x57, IgetChar, "iget-char", F22c, Field),
    (0x58, IgetShort, "iget-short", F22c, Field),
    (0x59, Iput, "iput", F22c, Field),
    (0x5a, IputWide, "iput-wide", F22c, Field),
    (0x5b, IputObject, "iput-object", F22c, Field),
    (0x5c, IputBoolean, "iput-boolean", F22c, Field),
    (0x5d, IputByte, "iput-byte", F22c, Field),
    (0x5e, IputChar, "iput-char", F22c, Field),
    (0x5f, IputShort, "iput-short", F22c, Field),
    (0x60, Sget, "sget", F21c, Field),
    (0x61, SgetWide, "sget-wide", F21c, Field),
    (0x62, SgetObject, "sget-object", F21c, Field),
    (0x63, SgetBoolean, "sget-boolean", F21c, Field),
    (0x64, SgetByte, "sget-byte", F21c, Field),
    (0x65, SgetChar, "sget-char", F21c, Field),
    (0x66, SgetShort, "sget-short", F21c, Field),
    (0x67, Sput, "sput", F21c, Field),
    (0x68, SputWide, "sput-wide", F21c, Field),
    (0x69, SputObject, "sput-object", F21c, Field),
    (0x6a, SputBoolean, "sput-boolean", F21c, Field),
    (0x6b, SputByte, "sput-byte", F21c, Field),
    (0x6c, SputChar, "sput-char", F21c, Field),
    (0x6d, SputShort, "sput-short", F21c, Field),
    (0x6e, InvokeVirtual, "invoke-virtual", F35c, Method),
    (0x6f, InvokeSuper, "invoke-super", F35c, Method),
    (0x70, InvokeDirect, "invoke-direct", F35c, Method),
    (0x71, InvokeStatic, "invoke-static", F35c, Method),
    (0x72, InvokeInterface, "invoke-interface", F35c, Method),
    (0x74, InvokeVirtualRange, "invoke-virtual/range", F3rc, Method),
    (0x75, InvokeSuperRange, "invoke-super/range", F3rc, Method),
    (0x76, InvokeDirectRange, "invoke-direct/range", F3rc, Method),
    (0x77, InvokeStaticRange, "invoke-static/range", F3rc, Method),
    (0x78, InvokeInterfaceRange, "invoke-interface/range", F3rc, Method),
    (0x7b, NegInt, "neg-int", F12x, None),
    (0x7c, NotInt, "not-int", F12x, None),
    (0x7d, NegLong, "neg-long", F12x, None),
    (0x7e, NotLong, "not-long", F12x, None),
    (0x7f, NegFloat, "neg-float", F12x, None),
    (0x80, NegDouble, "neg-double", F12x, None),
    (0x81, IntToLong, "int-to-long", F12x, None),
    (0x82, IntToFloat, "int-to-float", F12x, None),
    (0x83, IntToDouble, "int-to-double", F12x, None),
    (0x84, LongToInt, "long-to-int", F12x, None),
    (0x85, LongToFloat, "long-to-float", F12x, None),
    (0x86, LongToDouble, "long-to-double", F12x, None),
    (0x87, FloatToInt, "float-to-int", F12x, None),
    (0x88, FloatToLong, "float-to-long", F12x, None),
    (0x89, FloatToDouble, "float-to-double", F12x, None),
    (0x8a, DoubleToInt, "double-to-int", F12x, None),
    (0x8b, DoubleToLong, "double-to-long", F12x, None),
    (0x8c, DoubleToFloat, "double-to-float", F12x, None),
    (0x8d, IntToByte, "int-to-byte", F12x, None),
    (0x8e, IntToChar, "int-to-char", F12x, None),
    (0x8f, IntToShort, "int-to-short", F12x, None),
    (0x90, AddInt, "add-int", F23x, None),
    (0x91, SubInt, "sub-int", F23x, None),
    (0x92, MulInt, "mul-int", F23x, None),
    (0x93, DivInt, "div-int", F23x, None),
    (0x94, RemInt, "rem-int", F23x, None),
    (0x95, AndInt, "and-int", F23x, None),
    (0x96, OrInt, "or-int", F23x, None),
    (0x97, XorInt, "xor-int", F23x, None),
    (0x98, ShlInt, "shl-int", F23x, None),
    (0x99, ShrInt, "shr-int", F23x, None),
    (0x9a, UshrInt, "ushr-int", F23x, None),
    (0x9b, AddLong, "add-long", F23x, None),
    (0x9c, SubLong, "sub-long", F23x, None),
    (0x9d, MulLong, "mul-long", F23x, None),
    (0x9e, DivLong, "div-long", F23x, None),
    (0x9f, RemLong, "rem-long", F23x, None),
    (0xa0, AndLong, "and-long", F23x, None),
    (0xa1, OrLong, "or-long", F23x, None),
    (0xa2, XorLong, "xor-long", F23x, None),
    (0xa3, ShlLong, "shl-long", F23x, None),
    (0xa4, ShrLong, "shr-long", F23x, None),
    (0xa5, UshrLong, "ushr-long", F23x, None),
    (0xa6, AddFloat, "add-float", F23x, None),
    (0xa7, SubFloat, "sub-float", F23x, None),
    (0xa8, MulFloat, "mul-float", F23x, None),
    (0xa9, DivFloat, "div-float", F23x, None),
    (0xaa, RemFloat, "rem-float", F23x, None),
    (0xab, AddDouble, "add-double", F23x, None),
    (0xac, SubDouble, "sub-double", F23x, None),
    (0xad, MulDouble, "mul-double", F23x, None),
    (0xae, DivDouble, "div-double", F23x, None),
    (0xaf, RemDouble, "rem-double", F23x, None),
    (0xb0, AddInt2addr, "add-int/2addr", F12x, None),
    (0xb1, SubInt2addr, "sub-int/2addr", F12x, None),
    (0xb2, MulInt2addr, "mul-int/2addr", F12x, None),
    (0xb3, DivInt2addr, "div-int/2addr", F12x, None),
    (0xb4, RemInt2addr, "rem-int/2addr", F12x, None),
    (0xb5, AndInt2addr, "and-int/2addr", F12x, None),
    (0xb6, OrInt2addr, "or-int/2addr", F12x, None),
    (0xb7, XorInt2addr, "xor-int/2addr", F12x, None),
    (0xb8, ShlInt2addr, "shl-int/2addr", F12x, None),
    (0xb9, ShrInt2addr, "shr-int/2addr", F12x, None),
    (0xba, UshrInt2addr, "ushr-int/2addr", F12x, None),
    (0xbb, AddLong2addr, "add-long/2addr", F12x, None),
    (0xbc, SubLong2addr, "sub-long/2addr", F12x, None),
    (0xbd, MulLong2addr, "mul-long/2addr", F12x, None),
    (0xbe, DivLong2addr, "div-long/2addr", F12x, None),
    (0xbf, RemLong2addr, "rem-long/2addr", F12x, None),
    (0xc0, AndLong2addr, "and-long/2addr", F12x, None),
    (0xc1, OrLong2addr, "or-long/2addr", F12x, None),
    (0xc2, XorLong2addr, "xor-long/2addr", F12x, None),
    (0xc3, ShlLong2addr, "shl-long/2addr", F12x, None),
    (0xc4, ShrLong2addr, "shr-long/2addr", F12x, None),
    (0xc5, UshrLong2addr, "ushr-long/2addr", F12x, None),
    (0xc6, AddFloat2addr, "add-float/2addr", F12x, None),
    (0xc7, SubFloat2addr, "sub-float/2addr", F12x, None),
    (0xc8, MulFloat2addr, "mul-float/2addr", F12x, None),
    (0xc9, DivFloat2addr, "div-float/2addr", F12x, None),
    (0xca, RemFloat2addr, "rem-float/2addr", F12x, None),
    (0xcb, AddDouble2addr, "add-double/2addr", F12x, None),
    (0xcc, SubDouble2addr, "sub-double/2addr", F12x, None),
    (0xcd, MulDouble2addr, "mul-double/2addr", F12x, None),
    (0xce, DivDouble2addr, "div-double/2addr", F12x, None),
    (0xcf, RemDouble2addr, "rem-double/2addr", F12x, None),
    (0xd0, AddIntLit16, "add-int/lit16", F22s, None),
    (0xd1, RsubInt, "rsub-int", F22s, None),
    (0xd2, MulIntLit16, "mul-int/lit16", F22s, None),
    (0xd3, DivIntLit16, "div-int/lit16", F22s, None),
    (0xd4, RemIntLit16, "rem-int/lit16", F22s, None),
    (0xd5, AndIntLit16, "and-int/lit16", F22s, None),
    (0xd6, OrIntLit16, "or-int/lit16", F22s, None),
    (0xd7, XorIntLit16, "xor-int/lit16", F22s, None),
    (0xd8, AddIntLit8, "add-int/lit8", F22b, None),
    (0xd9, RsubIntLit8, "rsub-int/lit8", F22b, None),
    (0xda, MulIntLit8, "mul-int/lit8", F22b, None),
    (0xdb, DivIntLit8, "div-int/lit8", F22b, None),
    (0xdc, RemIntLit8, "rem-int/lit8", F22b, None),
    (0xdd, AndIntLit8, "and-int/lit8", F22b, None),
    (0xde, OrIntLit8, "or-int/lit8", F22b, None),
    (0xdf, XorIntLit8, "xor-int/lit8", F22b, None),
    (0xe0, ShlIntLit8, "shl-int/lit8", F22b, None),
    (0xe1, ShrIntLit8, "shr-int/lit8", F22b, None),
    (0xe2, UshrIntLit8, "ushr-int/lit8", F22b, None),
}

impl Opcode {
    /// Whether this instruction unconditionally transfers control (no
    /// fall-through).
    pub const fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::ReturnVoid
                | Opcode::Return
                | Opcode::ReturnWide
                | Opcode::ReturnObject
                | Opcode::Throw
                | Opcode::Goto
                | Opcode::Goto16
                | Opcode::Goto32
        )
    }

    /// Whether this is a conditional branch (`if-*`).
    pub const fn is_conditional_branch(self) -> bool {
        (self as u8) >= 0x32 && (self as u8) <= 0x3d
    }

    /// Whether this is any invoke instruction.
    pub const fn is_invoke(self) -> bool {
        matches!(
            self,
            Opcode::InvokeVirtual
                | Opcode::InvokeSuper
                | Opcode::InvokeDirect
                | Opcode::InvokeStatic
                | Opcode::InvokeInterface
                | Opcode::InvokeVirtualRange
                | Opcode::InvokeSuperRange
                | Opcode::InvokeDirectRange
                | Opcode::InvokeStaticRange
                | Opcode::InvokeInterfaceRange
        )
    }

    /// Whether this is any return instruction.
    pub const fn is_return(self) -> bool {
        matches!(
            self,
            Opcode::ReturnVoid | Opcode::Return | Opcode::ReturnWide | Opcode::ReturnObject
        )
    }

    /// Whether this is a relative-branch instruction (goto, if, or a
    /// payload-referencing 31t instruction).
    pub const fn has_branch_target(self) -> bool {
        matches!(
            self,
            Opcode::Goto
                | Opcode::Goto16
                | Opcode::Goto32
                | Opcode::PackedSwitch
                | Opcode::SparseSwitch
                | Opcode::FillArrayData
        ) || self.is_conditional_branch()
    }

    /// Whether this instruction can raise a Java exception (and therefore
    /// transfer control to an enclosing catch handler): `throw`, invokes,
    /// allocation and resolution (`new-*`, `const-string`/`const-class`,
    /// `check-cast`, `instance-of`), monitor ops, field and array accesses,
    /// and integer division/remainder.
    pub const fn can_throw(self) -> bool {
        let v = self as u8;
        self.is_invoke()
            || matches!(
                self,
                Opcode::Throw
                    | Opcode::MonitorEnter
                    | Opcode::MonitorExit
                    | Opcode::CheckCast
                    | Opcode::InstanceOf
                    | Opcode::ArrayLength
                    | Opcode::NewInstance
                    | Opcode::NewArray
                    | Opcode::FilledNewArray
                    | Opcode::FilledNewArrayRange
                    | Opcode::FillArrayData
                    | Opcode::ConstString
                    | Opcode::ConstStringJumbo
                    | Opcode::ConstClass
                    // div-int/rem-int, div-long/rem-long (+/2addr, lit16, lit8).
                    | Opcode::DivInt
                    | Opcode::RemInt
                    | Opcode::DivLong
                    | Opcode::RemLong
                    | Opcode::DivInt2addr
                    | Opcode::RemInt2addr
                    | Opcode::DivLong2addr
                    | Opcode::RemLong2addr
                    | Opcode::DivIntLit16
                    | Opcode::RemIntLit16
                    | Opcode::DivIntLit8
                    | Opcode::RemIntLit8
            )
            // aget*/aput* (0x44-0x51), iget*/iput* (0x52-0x5f),
            // sget*/sput* (0x60-0x6d).
            || (v >= 0x44 && v <= 0x6d)
    }
}

/// Payload pseudo-opcode identifiers (the high byte of a unit whose low byte
/// is 0x00).
pub mod payload {
    /// `packed-switch-payload` identifier unit.
    pub const PACKED_SWITCH: u16 = 0x0100;
    /// `sparse-switch-payload` identifier unit.
    pub const SPARSE_SWITCH: u16 = 0x0200;
    /// `fill-array-data-payload` identifier unit.
    pub const FILL_ARRAY_DATA: u16 = 0x0300;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_match_opcode_bytes() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
    }

    #[test]
    fn unused_gaps_are_unknown() {
        for byte in [0x3eu8, 0x43, 0x73, 0x79, 0x7a, 0xe3, 0xff] {
            assert_eq!(Opcode::from_u8(byte), None, "{byte:#x} should be unused");
        }
    }

    #[test]
    fn table_has_expected_size() {
        // 256 minus the unused gaps: 0x3e-0x43 (6), 0x73 (1), 0x79-0x7a (2),
        // 0xe3-0xff (29).
        assert_eq!(Opcode::ALL.len(), 256 - 6 - 1 - 2 - 29);
    }

    #[test]
    fn classification_helpers() {
        assert!(Opcode::Goto.is_terminator());
        assert!(Opcode::ReturnVoid.is_terminator());
        assert!(!Opcode::IfEq.is_terminator());
        assert!(Opcode::IfEq.is_conditional_branch());
        assert!(Opcode::IfLez.is_conditional_branch());
        assert!(!Opcode::Goto.is_conditional_branch());
        assert!(Opcode::InvokeStatic.is_invoke());
        assert!(Opcode::InvokeInterfaceRange.is_invoke());
        assert!(!Opcode::Nop.is_invoke());
        assert!(Opcode::PackedSwitch.has_branch_target());
        assert!(Opcode::IfEqz.has_branch_target());
        assert!(!Opcode::AddInt.has_branch_target());
    }

    #[test]
    fn index_kinds() {
        assert_eq!(Opcode::ConstString.index_kind(), IndexKind::String);
        assert_eq!(Opcode::NewInstance.index_kind(), IndexKind::Type);
        assert_eq!(Opcode::Iget.index_kind(), IndexKind::Field);
        assert_eq!(Opcode::InvokeVirtual.index_kind(), IndexKind::Method);
        assert_eq!(Opcode::AddInt.index_kind(), IndexKind::None);
    }

    #[test]
    fn format_lengths() {
        assert_eq!(Opcode::Nop.format().units(), 1);
        assert_eq!(Opcode::ConstString.format().units(), 2);
        assert_eq!(Opcode::InvokeVirtual.format().units(), 3);
        assert_eq!(Opcode::ConstWide.format().units(), 5);
    }
}
