//! Encoding [`Insn`] / [`Decoded`] values back into 16-bit code units.

use crate::insn::{Decoded, Insn};
use crate::opcode::{payload, Format, Opcode};
use crate::{DalvikError, Result};

fn check(cond: bool, mnemonic: &'static str, operand: &'static str, value: i64) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(DalvikError::OperandRange {
            mnemonic,
            operand,
            value,
        })
    }
}

fn reg4(insn: &Insn, operand: &'static str, v: u32) -> Result<u16> {
    check(v <= 0xf, insn.op.mnemonic(), operand, i64::from(v))?;
    Ok(v as u16)
}

fn reg8(insn: &Insn, operand: &'static str, v: u32) -> Result<u16> {
    check(v <= 0xff, insn.op.mnemonic(), operand, i64::from(v))?;
    Ok(v as u16)
}

fn reg16(insn: &Insn, operand: &'static str, v: u32) -> Result<u16> {
    check(v <= 0xffff, insn.op.mnemonic(), operand, i64::from(v))?;
    Ok(v as u16)
}

/// Encodes a single instruction into code units.
///
/// # Errors
///
/// Returns [`DalvikError::OperandRange`] when an operand does not fit the
/// opcode's encoding format (e.g. a register above v15 in a `12x`
/// instruction), and [`DalvikError::BranchOutOfRange`] for oversized branch
/// offsets.
///
/// # Example
///
/// ```
/// use dexlego_dalvik::{encode_insn, insn::Insn, Opcode};
/// let mut insn = Insn::of(Opcode::Const4);
/// insn.a = 0;
/// insn.lit = 7;
/// assert_eq!(encode_insn(&insn).unwrap(), vec![0x7012]);
/// ```
pub fn encode_insn(insn: &Insn) -> Result<Vec<u16>> {
    let op = insn.op as u8 as u16;
    let m = insn.op.mnemonic();
    Ok(match insn.op.format() {
        Format::F10x => vec![op],
        Format::F12x => {
            let a = reg4(insn, "vA", insn.a)?;
            let b = reg4(insn, "vB", insn.b)?;
            vec![op | (a << 8) | (b << 12)]
        }
        Format::F11n => {
            let a = reg4(insn, "vA", insn.a)?;
            check((-8..=7).contains(&insn.lit), m, "literal", insn.lit)?;
            let b = (insn.lit as u16) & 0xf;
            vec![op | (a << 8) | (b << 12)]
        }
        Format::F11x => {
            let a = reg8(insn, "vA", insn.a)?;
            vec![op | (a << 8)]
        }
        Format::F10t => {
            let off = i64::from(insn.off);
            if !(-128..=127).contains(&off) {
                return Err(DalvikError::BranchOutOfRange {
                    mnemonic: m,
                    offset: off,
                });
            }
            vec![op | (((insn.off as i8) as u8 as u16) << 8)]
        }
        Format::F20t => {
            let off = i64::from(insn.off);
            if !(-32768..=32767).contains(&off) {
                return Err(DalvikError::BranchOutOfRange {
                    mnemonic: m,
                    offset: off,
                });
            }
            vec![op, insn.off as i16 as u16]
        }
        Format::F22x => {
            let a = reg8(insn, "vA", insn.a)?;
            let b = reg16(insn, "vB", insn.b)?;
            vec![op | (a << 8), b]
        }
        Format::F21t => {
            let a = reg8(insn, "vA", insn.a)?;
            let off = i64::from(insn.off);
            if !(-32768..=32767).contains(&off) {
                return Err(DalvikError::BranchOutOfRange {
                    mnemonic: m,
                    offset: off,
                });
            }
            vec![op | (a << 8), insn.off as i16 as u16]
        }
        Format::F21s => {
            let a = reg8(insn, "vA", insn.a)?;
            check((-32768..=32767).contains(&insn.lit), m, "literal", insn.lit)?;
            vec![op | (a << 8), insn.lit as i16 as u16]
        }
        Format::F21h => {
            let a = reg8(insn, "vA", insn.a)?;
            let shift = if insn.op == Opcode::ConstWideHigh16 {
                48
            } else {
                16
            };
            let mask = (1i64 << shift) - 1;
            check(insn.lit & mask == 0, m, "literal", insn.lit)?;
            vec![op | (a << 8), (insn.lit >> shift) as i16 as u16]
        }
        Format::F21c => {
            let a = reg8(insn, "vA", insn.a)?;
            check(insn.idx <= 0xffff, m, "index", i64::from(insn.idx))?;
            vec![op | (a << 8), insn.idx as u16]
        }
        Format::F23x => {
            let a = reg8(insn, "vA", insn.a)?;
            let b = reg8(insn, "vB", insn.b)?;
            let c = reg8(insn, "vC", insn.c)?;
            vec![op | (a << 8), b | (c << 8)]
        }
        Format::F22b => {
            let a = reg8(insn, "vA", insn.a)?;
            let b = reg8(insn, "vB", insn.b)?;
            check((-128..=127).contains(&insn.lit), m, "literal", insn.lit)?;
            vec![op | (a << 8), b | (((insn.lit as i8) as u8 as u16) << 8)]
        }
        Format::F22t => {
            let a = reg4(insn, "vA", insn.a)?;
            let b = reg4(insn, "vB", insn.b)?;
            let off = i64::from(insn.off);
            if !(-32768..=32767).contains(&off) {
                return Err(DalvikError::BranchOutOfRange {
                    mnemonic: m,
                    offset: off,
                });
            }
            vec![op | (a << 8) | (b << 12), insn.off as i16 as u16]
        }
        Format::F22s => {
            let a = reg4(insn, "vA", insn.a)?;
            let b = reg4(insn, "vB", insn.b)?;
            check((-32768..=32767).contains(&insn.lit), m, "literal", insn.lit)?;
            vec![op | (a << 8) | (b << 12), insn.lit as i16 as u16]
        }
        Format::F22c => {
            let a = reg4(insn, "vA", insn.a)?;
            let b = reg4(insn, "vB", insn.b)?;
            check(insn.idx <= 0xffff, m, "index", i64::from(insn.idx))?;
            vec![op | (a << 8) | (b << 12), insn.idx as u16]
        }
        Format::F32x => {
            let a = reg16(insn, "vA", insn.a)?;
            let b = reg16(insn, "vB", insn.b)?;
            vec![op, a, b]
        }
        Format::F30t => {
            let off = insn.off as u32;
            vec![op, (off & 0xffff) as u16, (off >> 16) as u16]
        }
        Format::F31t => {
            let a = reg8(insn, "vA", insn.a)?;
            let off = insn.off as u32;
            vec![op | (a << 8), (off & 0xffff) as u16, (off >> 16) as u16]
        }
        Format::F31i => {
            let a = reg8(insn, "vA", insn.a)?;
            check(
                i64::from(insn.lit as i32) == insn.lit,
                m,
                "literal",
                insn.lit,
            )?;
            let v = insn.lit as i32 as u32;
            vec![op | (a << 8), (v & 0xffff) as u16, (v >> 16) as u16]
        }
        Format::F31c => {
            let a = reg8(insn, "vA", insn.a)?;
            vec![
                op | (a << 8),
                (insn.idx & 0xffff) as u16,
                (insn.idx >> 16) as u16,
            ]
        }
        Format::F35c => {
            check(
                insn.regs.len() <= 5,
                m,
                "argument count",
                insn.regs.len() as i64,
            )?;
            check(insn.idx <= 0xffff, m, "index", i64::from(insn.idx))?;
            let count = insn.regs.len() as u16;
            let mut nibbles = [0u16; 5];
            for (i, &r) in insn.regs.iter().enumerate() {
                check(r <= 0xf, m, "argument register", i64::from(r))?;
                nibbles[i] = r as u16;
            }
            let g = nibbles[4];
            vec![
                op | (count << 12) | (g << 8),
                insn.idx as u16,
                nibbles[0] | (nibbles[1] << 4) | (nibbles[2] << 8) | (nibbles[3] << 12),
            ]
        }
        Format::F3rc => {
            check(
                insn.regs.len() <= 0xff,
                m,
                "argument count",
                insn.regs.len() as i64,
            )?;
            check(insn.idx <= 0xffff, m, "index", i64::from(insn.idx))?;
            let start = insn.regs.first().copied().unwrap_or(0);
            for (i, &r) in insn.regs.iter().enumerate() {
                check(
                    r == start + i as u32,
                    m,
                    "argument registers (must be consecutive)",
                    i64::from(r),
                )?;
            }
            check(start <= 0xffff, m, "start register", i64::from(start))?;
            vec![
                op | ((insn.regs.len() as u16) << 8),
                insn.idx as u16,
                start as u16,
            ]
        }
        Format::F51l => {
            let a = reg8(insn, "vA", insn.a)?;
            let v = insn.lit as u64;
            vec![
                op | (a << 8),
                (v & 0xffff) as u16,
                ((v >> 16) & 0xffff) as u16,
                ((v >> 32) & 0xffff) as u16,
                ((v >> 48) & 0xffff) as u16,
            ]
        }
    })
}

/// Encodes a decoded element (instruction or payload) into code units.
///
/// # Errors
///
/// See [`encode_insn`]; payloads additionally reject odd element widths.
pub fn encode_decoded(d: &Decoded) -> Result<Vec<u16>> {
    match d {
        Decoded::Insn(insn) => encode_insn(insn),
        Decoded::PackedSwitchPayload { first_key, targets } => {
            let mut out = vec![
                payload::PACKED_SWITCH,
                targets.len() as u16,
                (*first_key as u32 & 0xffff) as u16,
                (*first_key as u32 >> 16) as u16,
            ];
            for &t in targets {
                out.push((t as u32 & 0xffff) as u16);
                out.push((t as u32 >> 16) as u16);
            }
            Ok(out)
        }
        Decoded::SparseSwitchPayload { keys, targets } => {
            if keys.len() != targets.len() {
                return Err(DalvikError::BadPayload("sparse switch key/target mismatch"));
            }
            let mut out = vec![payload::SPARSE_SWITCH, keys.len() as u16];
            for &k in keys {
                out.push((k as u32 & 0xffff) as u16);
                out.push((k as u32 >> 16) as u16);
            }
            for &t in targets {
                out.push((t as u32 & 0xffff) as u16);
                out.push((t as u32 >> 16) as u16);
            }
            Ok(out)
        }
        Decoded::FillArrayDataPayload {
            element_width,
            data,
        } => {
            if *element_width == 0 || data.len() % *element_width as usize != 0 {
                return Err(DalvikError::BadPayload("fill-array-data size mismatch"));
            }
            let size = (data.len() / *element_width as usize) as u32;
            let mut out = vec![
                payload::FILL_ARRAY_DATA,
                *element_width,
                (size & 0xffff) as u16,
                (size >> 16) as u16,
            ];
            let mut iter = data.chunks_exact(2);
            for pair in &mut iter {
                out.push(u16::from(pair[0]) | (u16::from(pair[1]) << 8));
            }
            if let [last] = iter.remainder() {
                out.push(u16::from(*last));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_insn;

    #[test]
    fn operand_range_enforced() {
        let mut insn = Insn::of(Opcode::Move); // 12x: 4-bit regs
        insn.a = 16;
        assert!(matches!(
            encode_insn(&insn),
            Err(DalvikError::OperandRange { .. })
        ));
    }

    #[test]
    fn branch_range_enforced() {
        let mut insn = Insn::of(Opcode::Goto);
        insn.off = 1000;
        assert!(matches!(
            encode_insn(&insn),
            Err(DalvikError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn const4_literal_range() {
        let mut insn = Insn::of(Opcode::Const4);
        insn.lit = 8;
        assert!(encode_insn(&insn).is_err());
        insn.lit = -8;
        assert!(encode_insn(&insn).is_ok());
    }

    #[test]
    fn high16_requires_clear_low_bits() {
        let mut insn = Insn::of(Opcode::ConstHigh16);
        insn.lit = 0x1234_0000;
        assert!(encode_insn(&insn).is_ok());
        insn.lit = 0x1234_0001;
        assert!(encode_insn(&insn).is_err());
    }

    #[test]
    fn range_invoke_requires_consecutive_regs() {
        let mut insn = Insn::of(Opcode::InvokeStaticRange);
        insn.regs = vec![3, 4, 6];
        assert!(encode_insn(&insn).is_err());
        insn.regs = vec![3, 4, 5];
        assert!(encode_insn(&insn).is_ok());
    }

    #[test]
    fn payload_roundtrips() {
        for p in [
            Decoded::PackedSwitchPayload {
                first_key: -5,
                targets: vec![3, -9, 100000],
            },
            Decoded::SparseSwitchPayload {
                keys: vec![-100, 0, 77],
                targets: vec![5, 6, 7],
            },
            Decoded::FillArrayDataPayload {
                element_width: 4,
                data: vec![1, 2, 3, 4, 5, 6, 7, 8],
            },
            Decoded::FillArrayDataPayload {
                element_width: 1,
                data: vec![9, 8, 7],
            },
        ] {
            let units = encode_decoded(&p).unwrap();
            let back = decode_insn(&units, 0).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn wide_literal_roundtrip() {
        let mut insn = Insn::of(Opcode::ConstWide);
        insn.a = 2;
        insn.lit = -0x1122_3344_5566_7788;
        let units = encode_insn(&insn).unwrap();
        let back = decode_insn(&units, 0).unwrap();
        assert_eq!(back.as_insn().unwrap().lit, insn.lit);
    }
}
