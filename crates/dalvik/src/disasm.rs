//! Smali-flavoured disassembly for diagnostics and manual verification.
//!
//! The paper verifies reassembled output by manually comparing smali; this
//! module provides the equivalent textual view for our DEX models.

use dexlego_dex::DexFile;

use crate::decode::decode_method;
use crate::insn::{Decoded, Insn};
use crate::opcode::{Format, IndexKind};

/// Renders one instruction at `addr` as a smali-like line.
///
/// Pool indices are resolved against `dex` when provided.
pub fn format_insn(insn: &Insn, addr: u32, dex: Option<&DexFile>) -> String {
    let mut s = format!("{:04x}: {}", addr, insn.op.mnemonic());
    match insn.op.format() {
        Format::F10x => {}
        Format::F12x => s.push_str(&format!(" v{}, v{}", insn.a, insn.b)),
        Format::F11n => s.push_str(&format!(" v{}, #{}", insn.a, insn.lit)),
        Format::F11x => s.push_str(&format!(" v{}", insn.a)),
        Format::F10t | Format::F20t | Format::F30t => {
            s.push_str(&format!(" -> {:04x}", insn.target(addr)))
        }
        Format::F22x | Format::F32x => s.push_str(&format!(" v{}, v{}", insn.a, insn.b)),
        Format::F21t => s.push_str(&format!(" v{}, -> {:04x}", insn.a, insn.target(addr))),
        Format::F21s | Format::F31i | Format::F51l => {
            s.push_str(&format!(" v{}, #{}", insn.a, insn.lit))
        }
        Format::F21h => s.push_str(&format!(" v{}, #{:#x}", insn.a, insn.lit)),
        Format::F21c | Format::F31c => {
            s.push_str(&format!(" v{}, {}", insn.a, describe_index(insn, dex)))
        }
        Format::F23x => s.push_str(&format!(" v{}, v{}, v{}", insn.a, insn.b, insn.c)),
        Format::F22b | Format::F22s => {
            s.push_str(&format!(" v{}, v{}, #{}", insn.a, insn.b, insn.lit))
        }
        Format::F22t => s.push_str(&format!(
            " v{}, v{}, -> {:04x}",
            insn.a,
            insn.b,
            insn.target(addr)
        )),
        Format::F22c => s.push_str(&format!(
            " v{}, v{}, {}",
            insn.a,
            insn.b,
            describe_index(insn, dex)
        )),
        Format::F31t => s.push_str(&format!(" v{}, payload@{:04x}", insn.a, insn.target(addr))),
        Format::F35c | Format::F3rc => {
            let regs: Vec<String> = insn.regs.iter().map(|r| format!("v{r}")).collect();
            s.push_str(&format!(
                " {{{}}}, {}",
                regs.join(", "),
                describe_index(insn, dex)
            ));
        }
    }
    s
}

/// Renders an instruction executing under an internal quickened or fused
/// dispatch byte (see [`crate::quick`]). Falls back to the plain rendering
/// for ordinary opcode bytes, and never panics: unknown internal bytes are
/// printed as `<internal NN>+quick` rather than misread as opcodes.
///
/// `data` is the cell's pre-resolved operand (field/method id, interned
/// object, or switch-table index); it is always labelled `data@` so a
/// resolved index can never be mistaken for a raw constant-pool index.
pub fn format_quick_insn(
    byte: u8,
    insn: &Insn,
    addr: u32,
    data: Option<u32>,
    dex: Option<&DexFile>,
) -> String {
    let Some(name) = crate::quick::name(byte) else {
        if byte == insn.op as u8 {
            return format_insn(insn, addr, dex);
        }
        return format!("{addr:04x}: <internal {byte:#04x}>+quick");
    };
    let mut s = format!("{addr:04x}: {name}");
    if crate::quick::is_fused(byte) {
        s.push_str(&format!(" head={}", insn.op.mnemonic()));
    } else {
        let regs: Vec<String> = insn.registers().iter().map(|r| format!("v{r}")).collect();
        if !regs.is_empty() {
            s.push_str(&format!(" {{{}}}", regs.join(", ")));
        }
    }
    match data {
        Some(d) => s.push_str(&format!(" data@{d}")),
        None => s.push_str(" data@?"),
    }
    s
}

fn describe_index(insn: &Insn, dex: Option<&DexFile>) -> String {
    let idx = insn.idx;
    match (insn.op.index_kind(), dex) {
        (IndexKind::String, Some(d)) => d
            .string(idx)
            .map(|s| format!("\"{s}\""))
            .unwrap_or_else(|_| format!("string@{idx}")),
        (IndexKind::Type, Some(d)) => d
            .type_descriptor(idx)
            .map(str::to_owned)
            .unwrap_or_else(|_| format!("type@{idx}")),
        (IndexKind::Field, Some(d)) => d
            .field_signature(idx)
            .unwrap_or_else(|_| format!("field@{idx}")),
        (IndexKind::Method, Some(d)) => d
            .method_signature(idx)
            .unwrap_or_else(|_| format!("method@{idx}")),
        (IndexKind::String, None) => format!("string@{idx}"),
        (IndexKind::Type, None) => format!("type@{idx}"),
        (IndexKind::Field, None) => format!("field@{idx}"),
        (IndexKind::Method, None) => format!("method@{idx}"),
        (IndexKind::None, _) => format!("@{idx}"),
    }
}

/// Disassembles a whole method body into lines; undecodable tails are
/// rendered as `.data` lines rather than failing.
pub fn disassemble(code: &[u16], dex: Option<&DexFile>) -> Vec<String> {
    match decode_method(code) {
        Ok(insns) => insns
            .into_iter()
            .map(|(addr, d)| match d {
                Decoded::Insn(insn) => format_insn(&insn, addr, dex),
                Decoded::PackedSwitchPayload { first_key, targets } => {
                    format!("{addr:04x}: .packed-switch first={first_key} targets={targets:?}")
                }
                Decoded::SparseSwitchPayload { keys, targets } => {
                    format!("{addr:04x}: .sparse-switch keys={keys:?} targets={targets:?}")
                }
                Decoded::FillArrayDataPayload {
                    element_width,
                    data,
                } => format!(
                    "{addr:04x}: .array-data width={element_width} bytes={}",
                    data.len()
                ),
            })
            .collect(),
        Err(_) => vec![format!(".data {} units (not decodable)", code.len())],
    }
}

/// Dumps a whole DEX as smali-flavoured text (classes, fields, methods,
/// bodies) — the artifact the paper's RQ1 compares manually against source.
pub fn dump_dex(dex: &DexFile) -> String {
    let mut out = String::new();
    for class in dex.class_defs() {
        let desc = dex
            .type_descriptor(class.class_idx)
            .unwrap_or("<bad class>");
        out.push_str(&format!(".class {} {desc}\n", class.access));
        if let Some(sup) = class.superclass {
            if let Ok(s) = dex.type_descriptor(sup) {
                out.push_str(&format!(".super {s}\n"));
            }
        }
        for &iface in &class.interfaces {
            if let Ok(i) = dex.type_descriptor(iface) {
                out.push_str(&format!(".implements {i}\n"));
            }
        }
        if let Some(data) = &class.class_data {
            for field in data.fields() {
                if let Ok(sig) = dex.field_signature(field.field_idx) {
                    out.push_str(&format!(".field {} {sig}\n", field.access));
                }
            }
            for method in data.methods() {
                let sig = dex
                    .method_signature(method.method_idx)
                    .unwrap_or_else(|_| "<bad method>".to_owned());
                out.push_str(&format!("\n.method {} {sig}\n", method.access));
                if let Some(code) = &method.code {
                    out.push_str(&format!(
                        "    .registers {} (.ins {})\n",
                        code.registers_size, code.ins_size
                    ));
                    for line in disassemble(&code.insns, Some(dex)) {
                        out.push_str("    ");
                        out.push_str(&line);
                        out.push('\n');
                    }
                    for (i, t) in code.tries.iter().enumerate() {
                        out.push_str(&format!(
                            "    .try {:04x}..{:04x} handler#{}\n",
                            t.start_addr,
                            t.start_addr + u32::from(t.insn_count),
                            i
                        ));
                    }
                }
                out.push_str(".end method\n");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::MethodAssembler;
    use crate::opcode::Opcode;

    #[test]
    fn dump_dex_renders_structure() {
        let mut pb = crate::builder::ProgramBuilder::new();
        pb.class("Ldump/Main;", |c| {
            c.superclass("Landroid/app/Activity;");
            c.static_field("N", "I", Some(crate::builder::StaticInit::Int(3)));
            c.static_method("go", &[], "V", 2, |m| {
                m.const_str(0, "hello-dump");
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        let dex = pb.build().unwrap();
        let text = dump_dex(&dex);
        assert!(text.contains(".class"), "{text}");
        assert!(text.contains("Ldump/Main;"));
        assert!(text.contains(".super Landroid/app/Activity;"));
        assert!(text.contains("Ldump/Main;->N:I"));
        assert!(text.contains("Ldump/Main;->go()V"));
        assert!(text.contains("\"hello-dump\""));
        assert!(text.contains("return-void"));
    }

    #[test]
    fn formats_resolve_pool_entries() {
        let mut dex = DexFile::new();
        let s = dex.intern_string("hello");
        let m = dex.intern_method("La;", "go", "V", &[]);
        let mut asm = MethodAssembler::new();
        asm.const_string(0, s);
        asm.invoke(Opcode::InvokeStatic, m, &[]);
        asm.ret(Opcode::ReturnVoid, 0);
        let units = asm.assemble().unwrap();
        let lines = disassemble(&units, Some(&dex));
        assert!(lines[0].contains("\"hello\""), "{lines:?}");
        assert!(lines[1].contains("La;->go()V"), "{lines:?}");
        assert!(lines[2].contains("return-void"));
    }

    #[test]
    fn branch_targets_absolute() {
        let mut asm = MethodAssembler::new();
        let end = asm.new_label();
        asm.if_z(Opcode::IfEqz, 0, end);
        asm.nop();
        asm.bind(end);
        asm.ret(Opcode::ReturnVoid, 0);
        let units = asm.assemble().unwrap();
        let lines = disassemble(&units, None);
        assert!(lines[0].contains("-> 0003"), "{lines:?}");
    }

    #[test]
    fn undecodable_rendered_as_data() {
        let lines = disassemble(&[0xffff, 0x1234], None);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("not decodable"));
    }

    #[test]
    fn quick_forms_render_with_marker() {
        let mut iget = Insn::of(Opcode::Iget);
        iget.a = 0;
        iget.b = 1;
        iget.idx = 9;
        let line = format_quick_insn(crate::quick::IGET_QUICK, &iget, 4, Some(12), None);
        assert!(line.contains("iget+quick"), "{line}");
        assert!(line.contains("data@12"), "{line}");
        assert!(line.starts_with("0004:"), "{line}");

        // Fused heads name the superinstruction and the head opcode.
        let mut add = Insn::of(Opcode::AddInt);
        add.a = 0;
        let line = format_quick_insn(crate::quick::FUSE_ALU_ALU, &add, 2, None, None);
        assert!(line.contains("fused[alu,alu]+quick"), "{line}");
        assert!(line.contains("add-int"), "{line}");

        // A resolved slot that has not quickened yet never prints a bare
        // index; unknown internal bytes never panic.
        let line = format_quick_insn(0xff, &iget, 0, None, None);
        assert!(line.contains("+quick"), "{line}");
        // A plain opcode byte routes to the ordinary renderer.
        let line = format_quick_insn(Opcode::Iget as u8, &iget, 0, None, None);
        assert!(line.contains("iget"), "{line}");
        assert!(!line.contains("+quick"), "{line}");
    }
}
