//! High-level program builder: construct [`DexFile`]s from class and method
//! specifications without touching raw pool indices.
//!
//! Used by the benchmark corpus generators, the packer shells, and tests.
//!
//! # Example
//!
//! ```
//! use dexlego_dalvik::builder::ProgramBuilder;
//! use dexlego_dalvik::Opcode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new();
//! pb.class("Lcom/example/Calc;", |c| {
//!     c.static_method("double", &["I"], "I", 1, |m| {
//!         let x = m.param_reg(0);
//!         m.asm.binop(Opcode::AddInt, 0, x, x);
//!         m.asm.ret(Opcode::Return, 0);
//!     });
//! });
//! let dex = pb.build()?;
//! assert!(dex.find_class("Lcom/example/Calc;").is_some());
//! # Ok(())
//! # }
//! ```

use dexlego_dex::file::{EncodedField, EncodedMethod};
use dexlego_dex::value::EncodedValue;
use dexlego_dex::{AccessFlags, ClassDef, CodeItem, DexFile};

use crate::asm::MethodAssembler;
use crate::opcode::Opcode;
use crate::Result;

/// Initial value for a static field.
#[derive(Debug, Clone)]
pub enum StaticInit {
    /// A string constant.
    Str(String),
    /// An integer constant.
    Int(i32),
    /// A boolean constant.
    Bool(bool),
}

struct FieldSpec {
    name: String,
    type_desc: String,
    access: AccessFlags,
    is_static: bool,
    init: Option<StaticInit>,
}

struct MethodSpec {
    name: String,
    params: Vec<String>,
    return_type: String,
    access: AccessFlags,
    locals: u16,
    body: Option<MethodAssembler>,
    outs_hint: u16,
}

/// Builder for one class.
pub struct ClassBuilder<'a> {
    dex: &'a mut DexFile,
    descriptor: String,
    superclass: String,
    interfaces: Vec<String>,
    access: AccessFlags,
    fields: Vec<FieldSpec>,
    methods: Vec<MethodSpec>,
}

/// Builder for one method body; wraps a [`MethodAssembler`] plus pool
/// interning and the register-layout conventions (parameters in the highest
/// registers, as in real DEX).
pub struct MethodBuilder<'a> {
    /// The underlying assembler; use directly for anything not covered by
    /// the helpers.
    pub asm: MethodAssembler,
    dex: &'a mut DexFile,
    locals: u16,
    is_static: bool,
    params: Vec<String>,
}

impl MethodBuilder<'_> {
    /// The register holding `this` (instance methods only).
    pub fn this_reg(&self) -> u32 {
        debug_assert!(!self.is_static);
        u32::from(self.locals)
    }

    /// The first register of parameter `i` (0-based, not counting `this`).
    pub fn param_reg(&self, i: usize) -> u32 {
        let mut r = u32::from(self.locals) + u32::from(!self.is_static);
        for p in &self.params[..i] {
            r += if p == "J" || p == "D" { 2 } else { 1 };
        }
        r
    }

    /// Interns a string and loads it: `const-string vreg, "s"`.
    pub fn const_str(&mut self, reg: u32, s: &str) {
        let idx = self.dex.intern_string(s);
        self.asm.const_string(reg, idx);
    }

    /// `sget-object`-style load of a static field.
    pub fn sget(&mut self, op: Opcode, reg: u32, class: &str, name: &str, ty: &str) {
        let idx = self.dex.intern_field(class, ty, name);
        self.asm.field_op(op, reg, 0, idx);
    }

    /// `sput`-style store to a static field.
    pub fn sput(&mut self, op: Opcode, reg: u32, class: &str, name: &str, ty: &str) {
        let idx = self.dex.intern_field(class, ty, name);
        self.asm.field_op(op, reg, 0, idx);
    }

    /// `iget`-style load of an instance field.
    pub fn iget(&mut self, op: Opcode, dst: u32, obj: u32, class: &str, name: &str, ty: &str) {
        let idx = self.dex.intern_field(class, ty, name);
        self.asm.field_op(op, dst, obj, idx);
    }

    /// `iput`-style store to an instance field.
    pub fn iput(&mut self, op: Opcode, src: u32, obj: u32, class: &str, name: &str, ty: &str) {
        let idx = self.dex.intern_field(class, ty, name);
        self.asm.field_op(op, src, obj, idx);
    }

    /// An invoke with full signature interning.
    pub fn invoke(
        &mut self,
        op: Opcode,
        class: &str,
        name: &str,
        params: &[&str],
        ret: &str,
        regs: &[u32],
    ) {
        let idx = self.dex.intern_method(class, name, ret, params);
        self.asm.invoke(op, idx, regs);
    }

    /// `new-instance vreg, type`.
    pub fn new_instance(&mut self, reg: u32, class: &str) {
        let idx = self.dex.intern_type(class);
        let mut insn = crate::insn::Insn::of(Opcode::NewInstance);
        insn.a = reg;
        insn.idx = idx;
        self.asm.push(insn);
    }

    /// `new-array vdst, vlen, type`.
    pub fn new_array(&mut self, dst: u32, len: u32, array_type: &str) {
        let idx = self.dex.intern_type(array_type);
        let mut insn = crate::insn::Insn::of(Opcode::NewArray);
        insn.a = dst;
        insn.b = len;
        insn.idx = idx;
        self.asm.push(insn);
    }

    /// `const-class vreg, type`.
    pub fn const_class(&mut self, reg: u32, class: &str) {
        let idx = self.dex.intern_type(class);
        let mut insn = crate::insn::Insn::of(Opcode::ConstClass);
        insn.a = reg;
        insn.idx = idx;
        self.asm.push(insn);
    }

    /// `check-cast vreg, type`.
    pub fn check_cast(&mut self, reg: u32, class: &str) {
        let idx = self.dex.intern_type(class);
        let mut insn = crate::insn::Insn::of(Opcode::CheckCast);
        insn.a = reg;
        insn.idx = idx;
        self.asm.push(insn);
    }

    /// `aput`-style array store: vval into varr[vidx].
    pub fn aput(&mut self, op: Opcode, val: u32, arr: u32, idx: u32) {
        let mut insn = crate::insn::Insn::of(op);
        insn.a = val;
        insn.b = arr;
        insn.c = idx;
        self.asm.push(insn);
    }
}

impl ClassBuilder<'_> {
    /// Sets the superclass (default `Ljava/lang/Object;`).
    pub fn superclass(&mut self, desc: &str) -> &mut Self {
        self.superclass = desc.to_owned();
        self
    }

    /// Adds an implemented interface.
    pub fn implements(&mut self, desc: &str) -> &mut Self {
        self.interfaces.push(desc.to_owned());
        self
    }

    /// Sets access flags (default `public`).
    pub fn access(&mut self, access: AccessFlags) -> &mut Self {
        self.access = access;
        self
    }

    /// Adds an instance field.
    pub fn instance_field(&mut self, name: &str, type_desc: &str) -> &mut Self {
        self.fields.push(FieldSpec {
            name: name.to_owned(),
            type_desc: type_desc.to_owned(),
            access: AccessFlags::PUBLIC,
            is_static: false,
            init: None,
        });
        self
    }

    /// Adds a static field, optionally with an initial value.
    pub fn static_field(
        &mut self,
        name: &str,
        type_desc: &str,
        init: Option<StaticInit>,
    ) -> &mut Self {
        self.fields.push(FieldSpec {
            name: name.to_owned(),
            type_desc: type_desc.to_owned(),
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            is_static: true,
            init,
        });
        self
    }

    fn push_method(
        &mut self,
        name: &str,
        params: &[&str],
        ret: &str,
        access: AccessFlags,
        locals: u16,
        body: Option<impl FnOnce(&mut MethodBuilder<'_>)>,
    ) {
        let params: Vec<String> = params.iter().map(|s| s.to_string()).collect();
        let asm = body.map(|f| {
            let mut mb = MethodBuilder {
                asm: MethodAssembler::new(),
                dex: self.dex,
                locals,
                is_static: access.is_static(),
                params: params.clone(),
            };
            f(&mut mb);
            mb.asm
        });
        self.methods.push(MethodSpec {
            name: name.to_owned(),
            params,
            return_type: ret.to_owned(),
            access,
            locals,
            body: asm,
            outs_hint: 6,
        });
    }

    /// Adds a public instance method with `locals` local registers.
    pub fn method(
        &mut self,
        name: &str,
        params: &[&str],
        ret: &str,
        locals: u16,
        body: impl FnOnce(&mut MethodBuilder<'_>),
    ) -> &mut Self {
        self.push_method(name, params, ret, AccessFlags::PUBLIC, locals, Some(body));
        self
    }

    /// Adds a public static method.
    pub fn static_method(
        &mut self,
        name: &str,
        params: &[&str],
        ret: &str,
        locals: u16,
        body: impl FnOnce(&mut MethodBuilder<'_>),
    ) -> &mut Self {
        self.push_method(
            name,
            params,
            ret,
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            locals,
            Some(body),
        );
        self
    }

    /// Adds a constructor (`<init>`); the body should invoke the super
    /// constructor itself if needed.
    pub fn constructor(
        &mut self,
        params: &[&str],
        locals: u16,
        body: impl FnOnce(&mut MethodBuilder<'_>),
    ) -> &mut Self {
        self.push_method(
            "<init>",
            params,
            "V",
            AccessFlags::PUBLIC | AccessFlags::CONSTRUCTOR,
            locals,
            Some(body),
        );
        self
    }

    /// Adds a `native` method declaration (implementation registered with
    /// the runtime's native registry).
    pub fn native_method(&mut self, name: &str, params: &[&str], ret: &str) -> &mut Self {
        self.push_method(
            name,
            params,
            ret,
            AccessFlags::PUBLIC | AccessFlags::NATIVE,
            0,
            None::<fn(&mut MethodBuilder<'_>)>,
        );
        self
    }

    /// Adds a static `native` method declaration.
    pub fn static_native_method(&mut self, name: &str, params: &[&str], ret: &str) -> &mut Self {
        self.push_method(
            name,
            params,
            ret,
            AccessFlags::PUBLIC | AccessFlags::STATIC | AccessFlags::NATIVE,
            0,
            None::<fn(&mut MethodBuilder<'_>)>,
        );
        self
    }
}

/// Builder for a whole DEX program.
#[derive(Default)]
pub struct ProgramBuilder {
    dex: DexFile,
    classes: Vec<PendingClass>,
}

struct PendingClass {
    descriptor: String,
    superclass: String,
    interfaces: Vec<String>,
    access: AccessFlags,
    fields: Vec<FieldSpec>,
    methods: Vec<MethodSpec>,
}

impl ProgramBuilder {
    /// Creates an empty program.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Defines a class.
    pub fn class(&mut self, descriptor: &str, f: impl FnOnce(&mut ClassBuilder<'_>)) -> &mut Self {
        let mut cb = ClassBuilder {
            dex: &mut self.dex,
            descriptor: descriptor.to_owned(),
            superclass: "Ljava/lang/Object;".to_owned(),
            interfaces: Vec::new(),
            access: AccessFlags::PUBLIC,
            fields: Vec::new(),
            methods: Vec::new(),
        };
        f(&mut cb);
        self.classes.push(PendingClass {
            descriptor: cb.descriptor,
            superclass: cb.superclass,
            interfaces: cb.interfaces,
            access: cb.access,
            fields: cb.fields,
            methods: cb.methods,
        });
        self
    }

    /// Assembles every method and produces the final [`DexFile`].
    ///
    /// # Errors
    ///
    /// Propagates assembly errors (undefined labels, operand overflow).
    pub fn build(&mut self) -> Result<DexFile> {
        let mut dex = std::mem::take(&mut self.dex);
        for pending in self.classes.drain(..) {
            let class_idx = dex.intern_type(&pending.descriptor);
            let mut def = ClassDef::new(class_idx);
            def.access = pending.access;
            def.superclass = Some(dex.intern_type(&pending.superclass));
            def.interfaces = pending
                .interfaces
                .iter()
                .map(|i| dex.intern_type(i))
                .collect();
            let data = def.class_data.as_mut().expect("fresh class has data");

            let mut statics: Vec<(EncodedField, Option<StaticInit>)> = Vec::new();
            for field in &pending.fields {
                let idx = dex.intern_field(&pending.descriptor, &field.type_desc, &field.name);
                let encoded = EncodedField {
                    field_idx: idx,
                    access: field.access,
                };
                if field.is_static {
                    statics.push((encoded, field.init.clone()));
                } else {
                    data.instance_fields.push(encoded);
                }
            }
            // class_data field lists must be ascending by field index, and
            // static_values is positional over the *sorted* list: sort
            // first, then fill value gaps with type defaults up to the last
            // initialised slot.
            statics.sort_by_key(|(f, _)| f.field_idx);
            let last_init = statics.iter().rposition(|(_, init)| init.is_some());
            for (i, (encoded, init)) in statics.iter().enumerate() {
                if last_init.is_some_and(|last| i <= last) {
                    let value = match init {
                        Some(StaticInit::Str(s)) => EncodedValue::String(dex.intern_string(s)),
                        Some(StaticInit::Int(v)) => EncodedValue::Int(*v),
                        Some(StaticInit::Bool(b)) => EncodedValue::Boolean(*b),
                        None => {
                            let tidx = dex.field_ids()[encoded.field_idx as usize].type_;
                            let desc = dex
                                .type_descriptor(tidx)
                                .unwrap_or("Ljava/lang/Object;")
                                .to_owned();
                            EncodedValue::default_for_type(&desc)
                        }
                    };
                    def.static_values.push(value);
                }
            }
            data.static_fields = statics.into_iter().map(|(f, _)| f).collect();

            for spec in pending.methods {
                let param_refs: Vec<&str> = spec.params.iter().map(String::as_str).collect();
                let method_idx = dex.intern_method(
                    &pending.descriptor,
                    &spec.name,
                    &spec.return_type,
                    &param_refs,
                );
                let code = match &spec.body {
                    Some(asm) => {
                        let insns = asm.assemble()?;
                        let ins: u16 = ins_slots(&spec);
                        Some(CodeItem {
                            registers_size: spec.locals + ins,
                            ins_size: ins,
                            outs_size: spec.outs_hint,
                            insns,
                            tries: Vec::new(),
                            handlers: Vec::new(),
                        })
                    }
                    None => None,
                };
                let encoded = EncodedMethod {
                    method_idx,
                    access: spec.access,
                    code,
                };
                let is_direct = spec.access.is_static()
                    || spec.access.contains(AccessFlags::PRIVATE)
                    || spec.name.starts_with('<');
                if is_direct {
                    data.direct_methods.push(encoded);
                } else {
                    data.virtual_methods.push(encoded);
                }
            }
            data.static_fields.sort_by_key(|f| f.field_idx);
            data.instance_fields.sort_by_key(|f| f.field_idx);
            data.direct_methods.sort_by_key(|m| m.method_idx);
            data.virtual_methods.sort_by_key(|m| m.method_idx);
            dex.add_class(def);
        }
        Ok(dex)
    }
}

fn ins_slots(spec: &MethodSpec) -> u16 {
    let mut n = u16::from(!spec.access.is_static());
    for p in &spec.params {
        n += if p == "J" || p == "D" { 2 } else { 1 };
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use dexlego_dex::verify::{verify, Strictness};

    #[test]
    fn builds_verifiable_class() {
        let mut pb = ProgramBuilder::new();
        pb.class("Lcom/test/Main;", |c| {
            c.superclass("Landroid/app/Activity;");
            c.static_field(
                "PHONE",
                "Ljava/lang/String;",
                Some(StaticInit::Str("800-123-456".into())),
            );
            c.instance_field("count", "I");
            c.method("go", &["I"], "I", 1, |m| {
                let p = m.param_reg(0);
                m.asm.binop_lit8(Opcode::AddIntLit8, 0, p, 1);
                m.asm.ret(Opcode::Return, 0);
            });
            c.native_method("tamper", &["I"], "V");
        });
        let dex = pb.build().unwrap();
        verify(&dex, Strictness::Referential).unwrap();
        let class = dex.find_class("Lcom/test/Main;").unwrap();
        let data = class.class_data.as_ref().unwrap();
        assert_eq!(data.virtual_methods.len(), 2); // go + tamper
        assert_eq!(data.static_fields.len(), 1);
        assert_eq!(class.static_values.len(), 1);
    }

    #[test]
    fn param_reg_layout_accounts_for_this_and_wides() {
        let mut pb = ProgramBuilder::new();
        let mut seen = Vec::new();
        pb.class("La;", |c| {
            c.method("m", &["I", "J", "Lx;"], "V", 3, |m| {
                seen.push(m.this_reg());
                seen.push(m.param_reg(0));
                seen.push(m.param_reg(1));
                seen.push(m.param_reg(2));
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        pb.build().unwrap();
        // locals=3, so this=3, p0=4, p1(J)=5..6, p2=7.
        assert_eq!(seen, vec![3, 4, 5, 7]);
    }

    #[test]
    fn static_value_gap_filling() {
        let mut pb = ProgramBuilder::new();
        pb.class("La;", |c| {
            c.static_field("first", "I", None);
            c.static_field("second", "Z", Some(StaticInit::Bool(true)));
        });
        let dex = pb.build().unwrap();
        let class = dex.find_class("La;").unwrap();
        assert_eq!(class.static_values.len(), 2);
        assert_eq!(class.static_values[1], EncodedValue::Boolean(true));
        verify(&dex, Strictness::Referential).unwrap();
    }
}
