#![forbid(unsafe_code)]

//! Dalvik bytecode instruction set.
//!
//! This crate provides the instruction-level view of DEX bytecode that the
//! interpreter, collector, and reassembler of the DexLego reproduction work
//! with:
//!
//! * [`opcode`] — the full Dalvik 035 opcode table with per-opcode metadata
//!   (mnemonic, encoding format, constant-pool index kind).
//! * [`insn`] — a decoded instruction value ([`Insn`]) plus switch/array
//!   payloads ([`Decoded`]).
//! * [`decode`] / [`encode`] — lossless translation between 16-bit code
//!   units and decoded instructions, plus whole-method predecoding
//!   ([`predecode`]) into the dense [`PredecodedMethod`] representation the
//!   interpreter's code cache is built from.
//! * [`asm`] — a label-based method assembler that sizes branches and lays
//!   out payloads, used to build test programs and by the reassembler.
//! * [`disasm`] — a smali-flavoured pretty printer.
//! * [`quick`] — internal quickened/fused instruction forms (ART's
//!   `iget-quick` analogue) and the per-method [`quick::QuickCells`]
//!   overlay the interpreter's quickening pass rewrites in place.
//! * [`canon`] — pool canonicalisation: sorts a [`dexlego_dex::DexFile`]'s
//!   pools per the format specification and rewrites the indices embedded in
//!   every instruction stream.
//!
//! # Example
//!
//! ```
//! use dexlego_dalvik::{asm::MethodAssembler, opcode::Opcode};
//!
//! # fn main() -> Result<(), dexlego_dalvik::DalvikError> {
//! let mut asm = MethodAssembler::new();
//! asm.const4(0, 7);
//! asm.ret(Opcode::Return, 0);
//! let units = asm.assemble()?;
//! assert_eq!(units.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod builder;
pub mod canon;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod insn;
pub mod opcode;
pub mod quick;
pub mod subset;

pub use asm::MethodAssembler;
pub use decode::{decode_insn, decode_method, predecode, PredecodedMethod};
pub use encode::encode_insn;
pub use insn::{Decoded, Insn};
pub use opcode::{Format, IndexKind, Opcode};

use std::fmt;

/// Error produced by instruction decoding, encoding, or assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DalvikError {
    /// The opcode byte is not a valid Dalvik 035 opcode.
    UnknownOpcode(u8),
    /// The code-unit stream ended inside an instruction.
    TruncatedInsn {
        /// Offset in code units where the instruction began.
        at: usize,
    },
    /// A payload pseudo-instruction was malformed.
    BadPayload(&'static str),
    /// An operand does not fit the instruction's encoding format.
    OperandRange {
        /// The instruction's mnemonic.
        mnemonic: &'static str,
        /// Which operand overflowed.
        operand: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A branch target label was never defined.
    UndefinedLabel(u32),
    /// A label was defined more than once.
    DuplicateLabel(u32),
    /// A branch offset exceeds what its encoding can express.
    BranchOutOfRange {
        /// The instruction's mnemonic.
        mnemonic: &'static str,
        /// The required offset in code units.
        offset: i64,
    },
}

impl fmt::Display for DalvikError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DalvikError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DalvikError::TruncatedInsn { at } => {
                write!(f, "truncated instruction at code unit {at}")
            }
            DalvikError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            DalvikError::OperandRange {
                mnemonic,
                operand,
                value,
            } => write!(
                f,
                "{mnemonic}: operand {operand} value {value} out of range"
            ),
            DalvikError::UndefinedLabel(l) => write!(f, "undefined label {l}"),
            DalvikError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
            DalvikError::BranchOutOfRange { mnemonic, offset } => {
                write!(f, "{mnemonic}: branch offset {offset} out of range")
            }
        }
    }
}

impl std::error::Error for DalvikError {}

/// Convenience alias for results with [`DalvikError`].
pub type Result<T> = std::result::Result<T, DalvikError>;
