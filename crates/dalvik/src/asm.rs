//! A label-based method assembler.
//!
//! [`MethodAssembler`] accumulates instructions and labels, then lays out
//! the final code-unit array: branch offsets are resolved, `goto`
//! instructions are automatically widened to `goto/16`/`goto/32` when their
//! targets are far, and switch/array payloads are appended after the code
//! with correct 4-byte alignment.
//!
//! The DexLego reassembler uses this to rebuild method bodies from merged
//! collection trees; the benchmark corpus uses it to author samples.

use std::collections::HashMap;

use crate::encode::{encode_decoded, encode_insn};
use crate::insn::{Decoded, Insn};
use crate::opcode::Opcode;
use crate::{DalvikError, Result};

/// An opaque branch-target label.
pub type Label = u32;

#[derive(Debug, Clone)]
enum PayloadSpec {
    Packed { first_key: i32, targets: Vec<Label> },
    Sparse { keys: Vec<i32>, targets: Vec<Label> },
    FillArray { element_width: u16, data: Vec<u8> },
}

#[derive(Debug, Clone)]
enum Item {
    Plain(Insn),
    Branch { insn: Insn, label: Label },
    Goto(Label),
    WithPayload { insn: Insn, payload: PayloadSpec },
    Bind(Label),
}

/// Assembles one method body from instructions and labels.
///
/// # Example
///
/// ```
/// use dexlego_dalvik::{MethodAssembler, Opcode};
///
/// # fn main() -> Result<(), dexlego_dalvik::DalvikError> {
/// let mut asm = MethodAssembler::new();
/// let done = asm.new_label();
/// asm.const4(0, 1);
/// asm.if_z(Opcode::IfNez, 0, done);
/// asm.const4(0, 5);
/// asm.bind(done);
/// asm.ret(Opcode::Return, 0);
/// let units = asm.assemble()?;
/// assert_eq!(units[0] & 0xff, Opcode::Const4 as u8 as u16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MethodAssembler {
    items: Vec<Item>,
    next_label: Label,
}

impl MethodAssembler {
    /// Creates an empty assembler.
    pub fn new() -> MethodAssembler {
        MethodAssembler::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    /// Binds `label` at the current position.
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label));
    }

    /// Appends a fully resolved instruction (no branch target).
    pub fn push(&mut self, insn: Insn) -> &mut MethodAssembler {
        self.items.push(Item::Plain(insn));
        self
    }

    /// Appends a branch instruction whose offset will resolve to `label`.
    ///
    /// Use for `if-*` instructions; for `goto` prefer [`Self::goto`], which
    /// auto-sizes.
    pub fn branch(&mut self, insn: Insn, label: Label) -> &mut MethodAssembler {
        self.items.push(Item::Branch { insn, label });
        self
    }

    /// Appends an auto-sized `goto` to `label`.
    pub fn goto(&mut self, label: Label) -> &mut MethodAssembler {
        self.items.push(Item::Goto(label));
        self
    }

    // ---- convenience constructors -----------------------------------------

    /// `nop`.
    pub fn nop(&mut self) -> &mut MethodAssembler {
        self.push(Insn::of(Opcode::Nop))
    }

    /// `const/4 vA, #lit` (or widens to `const/16`, `const` as needed).
    pub fn const4(&mut self, a: u32, lit: i64) -> &mut MethodAssembler {
        let op = if (-8..=7).contains(&lit) && a <= 0xf {
            Opcode::Const4
        } else if (-32768..=32767).contains(&lit) {
            Opcode::Const16
        } else {
            Opcode::Const
        };
        let mut insn = Insn::of(op);
        insn.a = a;
        insn.lit = lit;
        self.push(insn)
    }

    /// `const-wide vA, #lit` using the narrowest encoding.
    pub fn const_wide(&mut self, a: u32, lit: i64) -> &mut MethodAssembler {
        let op = if (-32768..=32767).contains(&lit) {
            Opcode::ConstWide16
        } else if i64::from(lit as i32) == lit {
            Opcode::ConstWide32
        } else if lit & 0x0000_ffff_ffff_ffff == 0 {
            Opcode::ConstWideHigh16
        } else {
            Opcode::ConstWide
        };
        let mut insn = Insn::of(op);
        insn.a = a;
        insn.lit = lit;
        self.push(insn)
    }

    /// `const-string vA, string@idx`.
    pub fn const_string(&mut self, a: u32, idx: u32) -> &mut MethodAssembler {
        let op = if idx <= 0xffff {
            Opcode::ConstString
        } else {
            Opcode::ConstStringJumbo
        };
        let mut insn = Insn::of(op);
        insn.a = a;
        insn.idx = idx;
        self.push(insn)
    }

    /// A move of any of the three kinds, auto-widened by register numbers.
    pub fn move_reg(&mut self, kind: MoveKind, dst: u32, src: u32) -> &mut MethodAssembler {
        let op = match (kind, dst <= 0xf && src <= 0xf, dst <= 0xff) {
            (MoveKind::Single, true, _) => Opcode::Move,
            (MoveKind::Single, false, true) => Opcode::MoveFrom16,
            (MoveKind::Single, false, false) => Opcode::Move16,
            (MoveKind::Wide, true, _) => Opcode::MoveWide,
            (MoveKind::Wide, false, true) => Opcode::MoveWideFrom16,
            (MoveKind::Wide, false, false) => Opcode::MoveWide16,
            (MoveKind::Object, true, _) => Opcode::MoveObject,
            (MoveKind::Object, false, true) => Opcode::MoveObjectFrom16,
            (MoveKind::Object, false, false) => Opcode::MoveObject16,
        };
        let mut insn = Insn::of(op);
        insn.a = dst;
        insn.b = src;
        self.push(insn)
    }

    /// An invoke of `kind` on `method_idx` with explicit argument registers.
    ///
    /// Uses the `/range` form when needed (more than five arguments or a
    /// register above v15, with consecutive registers).
    pub fn invoke(&mut self, op: Opcode, method_idx: u32, regs: &[u32]) -> &mut MethodAssembler {
        debug_assert!(op.is_invoke());
        let fits_35c = regs.len() <= 5 && regs.iter().all(|&r| r <= 0xf);
        let op = if fits_35c {
            op
        } else {
            match op {
                Opcode::InvokeVirtual => Opcode::InvokeVirtualRange,
                Opcode::InvokeSuper => Opcode::InvokeSuperRange,
                Opcode::InvokeDirect => Opcode::InvokeDirectRange,
                Opcode::InvokeStatic => Opcode::InvokeStaticRange,
                Opcode::InvokeInterface => Opcode::InvokeInterfaceRange,
                other => other,
            }
        };
        let mut insn = Insn::of(op);
        insn.idx = method_idx;
        insn.regs = regs.to_vec();
        self.push(insn)
    }

    /// A two-register `if-*` branch (`22t`).
    pub fn if_cmp(&mut self, op: Opcode, a: u32, b: u32, label: Label) -> &mut MethodAssembler {
        let mut insn = Insn::of(op);
        insn.a = a;
        insn.b = b;
        self.branch(insn, label)
    }

    /// A zero-test `if-*z` branch (`21t`).
    pub fn if_z(&mut self, op: Opcode, a: u32, label: Label) -> &mut MethodAssembler {
        let mut insn = Insn::of(op);
        insn.a = a;
        self.branch(insn, label)
    }

    /// A return instruction (`return-void` if `op` is [`Opcode::ReturnVoid`]).
    pub fn ret(&mut self, op: Opcode, a: u32) -> &mut MethodAssembler {
        let mut insn = Insn::of(op);
        if op != Opcode::ReturnVoid {
            insn.a = a;
        }
        self.push(insn)
    }

    /// A three-register binary operation (`23x`).
    pub fn binop(&mut self, op: Opcode, dst: u32, lhs: u32, rhs: u32) -> &mut MethodAssembler {
        let mut insn = Insn::of(op);
        insn.a = dst;
        insn.b = lhs;
        insn.c = rhs;
        self.push(insn)
    }

    /// A binary operation with an 8-bit literal (`22b`).
    pub fn binop_lit8(&mut self, op: Opcode, dst: u32, src: u32, lit: i64) -> &mut MethodAssembler {
        let mut insn = Insn::of(op);
        insn.a = dst;
        insn.b = src;
        insn.lit = lit;
        self.push(insn)
    }

    /// A field access instruction (`21c` static or `22c` instance).
    pub fn field_op(
        &mut self,
        op: Opcode,
        a: u32,
        obj: u32,
        field_idx: u32,
    ) -> &mut MethodAssembler {
        let mut insn = Insn::of(op);
        insn.a = a;
        insn.b = obj;
        insn.idx = field_idx;
        self.push(insn)
    }

    /// `packed-switch vReg` with consecutive keys from `first_key`.
    pub fn packed_switch(
        &mut self,
        reg: u32,
        first_key: i32,
        targets: Vec<Label>,
    ) -> &mut MethodAssembler {
        let mut insn = Insn::of(Opcode::PackedSwitch);
        insn.a = reg;
        self.items.push(Item::WithPayload {
            insn,
            payload: PayloadSpec::Packed { first_key, targets },
        });
        self
    }

    /// `sparse-switch vReg` with explicit keys.
    pub fn sparse_switch(
        &mut self,
        reg: u32,
        keys: Vec<i32>,
        targets: Vec<Label>,
    ) -> &mut MethodAssembler {
        let mut insn = Insn::of(Opcode::SparseSwitch);
        insn.a = reg;
        self.items.push(Item::WithPayload {
            insn,
            payload: PayloadSpec::Sparse { keys, targets },
        });
        self
    }

    /// `fill-array-data vReg` with raw element bytes.
    pub fn fill_array_data(
        &mut self,
        reg: u32,
        element_width: u16,
        data: Vec<u8>,
    ) -> &mut MethodAssembler {
        let mut insn = Insn::of(Opcode::FillArrayData);
        insn.a = reg;
        self.items.push(Item::WithPayload {
            insn,
            payload: PayloadSpec::FillArray {
                element_width,
                data,
            },
        });
        self
    }

    // ---- assembly ----------------------------------------------------------

    /// Assembles the accumulated items into code units.
    ///
    /// # Errors
    ///
    /// Returns [`DalvikError::UndefinedLabel`], [`DalvikError::DuplicateLabel`],
    /// [`DalvikError::BranchOutOfRange`], or any instruction-encoding error.
    pub fn assemble(&self) -> Result<Vec<u16>> {
        Ok(self.assemble_with_labels()?.0)
    }

    /// Assembles and additionally returns the resolved label addresses.
    ///
    /// # Errors
    ///
    /// See [`Self::assemble`].
    pub fn assemble_with_labels(&self) -> Result<(Vec<u16>, HashMap<Label, u32>)> {
        // Payload sizes (in units) for each WithPayload item, order of
        // appearance; payloads are laid out after the code in this order.
        let payload_sizes: Vec<usize> = self
            .items
            .iter()
            .filter_map(|item| match item {
                Item::WithPayload { payload, .. } => Some(match payload {
                    PayloadSpec::Packed { targets, .. } => 4 + targets.len() * 2,
                    PayloadSpec::Sparse { keys, .. } => 2 + keys.len() * 4,
                    PayloadSpec::FillArray { data, .. } => 4 + data.len().div_ceil(2),
                }),
                _ => None,
            })
            .collect();

        // Iteratively size gotos (1, 2, or 3 units). Widening is monotonic
        // so the loop terminates.
        let mut goto_sizes: Vec<usize> = self
            .items
            .iter()
            .map(|item| if matches!(item, Item::Goto(_)) { 1 } else { 0 })
            .collect();

        let (labels, item_offsets, payload_offsets) = loop {
            let mut labels: HashMap<Label, u32> = HashMap::new();
            let mut item_offsets = Vec::with_capacity(self.items.len());
            let mut pos = 0usize;
            for (i, item) in self.items.iter().enumerate() {
                item_offsets.push(pos as u32);
                match item {
                    Item::Plain(insn) => pos += insn.units(),
                    Item::Branch { insn, .. } => pos += insn.units(),
                    Item::Goto(_) => pos += goto_sizes[i],
                    Item::WithPayload { insn, .. } => pos += insn.units(),
                    Item::Bind(label) => {
                        if labels.insert(*label, pos as u32).is_some() {
                            return Err(DalvikError::DuplicateLabel(*label));
                        }
                    }
                }
            }
            // Payloads after the code, 2-unit aligned.
            let mut payload_offsets = Vec::with_capacity(payload_sizes.len());
            for &size in &payload_sizes {
                if !pos.is_multiple_of(2) {
                    pos += 1; // nop padding
                }
                payload_offsets.push(pos as u32);
                pos += size;
            }

            // Re-derive goto sizes from actual distances.
            let mut changed = false;
            for (i, item) in self.items.iter().enumerate() {
                if let Item::Goto(label) = item {
                    let target = *labels
                        .get(label)
                        .ok_or(DalvikError::UndefinedLabel(*label))?;
                    let off = i64::from(target) - i64::from(item_offsets[i]);
                    let need = if (-128..=127).contains(&off) && off != 0 {
                        1
                    } else if (-32768..=32767).contains(&off) {
                        2
                    } else {
                        3
                    };
                    if need > goto_sizes[i] {
                        goto_sizes[i] = need;
                        changed = true;
                    }
                }
            }
            if !changed {
                break (labels, item_offsets, payload_offsets);
            }
        };

        // Emission.
        let mut out: Vec<u16> = Vec::new();
        let mut payload_emits: Vec<(u32, PayloadSpec, u32)> = Vec::new(); // (payload_off, spec, switch_addr)
        let mut payload_i = 0usize;
        for (i, item) in self.items.iter().enumerate() {
            let addr = item_offsets[i];
            debug_assert_eq!(out.len() as u32, addr);
            match item {
                Item::Plain(insn) => out.extend(encode_insn(insn)?),
                Item::Branch { insn, label } => {
                    let target = *labels
                        .get(label)
                        .ok_or(DalvikError::UndefinedLabel(*label))?;
                    let mut resolved = insn.clone();
                    resolved.off = (i64::from(target) - i64::from(addr)) as i32;
                    out.extend(encode_insn(&resolved)?);
                }
                Item::Goto(label) => {
                    let target = *labels
                        .get(label)
                        .ok_or(DalvikError::UndefinedLabel(*label))?;
                    let off = (i64::from(target) - i64::from(addr)) as i32;
                    let op = match goto_sizes[i] {
                        1 => Opcode::Goto,
                        2 => Opcode::Goto16,
                        _ => Opcode::Goto32,
                    };
                    let mut insn = Insn::of(op);
                    insn.off = off;
                    out.extend(encode_insn(&insn)?);
                }
                Item::WithPayload { insn, payload } => {
                    let payload_off = payload_offsets[payload_i];
                    payload_i += 1;
                    let mut resolved = insn.clone();
                    resolved.off = (i64::from(payload_off) - i64::from(addr)) as i32;
                    out.extend(encode_insn(&resolved)?);
                    payload_emits.push((payload_off, payload.clone(), addr));
                }
                Item::Bind(_) => {}
            }
        }
        for (payload_off, spec, switch_addr) in payload_emits {
            while (out.len() as u32) < payload_off {
                out.push(Opcode::Nop as u8 as u16);
            }
            let resolve = |targets: &[Label]| -> Result<Vec<i32>> {
                targets
                    .iter()
                    .map(|l| {
                        let t = *labels.get(l).ok_or(DalvikError::UndefinedLabel(*l))?;
                        Ok((i64::from(t) - i64::from(switch_addr)) as i32)
                    })
                    .collect()
            };
            let decoded = match spec {
                PayloadSpec::Packed { first_key, targets } => Decoded::PackedSwitchPayload {
                    first_key,
                    targets: resolve(&targets)?,
                },
                PayloadSpec::Sparse { keys, targets } => Decoded::SparseSwitchPayload {
                    keys,
                    targets: resolve(&targets)?,
                },
                PayloadSpec::FillArray {
                    element_width,
                    data,
                } => Decoded::FillArrayDataPayload {
                    element_width,
                    data,
                },
            };
            out.extend(encode_decoded(&decoded)?);
        }
        Ok((out, labels))
    }
}

/// The register kind a move instruction transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// 32-bit category-1 value.
    Single,
    /// 64-bit register pair.
    Wide,
    /// Object reference.
    Object,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_insn, decode_method};

    #[test]
    fn forward_branch_resolves() {
        let mut asm = MethodAssembler::new();
        let end = asm.new_label();
        asm.const4(0, 0);
        asm.if_z(Opcode::IfEqz, 0, end);
        asm.const4(0, 1);
        asm.bind(end);
        asm.ret(Opcode::ReturnVoid, 0);
        let (units, labels) = asm.assemble_with_labels().unwrap();
        assert_eq!(labels[&end], 4);
        let d = decode_insn(&units, 1).unwrap();
        assert_eq!(d.as_insn().unwrap().off, 3); // 1 -> 4
    }

    #[test]
    fn backward_goto_resolves() {
        let mut asm = MethodAssembler::new();
        let top = asm.new_label();
        asm.bind(top);
        asm.nop();
        asm.goto(top);
        let units = asm.assemble().unwrap();
        let d = decode_insn(&units, 1).unwrap();
        assert_eq!(d.as_insn().unwrap().op, Opcode::Goto);
        assert_eq!(d.as_insn().unwrap().off, -1);
    }

    #[test]
    fn goto_widens_to_16() {
        let mut asm = MethodAssembler::new();
        let end = asm.new_label();
        asm.goto(end);
        for _ in 0..200 {
            asm.nop();
        }
        asm.bind(end);
        asm.ret(Opcode::ReturnVoid, 0);
        let units = asm.assemble().unwrap();
        let d = decode_insn(&units, 0).unwrap();
        assert_eq!(d.as_insn().unwrap().op, Opcode::Goto16);
        assert_eq!(d.as_insn().unwrap().off, 202);
    }

    #[test]
    fn goto_widens_to_32() {
        let mut asm = MethodAssembler::new();
        let end = asm.new_label();
        asm.goto(end);
        for _ in 0..40000 {
            asm.nop();
        }
        asm.bind(end);
        asm.ret(Opcode::ReturnVoid, 0);
        let units = asm.assemble().unwrap();
        let d = decode_insn(&units, 0).unwrap();
        assert_eq!(d.as_insn().unwrap().op, Opcode::Goto32);
    }

    #[test]
    fn undefined_label_rejected() {
        let mut asm = MethodAssembler::new();
        let l = asm.new_label();
        asm.goto(l);
        assert_eq!(asm.assemble(), Err(DalvikError::UndefinedLabel(l)));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut asm = MethodAssembler::new();
        let l = asm.new_label();
        asm.bind(l);
        asm.nop();
        asm.bind(l);
        assert_eq!(asm.assemble(), Err(DalvikError::DuplicateLabel(l)));
    }

    #[test]
    fn packed_switch_payload_aligned_and_relative() {
        let mut asm = MethodAssembler::new();
        let (c0, c1, end) = (asm.new_label(), asm.new_label(), asm.new_label());
        asm.packed_switch(0, 5, vec![c0, c1]); // at 0, 3 units
        asm.bind(c0);
        asm.const4(1, 0); // at 3
        asm.goto(end);
        asm.bind(c1);
        asm.const4(1, 1); // at 5
        asm.bind(end);
        asm.ret(Opcode::ReturnVoid, 0); // at 6 -> payload at 8 (7 is odd, pad)
        let units = asm.assemble().unwrap();
        let switch = decode_insn(&units, 0).unwrap();
        let payload_addr = switch.as_insn().unwrap().off as usize;
        assert_eq!(payload_addr % 2, 0);
        match decode_insn(&units, payload_addr).unwrap() {
            Decoded::PackedSwitchPayload { first_key, targets } => {
                assert_eq!(first_key, 5);
                assert_eq!(targets, vec![3, 5]); // relative to switch at 0
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn whole_stream_decodes() {
        let mut asm = MethodAssembler::new();
        let loop_top = asm.new_label();
        let done = asm.new_label();
        asm.const4(0, 0);
        asm.bind(loop_top);
        asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 1);
        asm.const4(1, 5);
        asm.if_cmp(Opcode::IfGe, 0, 1, done);
        asm.goto(loop_top);
        asm.bind(done);
        asm.ret(Opcode::Return, 0);
        let units = asm.assemble().unwrap();
        assert!(decode_method(&units).is_ok());
    }

    #[test]
    fn const_helpers_pick_narrowest() {
        let mut asm = MethodAssembler::new();
        asm.const4(0, 7);
        asm.const4(0, 1000);
        asm.const4(0, 100_000);
        asm.const_wide(0, 5);
        asm.const_wide(0, 0x7fff_ffff_ffff_ffff);
        let units = asm.assemble().unwrap();
        let ops: Vec<Opcode> = decode_method(&units)
            .unwrap()
            .into_iter()
            .map(|(_, d)| d.as_insn().unwrap().op)
            .collect();
        assert_eq!(
            ops,
            vec![
                Opcode::Const4,
                Opcode::Const16,
                Opcode::Const,
                Opcode::ConstWide16,
                Opcode::ConstWide,
            ]
        );
    }

    #[test]
    fn invoke_switches_to_range_for_high_regs() {
        let mut asm = MethodAssembler::new();
        asm.invoke(Opcode::InvokeStatic, 3, &[16, 17]);
        let units = asm.assemble().unwrap();
        let d = decode_insn(&units, 0).unwrap();
        assert_eq!(d.as_insn().unwrap().op, Opcode::InvokeStaticRange);
        assert_eq!(d.as_insn().unwrap().regs, vec![16, 17]);
    }
}
