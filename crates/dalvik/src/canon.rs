//! Pool canonicalisation: sorting a [`DexFile`]'s pools per the format
//! specification and rewriting every embedded index.
//!
//! The binary DEX format requires its pools sorted (strings by code-point
//! order, types by descriptor index, fields/methods by class/name/type).
//! Models built by interning are in insertion order, so before a
//! reassembled DEX is written out, [`canonicalize`] produces an equivalent
//! model with sorted pools, remapping indices in id items, class defs,
//! static values, catch handlers, **and instruction streams** (which is why
//! this pass lives here rather than in `dexlego-dex`: it must decode and
//! re-encode instructions).

use dexlego_dex::value::EncodedValue;
use dexlego_dex::{ClassDef, CodeItem, DexFile};

use crate::decode::decode_method;
use crate::encode::encode_decoded;
use crate::insn::Decoded;
use crate::opcode::IndexKind;
use crate::Result;

/// Index remapping tables produced by sorting the pools.
#[derive(Debug, Default)]
struct Remap {
    string: Vec<u32>,
    type_: Vec<u32>,
    proto: Vec<u32>,
    field: Vec<u32>,
    method: Vec<u32>,
}

/// Returns an equivalent `DexFile` whose pools satisfy the binary format's
/// sorting invariants, with all indices (including those inside instruction
/// streams) rewritten.
///
/// # Errors
///
/// Fails if an instruction stream cannot be decoded (e.g. a method body
/// carrying an encrypted payload); canonicalise only fully-revealed models.
///
/// # Example
///
/// ```
/// use dexlego_dex::{DexFile, verify::{verify, Strictness}};
/// use dexlego_dalvik::canon::canonicalize;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dex = DexFile::new();
/// dex.intern_string("zzz");
/// dex.intern_string("aaa");
/// let sorted = canonicalize(&dex)?;
/// verify(&sorted, Strictness::Sorted)?;
/// # Ok(())
/// # }
/// ```
pub fn canonicalize(dex: &DexFile) -> Result<DexFile> {
    let mut remap = Remap::default();

    // Strings: sort by UTF-16 code-point order (Rust string comparison is by
    // Unicode scalar, which matches for BMP content; supplementary planes
    // compare after surrogates either way for our corpus).
    let mut string_order: Vec<usize> = (0..dex.strings().len()).collect();
    string_order.sort_by(|&a, &b| dex.strings()[a].cmp(&dex.strings()[b]));
    remap.string = invert(&string_order);
    let strings: Vec<String> = string_order
        .iter()
        .map(|&i| dex.strings()[i].clone())
        .collect();

    // Types: sorted by (remapped) descriptor string index.
    let mut type_order: Vec<usize> = (0..dex.type_ids().len()).collect();
    type_order.sort_by_key(|&i| remap.string[dex.type_ids()[i] as usize]);
    remap.type_ = invert(&type_order);
    let type_ids: Vec<u32> = type_order
        .iter()
        .map(|&i| remap.string[dex.type_ids()[i] as usize])
        .collect();

    // Protos: sorted by return type then parameter list.
    let proto_key = |p: &dexlego_dex::ProtoIdItem| {
        (
            remap.type_[p.return_type as usize],
            p.parameters
                .iter()
                .map(|&t| remap.type_[t as usize])
                .collect::<Vec<_>>(),
        )
    };
    let mut proto_order: Vec<usize> = (0..dex.protos().len()).collect();
    proto_order.sort_by_key(|&i| proto_key(&dex.protos()[i]));
    remap.proto = invert(&proto_order);
    let protos: Vec<dexlego_dex::ProtoIdItem> = proto_order
        .iter()
        .map(|&i| {
            let p = &dex.protos()[i];
            dexlego_dex::ProtoIdItem {
                shorty: remap.string[p.shorty as usize],
                return_type: remap.type_[p.return_type as usize],
                parameters: p
                    .parameters
                    .iter()
                    .map(|&t| remap.type_[t as usize])
                    .collect(),
            }
        })
        .collect();

    // Fields: by class, then name, then type.
    let mut field_order: Vec<usize> = (0..dex.field_ids().len()).collect();
    field_order.sort_by_key(|&i| {
        let f = &dex.field_ids()[i];
        (
            remap.type_[f.class as usize],
            remap.string[f.name as usize],
            remap.type_[f.type_ as usize],
        )
    });
    remap.field = invert(&field_order);
    let field_ids: Vec<dexlego_dex::FieldIdItem> = field_order
        .iter()
        .map(|&i| {
            let f = &dex.field_ids()[i];
            dexlego_dex::FieldIdItem {
                class: remap.type_[f.class as usize],
                type_: remap.type_[f.type_ as usize],
                name: remap.string[f.name as usize],
            }
        })
        .collect();

    // Methods: by class, then name, then proto.
    let mut method_order: Vec<usize> = (0..dex.method_ids().len()).collect();
    method_order.sort_by_key(|&i| {
        let m = &dex.method_ids()[i];
        (
            remap.type_[m.class as usize],
            remap.string[m.name as usize],
            remap.proto[m.proto as usize],
        )
    });
    remap.method = invert(&method_order);
    let method_ids: Vec<dexlego_dex::MethodIdItem> = method_order
        .iter()
        .map(|&i| {
            let m = &dex.method_ids()[i];
            dexlego_dex::MethodIdItem {
                class: remap.type_[m.class as usize],
                proto: remap.proto[m.proto as usize],
                name: remap.string[m.name as usize],
            }
        })
        .collect();

    // Class defs: remap indices, rewrite bodies, sort member lists, and
    // order the defs by class type index.
    let mut class_defs: Vec<ClassDef> = dex
        .class_defs()
        .iter()
        .map(|c| remap_class(c, &remap))
        .collect::<Result<_>>()?;
    class_defs.sort_by_key(|c| c.class_idx);

    Ok(DexFile::from_pools(
        strings, type_ids, protos, field_ids, method_ids, class_defs,
    ))
}

fn invert(order: &[usize]) -> Vec<u32> {
    let mut inverse = vec![0u32; order.len()];
    for (new, &old) in order.iter().enumerate() {
        inverse[old] = new as u32;
    }
    inverse
}

fn remap_class(class: &ClassDef, remap: &Remap) -> Result<ClassDef> {
    let mut out = class.clone();
    out.class_idx = remap.type_[class.class_idx as usize];
    out.superclass = class.superclass.map(|t| remap.type_[t as usize]);
    out.interfaces = class
        .interfaces
        .iter()
        .map(|&t| remap.type_[t as usize])
        .collect();
    out.source_file = class.source_file.map(|s| remap.string[s as usize]);
    out.static_values = class
        .static_values
        .iter()
        .map(|v| remap_value(v, remap))
        .collect();
    if let Some(data) = &mut out.class_data {
        for field in data
            .static_fields
            .iter_mut()
            .chain(data.instance_fields.iter_mut())
        {
            field.field_idx = remap.field[field.field_idx as usize];
        }
        data.static_fields.sort_by_key(|f| f.field_idx);
        data.instance_fields.sort_by_key(|f| f.field_idx);
        for method in data.methods_mut() {
            method.method_idx = remap.method[method.method_idx as usize];
            if let Some(code) = &mut method.code {
                *code = remap_code(code, remap)?;
            }
        }
        data.direct_methods.sort_by_key(|m| m.method_idx);
        data.virtual_methods.sort_by_key(|m| m.method_idx);
    }
    Ok(out)
}

fn remap_value(value: &EncodedValue, remap: &Remap) -> EncodedValue {
    match value {
        EncodedValue::String(i) => EncodedValue::String(remap.string[*i as usize]),
        EncodedValue::Type(i) => EncodedValue::Type(remap.type_[*i as usize]),
        EncodedValue::Field(i) => EncodedValue::Field(remap.field[*i as usize]),
        EncodedValue::Enum(i) => EncodedValue::Enum(remap.field[*i as usize]),
        EncodedValue::Method(i) => EncodedValue::Method(remap.method[*i as usize]),
        EncodedValue::Array(items) => {
            EncodedValue::Array(items.iter().map(|v| remap_value(v, remap)).collect())
        }
        other => other.clone(),
    }
}

fn remap_code(code: &CodeItem, remap: &Remap) -> Result<CodeItem> {
    let mut out = code.clone();
    // Rewrite indices in place; every format keeps its unit length when only
    // the index changes (index width is fixed per format), so addresses,
    // branch offsets, and try ranges are unaffected.
    let mut units = code.insns.clone();
    for (addr, decoded) in decode_method(&code.insns)? {
        if let Decoded::Insn(mut insn) = decoded {
            let mapped = match insn.op.index_kind() {
                IndexKind::None => continue,
                IndexKind::String => remap.string[insn.idx as usize],
                IndexKind::Type => remap.type_[insn.idx as usize],
                IndexKind::Field => remap.field[insn.idx as usize],
                IndexKind::Method => remap.method[insn.idx as usize],
            };
            if mapped == insn.idx {
                continue;
            }
            insn.idx = mapped;
            let encoded = encode_decoded(&Decoded::Insn(insn))?;
            units[addr as usize..addr as usize + encoded.len()].copy_from_slice(&encoded);
        }
    }
    out.insns = units;
    for handler in &mut out.handlers {
        for clause in &mut handler.catches {
            clause.type_idx = remap.type_[clause.type_idx as usize];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::MethodAssembler;
    use crate::opcode::Opcode;
    use dexlego_dex::verify::{verify, Strictness};
    use dexlego_dex::{AccessFlags, EncodedMethod};

    fn build_unsorted() -> DexFile {
        let mut dex = DexFile::new();
        // Intern in reverse-alphabetical order to force remapping.
        dex.intern_string("zz-last");
        let t = dex.intern_type("Lzz/Main;");
        dex.intern_type("Laa/Other;");
        let callee = dex.intern_method("Lzz/Main;", "zz_callee", "V", &[]);
        let m = dex.intern_method("Lzz/Main;", "aa_entry", "V", &[]);
        let s = dex.intern_string("aa-string");
        let f = dex.intern_field("Lzz/Main;", "I", "counter");

        let mut asm = MethodAssembler::new();
        asm.const_string(0, s);
        asm.field_op(Opcode::Sget, 1, 0, f);
        asm.invoke(Opcode::InvokeStatic, callee, &[]);
        asm.ret(Opcode::ReturnVoid, 0);
        let code = dexlego_dex::CodeItem::new(2, 0, 0, asm.assemble().unwrap());

        let mut def = ClassDef::new(t);
        let data = def.class_data.as_mut().unwrap();
        data.static_fields.push(dexlego_dex::file::EncodedField {
            field_idx: f,
            access: AccessFlags::STATIC,
        });
        data.direct_methods.push(EncodedMethod {
            method_idx: callee,
            access: AccessFlags::STATIC,
            code: Some(dexlego_dex::CodeItem::new(0, 0, 0, vec![0x000e])),
        });
        data.direct_methods.push(EncodedMethod {
            method_idx: m,
            access: AccessFlags::STATIC,
            code: Some(code),
        });
        // Not ascending by method_idx: canonicalize must fix this.
        dex.add_class(def);
        dex
    }

    #[test]
    fn canonical_model_passes_strict_verify() {
        let dex = build_unsorted();
        assert!(verify(&dex, Strictness::Sorted).is_err());
        let canonical = canonicalize(&dex).unwrap();
        verify(&canonical, Strictness::Sorted).unwrap();
    }

    #[test]
    fn instruction_references_survive() {
        let dex = build_unsorted();
        let canonical = canonicalize(&dex).unwrap();
        let class = canonical.find_class("Lzz/Main;").unwrap();
        let data = class.class_data.as_ref().unwrap();
        // Find aa_entry's code and check its references resolve to the same
        // strings/signatures as before.
        let entry = data
            .methods()
            .find(|m| {
                canonical
                    .method_signature(m.method_idx)
                    .is_ok_and(|s| s.contains("aa_entry"))
            })
            .expect("entry method");
        let code = entry.code.as_ref().unwrap();
        let insns = decode_method(&code.insns).unwrap();
        let const_str = insns[0].1.as_insn().unwrap();
        assert_eq!(canonical.string(const_str.idx).unwrap(), "aa-string");
        let sget = insns[1].1.as_insn().unwrap();
        assert_eq!(
            canonical.field_signature(sget.idx).unwrap(),
            "Lzz/Main;->counter:I"
        );
        let invoke = insns[2].1.as_insn().unwrap();
        assert_eq!(
            canonical.method_signature(invoke.idx).unwrap(),
            "Lzz/Main;->zz_callee()V"
        );
    }

    #[test]
    fn canonicalize_then_write_then_read_roundtrips() {
        let dex = build_unsorted();
        let canonical = canonicalize(&dex).unwrap();
        let bytes = dexlego_dex::writer::write_dex(&canonical).unwrap();
        let back = dexlego_dex::reader::read_dex(&bytes).unwrap();
        assert_eq!(back, canonical);
        verify(&back, Strictness::Sorted).unwrap();
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let dex = build_unsorted();
        let once = canonicalize(&dex).unwrap();
        let twice = canonicalize(&once).unwrap();
        assert_eq!(once, twice);
    }
}
