//! Decoding 16-bit code units into [`Insn`] / [`Decoded`] values, and
//! whole-method predecoding into a [`PredecodedMethod`] cache entry.

use std::cell::Cell;

use crate::insn::{Decoded, Insn};
use crate::opcode::{payload, Format, Opcode};
use crate::{DalvikError, Result};

thread_local! {
    // Counts decode_insn calls on this thread. A Cell (not an atomic) so the
    // hook costs one TLS read-modify-write and parallel test threads do not
    // observe each other's decodes.
    static DECODE_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`decode_insn`] calls made by the current thread so far.
///
/// A test hook: code-cache regression tests snapshot this counter around a
/// hot loop to prove that predecoded execution performs no per-step (or
/// per-payload) re-decoding.
pub fn decode_calls() -> u64 {
    DECODE_CALLS.with(Cell::get)
}

/// Resets the current thread's [`decode_calls`] counter to zero, so tests
/// asserting absolute decode counts do not depend on what ran earlier on
/// the same test thread.
pub fn reset_decode_calls() {
    DECODE_CALLS.with(|c| c.set(0));
}

fn unit(code: &[u16], at: usize, start: usize) -> Result<u16> {
    code.get(at)
        .copied()
        .ok_or(DalvikError::TruncatedInsn { at: start })
}

/// Decodes the single instruction or payload starting at code unit `pc`.
///
/// # Errors
///
/// Returns [`DalvikError::UnknownOpcode`] for undefined opcode bytes,
/// [`DalvikError::TruncatedInsn`] if the stream ends mid-instruction, and
/// [`DalvikError::BadPayload`] for malformed payloads.
///
/// # Example
///
/// ```
/// use dexlego_dalvik::{decode_insn, Decoded, Opcode};
/// // const/4 v0, #7 ; return v0
/// let code = [0x7012, 0x000f];
/// let d = decode_insn(&code, 0).unwrap();
/// assert_eq!(d.as_insn().unwrap().op, Opcode::Const4);
/// assert_eq!(d.as_insn().unwrap().lit, 7);
/// ```
pub fn decode_insn(code: &[u16], pc: usize) -> Result<Decoded> {
    DECODE_CALLS.with(|c| c.set(c.get() + 1));
    let first = unit(code, pc, pc)?;
    let op_byte = (first & 0xff) as u8;
    let hi = (first >> 8) as u8;

    if op_byte == 0x00 && hi != 0 {
        return decode_payload(code, pc, first);
    }

    let op = Opcode::from_u8(op_byte).ok_or(DalvikError::UnknownOpcode(op_byte))?;
    let mut insn = Insn::of(op);

    match op.format() {
        Format::F10x => {}
        Format::F12x => {
            insn.a = u32::from(hi & 0x0f);
            insn.b = u32::from(hi >> 4);
        }
        Format::F11n => {
            insn.a = u32::from(hi & 0x0f);
            // Sign-extend the 4-bit literal.
            insn.lit = i64::from(((hi >> 4) as i8) << 4 >> 4);
        }
        Format::F11x => {
            insn.a = u32::from(hi);
        }
        Format::F10t => {
            insn.off = i32::from(hi as i8);
        }
        Format::F20t => {
            insn.off = i32::from(unit(code, pc + 1, pc)? as i16);
        }
        Format::F22x => {
            insn.a = u32::from(hi);
            insn.b = u32::from(unit(code, pc + 1, pc)?);
        }
        Format::F21t => {
            insn.a = u32::from(hi);
            insn.off = i32::from(unit(code, pc + 1, pc)? as i16);
        }
        Format::F21s => {
            insn.a = u32::from(hi);
            insn.lit = i64::from(unit(code, pc + 1, pc)? as i16);
        }
        Format::F21h => {
            insn.a = u32::from(hi);
            let raw = i64::from(unit(code, pc + 1, pc)? as i16);
            insn.lit = if op == Opcode::ConstWideHigh16 {
                raw << 48
            } else {
                raw << 16
            };
        }
        Format::F21c => {
            insn.a = u32::from(hi);
            insn.idx = u32::from(unit(code, pc + 1, pc)?);
        }
        Format::F23x => {
            insn.a = u32::from(hi);
            let second = unit(code, pc + 1, pc)?;
            insn.b = u32::from(second & 0xff);
            insn.c = u32::from(second >> 8);
        }
        Format::F22b => {
            insn.a = u32::from(hi);
            let second = unit(code, pc + 1, pc)?;
            insn.b = u32::from(second & 0xff);
            insn.lit = i64::from((second >> 8) as u8 as i8);
        }
        Format::F22t => {
            insn.a = u32::from(hi & 0x0f);
            insn.b = u32::from(hi >> 4);
            insn.off = i32::from(unit(code, pc + 1, pc)? as i16);
        }
        Format::F22s => {
            insn.a = u32::from(hi & 0x0f);
            insn.b = u32::from(hi >> 4);
            insn.lit = i64::from(unit(code, pc + 1, pc)? as i16);
        }
        Format::F22c => {
            insn.a = u32::from(hi & 0x0f);
            insn.b = u32::from(hi >> 4);
            insn.idx = u32::from(unit(code, pc + 1, pc)?);
        }
        Format::F32x => {
            insn.a = u32::from(unit(code, pc + 1, pc)?);
            insn.b = u32::from(unit(code, pc + 2, pc)?);
        }
        Format::F30t => {
            let lo = u32::from(unit(code, pc + 1, pc)?);
            let hi32 = u32::from(unit(code, pc + 2, pc)?);
            insn.off = (lo | (hi32 << 16)) as i32;
        }
        Format::F31t => {
            insn.a = u32::from(hi);
            let lo = u32::from(unit(code, pc + 1, pc)?);
            let hi32 = u32::from(unit(code, pc + 2, pc)?);
            insn.off = (lo | (hi32 << 16)) as i32;
        }
        Format::F31i => {
            insn.a = u32::from(hi);
            let lo = u32::from(unit(code, pc + 1, pc)?);
            let hi32 = u32::from(unit(code, pc + 2, pc)?);
            // Sign-extends for both `const` and `const-wide/32`.
            insn.lit = i64::from((lo | (hi32 << 16)) as i32);
        }
        Format::F31c => {
            insn.a = u32::from(hi);
            let lo = u32::from(unit(code, pc + 1, pc)?);
            let hi32 = u32::from(unit(code, pc + 2, pc)?);
            insn.idx = lo | (hi32 << 16);
        }
        Format::F35c => {
            let count = usize::from(hi >> 4);
            let g = u32::from(hi & 0x0f);
            insn.idx = u32::from(unit(code, pc + 1, pc)?);
            let regs_unit = unit(code, pc + 2, pc)?;
            let all = [
                u32::from(regs_unit & 0xf),
                u32::from((regs_unit >> 4) & 0xf),
                u32::from((regs_unit >> 8) & 0xf),
                u32::from((regs_unit >> 12) & 0xf),
                g,
            ];
            if count > 5 {
                return Err(DalvikError::BadPayload("35c argument count > 5"));
            }
            insn.regs = all[..count].to_vec();
        }
        Format::F3rc => {
            let count = u32::from(hi);
            insn.idx = u32::from(unit(code, pc + 1, pc)?);
            let start = u32::from(unit(code, pc + 2, pc)?);
            insn.regs = (start..start + count).collect();
        }
        Format::F51l => {
            insn.a = u32::from(hi);
            let mut v: u64 = 0;
            for i in 0..4 {
                v |= u64::from(unit(code, pc + 1 + i, pc)?) << (16 * i);
            }
            insn.lit = v as i64;
        }
    }
    Ok(Decoded::Insn(insn))
}

fn decode_payload(code: &[u16], pc: usize, ident: u16) -> Result<Decoded> {
    match ident {
        payload::PACKED_SWITCH => {
            let size = usize::from(unit(code, pc + 1, pc)?);
            let first_key =
                i32::from(unit(code, pc + 2, pc)?) | (i32::from(unit(code, pc + 3, pc)?) << 16);
            let mut targets = Vec::with_capacity(size);
            for i in 0..size {
                let lo = u32::from(unit(code, pc + 4 + i * 2, pc)?);
                let hi = u32::from(unit(code, pc + 5 + i * 2, pc)?);
                targets.push((lo | (hi << 16)) as i32);
            }
            Ok(Decoded::PackedSwitchPayload { first_key, targets })
        }
        payload::SPARSE_SWITCH => {
            let size = usize::from(unit(code, pc + 1, pc)?);
            let mut keys = Vec::with_capacity(size);
            let mut targets = Vec::with_capacity(size);
            for i in 0..size {
                let lo = u32::from(unit(code, pc + 2 + i * 2, pc)?);
                let hi = u32::from(unit(code, pc + 3 + i * 2, pc)?);
                keys.push((lo | (hi << 16)) as i32);
            }
            let base = pc + 2 + size * 2;
            for i in 0..size {
                let lo = u32::from(unit(code, base + i * 2, pc)?);
                let hi = u32::from(unit(code, base + i * 2 + 1, pc)?);
                targets.push((lo | (hi << 16)) as i32);
            }
            Ok(Decoded::SparseSwitchPayload { keys, targets })
        }
        payload::FILL_ARRAY_DATA => {
            let element_width = unit(code, pc + 1, pc)?;
            let size =
                u32::from(unit(code, pc + 2, pc)?) | (u32::from(unit(code, pc + 3, pc)?) << 16);
            let byte_len = element_width as usize * size as usize;
            let unit_len = byte_len.div_ceil(2);
            let mut data = Vec::with_capacity(byte_len);
            for i in 0..unit_len {
                let w = unit(code, pc + 4 + i, pc)?;
                data.push((w & 0xff) as u8);
                data.push((w >> 8) as u8);
            }
            data.truncate(byte_len);
            Ok(Decoded::FillArrayDataPayload {
                element_width,
                data,
            })
        }
        _ => Err(DalvikError::BadPayload("unknown payload identifier")),
    }
}

/// Decodes an entire method body into `(address, decoded)` pairs.
///
/// # Errors
///
/// Propagates the first decoding error, tagged with its address.
pub fn decode_method(code: &[u16]) -> Result<Vec<(u32, Decoded)>> {
    let mut out = Vec::new();
    let mut pc = 0usize;
    while pc < code.len() {
        let d = decode_insn(code, pc)?;
        let len = d.units();
        out.push((pc as u32, d));
        pc += len;
    }
    Ok(out)
}

/// Sentinel in [`PredecodedMethod::index_of`] for code units that are not
/// the start of a decoded instruction (operand units, payload interiors).
const NOT_AN_INSN: u32 = u32::MAX;

/// A whole method body decoded once, up front: the dense instruction list,
/// a `dex_pc → instruction` map, pre-resolved payload tables for
/// `fill-array-data` / `packed-switch` / `sparse-switch`, and a snapshot of
/// the raw code units (so events can carry borrowed `&[u16]` slices without
/// touching the live, mutable method body).
///
/// This is the interpreter's analogue of ART's predecoded/mterp
/// representation: a method run N times pays one decode, not N.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredecodedMethod {
    /// Snapshot of the code units at predecode time.
    units: Vec<u16>,
    /// Decoded instructions in stream order.
    insns: Vec<Insn>,
    /// For each code unit: index into `insns` if an instruction starts
    /// there, else [`NOT_AN_INSN`].
    index_of: Vec<u32>,
    /// Unit length of each instruction, parallel to `insns`. Cached so the
    /// fetch loop does not re-derive it from the format on every step.
    lens: Vec<u8>,
    /// Payload pseudo-instructions, keyed by start `dex_pc`, ascending.
    payloads: Vec<(u32, Decoded)>,
}

impl PredecodedMethod {
    /// The instruction starting at `pc` with its raw unit slice, or `None`
    /// if `pc` is out of range or not an instruction start.
    #[inline]
    pub fn insn_at(&self, pc: u32) -> Option<(&Insn, &[u16])> {
        let idx = *self.index_of.get(pc as usize)?;
        if idx == NOT_AN_INSN {
            return None;
        }
        let insn = &self.insns[idx as usize];
        let pc = pc as usize;
        Some((insn, &self.units[pc..pc + insn.units()]))
    }

    /// Leanest fetch: the dense index, instruction, and cached unit length
    /// at `pc` — no slice construction, no format inspection. This is the
    /// fast-path loop's accessor; event-carrying paths use
    /// [`Self::entry_at`] for the borrowed unit slice.
    #[inline]
    pub fn fetch_at(&self, pc: u32) -> Option<(u32, &Insn, u32)> {
        let idx = *self.index_of.get(pc as usize)?;
        if idx == NOT_AN_INSN {
            return None;
        }
        Some((
            idx,
            &self.insns[idx as usize],
            u32::from(self.lens[idx as usize]),
        ))
    }

    /// The instruction and cached unit length at dense index `idx` —
    /// the inverse direction of [`Self::fetch_at`], for callers that
    /// already know the index (superinstruction second halves are always
    /// at `head_idx + 1`).
    #[inline]
    pub fn at_index(&self, idx: u32) -> Option<(&Insn, u32)> {
        let insn = self.insns.get(idx as usize)?;
        Some((insn, u32::from(self.lens[idx as usize])))
    }

    /// Like [`Self::insn_at`], but also yields the instruction's dense
    /// index — the key into per-instruction side tables such as
    /// [`crate::quick::QuickCells`].
    #[inline]
    pub fn entry_at(&self, pc: u32) -> Option<(u32, &Insn, &[u16])> {
        let idx = *self.index_of.get(pc as usize)?;
        if idx == NOT_AN_INSN {
            return None;
        }
        let insn = &self.insns[idx as usize];
        let pc = pc as usize;
        Some((idx, insn, &self.units[pc..pc + insn.units()]))
    }

    /// The payload starting at `pc`, if one was predecoded there.
    #[inline]
    pub fn payload_at(&self, pc: u32) -> Option<&Decoded> {
        self.payloads
            .binary_search_by_key(&pc, |&(at, _)| at)
            .ok()
            .map(|i| &self.payloads[i].1)
    }

    /// The raw unit slice of the payload starting at `pc`, if any.
    pub fn payload_units(&self, pc: u32) -> Option<&[u16]> {
        let payload = self.payload_at(pc)?;
        let pc = pc as usize;
        self.units.get(pc..pc + payload.units())
    }

    /// Number of decoded instructions (payloads not included).
    pub fn insn_count(&self) -> usize {
        self.insns.len()
    }

    /// Number of predecoded payload tables.
    pub fn payload_count(&self) -> usize {
        self.payloads.len()
    }

    /// Length of the snapshotted unit stream.
    pub fn unit_len(&self) -> usize {
        self.units.len()
    }

    /// `(dex_pc, instruction)` pairs in stream order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Insn)> {
        self.index_of
            .iter()
            .enumerate()
            .filter(|&(_, &idx)| idx != NOT_AN_INSN)
            .map(|(pc, &idx)| (pc as u32, &self.insns[idx as usize]))
    }
}

/// Decodes an entire method body once into a [`PredecodedMethod`].
///
/// # Errors
///
/// Propagates the first decoding error. Callers treating predecoding as an
/// optimisation should fall back to per-step decoding on failure: a stream
/// can contain undecodable regions that execution never reaches (data after
/// an unconditional return, partially decrypted bodies).
pub fn predecode(code: &[u16]) -> Result<PredecodedMethod> {
    let mut pre = PredecodedMethod {
        units: code.to_vec(),
        insns: Vec::new(),
        index_of: vec![NOT_AN_INSN; code.len()],
        lens: Vec::new(),
        payloads: Vec::new(),
    };
    let mut pc = 0usize;
    while pc < code.len() {
        let d = decode_insn(code, pc)?;
        let len = d.units();
        match d {
            Decoded::Insn(insn) => {
                pre.index_of[pc] = pre.insns.len() as u32;
                pre.insns.push(insn);
                pre.lens.push(len as u8);
            }
            payload => pre.payloads.push((pc as u32, payload)),
        }
        pc += len;
    }
    Ok(pre)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_insn;

    #[test]
    fn decode_return_void() {
        let d = decode_insn(&[0x000e], 0).unwrap();
        assert_eq!(d.as_insn().unwrap().op, Opcode::ReturnVoid);
    }

    #[test]
    fn decode_const4_sign_extends() {
        // const/4 v1, #-1 => B=0xf A=1 op=0x12 => 0xf112
        let d = decode_insn(&[0xf112], 0).unwrap();
        let insn = d.as_insn().unwrap();
        assert_eq!(insn.a, 1);
        assert_eq!(insn.lit, -1);
    }

    #[test]
    fn decode_invoke_virtual_args() {
        // invoke-virtual {v0, v1}, method@5 : A=2 G=0 op=6e | 0005 | regs 10
        let code = [0x206e, 0x0005, 0x0010];
        let d = decode_insn(&code, 0).unwrap();
        let insn = d.as_insn().unwrap();
        assert_eq!(insn.op, Opcode::InvokeVirtual);
        assert_eq!(insn.idx, 5);
        assert_eq!(insn.regs, vec![0, 1]);
    }

    #[test]
    fn decode_invoke_range() {
        // invoke-static/range {v3..v6}, method@2
        let code = [0x0477, 0x0002, 0x0003];
        let d = decode_insn(&code, 0).unwrap();
        let insn = d.as_insn().unwrap();
        assert_eq!(insn.regs, vec![3, 4, 5, 6]);
    }

    #[test]
    fn decode_goto_negative() {
        // goto -2 => AA=0xfe op=0x28
        let d = decode_insn(&[0xfe28], 0).unwrap();
        assert_eq!(d.as_insn().unwrap().off, -2);
    }

    #[test]
    fn decode_const_wide_high16() {
        // const-wide/high16 v0, #0x4000000000000000 (2.0)
        let code = [0x0019, 0x4000];
        let insn = decode_insn(&code, 0).unwrap().as_insn().unwrap().clone();
        assert_eq!(insn.lit, 0x4000_0000_0000_0000);
    }

    #[test]
    fn decode_packed_switch_payload() {
        // ident, size=2, first_key=10, targets 4 and 8
        let code = [
            0x0100, 0x0002, 0x000a, 0x0000, 0x0004, 0x0000, 0x0008, 0x0000,
        ];
        match decode_insn(&code, 0).unwrap() {
            Decoded::PackedSwitchPayload { first_key, targets } => {
                assert_eq!(first_key, 10);
                assert_eq!(targets, vec![4, 8]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_fill_array_data_payload_odd_bytes() {
        // width=1, size=3 -> 3 bytes, padded to 2 units
        let code = [0x0300, 0x0001, 0x0003, 0x0000, 0x2211, 0x0033];
        match decode_insn(&code, 0).unwrap() {
            Decoded::FillArrayDataPayload {
                element_width,
                data,
            } => {
                assert_eq!(element_width, 1);
                assert_eq!(data, vec![0x11, 0x22, 0x33]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            decode_insn(&[0x0013], 0), // const/16 missing literal unit
            Err(DalvikError::TruncatedInsn { .. })
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(
            decode_insn(&[0x0040], 0),
            Err(DalvikError::UnknownOpcode(0x40))
        ));
    }

    #[test]
    fn whole_method_decode() {
        // const/4 v0,#2 ; add-int/lit8 v0,v0,#3 ; return v0
        let code = [0x2012, 0x00d8, 0x0300, 0x000f];
        let insns = decode_method(&code).unwrap();
        assert_eq!(insns.len(), 3);
        assert_eq!(insns[0].0, 0);
        assert_eq!(insns[1].0, 1);
        assert_eq!(insns[2].0, 3);
    }

    #[test]
    fn predecode_maps_pcs_and_payloads() {
        // const/4 v0,#1 ; packed-switch v0, +5 ; return v0 ; nop pad ;
        // packed-switch payload (size 1, first_key 0, target +3)
        let code = [
            0x1012, 0x002b, 0x0005, 0x0000, 0x000f, 0x0000, 0x0100, 0x0001, 0x0000, 0x0000, 0x0003,
            0x0000,
        ];
        let pre = predecode(&code).unwrap();
        assert_eq!(pre.insn_count(), 4);
        assert_eq!(pre.payload_count(), 1);
        assert_eq!(pre.unit_len(), code.len());
        let (insn, units) = pre.insn_at(1).unwrap();
        assert_eq!(insn.op, Opcode::PackedSwitch);
        assert_eq!(units, &code[1..4]);
        // Operand units and payload interiors are not instruction starts.
        assert!(pre.insn_at(2).is_none());
        assert!(pre.insn_at(7).is_none());
        assert!(pre.insn_at(code.len() as u32).is_none());
        match pre.payload_at(6).unwrap() {
            Decoded::PackedSwitchPayload { first_key, targets } => {
                assert_eq!(*first_key, 0);
                assert_eq!(targets, &vec![3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pre.payload_units(6).unwrap(), &code[6..]);
        assert!(pre.payload_at(5).is_none());
        assert_eq!(pre.iter().count(), 4);
        assert_eq!(pre.iter().next().unwrap().0, 0);
    }

    #[test]
    fn predecode_rejects_undecodable_stream() {
        // return-void followed by an unknown opcode byte: per-step execution
        // would never reach it, but whole-method predecoding must refuse so
        // the interpreter falls back to per-step fetching.
        assert!(predecode(&[0x000e, 0x0040]).is_err());
    }

    #[test]
    fn decode_calls_counter_advances() {
        let before = decode_calls();
        decode_insn(&[0x000e], 0).unwrap();
        assert_eq!(decode_calls(), before + 1);
    }

    #[test]
    fn decode_encode_roundtrip_all_formats() {
        let samples: Vec<Vec<u16>> = vec![
            vec![0x000e],                                 // return-void (10x)
            vec![0x2101],                                 // move v1, v2 (12x)
            vec![0x7f12],                                 // const/4 v2, #7 (11n)
            vec![0x050a],                                 // move-result v5 (11x)
            vec![0x0328],                                 // goto +3 (10t)
            vec![0x0029, 0xfffe],                         // goto/16 -2 (20t)
            vec![0x1202, 0x0123],                         // move/from16 (22x)
            vec![0x0338, 0x0010],                         // if-eqz v3, +16 (21t)
            vec![0x0113, 0x7fff],                         // const/16 (21s)
            vec![0x0015, 0x1234],                         // const/high16 (21h)
            vec![0x001a, 0x0042],                         // const-string (21c)
            vec![0x0590, 0x0201],                         // add-int v5,v1,v2 (23x)
            vec![0x00d8, 0x0102],                         // add-int/lit8 (22b)
            vec![0x2132, 0x0007],                         // if-eq v1,v2,+7 (22t)
            vec![0x21d0, 0x0100],                         // add-int/lit16 (22s)
            vec![0x2152, 0x0003],                         // iget v1,v2,field@3 (22c)
            vec![0x0003, 0x0100, 0x0200],                 // move/16 (32x)
            vec![0x002a, 0x5678, 0x0000],                 // goto/32 (30t)
            vec![0x002b, 0x0004, 0x0000],                 // packed-switch (31t)
            vec![0x0014, 0xffff, 0x7fff],                 // const (31i)
            vec![0x001b, 0x5678, 0x0001],                 // const-string/jumbo (31c)
            vec![0x306e, 0x0002, 0x0210],                 // invoke-virtual {v0,v1,v2} (35c)
            vec![0x0374, 0x0004, 0x0005],                 // invoke-virtual/range (3rc)
            vec![0x0018, 0x1111, 0x2222, 0x3333, 0x4444], // const-wide (51l)
        ];
        for units in samples {
            let d = decode_insn(&units, 0).unwrap();
            let insn = d.as_insn().expect("not a payload");
            let re = encode_insn(insn).unwrap();
            assert_eq!(re, units, "re-encoding {insn:?}");
        }
    }
}
