//! Decoded instruction values.

use crate::opcode::{Format, IndexKind, Opcode};

/// A decoded Dalvik instruction.
///
/// Operands are stored in a flat, format-agnostic representation:
///
/// * `a`, `b`, `c` — register operands (unused ones are zero),
/// * `lit` — literal constant (for `const*` and `*lit*` forms),
/// * `off` — branch offset in code units, relative to the instruction start
///   (for branches and 31t payload references),
/// * `idx` — constant-pool index (see [`Opcode::index_kind`]),
/// * `regs` — argument registers for `35c`/`3rc` forms.
///
/// Which fields are meaningful is determined by [`Opcode::format`]. The
/// encoder ([`crate::encode::encode_insn`]) validates ranges, so a
/// decode→encode round trip is lossless.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Insn {
    /// The opcode.
    pub op: Opcode,
    /// First register operand (vA).
    pub a: u32,
    /// Second register operand (vB).
    pub b: u32,
    /// Third register operand (vC).
    pub c: u32,
    /// Literal constant operand.
    pub lit: i64,
    /// Branch offset in code units, relative to this instruction's address.
    pub off: i32,
    /// Constant-pool index operand.
    pub idx: u32,
    /// Argument registers for invoke-style instructions.
    pub regs: Vec<u32>,
}

impl Default for Opcode {
    fn default() -> Opcode {
        Opcode::Nop
    }
}

impl Insn {
    /// Creates an instruction with all operands zeroed.
    pub fn of(op: Opcode) -> Insn {
        Insn {
            op,
            ..Insn::default()
        }
    }

    /// Length of this instruction in 16-bit code units.
    pub fn units(&self) -> usize {
        self.op.format().units()
    }

    /// The branch target address given this instruction's own address,
    /// for branch instructions.
    pub fn target(&self, addr: u32) -> u32 {
        addr.wrapping_add(self.off as u32)
    }

    /// Whether this instruction's index operand is of `kind`.
    pub fn references(&self, kind: IndexKind) -> bool {
        self.op.index_kind() == kind
    }

    /// Registers read or written by the instruction, in operand order
    /// (approximate; used for diagnostics, not verification).
    pub fn registers(&self) -> Vec<u32> {
        match self.op.format() {
            Format::F10x | Format::F10t | Format::F20t | Format::F30t => vec![],
            Format::F11n | Format::F11x | Format::F21t | Format::F21s | Format::F21h
            | Format::F21c | Format::F31i | Format::F31t | Format::F31c | Format::F51l => {
                vec![self.a]
            }
            Format::F12x | Format::F22x | Format::F22t | Format::F22s | Format::F22b
            | Format::F22c | Format::F32x => vec![self.a, self.b],
            Format::F23x => vec![self.a, self.b, self.c],
            Format::F35c | Format::F3rc => self.regs.clone(),
        }
    }
}

/// A decoded element of an instruction stream: either a real instruction or
/// one of the three payload pseudo-instructions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// A regular instruction.
    Insn(Insn),
    /// `packed-switch-payload`: consecutive keys starting at `first_key`.
    PackedSwitchPayload {
        /// The lowest (first) switch key.
        first_key: i32,
        /// Branch offsets relative to the referencing `packed-switch`.
        targets: Vec<i32>,
    },
    /// `sparse-switch-payload`: sorted keys with matching targets.
    SparseSwitchPayload {
        /// Switch keys, ascending.
        keys: Vec<i32>,
        /// Branch offsets relative to the referencing `sparse-switch`.
        targets: Vec<i32>,
    },
    /// `fill-array-data-payload`: raw element bytes.
    FillArrayDataPayload {
        /// Bytes per element (1, 2, 4, or 8).
        element_width: u16,
        /// Element data, `element_width * size` bytes.
        data: Vec<u8>,
    },
}

impl Decoded {
    /// Length in 16-bit code units.
    pub fn units(&self) -> usize {
        match self {
            Decoded::Insn(insn) => insn.units(),
            Decoded::PackedSwitchPayload { targets, .. } => 4 + targets.len() * 2,
            Decoded::SparseSwitchPayload { keys, .. } => 2 + keys.len() * 4,
            Decoded::FillArrayDataPayload { data, .. } => 4 + (data.len() + 1) / 2,
        }
    }

    /// The contained instruction, if this is not a payload.
    pub fn as_insn(&self) -> Option<&Insn> {
        match self {
            Decoded::Insn(insn) => Some(insn),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_computation_wraps_backwards() {
        let mut insn = Insn::of(Opcode::Goto);
        insn.off = -3;
        assert_eq!(insn.target(10), 7);
        insn.off = 5;
        assert_eq!(insn.target(10), 15);
    }

    #[test]
    fn payload_unit_lengths() {
        let p = Decoded::PackedSwitchPayload {
            first_key: 0,
            targets: vec![1, 2, 3],
        };
        assert_eq!(p.units(), 4 + 6);
        let s = Decoded::SparseSwitchPayload {
            keys: vec![1, 5],
            targets: vec![10, 20],
        };
        assert_eq!(s.units(), 2 + 8);
        let f = Decoded::FillArrayDataPayload {
            element_width: 4,
            data: vec![0; 12],
        };
        assert_eq!(f.units(), 4 + 6);
        let f_odd = Decoded::FillArrayDataPayload {
            element_width: 1,
            data: vec![0; 3],
        };
        assert_eq!(f_odd.units(), 4 + 2);
    }

    #[test]
    fn registers_by_format() {
        let mut insn = Insn::of(Opcode::AddInt);
        insn.a = 1;
        insn.b = 2;
        insn.c = 3;
        assert_eq!(insn.registers(), vec![1, 2, 3]);
        let mut inv = Insn::of(Opcode::InvokeStatic);
        inv.regs = vec![4, 5];
        assert_eq!(inv.registers(), vec![4, 5]);
        assert!(Insn::of(Opcode::Nop).registers().is_empty());
    }
}
