//! Internal quickened and fused instruction forms.
//!
//! ART rewrites hot `iget`/`invoke` instructions in its in-memory dex
//! representation to pre-resolved "quick" variants (`iget-quick` and
//! friends) that carry a resolved offset instead of a constant-pool index.
//! This module defines the analogous *internal dispatch bytes* for the
//! DexLego interpreter, plus superinstruction (fused pair) forms and the
//! per-method [`QuickCells`] side table that holds them.
//!
//! The internal bytes live in the gaps of the Dalvik opcode map
//! (`0xe3..=0xff` is unused by the real instruction set), so a dispatch
//! byte is either a real [`Opcode`] discriminant or one of these. They are
//! never serialised: [`crate::PredecodedMethod`] keeps the original decoded
//! instructions untouched, and `QuickCells` overlays dispatch bytes and
//! resolved operands per instruction index. Observer event streams
//! therefore always see the original instruction and units, quickened or
//! not.
//!
//! Invalidation is inherited from the code-epoch machinery: a method-body
//! mutation discards the whole cache entry, `QuickCells` included, which
//! de-quickens every rewritten cell at once.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

use crate::insn::{Decoded, Insn};
use crate::opcode::Opcode;
use crate::PredecodedMethod;

/// `iget` / `iget-object` / `iget-boolean|byte|char|short` with a resolved
/// field in the cell's data slot (all narrow kinds share one byte: they
/// differ only in their constant-pool index, not their execution).
pub const IGET_QUICK: u8 = 0xe3;
/// `iget-wide` with a resolved field.
pub const IGET_WIDE_QUICK: u8 = 0xe4;
/// Narrow `iput` kinds with a resolved field.
pub const IPUT_QUICK: u8 = 0xe5;
/// `iput-wide` with a resolved field.
pub const IPUT_WIDE_QUICK: u8 = 0xe6;
/// `invoke-static[/range]` with a resolved method in the data slot.
pub const INVOKE_STATIC_QUICK: u8 = 0xe7;
/// `invoke-direct|super[/range]` with a resolved method in the data slot.
pub const INVOKE_DIRECT_QUICK: u8 = 0xe8;
/// `const-string[/jumbo]` with the interned object in the data slot.
pub const CONST_STRING_QUICK: u8 = 0xe9;
/// `packed-switch` / `sparse-switch` with a pre-resolved target table
/// (index in the data slot), written at build time.
pub const SWITCH_PRE: u8 = 0xea;

/// Fused pair: two adjacent non-throwing int ALU instructions.
pub const FUSE_ALU_ALU: u8 = 0xf0;
/// Fused pair: non-throwing int ALU followed by an unconditional goto.
pub const FUSE_ALU_GOTO: u8 = 0xf1;
/// Fused pair: conditional branch whose fall-through is an int ALU.
pub const FUSE_IF_ALU: u8 = 0xf2;
/// Fused pair: `cmp*` followed by an `if-*z` testing the cmp result.
pub const FUSE_CMP_IF: u8 = 0xf3;
/// Fused pair: narrow const followed by a narrow move.
pub const FUSE_CONST_MOVE: u8 = 0xf4;
/// Fused pair: two narrow `iget`s off the same (unclobbered) object.
pub const FUSE_IGET_IGET: u8 = 0xf5;

/// Human-readable name of an internal dispatch byte; `None` for bytes that
/// are plain [`Opcode`] discriminants (or unused gaps).
pub fn name(byte: u8) -> Option<&'static str> {
    Some(match byte {
        IGET_QUICK => "iget+quick",
        IGET_WIDE_QUICK => "iget-wide+quick",
        IPUT_QUICK => "iput+quick",
        IPUT_WIDE_QUICK => "iput-wide+quick",
        INVOKE_STATIC_QUICK => "invoke-static+quick",
        INVOKE_DIRECT_QUICK => "invoke-direct+quick",
        CONST_STRING_QUICK => "const-string+quick",
        SWITCH_PRE => "switch+quick",
        FUSE_ALU_ALU => "fused[alu,alu]+quick",
        FUSE_ALU_GOTO => "fused[alu,goto]+quick",
        FUSE_IF_ALU => "fused[if,alu]+quick",
        FUSE_CMP_IF => "fused[cmp,if]+quick",
        FUSE_CONST_MOVE => "fused[const,move]+quick",
        FUSE_IGET_IGET => "fused[iget,iget]+quick",
        _ => None?,
    })
}

/// Whether `byte` is one of the internal (quickened or fused) forms.
pub fn is_internal(byte: u8) -> bool {
    name(byte).is_some()
}

/// Whether `byte` is a fused superinstruction head.
pub fn is_fused(byte: u8) -> bool {
    (FUSE_ALU_ALU..=FUSE_IGET_IGET).contains(&byte)
}

/// Int ALU instructions that can never throw: 23x / 2addr / literal forms
/// excluding div and rem (which raise `ArithmeticException` on zero).
pub fn is_simple_int_alu(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::AddInt
            | Opcode::SubInt
            | Opcode::MulInt
            | Opcode::AndInt
            | Opcode::OrInt
            | Opcode::XorInt
            | Opcode::ShlInt
            | Opcode::ShrInt
            | Opcode::UshrInt
            | Opcode::AddInt2addr
            | Opcode::SubInt2addr
            | Opcode::MulInt2addr
            | Opcode::AndInt2addr
            | Opcode::OrInt2addr
            | Opcode::XorInt2addr
            | Opcode::ShlInt2addr
            | Opcode::ShrInt2addr
            | Opcode::UshrInt2addr
            | Opcode::AddIntLit16
            | Opcode::RsubInt
            | Opcode::MulIntLit16
            | Opcode::AndIntLit16
            | Opcode::OrIntLit16
            | Opcode::XorIntLit16
            | Opcode::AddIntLit8
            | Opcode::RsubIntLit8
            | Opcode::MulIntLit8
            | Opcode::AndIntLit8
            | Opcode::OrIntLit8
            | Opcode::XorIntLit8
            | Opcode::ShlIntLit8
            | Opcode::ShrIntLit8
            | Opcode::UshrIntLit8
    )
}

fn is_cmp(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::CmplFloat
            | Opcode::CmpgFloat
            | Opcode::CmplDouble
            | Opcode::CmpgDouble
            | Opcode::CmpLong
    )
}

fn is_if_z(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::IfEqz
            | Opcode::IfNez
            | Opcode::IfLtz
            | Opcode::IfGez
            | Opcode::IfGtz
            | Opcode::IfLez
    )
}

fn is_narrow_const(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Const4 | Opcode::Const16 | Opcode::Const | Opcode::ConstHigh16
    )
}

fn is_narrow_move(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Move
            | Opcode::MoveFrom16
            | Opcode::Move16
            | Opcode::MoveObject
            | Opcode::MoveObjectFrom16
            | Opcode::MoveObject16
    )
}

/// Narrow instance-field reads (wide excluded: it writes a register pair,
/// which the fused handler does not model).
pub fn is_narrow_iget(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Iget
            | Opcode::IgetObject
            | Opcode::IgetBoolean
            | Opcode::IgetByte
            | Opcode::IgetChar
            | Opcode::IgetShort
    )
}

/// Decides whether two *adjacent* instructions form a superinstruction,
/// returning the fused dispatch byte.
///
/// Rules are chosen so the fused handler can replay both halves with
/// per-step-identical semantics: the first half must not fault in a way
/// that leaves the pair half-done unless the fault pc is the head's, a
/// conditional branch may only appear where the handler models it (head of
/// `FUSE_IF_ALU`, tail of `FUSE_CMP_IF`), and register hazards that would
/// change the second half's inputs disqualify the pair.
pub fn fused_pair(first: &Insn, second: &Insn) -> Option<u8> {
    if is_simple_int_alu(first.op) {
        if is_simple_int_alu(second.op) {
            return Some(FUSE_ALU_ALU);
        }
        if matches!(second.op, Opcode::Goto | Opcode::Goto16 | Opcode::Goto32) {
            return Some(FUSE_ALU_GOTO);
        }
        return None;
    }
    if first.op.is_conditional_branch() && is_simple_int_alu(second.op) {
        return Some(FUSE_IF_ALU);
    }
    if is_cmp(first.op) && is_if_z(second.op) && second.a == first.a {
        return Some(FUSE_CMP_IF);
    }
    if is_narrow_const(first.op) && is_narrow_move(second.op) {
        return Some(FUSE_CONST_MOVE);
    }
    if is_narrow_iget(first.op)
        && is_narrow_iget(second.op)
        && first.b == second.b
        && first.a != first.b
    {
        return Some(FUSE_IGET_IGET);
    }
    None
}

/// A pre-resolved switch payload: targets as absolute dex pcs. An empty
/// `keys` vector marks a packed table indexed from `first_key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchTable {
    first_key: i32,
    keys: Vec<i32>,
    targets: Vec<u32>,
}

impl SwitchTable {
    /// The absolute branch target for `key`, or `None` for fall-through.
    pub fn lookup(&self, key: i32) -> Option<u32> {
        if self.keys.is_empty() {
            let idx = i64::from(key) - i64::from(self.first_key);
            if idx >= 0 && (idx as usize) < self.targets.len() {
                Some(self.targets[idx as usize])
            } else {
                None
            }
        } else {
            self.keys
                .iter()
                .position(|&k| k == key)
                .map(|i| self.targets[i])
        }
    }
}

/// Sentinel for an empty per-instruction data slot.
pub const NO_DATA: u32 = u32::MAX;

/// The mutable quickening overlay for one [`PredecodedMethod`].
///
/// One cell per decoded instruction (indexed like the predecoded
/// instruction list): a *dispatch byte* (initially the plain opcode byte,
/// rewritten in place when the instruction quickens), an optional *fused
/// byte* naming the superinstruction this cell heads (computed once at
/// build time), and a *data slot* holding the pre-resolved operand
/// (field/method index, interned object, or switch-table index).
///
/// Cells are atomics only so the owning runtime stays `Send`; execution is
/// single-threaded per runtime and all accesses are `Relaxed`.
pub struct QuickCells {
    qop: Box<[AtomicU8]>,
    fused: Box<[u8]>,
    /// `fused` byte where non-zero, else the (possibly quickened) `qop`
    /// byte — kept in sync by [`Self::quicken`] so the fused-dispatch fast
    /// path costs a single load.
    eff: Box<[AtomicU8]>,
    qdata: Box<[AtomicU32]>,
    switches: Vec<SwitchTable>,
    quickened: AtomicU32,
}

impl std::fmt::Debug for QuickCells {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuickCells")
            .field("cells", &self.qop.len())
            .field("fused", &self.fused.iter().filter(|&&b| b != 0).count())
            .field("switches", &self.switches.len())
            .field("quickened", &self.quickened.load(Ordering::Relaxed))
            .finish()
    }
}

impl QuickCells {
    /// Builds the overlay for `pre`: plain dispatch bytes, pre-resolved
    /// switch tables, and a greedy left-to-right superinstruction pass over
    /// adjacent instruction pairs (a consumed second half is never itself a
    /// head, but keeps its own cell so mid-pair branch targets execute it
    /// standalone).
    pub fn build(pre: &PredecodedMethod) -> QuickCells {
        let items: Vec<(u32, &Insn)> = pre.iter().collect();
        let n = items.len();
        let mut qop = Vec::with_capacity(n);
        let mut qdata = Vec::with_capacity(n);
        let mut fused = vec![0u8; n];
        let mut switches = Vec::new();

        for &(pc, insn) in &items {
            let mut byte = insn.op as u8;
            let mut data = NO_DATA;
            if matches!(insn.op, Opcode::PackedSwitch | Opcode::SparseSwitch) {
                if let Some(table) = resolve_switch(pre, pc, insn) {
                    byte = SWITCH_PRE;
                    data = switches.len() as u32;
                    switches.push(table);
                }
            }
            qop.push(AtomicU8::new(byte));
            qdata.push(AtomicU32::new(data));
        }

        let mut i = 0;
        while i + 1 < n {
            let (pc, first) = items[i];
            let (pc2, second) = items[i + 1];
            if pc + first.units() as u32 == pc2 {
                if let Some(b) = fused_pair(first, second) {
                    fused[i] = b;
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }

        let eff: Vec<AtomicU8> = qop
            .iter()
            .zip(&fused)
            .map(|(q, &f)| AtomicU8::new(if f != 0 { f } else { q.load(Ordering::Relaxed) }))
            .collect();
        QuickCells {
            qop: qop.into_boxed_slice(),
            fused: fused.into_boxed_slice(),
            eff: eff.into_boxed_slice(),
            qdata: qdata.into_boxed_slice(),
            switches,
            quickened: AtomicU32::new(0),
        }
    }

    /// The dispatch byte for instruction `idx`. With `allow_fused` the
    /// superinstruction byte wins when present; callers that need per-
    /// instruction granularity (observers with insn events) pass `false`
    /// and get the plain (possibly quickened) byte.
    #[inline]
    pub fn dispatch_byte(&self, idx: u32, allow_fused: bool) -> u8 {
        if allow_fused {
            self.eff[idx as usize].load(Ordering::Relaxed)
        } else {
            self.qop[idx as usize].load(Ordering::Relaxed)
        }
    }

    /// The pre-resolved data slot of instruction `idx` ([`NO_DATA`] when
    /// the cell has not quickened).
    #[inline]
    pub fn data(&self, idx: u32) -> u32 {
        self.qdata[idx as usize].load(Ordering::Relaxed)
    }

    /// Rewrites cell `idx` to quickened form `byte` with resolved `data`.
    /// Returns `true` if the cell was newly quickened (callers count these
    /// into execution stats). A `data` of [`NO_DATA`] is rejected: the
    /// sentinel must keep meaning "unresolved".
    pub fn quicken(&self, idx: u32, byte: u8, data: u32) -> bool {
        if data == NO_DATA || self.qdata[idx as usize].load(Ordering::Relaxed) != NO_DATA {
            return false;
        }
        self.qdata[idx as usize].store(data, Ordering::Relaxed);
        self.qop[idx as usize].store(byte, Ordering::Relaxed);
        if self.fused[idx as usize] == 0 {
            self.eff[idx as usize].store(byte, Ordering::Relaxed);
        }
        self.quickened.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of cells quickened at runtime so far (build-time switch
    /// pre-resolution not included). The code cache charges this to its
    /// de-quicken counter when an epoch bump discards the overlay.
    pub fn quickened_count(&self) -> u32 {
        self.quickened.load(Ordering::Relaxed)
    }

    /// The pre-resolved switch table at `table_idx`.
    #[inline]
    pub fn switch_table(&self, table_idx: u32) -> &SwitchTable {
        &self.switches[table_idx as usize]
    }

    /// Number of superinstruction heads found at build time.
    pub fn fused_count(&self) -> usize {
        self.fused.iter().filter(|&&b| b != 0).count()
    }
}

fn resolve_switch(pre: &PredecodedMethod, pc: u32, insn: &Insn) -> Option<SwitchTable> {
    match pre.payload_at(insn.target(pc))? {
        Decoded::PackedSwitchPayload { first_key, targets } => Some(SwitchTable {
            first_key: *first_key,
            keys: Vec::new(),
            targets: targets
                .iter()
                .map(|&off| pc.wrapping_add(off as u32))
                .collect(),
        }),
        Decoded::SparseSwitchPayload { keys, targets } => Some(SwitchTable {
            first_key: 0,
            keys: keys.clone(),
            targets: targets
                .iter()
                .map(|&off| pc.wrapping_add(off as u32))
                .collect(),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predecode;

    fn insn(op: Opcode) -> Insn {
        Insn::of(op)
    }

    #[test]
    fn internal_bytes_are_opcode_gaps() {
        for byte in 0u16..=255 {
            let byte = byte as u8;
            if is_internal(byte) {
                assert!(
                    Opcode::from_u8(byte).is_none(),
                    "internal byte {byte:#04x} collides with a real opcode"
                );
            }
        }
    }

    #[test]
    fn fuses_alu_pairs_and_alu_goto() {
        let add = {
            let mut i = insn(Opcode::AddInt);
            i.a = 0;
            i.b = 0;
            i.c = 1;
            i
        };
        let xor = {
            let mut i = insn(Opcode::XorIntLit8);
            i.a = 0;
            i.b = 0;
            i.lit = 0x2f;
            i
        };
        assert_eq!(fused_pair(&add, &xor), Some(FUSE_ALU_ALU));
        assert_eq!(fused_pair(&add, &insn(Opcode::Goto)), Some(FUSE_ALU_GOTO));
        // Div can throw: never a fusion half.
        assert_eq!(fused_pair(&insn(Opcode::DivInt), &xor), None);
        assert_eq!(fused_pair(&add, &insn(Opcode::DivIntLit8)), None);
    }

    #[test]
    fn cmp_if_requires_matching_register() {
        let mut cmp = insn(Opcode::CmpLong);
        cmp.a = 2;
        let mut ifz = insn(Opcode::IfGez);
        ifz.a = 2;
        assert_eq!(fused_pair(&cmp, &ifz), Some(FUSE_CMP_IF));
        ifz.a = 3;
        assert_eq!(fused_pair(&cmp, &ifz), None);
    }

    #[test]
    fn iget_pair_requires_unclobbered_object() {
        let mut a = insn(Opcode::Iget);
        a.a = 0;
        a.b = 2;
        let mut b = insn(Opcode::IgetShort);
        b.a = 1;
        b.b = 2;
        assert_eq!(fused_pair(&a, &b), Some(FUSE_IGET_IGET));
        // First half overwrites the shared object register: unsafe.
        a.a = 2;
        assert_eq!(fused_pair(&a, &b), None);
        // Different objects: not the same-object pattern.
        a.a = 0;
        b.b = 3;
        assert_eq!(fused_pair(&a, &b), None);
        // Wide iget never fuses.
        let mut w = insn(Opcode::IgetWide);
        w.a = 0;
        w.b = 2;
        assert_eq!(fused_pair(&w, &b), None);
    }

    #[test]
    fn build_marks_heads_and_preresolves_switches() {
        // if-ge v1, v0, +6 ; add-int/lit8 v1, v1, #1 ; packed-switch v1, +4
        // ; return-void ; nop ; packed-switch-payload (2 entries)
        let code: Vec<u16> = vec![
            0x0135, 0x0006, // if-ge v1, v0, +6
            0x01d8, 0x0101, // add-int/lit8 v1, v1, #1
            0x012b, 0x0004, 0x0000, // packed-switch v1, +4
            0x000e, // return-void
            0x0100, 0x0002, 0x0000, 0x0000, // payload: 2 entries, first_key 0
            0x0003, 0x0000, 0x0003, 0x0000, // targets +3, +3
        ];
        let pre = predecode(&code).unwrap();
        let qc = QuickCells::build(&pre);
        assert_eq!(qc.dispatch_byte(0, true), FUSE_IF_ALU);
        assert_eq!(qc.dispatch_byte(0, false), Opcode::IfGe as u8);
        // The consumed second half keeps its own plain cell.
        assert_eq!(qc.dispatch_byte(1, true), Opcode::AddIntLit8 as u8);
        // The switch was statically rewritten to its pre-resolved form.
        assert_eq!(qc.dispatch_byte(2, true), SWITCH_PRE);
        assert_eq!(qc.dispatch_byte(2, false), SWITCH_PRE);
        let table = qc.switch_table(qc.data(2));
        // Switch sits at pc 4; payload offsets are +3 → absolute pc 7.
        assert_eq!(table.lookup(0), Some(7));
        assert_eq!(table.lookup(1), Some(7));
        assert_eq!(table.lookup(2), None);
        assert_eq!(qc.fused_count(), 1);
    }

    #[test]
    fn quicken_rewrites_once_and_counts() {
        let pre = predecode(&[0x0052, 0x0000, 0x000e]).unwrap(); // iget v0, v0, field@0 ; ret
        let qc = QuickCells::build(&pre);
        assert_eq!(qc.data(0), NO_DATA);
        assert!(qc.quicken(0, IGET_QUICK, 17));
        assert!(!qc.quicken(0, IGET_QUICK, 18), "second quicken is a no-op");
        assert_eq!(qc.data(0), 17);
        assert_eq!(qc.dispatch_byte(0, false), IGET_QUICK);
        assert_eq!(qc.quickened_count(), 1);
        assert!(
            !qc.quicken(1, IGET_QUICK, NO_DATA),
            "sentinel data rejected"
        );
    }

    #[test]
    fn sparse_table_lookup() {
        let t = SwitchTable {
            first_key: 0,
            keys: vec![-5, 9],
            targets: vec![10, 20],
        };
        assert_eq!(t.lookup(-5), Some(10));
        assert_eq!(t.lookup(9), Some(20));
        assert_eq!(t.lookup(0), None);
    }
}
