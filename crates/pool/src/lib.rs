//! Dependency-free parallel primitives shared across the workspace.
//!
//! This crate sits *below* every other `dexlego-*` crate so that leaf
//! libraries (the verifier, the bench drivers, the batch harness) can all
//! share one worker-pool idiom without forming dependency cycles:
//!
//! * [`parallel_map`] / [`parallel_map_expect`] — apply a function across a
//!   bounded pool of `std::thread` workers, preserving submission order and
//!   capturing per-item panics.
//! * [`run_tasks`] — the same machinery for heterogeneous named closures.
//! * [`default_workers`] / [`resolve_workers`] / [`WORKERS_ENV`] — the
//!   worker-count policy every driver resolves through.
//!
//! `dexlego-harness` re-exports everything here from its `pool` module, so
//! existing callers keep their import paths; the verifier reaches the same
//! machinery directly for parallel per-method verification.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism (≥ 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Environment variable overriding the default worker count, so CI boxes
/// can pin parallelism without threading a flag through every driver.
pub const WORKERS_ENV: &str = "DEXLEGO_WORKERS";

/// Resolves a worker count: an explicit request (CLI flag) wins, then the
/// [`WORKERS_ENV`] environment variable, then [`default_workers`]. The
/// result is always clamped to ≥ 1; unparseable env values are ignored.
pub fn resolve_workers(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var(WORKERS_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or_else(default_workers)
        .max(1)
}

/// Renders a panic payload as the human-readable message it was raised
/// with, falling back to a fixed string for non-string payloads.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// Applies `f` to every item on a pool of `workers` threads, preserving
/// order. Each application is individually panic-captured: a panicking item
/// yields `Err(message)` without disturbing its neighbours.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<Result<R, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let items = &items;
            let results = &results;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i]
                    .lock()
                    .expect("item lock")
                    .take()
                    .expect("each index claimed once");
                let out = catch_unwind(AssertUnwindSafe(|| f(item)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                *results[i].lock().expect("result lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every index processed")
        })
        .collect()
}

/// [`parallel_map`] for infallible work: panics (with the original message)
/// if any item panicked. Bench drivers use this where a failure should
/// fail the whole experiment.
pub fn parallel_map_expect<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map(items, workers, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("parallel task failed: {e}")))
        .collect()
}

/// A named unit of heterogeneous work for [`run_tasks`].
pub struct Task<R> {
    /// Display name (used in error reporting).
    pub name: String,
    /// The work itself.
    pub run: Box<dyn FnOnce() -> R + Send>,
}

impl<R> Task<R> {
    /// Boxes `run` under `name`.
    pub fn new(name: &str, run: impl FnOnce() -> R + Send + 'static) -> Task<R> {
        Task {
            name: name.to_owned(),
            run: Box::new(run),
        }
    }
}

impl<R> std::fmt::Debug for Task<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("name", &self.name).finish()
    }
}

/// Runs named tasks across the pool, returning `(name, result)` pairs in
/// submission order.
pub fn run_tasks<R: Send>(tasks: Vec<Task<R>>, workers: usize) -> Vec<(String, Result<R, String>)> {
    let names: Vec<String> = tasks.iter().map(|t| t.name.clone()).collect();
    let results = parallel_map(tasks, workers, |t| (t.run)());
    names.into_iter().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..37).collect(), 4, |i: i32| i * 2);
        assert_eq!(out.len(), 37);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i as i32 * 2);
        }
    }

    #[test]
    fn parallel_map_captures_panics_per_item() {
        let out = parallel_map(vec![1, 2, 3], 2, |i: i32| {
            assert!(i != 2, "item two explodes");
            i
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        let err = out[1].as_ref().unwrap_err();
        assert!(err.contains("item two explodes"), "{err}");
    }

    #[test]
    fn parallel_map_handles_empty_and_single_worker() {
        assert!(parallel_map(Vec::<i32>::new(), 4, |i| i).is_empty());
        let out = parallel_map(vec![5, 6], 1, |i: i32| i + 1);
        assert_eq!(out, vec![Ok(6), Ok(7)]);
    }

    #[test]
    fn run_tasks_names_results() {
        let tasks = vec![
            Task::new("fine", || 1),
            Task::new("broken", || panic!("nope")),
        ];
        let out = run_tasks(tasks, 2);
        assert_eq!(out[0].0, "fine");
        assert_eq!(out[0].1, Ok(1));
        assert_eq!(out[1].0, "broken");
        assert!(out[1].1.as_ref().unwrap_err().contains("nope"));
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn resolve_workers_prefers_explicit_then_env() {
        // This is the only test touching the variable, so set/remove is
        // safe even under the parallel test runner.
        std::env::remove_var(WORKERS_ENV);
        assert_eq!(resolve_workers(Some(3)), 3);
        assert_eq!(resolve_workers(Some(0)), 1, "clamped to >= 1");
        assert!(resolve_workers(None) >= 1);
        std::env::set_var(WORKERS_ENV, "2");
        assert_eq!(resolve_workers(None), 2);
        assert_eq!(resolve_workers(Some(5)), 5, "explicit beats env");
        std::env::set_var(WORKERS_ENV, "0");
        assert_eq!(resolve_workers(None), 1, "env clamped to >= 1");
        std::env::set_var(WORKERS_ENV, "not-a-number");
        assert!(resolve_workers(None) >= 1, "garbage env ignored");
        std::env::remove_var(WORKERS_ENV);
    }

    #[test]
    fn panic_message_downcasts_strings() {
        assert_eq!(panic_message(&"s" as &(dyn std::any::Any + Send)), "s");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(owned.as_ref()), "owned");
        let other: Box<dyn std::any::Any + Send> = Box::new(17_u8);
        assert!(panic_message(other.as_ref()).contains("non-string"));
    }
}
