//! End-to-end interpreter tests driving real assembled bytecode.

use dexlego_dalvik::builder::{ProgramBuilder, StaticInit};
use dexlego_dalvik::{encode_insn, Insn, Opcode};
use dexlego_runtime::observer::{InsnEvent, NullObserver, RuntimeObserver};
use dexlego_runtime::value::RetVal;
use dexlego_runtime::{Runtime, RuntimeError, Slot};

fn run_static(
    pb: &mut ProgramBuilder,
    class: &str,
    name: &str,
    desc: &str,
    args: &[Slot],
) -> (Runtime, Result<RetVal, RuntimeError>) {
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let ret = rt.call_static(&mut obs, class, name, desc, args);
    (rt, ret)
}

#[test]
fn arithmetic_loop_sums() {
    // int sum(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("sum", &["I"], "I", 2, |m| {
            let n = m.param_reg(0);
            let (top, done) = (m.asm.new_label(), m.asm.new_label());
            m.asm.const4(0, 0); // s
            m.asm.const4(1, 0); // i
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.asm.binop(Opcode::AddInt, 0, 0, 1);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let (_, ret) = run_static(&mut pb, "La;", "sum", "(I)I", &[Slot::from_int(10)]);
    assert_eq!(ret.unwrap().as_int(), Some(45));
}

#[test]
fn wide_arithmetic() {
    // long cube(long x) { return x * x * x; }
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("cube", &["J"], "J", 4, |m| {
            let x = m.param_reg(0);
            m.asm.binop(Opcode::MulLong, 0, x, x);
            m.asm.binop(Opcode::MulLong, 0, 0, x);
            m.asm.ret(Opcode::ReturnWide, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let w = dexlego_runtime::value::WideValue::from_long(-7);
    let (lo, hi) = w.split();
    let ret = rt
        .call_static(&mut obs, "La;", "cube", "(J)J", &[lo, hi])
        .unwrap();
    assert_eq!(ret.as_long(), Some(-343));
}

#[test]
fn float_and_double_ops() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        // float half(float x) { return x / 2.0f; }
        c.static_method("half", &["F"], "F", 1, |m| {
            let x = m.param_reg(0);
            let mut insn = Insn::of(Opcode::ConstHigh16);
            insn.a = 0;
            insn.lit = i64::from(2.0f32.to_bits() as i32); // 0x4000_0000
            m.asm.push(insn);
            m.asm.binop(Opcode::DivFloat, 0, x, 0);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let (_, ret) = run_static(&mut pb, "La;", "half", "(F)F", &[Slot::from_float(5.0)]);
    let bits = ret.unwrap().as_obj().unwrap();
    assert_eq!(f32::from_bits(bits), 2.5);
}

#[test]
fn division_by_zero_throws_and_is_catchable() {
    // int safeDiv(int a, int b) { try { return a / b; } catch (any) { return -1; } }
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("div", &["I", "I"], "I", 1, |m| {
            let (a, b) = (m.param_reg(0), m.param_reg(1));
            m.asm.binop(Opcode::DivInt, 0, a, b);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    // Wrap the division range in a catch-all try.
    let mut dex = dex;
    {
        let class = dex.class_defs_mut().get_mut(0).unwrap();
        let data = class.class_data.as_mut().unwrap();
        let code = data.direct_methods[0].code.as_mut().unwrap();
        // Append handler: const/4 v0, -1 ; return v0
        let handler_addr = code.insns.len() as u32;
        code.insns.extend([0xf012u16, 0x000f]); // const/4 v0,#-1 ; return v0
        code.handlers.push(dexlego_dex::EncodedCatchHandler {
            catches: vec![],
            catch_all_addr: Some(handler_addr),
        });
        code.tries.push(dexlego_dex::TryItem {
            start_addr: 0,
            insn_count: 2,
            handler_index: 0,
        });
    }
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let ok = rt
        .call_static(
            &mut obs,
            "La;",
            "div",
            "(II)I",
            &[Slot::from_int(10), Slot::from_int(2)],
        )
        .unwrap();
    assert_eq!(ok.as_int(), Some(5));
    let caught = rt
        .call_static(
            &mut obs,
            "La;",
            "div",
            "(II)I",
            &[Slot::from_int(10), Slot::from_int(0)],
        )
        .unwrap();
    assert_eq!(caught.as_int(), Some(-1));
}

#[test]
fn uncaught_exception_reports_type() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("boom", &[], "I", 2, |m| {
            m.asm.const4(0, 1);
            m.asm.const4(1, 0);
            m.asm.binop(Opcode::DivInt, 0, 0, 1);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let (_, ret) = run_static(&mut pb, "La;", "boom", "()I", &[]);
    match ret.unwrap_err() {
        RuntimeError::UncaughtException { type_desc, .. } => {
            assert_eq!(type_desc, "Ljava/lang/ArithmeticException;");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn virtual_dispatch_selects_override() {
    // Base.describe() returns 1, Derived.describe() returns 2.
    // pick(flag) instantiates one or the other and calls describe().
    let mut pb = ProgramBuilder::new();
    pb.class("LBase;", |c| {
        c.method("describe", &[], "I", 1, |m| {
            m.asm.const4(0, 1);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    pb.class("LDerived;", |c| {
        c.superclass("LBase;");
        c.method("describe", &[], "I", 1, |m| {
            m.asm.const4(0, 2);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    pb.class("LMain;", |c| {
        c.static_method("pick", &["I"], "I", 2, |m| {
            let flag = m.param_reg(0);
            let (use_derived, call) = (m.asm.new_label(), m.asm.new_label());
            m.asm.if_z(Opcode::IfNez, flag, use_derived);
            m.new_instance(0, "LBase;");
            m.asm.goto(call);
            m.asm.bind(use_derived);
            m.new_instance(0, "LDerived;");
            m.asm.bind(call);
            m.invoke(Opcode::InvokeVirtual, "LBase;", "describe", &[], "I", &[0]);
            let mut mr = Insn::of(Opcode::MoveResult);
            mr.a = 1;
            m.asm.push(mr);
            m.asm.ret(Opcode::Return, 1);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let base = rt
        .call_static(&mut obs, "LMain;", "pick", "(I)I", &[Slot::from_int(0)])
        .unwrap();
    assert_eq!(base.as_int(), Some(1));
    let derived = rt
        .call_static(&mut obs, "LMain;", "pick", "(I)I", &[Slot::from_int(1)])
        .unwrap();
    assert_eq!(derived.as_int(), Some(2));
}

#[test]
fn static_fields_and_clinit() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_field("counter", "I", Some(StaticInit::Int(41)));
        c.static_method("bump", &[], "I", 1, |m| {
            m.sget(Opcode::Sget, 0, "La;", "counter", "I");
            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 1);
            m.sput(Opcode::Sput, 0, "La;", "counter", "I");
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let (mut rt, ret) = run_static(&mut pb, "La;", "bump", "()I", &[]);
    assert_eq!(ret.unwrap().as_int(), Some(42));
    let mut obs = NullObserver;
    let again = rt.call_static(&mut obs, "La;", "bump", "()I", &[]).unwrap();
    assert_eq!(again.as_int(), Some(43));
}

#[test]
fn instance_fields_roundtrip() {
    let mut pb = ProgramBuilder::new();
    pb.class("LBox;", |c| {
        c.instance_field("value", "I");
        c.static_method("test", &[], "I", 2, |m| {
            m.new_instance(0, "LBox;");
            m.asm.const4(1, 7);
            m.iput(Opcode::Iput, 1, 0, "LBox;", "value", "I");
            m.iget(Opcode::Iget, 1, 0, "LBox;", "value", "I");
            m.asm.ret(Opcode::Return, 1);
        });
    });
    let (_, ret) = run_static(&mut pb, "LBox;", "test", "()I", &[]);
    assert_eq!(ret.unwrap().as_int(), Some(7));
}

#[test]
fn arrays_and_fill_array_data() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("third", &[], "I", 3, |m| {
            m.asm.const4(0, 5);
            m.new_array(1, 0, "[I");
            m.asm.fill_array_data(
                1,
                4,
                vec![1, 0, 0, 0, 2, 0, 0, 0, 30, 0, 0, 0, 4, 0, 0, 0, 5, 0, 0, 0],
            );
            m.asm.const4(0, 2);
            m.asm.binop(Opcode::Aget, 2, 1, 0);
            m.asm.ret(Opcode::Return, 2);
        });
    });
    let (_, ret) = run_static(&mut pb, "La;", "third", "()I", &[]);
    assert_eq!(ret.unwrap().as_int(), Some(30));
}

#[test]
fn array_index_out_of_bounds_throws() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("oob", &[], "I", 3, |m| {
            m.asm.const4(0, 2);
            m.new_array(1, 0, "[I");
            m.asm.const4(0, 5);
            m.asm.binop(Opcode::Aget, 2, 1, 0);
            m.asm.ret(Opcode::Return, 2);
        });
    });
    let (_, ret) = run_static(&mut pb, "La;", "oob", "()I", &[]);
    match ret.unwrap_err() {
        RuntimeError::UncaughtException { type_desc, .. } => {
            assert_eq!(type_desc, "Ljava/lang/ArrayIndexOutOfBoundsException;");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn packed_switch_dispatches() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("pick", &["I"], "I", 1, |m| {
            let x = m.param_reg(0);
            let (c10, c11, default) = (m.asm.new_label(), m.asm.new_label(), m.asm.new_label());
            m.asm.packed_switch(x, 10, vec![c10, c11]);
            m.asm.bind(default);
            m.asm.const4(0, -1);
            m.asm.ret(Opcode::Return, 0);
            m.asm.bind(c10);
            m.asm.const4(0, 1);
            m.asm.ret(Opcode::Return, 0);
            m.asm.bind(c11);
            m.asm.const4(0, 2);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    for (input, expect) in [(10, 1), (11, 2), (9, -1), (99, -1)] {
        let ret = rt
            .call_static(&mut obs, "La;", "pick", "(I)I", &[Slot::from_int(input)])
            .unwrap();
        assert_eq!(ret.as_int(), Some(expect), "pick({input})");
    }
}

#[test]
fn taint_flows_through_stringbuilder_to_sink() {
    // String s = getSensitiveData(); sb = new StringBuilder();
    // sb.append(s); Net.send(sb.toString());
    let mut pb = ProgramBuilder::new();
    pb.class("LLeak;", |c| {
        c.static_method("go", &[], "V", 3, |m| {
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Sensitive;",
                "getSensitiveData",
                &[],
                "Ljava/lang/String;",
                &[],
            );
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 0;
            m.asm.push(mr);
            m.new_instance(1, "Ljava/lang/StringBuilder;");
            m.invoke(
                Opcode::InvokeDirect,
                "Ljava/lang/StringBuilder;",
                "<init>",
                &[],
                "V",
                &[1],
            );
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/StringBuilder;",
                "append",
                &["Ljava/lang/String;"],
                "Ljava/lang/StringBuilder;",
                &[1, 0],
            );
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/StringBuilder;",
                "toString",
                &[],
                "Ljava/lang/String;",
                &[1],
            );
            let mut mr2 = Insn::of(Opcode::MoveResultObject);
            mr2.a = 2;
            m.asm.push(mr2);
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Net;",
                "send",
                &["Ljava/lang/String;"],
                "V",
                &[2],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let (rt, ret) = run_static(&mut pb, "LLeak;", "go", "()V", &[]);
    ret.unwrap();
    assert_eq!(rt.log.tainted_sinks().count(), 1);
}

#[test]
fn reflection_invoke_resolves_target_and_notifies() {
    #[derive(Default)]
    struct ReflObs {
        resolved: Vec<String>,
    }
    impl RuntimeObserver for ReflObs {
        fn on_reflective_call(
            &mut self,
            rt: &Runtime,
            _caller: dexlego_runtime::MethodId,
            _site: u32,
            target: dexlego_runtime::MethodId,
        ) {
            self.resolved.push(rt.method_name(target));
        }
    }

    let mut pb = ProgramBuilder::new();
    pb.class("LRefl;", |c| {
        c.static_method("target", &[], "I", 1, |m| {
            m.asm.const4(0, 6);
            m.asm.ret(Opcode::Return, 0);
        });
        c.static_method("go", &[], "I", 4, |m| {
            m.const_class(0, "LRefl;");
            m.const_str(1, "target");
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/Class;",
                "getMethod",
                &["Ljava/lang/String;"],
                "Ljava/lang/reflect/Method;",
                &[0, 1],
            );
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 2;
            m.asm.push(mr);
            m.asm.const4(3, 0); // null receiver + null args
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/reflect/Method;",
                "invoke",
                &["Ljava/lang/Object;", "[Ljava/lang/Object;"],
                "Ljava/lang/Object;",
                &[2, 3, 3],
            );
            let mut mr2 = Insn::of(Opcode::MoveResult);
            mr2.a = 0;
            m.asm.push(mr2);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = ReflObs::default();
    let ret = rt
        .call_static(&mut obs, "LRefl;", "go", "()I", &[])
        .unwrap();
    assert_eq!(ret.as_int(), Some(6));
    assert_eq!(obs.resolved, vec!["LRefl;->target()I".to_owned()]);
}

#[test]
fn self_modifying_native_changes_behavior_immediately() {
    // answer() begins as `const/16 v0, #100; nop; return v0`. A native
    // rewrites the constant to 200 *while the program runs*: main() calls
    // tamper() then answer().
    let mut pb = ProgramBuilder::new();
    pb.class("LSm;", |c| {
        c.static_method("answer", &[], "I", 1, |m| {
            m.asm.const4(0, 100); // widens to const/16 (2 units)
            m.asm.nop();
            m.asm.ret(Opcode::Return, 0);
        });
        c.static_native_method("tamper", &[], "V");
        c.static_method("main", &[], "I", 1, |m| {
            m.invoke(Opcode::InvokeStatic, "LSm;", "tamper", &[], "V", &[]);
            m.invoke(Opcode::InvokeStatic, "LSm;", "answer", &[], "I", &[]);
            let mut mr = Insn::of(Opcode::MoveResult);
            mr.a = 0;
            m.asm.push(mr);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();

    // Register the tamper native: rewrite answer()'s literal to 200.
    let sm = rt.find_class("LSm;").unwrap();
    let answer = rt
        .resolve_method(sm, &dexlego_runtime::class::SigKey::new("answer", "()I"))
        .unwrap();
    rt.natives
        .register("LSm;", "tamper", "()V", move |rt, _, _| {
            if let dexlego_runtime::class::MethodImpl::Bytecode { insns, .. } =
                &mut rt.method_mut(answer).body
            {
                let mut patched = Insn::of(Opcode::Const16);
                patched.a = 0;
                patched.lit = 200;
                let units = encode_insn(&patched).unwrap();
                insns[..2].copy_from_slice(&units);
            }
            Ok(RetVal::Void)
        });

    let mut obs = NullObserver;
    let before = rt
        .call_static(&mut obs, "LSm;", "answer", "()I", &[])
        .unwrap();
    assert_eq!(before.as_int(), Some(100));
    let after = rt
        .call_static(&mut obs, "LSm;", "main", "()I", &[])
        .unwrap();
    assert_eq!(after.as_int(), Some(200));
}

#[test]
fn callbacks_register_and_fire() {
    let mut pb = ProgramBuilder::new();
    pb.class("LListener;", |c| {
        c.implements("Landroid/view/View$OnClickListener;");
        c.method("onClick", &["Landroid/view/View;"], "V", 1, |m| {
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Sensitive;",
                "getSensitiveData",
                &[],
                "Ljava/lang/String;",
                &[],
            );
            let mut mr = Insn::of(Insn::of(Opcode::MoveResultObject).op);
            mr.a = 0;
            m.asm.push(mr);
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Net;",
                "send",
                &["Ljava/lang/String;"],
                "V",
                &[0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    pb.class("LMain;", |c| {
        c.static_method("setup", &[], "V", 2, |m| {
            m.new_instance(0, "LListener;");
            m.asm.const4(1, 0); // a null "view"; listener registration only needs the listener
            m.invoke(
                Opcode::InvokeStatic,
                "LMain;",
                "attach",
                &["Landroid/view/View$OnClickListener;"],
                "V",
                &[0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method(
            "attach",
            &["Landroid/view/View$OnClickListener;"],
            "V",
            1,
            |m| {
                let l = m.param_reg(0);
                // view.setOnClickListener(l) with a fabricated view instance.
                m.new_instance(0, "Landroid/view/View;");
                m.invoke(
                    Opcode::InvokeVirtual,
                    "Landroid/view/View;",
                    "setOnClickListener",
                    &["Landroid/view/View$OnClickListener;"],
                    "V",
                    &[0, l],
                );
                m.asm.ret(Opcode::ReturnVoid, 0);
            },
        );
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    rt.call_static(&mut obs, "LMain;", "setup", "()V", &[])
        .unwrap();
    assert_eq!(rt.callbacks.len(), 1);
    // Fire the callback the way the event driver would.
    let cb = rt.callbacks[0].clone();
    rt.callback_depth += 1;
    rt.call_method(&mut obs, cb.method, &[Slot::of(cb.receiver), Slot::of(0)])
        .unwrap();
    rt.callback_depth -= 1;
    let has_cb_leak = rt.log.tainted_sinks().any(|e| {
        matches!(e, dexlego_runtime::RuntimeEvent::SinkCall { callback_depth, .. } if *callback_depth == 1)
    });
    assert!(has_cb_leak);
}

#[test]
fn observer_sees_every_instruction_with_units() {
    #[derive(Default)]
    struct Trace {
        pcs: Vec<u32>,
        unit_lens: Vec<usize>,
    }
    impl RuntimeObserver for Trace {
        fn on_instruction(&mut self, _rt: &Runtime, ev: &InsnEvent<'_>) {
            self.pcs.push(ev.dex_pc);
            self.unit_lens.push(ev.units.len());
        }
    }
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("two", &[], "I", 1, |m| {
            m.asm.const4(0, 2); // 1 unit at pc 0
            m.asm.ret(Opcode::Return, 0); // 1 unit at pc 1
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = Trace::default();
    rt.call_static(&mut obs, "La;", "two", "()I", &[]).unwrap();
    assert_eq!(obs.pcs, vec![0, 1]);
    assert_eq!(obs.unit_lens, vec![1, 1]);
}

#[test]
fn force_branch_override_flips_outcome() {
    struct ForceTake;
    impl RuntimeObserver for ForceTake {
        fn override_branch(
            &mut self,
            _rt: &Runtime,
            _m: dexlego_runtime::MethodId,
            _pc: u32,
            _would: bool,
        ) -> Option<bool> {
            Some(true)
        }
    }
    // if (0 != 0) return 1; else return 0;  — forced to take the branch.
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("forced", &[], "I", 1, |m| {
            let taken = m.asm.new_label();
            m.asm.const4(0, 0);
            m.asm.if_z(Opcode::IfNez, 0, taken);
            m.asm.const4(0, 0);
            m.asm.ret(Opcode::Return, 0);
            m.asm.bind(taken);
            m.asm.const4(0, 1);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = ForceTake;
    let ret = rt
        .call_static(&mut obs, "La;", "forced", "()I", &[])
        .unwrap();
    assert_eq!(ret.as_int(), Some(1));
}

#[test]
fn exception_tolerance_steps_over_faults() {
    struct Tolerant;
    impl RuntimeObserver for Tolerant {
        fn tolerate_exceptions(&self) -> bool {
            true
        }
    }
    // v0 = 9; v1 = 0; v0 = v0 / v1 (faults, tolerated, v0 keeps 9); return v0.
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("survive", &[], "I", 2, |m| {
            m.asm.const4(0, 9);
            m.asm.const4(1, 0);
            m.asm.binop(Opcode::DivInt, 0, 0, 1);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = Tolerant;
    let ret = rt
        .call_static(&mut obs, "La;", "survive", "()I", &[])
        .unwrap();
    assert_eq!(ret.as_int(), Some(9));
}

#[test]
fn dynamic_dex_loading_links_new_classes() {
    // A "payload" dex defines LPayload;->value()I. The host app loads it
    // dynamically from a byte array and the harness then calls into it.
    let mut payload_pb = ProgramBuilder::new();
    payload_pb.class("LPayload;", |c| {
        c.static_method("value", &[], "I", 1, |m| {
            m.asm.const4(0, 7);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let payload_dex = payload_pb.build().unwrap();
    let payload_bytes =
        dexlego_dex::writer::write_dex(&dexlego_dalvik::canon::canonicalize(&payload_dex).unwrap())
            .unwrap();

    let mut rt = Runtime::new();
    // Build the byte array on the heap and call the loader native directly.
    let arr = rt.heap.alloc_array("B", payload_bytes.len());
    if let Some(obj) = rt.heap.get_mut(arr) {
        if let dexlego_runtime::ObjKind::Array { data, .. } = &mut obj.kind {
            for (i, &b) in payload_bytes.iter().enumerate() {
                data[i] = dexlego_runtime::value::WideValue::of(u64::from(b));
            }
        }
    }
    let mut obs = NullObserver;
    rt.call_static(
        &mut obs,
        "Ldalvik/system/DexClassLoader;",
        "loadDexBytes",
        "([B)V",
        &[Slot::of(0), Slot::of(arr)],
    )
    .unwrap();
    let ret = rt
        .call_static(&mut obs, "LPayload;", "value", "()I", &[])
        .unwrap();
    assert_eq!(ret.as_int(), Some(7));
    assert!(rt
        .log
        .events()
        .iter()
        .any(|e| matches!(e, dexlego_runtime::RuntimeEvent::DynamicLoad { .. })));
}
