//! Steady-state hot-loop allocation check: once a method is warm, an
//! execution under a passive observer must perform zero heap allocations
//! per call — in quickened mode (in-place cell rewrites, fused dispatch),
//! in predecoded mode (borrowed fetches, pooled frames), AND in
//! decode-per-step mode (fixed-size unit buffer, no owned vectors).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::Opcode;
use dexlego_dex::DexFile;
use dexlego_runtime::class::SigKey;
use dexlego_runtime::observer::NullObserver;
use dexlego_runtime::{Env, FetchMode, Runtime, Slot};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Counts allocations on the current thread; delegates to the system
/// allocator.
struct Counting;

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

/// A tight arithmetic loop: no invokes, no heap traffic — every
/// allocation observed during a warm call is interpreter overhead.
fn hot_loop_app() -> (DexFile, String) {
    let entry = "Lalloc/Hot;".to_owned();
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.static_method("spin", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            let (top, done) = (m.asm.new_label(), m.asm.new_label());
            m.asm.const4(0, 0);
            m.asm.const4(1, 0);
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.asm.binop(Opcode::AddInt, 0, 0, 1);
            m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, 0x2f);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    (pb.build().unwrap(), entry)
}

fn warm_call_alloc_count(mode: FetchMode) -> u64 {
    let (dex, entry) = hot_loop_app();
    let mut rt = Runtime::with_env(Env {
        fetch_mode: mode,
        ..Env::default()
    });
    rt.load_dex(&dex, "app").unwrap();
    let class = rt.find_class(&entry).unwrap();
    let spin = rt
        .resolve_method(class, &SigKey::new("spin", "(I)I"))
        .unwrap();
    let mut obs = NullObserver;
    let args = [Slot::from_int(10_000)];
    // Warm-up: class init, cache build, frame-pool and exec-stack growth.
    rt.call_method(&mut obs, spin, &args).unwrap();
    rt.call_method(&mut obs, spin, &args).unwrap();
    let before = allocs();
    let ret = rt.call_method(&mut obs, spin, &args).unwrap();
    let during = allocs() - before;
    assert!(ret.as_int().is_some());
    during
}

#[test]
fn warm_hot_loop_allocates_nothing_quickened() {
    assert_eq!(
        warm_call_alloc_count(FetchMode::Quickened),
        0,
        "steady-state quickened/fused execution must be allocation-free"
    );
}

#[test]
fn warm_hot_loop_allocates_nothing_predecoded() {
    assert_eq!(
        warm_call_alloc_count(FetchMode::Predecoded),
        0,
        "steady-state predecoded execution must be allocation-free"
    );
}

#[test]
fn warm_hot_loop_allocates_nothing_per_step() {
    assert_eq!(
        warm_call_alloc_count(FetchMode::DecodePerStep),
        0,
        "per-step fallback must also be allocation-free in steady state"
    );
}
