//! Predecoded code cache: payload-decode-once behaviour, epoch
//! invalidation (including mid-frame self-modification), and per-step
//! fallback for streams the linear predecode rejects.

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::decode::{decode_calls, reset_decode_calls};
use dexlego_dalvik::{encode_insn, Insn, Opcode};
use dexlego_dex::file::EncodedMethod;
use dexlego_dex::{AccessFlags, ClassDef, CodeItem, DexFile};
use dexlego_runtime::class::{MethodImpl, SigKey};
use dexlego_runtime::observer::NullObserver;
use dexlego_runtime::{Runtime, Slot};

/// Builds `Lsw/Loop;::spin(I)I` — a loop whose every iteration dispatches
/// through a packed-switch payload.
fn switch_loop() -> (DexFile, String) {
    let entry = "Lsw/Loop;".to_owned();
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.static_method("spin", &["I"], "I", 4, |m| {
            let n = m.param_reg(0);
            let (top, done, inc) = (m.asm.new_label(), m.asm.new_label(), m.asm.new_label());
            let cases: Vec<u32> = (0..3).map(|_| m.asm.new_label()).collect();
            m.asm.const4(0, 0); // acc
            m.asm.const4(1, 0); // i
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.asm.binop_lit8(Opcode::RemIntLit8, 2, 1, 3);
            m.asm.packed_switch(2, 0, cases.clone());
            m.asm.goto(inc);
            m.asm.bind(cases[0]);
            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 1);
            m.asm.goto(inc);
            m.asm.bind(cases[1]);
            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 2);
            m.asm.goto(inc);
            m.asm.bind(cases[2]);
            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 3);
            m.asm.bind(inc);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    (pb.build().unwrap(), entry)
}

#[test]
fn switch_payload_is_decoded_exactly_once() {
    let (dex, entry) = switch_loop();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;

    // Cold run: 1000 iterations through the switch. The only decoding is
    // the single predecode pass over the method (one decode_insn call per
    // instruction plus one per payload) — not one per executed step.
    reset_decode_calls();
    let insns_before = rt.stats.insns;
    let ret = rt
        .call_static(&mut obs, &entry, "spin", "(I)I", &[Slot::from_int(1000)])
        .unwrap();
    // i%3==0 for 334 of 0..1000, the other residues 333 times each:
    // 334*1 + 333*2 + 333*3 = 1999.
    assert_eq!(ret.as_int(), Some(1999));
    let cold_decodes = decode_calls();
    let executed = rt.stats.insns - insns_before;
    assert!(executed > 5_000, "loop actually ran ({executed} insns)");
    assert!(
        cold_decodes < 100,
        "cold run decoded {cold_decodes} times; expected one predecode pass, \
         not per-step decoding"
    );
    assert_eq!(rt.stats.predecodes, 1);

    // Warm run: everything — instructions and the switch payload — is
    // served from the cache; zero decode calls.
    reset_decode_calls();
    rt.call_static(&mut obs, &entry, "spin", "(I)I", &[Slot::from_int(1000)])
        .unwrap();
    assert_eq!(decode_calls(), 0, "warm run must not decode at all");
    assert_eq!(rt.stats.predecodes, 1, "no rebuild without body mutation");
}

#[test]
fn rewritten_body_is_not_served_stale() {
    let mut pb = ProgramBuilder::new();
    pb.class("Lrw/C;", |c| {
        c.static_method("answer", &[], "I", 1, |m| {
            m.asm.const4(0, 100); // widens to const/16 (2 units)
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;

    let class = rt.find_class("Lrw/C;").unwrap();
    let answer = rt
        .resolve_method(class, &SigKey::new("answer", "()I"))
        .unwrap();

    let first = rt.call_method(&mut obs, answer, &[]).unwrap();
    assert_eq!(first.as_int(), Some(100));
    assert!(
        rt.predecoded_cached(answer).is_some(),
        "cached after first run"
    );

    // Rewrite the literal through method_mut: the epoch bump must
    // invalidate the cached representation.
    if let MethodImpl::Bytecode { insns, .. } = &mut rt.method_mut(answer).body {
        let mut patched = Insn::of(Opcode::Const16);
        patched.a = 0;
        patched.lit = 200;
        insns[..2].copy_from_slice(&encode_insn(&patched).unwrap());
    }
    assert!(
        rt.predecoded_cached(answer).is_none(),
        "stale entry must not be served after mutation"
    );

    let second = rt.call_method(&mut obs, answer, &[]).unwrap();
    assert_eq!(second.as_int(), Some(200), "rewritten body must execute");
    assert!(rt.stats.predecodes >= 2, "body rebuild after invalidation");
}

#[test]
fn mid_frame_self_modification_takes_effect() {
    // main() calls a native that rewrites main's OWN later instruction
    // while main's frame is live. The per-step epoch check must
    // re-predecode so the frame does not serve its stale representation.
    let mut pb = ProgramBuilder::new();
    pb.class("Lmf/C;", |c| {
        c.static_native_method("tamper", &[], "V");
        c.static_method("main", &[], "I", 1, |m| {
            m.invoke(Opcode::InvokeStatic, "Lmf/C;", "tamper", &[], "V", &[]);
            m.asm.const4(0, 100); // widens to const/16 at pc 3
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();

    let class = rt.find_class("Lmf/C;").unwrap();
    let main = rt
        .resolve_method(class, &SigKey::new("main", "()I"))
        .unwrap();
    rt.natives
        .register("Lmf/C;", "tamper", "()V", move |rt, _, _| {
            if let MethodImpl::Bytecode { insns, .. } = &mut rt.method_mut(main).body {
                // invoke-static is 3 units; the const/16 sits at pc 3.
                assert_eq!(insns[3], 0x0013, "patch target is the const/16");
                let mut patched = Insn::of(Opcode::Const16);
                patched.a = 0;
                patched.lit = 200;
                insns[3..5].copy_from_slice(&encode_insn(&patched).unwrap());
            }
            Ok(dexlego_runtime::value::RetVal::Void)
        });

    let mut obs = NullObserver;
    let ret = rt.call_method(&mut obs, main, &[]).unwrap();
    assert_eq!(
        ret.as_int(),
        Some(200),
        "mid-frame rewrite must be visible to the executing frame"
    );
}

#[test]
fn unpredecodable_stream_falls_back_to_per_step() {
    // Garbage past the return: linear predecode fails on the unknown
    // opcode, but execution never reaches it — per-step fetching runs the
    // method fine, and the negative outcome is cached.
    let mut dex = DexFile::new();
    let t = dex.intern_type("Lu/C;");
    let m = dex.intern_method("Lu/C;", "four", "I", &[]);
    let mut def = ClassDef::new(t);
    def.class_data
        .as_mut()
        .unwrap()
        .direct_methods
        .push(EncodedMethod {
            method_idx: m,
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            // const/4 v0, #4 ; return v0 ; unknown opcode 0x40
            code: Some(CodeItem::new(1, 0, 0, vec![0x4012, 0x000f, 0x0040])),
        });
    dex.add_class(def);

    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let ret = rt
        .call_static(&mut obs, "Lu/C;", "four", "()I", &[])
        .unwrap();
    assert_eq!(ret.as_int(), Some(4));

    let class = rt.find_class("Lu/C;").unwrap();
    let four = rt
        .resolve_method(class, &SigKey::new("four", "()I"))
        .unwrap();
    assert!(
        rt.predecoded_cached(four).is_none(),
        "stream is unpredecodable"
    );
    assert_eq!(rt.stats.predecodes, 1, "one failed build attempt");

    let again = rt
        .call_static(&mut obs, "Lu/C;", "four", "()I", &[])
        .unwrap();
    assert_eq!(again.as_int(), Some(4));
    assert_eq!(
        rt.stats.predecodes, 1,
        "failure outcome is cached, not retried"
    );
}

#[test]
fn jump_to_non_boundary_pc_falls_back_per_step() {
    // goto +2 lands in the middle of a const/16 whose literal unit is
    // itself a valid return-void. The predecoded index has no entry for
    // that pc; the interpreter must decode it from the live body exactly
    // as per-step mode does.
    let code = vec![0x0228, 0x0013, 0x000e]; // goto +2 ; const/16 v0 ; (lit =) return-void
    for mode in [
        dexlego_runtime::FetchMode::Predecoded,
        dexlego_runtime::FetchMode::DecodePerStep,
    ] {
        let mut dex = DexFile::new();
        let t = dex.intern_type("Lj/C;");
        let m = dex.intern_method("Lj/C;", "go", "V", &[]);
        let mut def = ClassDef::new(t);
        def.class_data
            .as_mut()
            .unwrap()
            .direct_methods
            .push(EncodedMethod {
                method_idx: m,
                access: AccessFlags::PUBLIC | AccessFlags::STATIC,
                code: Some(CodeItem::new(1, 0, 0, code.clone())),
            });
        dex.add_class(def);

        let mut rt = Runtime::with_env(dexlego_runtime::Env {
            fetch_mode: mode,
            ..dexlego_runtime::Env::default()
        });
        rt.load_dex(&dex, "app").unwrap();
        let mut obs = NullObserver;
        let ret = rt.call_static(&mut obs, "Lj/C;", "go", "()V", &[]);
        assert!(ret.is_ok(), "{mode:?}: {ret:?}");
    }
}
