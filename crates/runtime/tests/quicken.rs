//! Quickening behaviour: call sites rewrite to pre-resolved fast-path
//! cells exactly once, the `Predecoded` baseline never quickens, body
//! mutation de-quickens mid-frame, superinstructions fire only under a
//! passive observer, and a branch into the middle of a fused pair
//! executes the second half standalone.

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::{encode_insn, Insn, Opcode};
use dexlego_dex::DexFile;
use dexlego_runtime::class::{MethodImpl, SigKey};
use dexlego_runtime::observer::{InsnEvent, NullObserver, RuntimeObserver};
use dexlego_runtime::value::RetVal;
use dexlego_runtime::{Env, FetchMode, Runtime, Slot};

/// `Lqk/C;::go()I` exercises every quickenable site: new-instance +
/// invoke-direct `<init>`, iput/iget on an instance field, const-string,
/// and invoke-static to a same-dex helper. Returns x + seven() = 12.
fn quickenable_app() -> DexFile {
    let mut pb = ProgramBuilder::new();
    pb.class("Lqk/C;", |c| {
        c.instance_field("x", "I");
        c.constructor(&[], 1, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("seven", &[], "I", 1, |m| {
            m.asm.const4(0, 7);
            m.asm.ret(Opcode::Return, 0);
        });
        c.static_method("go", &[], "I", 5, |m| {
            m.new_instance(0, "Lqk/C;");
            m.invoke(Opcode::InvokeDirect, "Lqk/C;", "<init>", &[], "V", &[0]);
            m.asm.const4(1, 5);
            m.iput(Opcode::Iput, 1, 0, "Lqk/C;", "x", "I");
            m.iget(Opcode::Iget, 2, 0, "Lqk/C;", "x", "I");
            m.const_str(3, "qk");
            m.invoke(Opcode::InvokeStatic, "Lqk/C;", "seven", &[], "I", &[]);
            let mut mr = Insn::of(Opcode::MoveResult);
            mr.a = 4;
            m.asm.push(mr);
            m.asm.binop(Opcode::AddInt, 0, 2, 4);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    pb.build().unwrap()
}

fn runtime_with(mode: FetchMode, dex: &DexFile) -> Runtime {
    let mut rt = Runtime::with_env(Env {
        fetch_mode: mode,
        ..Env::default()
    });
    rt.load_dex(dex, "app").unwrap();
    rt
}

#[test]
fn call_sites_quicken_once() {
    let dex = quickenable_app();
    let mut rt = runtime_with(FetchMode::Quickened, &dex);
    let mut obs = NullObserver;

    let first = rt
        .call_static(&mut obs, "Lqk/C;", "go", "()I", &[])
        .unwrap();
    assert_eq!(first.as_int(), Some(12));
    let after_first = rt.stats.quickens;
    // iput, iget, const-string, invoke-static, invoke-direct all rewrote.
    assert!(
        after_first >= 5,
        "expected >=5 sites quickened, got {after_first}"
    );
    assert_eq!(rt.stats.dequickens, 0);

    let second = rt
        .call_static(&mut obs, "Lqk/C;", "go", "()I", &[])
        .unwrap();
    assert_eq!(second.as_int(), Some(12), "quickened re-run result");
    assert_eq!(
        rt.stats.quickens, after_first,
        "warm execution must not re-quicken already-rewritten cells"
    );
}

#[test]
fn predecoded_baseline_never_quickens() {
    let dex = quickenable_app();
    let mut rt = runtime_with(FetchMode::Predecoded, &dex);
    let mut obs = NullObserver;
    for _ in 0..2 {
        let ret = rt
            .call_static(&mut obs, "Lqk/C;", "go", "()I", &[])
            .unwrap();
        assert_eq!(ret.as_int(), Some(12));
    }
    assert_eq!(
        rt.stats.quickens, 0,
        "baseline must measure unquickened cost"
    );
    assert_eq!(rt.stats.superinsn_hits, 0);
}

#[test]
fn mid_frame_mutation_dequickens() {
    // main() quickens its const-string, then calls a native that rewrites
    // main's OWN later const/16 while the frame is live. The epoch bump
    // must discard the quickened cells (counted as de-quickens) and the
    // re-predecoded body must execute the patched literal.
    let mut pb = ProgramBuilder::new();
    pb.class("Ldq/C;", |c| {
        c.static_native_method("tamper", &[], "V");
        c.static_method("main", &[], "I", 1, |m| {
            m.const_str(0, "dq"); // quickens on first execution (2 units)
            m.invoke(Opcode::InvokeStatic, "Ldq/C;", "tamper", &[], "V", &[]);
            m.asm.const4(0, 100); // widens to const/16 at pc 5
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();

    let class = rt.find_class("Ldq/C;").unwrap();
    let main = rt
        .resolve_method(class, &SigKey::new("main", "()I"))
        .unwrap();
    rt.natives
        .register("Ldq/C;", "tamper", "()V", move |rt, _, _| {
            if let MethodImpl::Bytecode { insns, .. } = &mut rt.method_mut(main).body {
                assert_eq!(insns[5], 0x0013, "patch target is the const/16");
                let mut patched = Insn::of(Opcode::Const16);
                patched.a = 0;
                patched.lit = 200;
                insns[5..7].copy_from_slice(&encode_insn(&patched).unwrap());
            }
            Ok(RetVal::Void)
        });

    let mut obs = NullObserver;
    let ret = rt.call_method(&mut obs, main, &[]).unwrap();
    assert_eq!(ret.as_int(), Some(200), "patched literal must execute");
    assert!(
        rt.stats.quickens >= 1,
        "const-string quickened before tamper"
    );
    assert!(
        rt.stats.dequickens >= 1,
        "epoch bump must charge the discarded quickened cells"
    );
}

/// A tight loop whose body is back-to-back fusable pairs (alu+alu,
/// alu+goto, cmp-free if+alu). Returns the accumulator after n rounds.
fn fusable_loop_app() -> DexFile {
    let mut pb = ProgramBuilder::new();
    pb.class("Lfu/Hot;", |c| {
        c.static_method("spin", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            let (top, done) = (m.asm.new_label(), m.asm.new_label());
            m.asm.const4(0, 0);
            m.asm.const4(1, 0);
            m.asm.bind(top);
            m.asm.if_cmp(Opcode::IfGe, 1, n, done);
            m.asm.binop(Opcode::AddInt, 0, 0, 1);
            m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, 0x2f);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.goto(top);
            m.asm.bind(done);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    pb.build().unwrap()
}

/// Counts instruction events without recording them — forces the
/// interpreter onto the event-delivering (never-fused) path.
#[derive(Default)]
struct Counting(u64);

impl RuntimeObserver for Counting {
    fn on_instruction(&mut self, _rt: &Runtime, _ev: &InsnEvent<'_>) {
        self.0 += 1;
    }
}

#[test]
fn superinstructions_fire_only_for_passive_observers() {
    let dex = fusable_loop_app();
    let args = [Slot::from_int(500)];

    let mut rt = runtime_with(FetchMode::Quickened, &dex);
    let mut obs = NullObserver;
    let quiet = rt
        .call_static(&mut obs, "Lfu/Hot;", "spin", "(I)I", &args)
        .unwrap();
    assert!(
        rt.stats.superinsn_hits > 0,
        "fusable pairs must dispatch fused under a passive observer"
    );

    let mut rt = runtime_with(FetchMode::Quickened, &dex);
    let mut counter = Counting::default();
    let observed = rt
        .call_static(&mut counter, "Lfu/Hot;", "spin", "(I)I", &args)
        .unwrap();
    assert_eq!(
        rt.stats.superinsn_hits, 0,
        "event-delivering observers must see every instruction unfused"
    );
    assert_eq!(quiet.as_int(), observed.as_int(), "same result either way");
    assert!(counter.0 > 2_000, "events actually flowed ({})", counter.0);

    let mut rt = runtime_with(FetchMode::DecodePerStep, &dex);
    let mut obs = NullObserver;
    let step = rt
        .call_static(&mut obs, "Lfu/Hot;", "spin", "(I)I", &args)
        .unwrap();
    assert_eq!(quiet.as_int(), step.as_int(), "fused == per-step result");
}

#[test]
fn branch_into_middle_of_fused_pair_runs_second_half() {
    // The loop body starts with a fusable add+xor pair, but the entry
    // goto jumps straight to the xor: the pair's second half must also be
    // executable standalone through its own cell.
    let mut pb = ProgramBuilder::new();
    pb.class("Lmid/C;", |c| {
        c.static_method("run", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            let (top, mid) = (m.asm.new_label(), m.asm.new_label());
            m.asm.const4(0, 0);
            m.asm.const4(1, 0);
            m.asm.goto(mid); // first entry lands mid-pair
            m.asm.bind(top);
            m.asm.binop(Opcode::AddInt, 0, 0, 1); // fused head
            m.asm.bind(mid);
            m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, 0x11); // fused second
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.if_cmp(Opcode::IfLt, 1, n, top);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let args = [Slot::from_int(200)];

    let run = |mode: FetchMode| {
        let mut rt = runtime_with(mode, &dex);
        let mut obs = NullObserver;
        let mut last = None;
        for _ in 0..2 {
            last = rt
                .call_static(&mut obs, "Lmid/C;", "run", "(I)I", &args)
                .unwrap()
                .as_int();
        }
        (last, rt.stats.superinsn_hits)
    };

    let (quick, hits) = run(FetchMode::Quickened);
    let (step, _) = run(FetchMode::DecodePerStep);
    assert_eq!(quick, step, "mid-pair entry must not change the result");
    assert!(
        hits > 0,
        "the pair still dispatches fused when entered at its head"
    );
}
