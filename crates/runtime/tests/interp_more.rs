//! Additional interpreter semantics tests: conversions, comparisons, long
//! arithmetic, type tests, sparse switches, filled arrays, and string
//! natives.

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::{Insn, Opcode};
use dexlego_runtime::observer::NullObserver;
use dexlego_runtime::value::WideValue;
use dexlego_runtime::{Runtime, RuntimeError, Slot};

fn run_i(pb: &mut ProgramBuilder, name: &str, desc: &str, args: &[Slot]) -> i32 {
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    rt.call_static(&mut obs, "La;", name, desc, args)
        .unwrap()
        .as_int()
        .unwrap()
}

#[test]
fn int_long_conversions() {
    // long widen(int x) { return (long) x; } — sign extension.
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("widen", &["I"], "J", 2, |m| {
            let x = m.param_reg(0);
            let mut cv = Insn::of(Opcode::IntToLong);
            cv.a = 0;
            cv.b = x;
            m.asm.push(cv);
            m.asm.ret(Opcode::ReturnWide, 0);
        });
        c.static_method("narrow", &["J"], "I", 1, |m| {
            let x = m.param_reg(0);
            let mut cv = Insn::of(Opcode::LongToInt);
            cv.a = 0;
            cv.b = x;
            m.asm.push(cv);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let widened = rt
        .call_static(&mut obs, "La;", "widen", "(I)J", &[Slot::from_int(-5)])
        .unwrap();
    assert_eq!(widened.as_long(), Some(-5));
    let w = WideValue::from_long(0x1_2345_6789);
    let (lo, hi) = w.split();
    let narrowed = rt
        .call_static(&mut obs, "La;", "narrow", "(J)I", &[lo, hi])
        .unwrap();
    assert_eq!(narrowed.as_int(), Some(0x2345_6789));
}

#[test]
fn float_int_conversion_clamps() {
    // int f2i(float x)
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("f2i", &["F"], "I", 1, |m| {
            let x = m.param_reg(0);
            let mut cv = Insn::of(Opcode::FloatToInt);
            cv.a = 0;
            cv.b = x;
            m.asm.push(cv);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    for (input, expected) in [
        (1.9f32, 1i32),
        (-1.9, -1),
        (f32::NAN, 0),
        (f32::INFINITY, i32::MAX),
        (f32::NEG_INFINITY, i32::MIN),
    ] {
        let r = rt
            .call_static(&mut obs, "La;", "f2i", "(F)I", &[Slot::from_float(input)])
            .unwrap();
        assert_eq!(r.as_int(), Some(expected), "f2i({input})");
    }
}

#[test]
fn cmp_long_and_float_nan_bias() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("cmpl", &["F", "F"], "I", 1, |m| {
            let (a, b) = (m.param_reg(0), m.param_reg(1));
            m.asm.binop(Opcode::CmplFloat, 0, a, b);
            m.asm.ret(Opcode::Return, 0);
        });
        c.static_method("cmpg", &["F", "F"], "I", 1, |m| {
            let (a, b) = (m.param_reg(0), m.param_reg(1));
            m.asm.binop(Opcode::CmpgFloat, 0, a, b);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let call = |rt: &mut Runtime, obs: &mut NullObserver, name: &str, a: f32, b: f32| {
        rt.call_static(
            obs,
            "La;",
            name,
            "(FF)I",
            &[Slot::from_float(a), Slot::from_float(b)],
        )
        .unwrap()
        .as_int()
        .unwrap()
    };
    assert_eq!(call(&mut rt, &mut obs, "cmpl", 1.0, 2.0), -1);
    assert_eq!(call(&mut rt, &mut obs, "cmpl", 2.0, 2.0), 0);
    assert_eq!(call(&mut rt, &mut obs, "cmpl", 3.0, 2.0), 1);
    // NaN bias: cmpl -> -1, cmpg -> +1.
    assert_eq!(call(&mut rt, &mut obs, "cmpl", f32::NAN, 2.0), -1);
    assert_eq!(call(&mut rt, &mut obs, "cmpg", f32::NAN, 2.0), 1);
}

#[test]
fn long_shift_uses_int_register_and_masks() {
    // long shl(long x, int s) { return x << s; } with s = 65 -> shift 1.
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("shl", &["J", "I"], "J", 2, |m| {
            let x = m.param_reg(0);
            let s = m.param_reg(1);
            m.asm.binop(Opcode::ShlLong, 0, x, s);
            m.asm.ret(Opcode::ReturnWide, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let (lo, hi) = WideValue::from_long(3).split();
    let r = rt
        .call_static(
            &mut obs,
            "La;",
            "shl",
            "(JI)J",
            &[lo, hi, Slot::from_int(65)],
        )
        .unwrap();
    assert_eq!(r.as_long(), Some(6));
}

#[test]
fn instance_of_and_check_cast() {
    let mut pb = ProgramBuilder::new();
    pb.class("LBase;", |c| {
        c.method("id", &[], "I", 1, |m| {
            m.asm.const4(0, 1);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    pb.class("LSub;", |c| {
        c.superclass("LBase;");
    });
    pb.class("La;", |c| {
        // int test(): instance-of on a Sub instance against Base (1),
        // against an unrelated class (0), and on null (0).
        c.static_method("test", &[], "I", 4, |m| {
            m.new_instance(0, "LSub;");
            let mut io = Insn::of(Opcode::InstanceOf);
            io.a = 1;
            io.b = 0;
            io.idx = 0; // patched below via intern
            m.asm.push(io);
            m.asm.ret(Opcode::Return, 1);
        });
    });
    // Patch the instance-of type to LBase; using the model API directly.
    let mut dex = pb.build().unwrap();
    let base_t = dex.intern_type("LBase;");
    {
        let a = dex
            .class_defs()
            .iter()
            .position(|c| dex.type_descriptor(c.class_idx).unwrap() == "La;")
            .unwrap();
        let code = dex.class_defs_mut()[a]
            .class_data
            .as_mut()
            .unwrap()
            .direct_methods[0]
            .code
            .as_mut()
            .unwrap();
        // instance-of is the second instruction (after new-instance, 2 units).
        let insn = dexlego_dalvik::decode_insn(&code.insns, 2).unwrap();
        let mut patched = insn.as_insn().unwrap().clone();
        patched.idx = base_t;
        let units = dexlego_dalvik::encode_insn(&patched).unwrap();
        code.insns[2..2 + units.len()].copy_from_slice(&units);
    }
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let r = rt.call_static(&mut obs, "La;", "test", "()I", &[]).unwrap();
    assert_eq!(r.as_int(), Some(1), "Sub instance-of Base");
}

#[test]
fn sparse_switch_dispatches() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("pick", &["I"], "I", 1, |m| {
            let p = m.param_reg(0);
            let (a, b) = (m.asm.new_label(), m.asm.new_label());
            m.asm.sparse_switch(p, vec![-100, 7777], vec![a, b]);
            m.asm.const4(0, 0);
            m.asm.ret(Opcode::Return, 0);
            m.asm.bind(a);
            m.asm.const4(0, 1);
            m.asm.ret(Opcode::Return, 0);
            m.asm.bind(b);
            m.asm.const4(0, 2);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    for (input, expected) in [(-100, 1), (7777, 2), (0, 0), (42, 0)] {
        let r = rt
            .call_static(&mut obs, "La;", "pick", "(I)I", &[Slot::from_int(input)])
            .unwrap();
        assert_eq!(r.as_int(), Some(expected), "pick({input})");
    }
}

#[test]
fn filled_new_array_and_length() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("len3", &[], "I", 4, |m| {
            m.asm.const4(0, 5);
            m.asm.const4(1, 6);
            m.asm.const4(2, 7);
            let mut fa = Insn::of(Opcode::FilledNewArray);
            fa.regs = vec![0, 1, 2];
            fa.idx = 0; // patched by interning below
            m.asm.push(fa);
            let mut mr = Insn::of(Opcode::MoveResultObject);
            mr.a = 3;
            m.asm.push(mr);
            let mut al = Insn::of(Opcode::ArrayLength);
            al.a = 0;
            al.b = 3;
            m.asm.push(al);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let mut dex = pb.build().unwrap();
    let arr_t = dex.intern_type("[I");
    {
        let code = dex.class_defs_mut()[0]
            .class_data
            .as_mut()
            .unwrap()
            .direct_methods[0]
            .code
            .as_mut()
            .unwrap();
        let insn = dexlego_dalvik::decode_insn(&code.insns, 3).unwrap();
        let mut patched = insn.as_insn().unwrap().clone();
        patched.idx = arr_t;
        let units = dexlego_dalvik::encode_insn(&patched).unwrap();
        code.insns[3..3 + units.len()].copy_from_slice(&units);
    }
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let r = rt.call_static(&mut obs, "La;", "len3", "()I", &[]).unwrap();
    assert_eq!(r.as_int(), Some(3));
}

#[test]
fn string_equals_and_parse_int_natives() {
    let mut rt = Runtime::new();
    let mut obs = NullObserver;
    let a = rt.intern_string("42");
    let b = rt.intern_string("42");
    let eq = rt
        .call_static(
            &mut obs,
            "Ljava/lang/String;",
            "equals",
            "(Ljava/lang/Object;)Z",
            &[Slot::of(a), Slot::of(b)],
        )
        .unwrap();
    assert_eq!(eq.as_int(), Some(1));
    let parsed = rt
        .call_static(
            &mut obs,
            "Ljava/lang/Integer;",
            "parseInt",
            "(Ljava/lang/String;)I",
            &[Slot::of(a)],
        )
        .unwrap();
    assert_eq!(parsed.as_int(), Some(42));
}

#[test]
fn get_system_service_returns_typed_managers() {
    let mut rt = Runtime::new();
    let mut obs = NullObserver;
    for (service, class) in [
        ("phone", "Landroid/telephony/TelephonyManager;"),
        ("location", "Landroid/location/LocationManager;"),
        ("wifi", "Landroid/net/wifi/WifiInfo;"),
    ] {
        let name = rt.intern_string(service);
        let ret = rt
            .call_static(
                &mut obs,
                "Landroid/content/Context;",
                "getSystemService",
                "(Ljava/lang/String;)Ljava/lang/Object;",
                &[Slot::of(0), Slot::of(name)],
            )
            .unwrap();
        let obj = ret.as_obj().unwrap();
        let cls = rt.heap.instance_class(obj).unwrap();
        assert_eq!(rt.class(cls).descriptor, class);
    }
}

#[test]
fn stack_overflow_is_reported_not_crashed() {
    // void recurse() { recurse(); }
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("recurse", &[], "V", 1, |m| {
            m.invoke(Opcode::InvokeStatic, "La;", "recurse", &[], "V", &[]);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let err = rt
        .call_static(&mut obs, "La;", "recurse", "()V", &[])
        .unwrap_err();
    assert!(matches!(err, RuntimeError::StackOverflow));
}

#[test]
fn budget_exhaustion_is_per_execution() {
    // An infinite loop hits the budget; the next execution starts fresh.
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("forever", &[], "V", 1, |m| {
            let top = m.asm.new_label();
            m.asm.bind(top);
            m.asm.nop();
            m.asm.goto(top);
        });
        c.static_method("quick", &[], "I", 1, |m| {
            m.asm.const4(0, 3);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    let dex = pb.build().unwrap();
    let mut rt = Runtime::new();
    rt.env.insn_budget = 10_000;
    rt.load_dex(&dex, "app").unwrap();
    let mut obs = NullObserver;
    let err = rt
        .call_static(&mut obs, "La;", "forever", "()V", &[])
        .unwrap_err();
    assert!(matches!(err, RuntimeError::BudgetExhausted));
    // A later execution is unaffected by the spent budget.
    let ok = rt
        .call_static(&mut obs, "La;", "quick", "()I", &[])
        .unwrap();
    assert_eq!(ok.as_int(), Some(3));
}

#[test]
fn rem_and_neg_semantics() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("op", &["I", "I"], "I", 1, |m| {
            let (a, b) = (m.param_reg(0), m.param_reg(1));
            m.asm.binop(Opcode::RemInt, 0, a, b);
            let mut neg = Insn::of(Opcode::NegInt);
            neg.a = 0;
            neg.b = 0;
            m.asm.push(neg);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    // -(-7 % 3) = -(-1) = 1 (Java remainder keeps the dividend's sign).
    assert_eq!(
        run_i(
            &mut pb,
            "op",
            "(II)I",
            &[Slot::from_int(-7), Slot::from_int(3)]
        ),
        1
    );
}

#[test]
fn min_int_div_minus_one_wraps() {
    let mut pb = ProgramBuilder::new();
    pb.class("La;", |c| {
        c.static_method("div", &["I", "I"], "I", 1, |m| {
            let (a, b) = (m.param_reg(0), m.param_reg(1));
            m.asm.binop(Opcode::DivInt, 0, a, b);
            m.asm.ret(Opcode::Return, 0);
        });
    });
    assert_eq!(
        run_i(
            &mut pb,
            "div",
            "(II)I",
            &[Slot::from_int(i32::MIN), Slot::from_int(-1)]
        ),
        i32::MIN
    );
}
