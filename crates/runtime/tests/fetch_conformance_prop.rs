//! Property: for arbitrary assembled methods, execution through the
//! quickened/fused fast path, the predecoded code cache, and per-step
//! decoding produce the identical instruction-event stream and the
//! identical result.
//!
//! With an instruction-event observer attached the interpreter serves
//! quickened-but-never-fused dispatch, so the event streams themselves
//! must match per-step exactly. Superinstruction fusion only engages under
//! a passive observer, so fused execution is additionally checked
//! result-for-result against per-step under `NullObserver`.

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::Opcode;
use dexlego_dex::DexFile;
use dexlego_runtime::observer::{InsnEvent, RuntimeObserver};
use dexlego_runtime::{Env, FetchMode, Runtime, RuntimeError, Slot};
use proptest::prelude::*;

/// Records every instruction event: (dex_pc, opcode byte, raw units).
#[derive(Default)]
struct Recorder {
    events: Vec<(u32, u8, Vec<u16>)>,
}

impl RuntimeObserver for Recorder {
    fn on_instruction(&mut self, _rt: &Runtime, ev: &InsnEvent<'_>) {
        self.events
            .push((ev.dex_pc, ev.insn.op as u8, ev.units.to_vec()));
    }
}

/// One generated operation in the method body.
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Const(i8),
    Xor(i8),
    Mul(i8),
    SkipIfNeg,
    PackedSwitch,
    SparseSwitch,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        any::<i8>().prop_map(GenOp::Const),
        any::<i8>().prop_map(GenOp::Xor),
        any::<i8>().prop_map(GenOp::Mul),
        Just(GenOp::SkipIfNeg),
        Just(GenOp::PackedSwitch),
        Just(GenOp::SparseSwitch),
    ]
}

/// Assembles `Lgen/P;::run(I)I` from the generated ops. Registers:
/// v0 = accumulator, v1 = scratch, v2 = the parameter.
fn build(ops: &[GenOp]) -> DexFile {
    let mut pb = ProgramBuilder::new();
    pb.class("Lgen/P;", |c| {
        c.static_method("run", &["I"], "I", 3, |m| {
            let n = m.param_reg(0);
            m.asm.const4(0, 0);
            m.asm.binop(Opcode::AddInt, 0, 0, n);
            for op in ops {
                match op {
                    GenOp::Const(v) => {
                        m.asm.const4(1, i64::from(*v));
                        m.asm.binop(Opcode::AddInt, 0, 0, 1);
                    }
                    GenOp::Xor(v) => {
                        m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, i64::from(*v));
                    }
                    GenOp::Mul(v) => {
                        m.asm.binop_lit8(Opcode::MulIntLit8, 0, 0, i64::from(*v));
                    }
                    GenOp::SkipIfNeg => {
                        let skip = m.asm.new_label();
                        m.asm.if_z(Opcode::IfLtz, 0, skip);
                        m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 1);
                        m.asm.bind(skip);
                    }
                    GenOp::PackedSwitch => {
                        let after = m.asm.new_label();
                        let cases: Vec<u32> = (0..3).map(|_| m.asm.new_label()).collect();
                        m.asm.binop_lit8(Opcode::AndIntLit8, 1, 0, 3);
                        m.asm.packed_switch(1, 0, cases.clone());
                        m.asm.goto(after);
                        for (i, &case) in cases.iter().enumerate() {
                            m.asm.bind(case);
                            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 5 + i as i64);
                            m.asm.goto(after);
                        }
                        m.asm.bind(after);
                    }
                    GenOp::SparseSwitch => {
                        let after = m.asm.new_label();
                        let cases: Vec<u32> = (0..2).map(|_| m.asm.new_label()).collect();
                        m.asm.binop_lit8(Opcode::AndIntLit8, 1, 0, 7);
                        m.asm.sparse_switch(1, vec![2, 5], cases.clone());
                        m.asm.goto(after);
                        for (i, &case) in cases.iter().enumerate() {
                            m.asm.bind(case);
                            m.asm.binop_lit8(Opcode::XorIntLit8, 0, 0, 9 + i as i64);
                            m.asm.goto(after);
                        }
                        m.asm.bind(after);
                    }
                }
            }
            m.asm.ret(Opcode::Return, 0);
        });
    });
    pb.build().unwrap()
}

type Run = (Result<Option<i32>, String>, Vec<(u32, u8, Vec<u16>)>);

fn run_mode(dex: &DexFile, mode: FetchMode, arg: i32) -> Run {
    let mut rt = Runtime::with_env(Env {
        fetch_mode: mode,
        ..Env::default()
    });
    rt.load_dex(dex, "app").unwrap();
    let mut rec = Recorder::default();
    let ret = rt
        .call_static(&mut rec, "Lgen/P;", "run", "(I)I", &[Slot::from_int(arg)])
        .map(|v| v.as_int())
        .map_err(|e: RuntimeError| e.to_string());
    (ret, rec.events)
}

/// Runs under a passive observer (fusion active in `Quickened` mode) and
/// returns only the result; the call is made twice on one runtime so the
/// second execution exercises already-quickened cells.
fn run_mode_silent(dex: &DexFile, mode: FetchMode, arg: i32) -> Result<Option<i32>, String> {
    let mut rt = Runtime::with_env(Env {
        fetch_mode: mode,
        ..Env::default()
    });
    rt.load_dex(dex, "app").unwrap();
    let mut obs = dexlego_runtime::observer::NullObserver;
    let mut last = Err("never ran".to_owned());
    for _ in 0..2 {
        last = rt
            .call_static(&mut obs, "Lgen/P;", "run", "(I)I", &[Slot::from_int(arg)])
            .map(|v| v.as_int())
            .map_err(|e: RuntimeError| e.to_string());
    }
    last
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three fetch modes see the same events and compute the same
    /// result under an instruction-event observer.
    #[test]
    fn fetch_modes_are_observationally_identical(
        ops in proptest::collection::vec(op_strategy(), 0..24),
        arg in any::<i16>(),
    ) {
        let dex = build(&ops);
        let (ret_quick, ev_quick) = run_mode(&dex, FetchMode::Quickened, i32::from(arg));
        let (ret_pre, ev_pre) = run_mode(&dex, FetchMode::Predecoded, i32::from(arg));
        let (ret_step, ev_step) = run_mode(&dex, FetchMode::DecodePerStep, i32::from(arg));
        prop_assert_eq!(ret_pre, ret_step.clone());
        prop_assert_eq!(ev_pre, ev_step.clone());
        prop_assert_eq!(ret_quick, ret_step);
        prop_assert_eq!(ev_quick, ev_step);
    }

    /// With fusion engaged (passive observer, warm second call) the
    /// quickened fast path still computes the per-step result.
    #[test]
    fn fused_execution_matches_per_step_results(
        ops in proptest::collection::vec(op_strategy(), 0..24),
        arg in any::<i16>(),
    ) {
        let dex = build(&ops);
        let quick = run_mode_silent(&dex, FetchMode::Quickened, i32::from(arg));
        let step = run_mode_silent(&dex, FetchMode::DecodePerStep, i32::from(arg));
        prop_assert_eq!(quick, step);
    }
}
