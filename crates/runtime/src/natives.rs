//! Native-method registry and the simulated Android framework.
//!
//! Real ART dispatches `native` methods through JNI; here a native method is
//! a Rust closure receiving `&mut Runtime`. That is exactly the power the
//! paper's adversary has: JNI code can rewrite a loaded method's bytecode
//! (self-modifying code, Code 1), load DEX files dynamically, or perform
//! sensitive operations. It is also how we model the framework: sources
//! (device id, location, SSID), sinks (SMS, network, log, files), UI
//! callback registration, and the reflection API.

use std::collections::HashMap;
use std::sync::Arc;

use crate::class::{MethodId, SigKey};
use crate::events::{RuntimeEvent, SinkKind, SourceKind};
use crate::heap::ObjKind;
use crate::observer::RuntimeObserver;
use crate::runtime::{Result, Runtime, RuntimeError};
use crate::value::{RetVal, Slot, WideValue};

/// Signature of a native-method implementation.
///
/// Implementations are `Send + Sync` so a [`Runtime`] (and anything
/// capturing one, e.g. a batch-harness job) can move across worker threads.
pub type NativeFn =
    Arc<dyn Fn(&mut Runtime, &mut dyn RuntimeObserver, &[Slot]) -> Result<RetVal> + Send + Sync>;

/// Registry of native methods keyed by
/// `"Lclass;->name(descriptor)return"` strings.
#[derive(Default, Clone)]
pub struct NativeRegistry {
    table: HashMap<String, NativeFn>,
}

impl std::fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeRegistry")
            .field("methods", &self.table.len())
            .finish()
    }
}

/// Builds a registry key.
pub fn native_key(class_desc: &str, name: &str, descriptor: &str) -> String {
    format!("{class_desc}->{name}{descriptor}")
}

impl NativeRegistry {
    /// Creates an empty registry.
    pub fn new() -> NativeRegistry {
        NativeRegistry::default()
    }

    /// Registers (or replaces) an implementation.
    pub fn register(
        &mut self,
        class_desc: &str,
        name: &str,
        descriptor: &str,
        f: impl Fn(&mut Runtime, &mut dyn RuntimeObserver, &[Slot]) -> Result<RetVal>
            + Send
            + Sync
            + 'static,
    ) {
        self.table
            .insert(native_key(class_desc, name, descriptor), Arc::new(f));
    }

    /// Looks up an implementation.
    pub fn lookup(&self, key: &str) -> Option<NativeFn> {
        self.table.get(key).cloned()
    }

    /// Number of registered natives.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no natives are registered.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Convenience: register a native *and* its resolvable method stub.
pub fn register_native(
    rt: &mut Runtime,
    class_desc: &str,
    name: &str,
    params: &[&str],
    return_type: &str,
    f: impl Fn(&mut Runtime, &mut dyn RuntimeObserver, &[Slot]) -> Result<RetVal>
        + Send
        + Sync
        + 'static,
) -> MethodId {
    let id = rt.register_native_method(class_desc, name, params, return_type);
    let descriptor = rt.method(id).descriptor.clone();
    rt.natives.register(class_desc, name, &descriptor, f);
    id
}

fn string_of(rt: &Runtime, slot: Slot) -> (String, u32) {
    let obj_taint = rt.heap.get(slot.raw).map_or(0, |o| o.taint);
    let s = rt
        .heap
        .as_string(slot.raw)
        .map(str::to_owned)
        .unwrap_or_else(|| {
            if slot.raw == 0 {
                "null".to_owned()
            } else {
                format!("<obj#{}>", slot.raw)
            }
        });
    (s, slot.taint | obj_taint)
}

fn ret_string(rt: &mut Runtime, s: String, taint: u32) -> RetVal {
    let r = rt.heap.alloc_string(s, taint);
    RetVal::Single(Slot { raw: r, taint })
}

fn caller_of(rt: &Runtime) -> Option<MethodId> {
    rt.exec_stack.last().map(|&(m, _)| m)
}

fn source_native(rt: &mut Runtime, kind: SourceKind, value: &str) -> RetVal {
    let taint = rt.mint_taint();
    rt.log.push(RuntimeEvent::SourceRead {
        kind,
        taint,
        caller: caller_of(rt),
        callback_depth: rt.callback_depth,
    });
    ret_string(rt, value.to_owned(), taint)
}

fn sink_native(rt: &mut Runtime, kind: SinkKind, data_args: &[Slot]) {
    let mut taint = 0;
    let mut payload = String::new();
    for &arg in data_args {
        let (s, t) = string_of(rt, arg);
        taint |= t;
        if !payload.is_empty() {
            payload.push('|');
        }
        payload.push_str(&s);
    }
    rt.log.push(RuntimeEvent::SinkCall {
        kind,
        arg_taint: taint,
        payload,
        caller: caller_of(rt),
        callback_depth: rt.callback_depth,
    });
}

/// Registers the simulated Android framework: `java.lang` basics, source
/// and sink APIs, UI callback registration, the reflection API, and the
/// dynamic DEX loader. Called by [`Runtime::new`].
pub fn register_framework(rt: &mut Runtime) {
    // ---- java.lang.Object ---------------------------------------------------
    register_native(rt, "Ljava/lang/Object;", "<init>", &[], "V", |_, _, _| {
        Ok(RetVal::Void)
    });
    register_native(
        rt,
        "Ljava/lang/Object;",
        "getClass",
        &[],
        "Ljava/lang/Class;",
        |rt, _, args| {
            let class = crate::interp::runtime_class_of_obj(rt, args[0].raw)
                .unwrap_or_else(|| rt.ensure_class_stub("Ljava/lang/Object;"));
            let r = rt.heap.alloc(ObjKind::Class(class), 0);
            Ok(RetVal::Single(Slot::of(r)))
        },
    );
    register_native(
        rt,
        "Ljava/lang/Object;",
        "toString",
        &[],
        "Ljava/lang/String;",
        |rt, _, args| {
            let (s, t) = string_of(rt, args[0]);
            Ok(ret_string(rt, s, t))
        },
    );

    // ---- java.lang.String ---------------------------------------------------
    register_native(
        rt,
        "Ljava/lang/String;",
        "equals",
        &["Ljava/lang/Object;"],
        "Z",
        |rt, _, args| {
            let a = rt.heap.as_string(args[0].raw).map(str::to_owned);
            let b = rt.heap.as_string(args[1].raw).map(str::to_owned);
            let eq = a.is_some() && a == b;
            Ok(RetVal::Single(Slot {
                raw: u32::from(eq),
                taint: args[0].taint | args[1].taint,
            }))
        },
    );
    register_native(
        rt,
        "Ljava/lang/String;",
        "length",
        &[],
        "I",
        |rt, _, args| {
            let (s, t) = string_of(rt, args[0]);
            Ok(RetVal::Single(Slot {
                raw: s.chars().count() as u32,
                taint: t,
            }))
        },
    );
    register_native(
        rt,
        "Ljava/lang/String;",
        "concat",
        &["Ljava/lang/String;"],
        "Ljava/lang/String;",
        |rt, _, args| {
            let (a, ta) = string_of(rt, args[0]);
            let (b, tb) = string_of(rt, args[1]);
            Ok(ret_string(rt, a + &b, ta | tb))
        },
    );
    register_native(
        rt,
        "Ljava/lang/String;",
        "valueOf",
        &["I"],
        "Ljava/lang/String;",
        |rt, _, args| Ok(ret_string(rt, args[0].as_int().to_string(), args[0].taint)),
    );
    register_native(
        rt,
        "Ljava/lang/String;",
        "hashCode",
        &[],
        "I",
        |rt, _, args| {
            let (s, t) = string_of(rt, args[0]);
            let mut h: i32 = 0;
            for c in s.encode_utf16() {
                h = h.wrapping_mul(31).wrapping_add(i32::from(c as i16));
            }
            Ok(RetVal::Single(Slot {
                raw: h as u32,
                taint: t,
            }))
        },
    );

    // ---- java.lang.StringBuilder --------------------------------------------
    register_native(
        rt,
        "Ljava/lang/StringBuilder;",
        "<init>",
        &[],
        "V",
        |rt, _, args| {
            rt.sb_buffers.insert(args[0].raw, (String::new(), 0));
            Ok(RetVal::Void)
        },
    );
    register_native(
        rt,
        "Ljava/lang/StringBuilder;",
        "append",
        &["Ljava/lang/String;"],
        "Ljava/lang/StringBuilder;",
        |rt, _, args| {
            let (s, t) = string_of(rt, args[1]);
            let entry = rt.sb_buffers.entry(args[0].raw).or_default();
            entry.0.push_str(&s);
            entry.1 |= t;
            Ok(RetVal::Single(args[0]))
        },
    );
    register_native(
        rt,
        "Ljava/lang/StringBuilder;",
        "appendInt",
        &["I"],
        "Ljava/lang/StringBuilder;",
        |rt, _, args| {
            let entry = rt.sb_buffers.entry(args[0].raw).or_default();
            entry.0.push_str(&args[1].as_int().to_string());
            entry.1 |= args[1].taint;
            Ok(RetVal::Single(args[0]))
        },
    );
    register_native(
        rt,
        "Ljava/lang/StringBuilder;",
        "toString",
        &[],
        "Ljava/lang/String;",
        |rt, _, args| {
            let (s, t) = rt.sb_buffers.get(&args[0].raw).cloned().unwrap_or_default();
            Ok(ret_string(rt, s, t))
        },
    );

    // ---- system services --------------------------------------------------------
    register_native(
        rt,
        "Landroid/content/Context;",
        "getSystemService",
        &["Ljava/lang/String;"],
        "Ljava/lang/Object;",
        |rt, _, args| {
            let (name, _) = string_of(rt, args[1]);
            let desc = match name.as_str() {
                "phone" => "Landroid/telephony/TelephonyManager;",
                "location" => "Landroid/location/LocationManager;",
                "wifi" => "Landroid/net/wifi/WifiInfo;",
                _ => "Ljava/lang/Object;",
            };
            let class = rt.ensure_class_stub(desc);
            let obj = rt.heap.alloc_instance(class);
            Ok(RetVal::Single(Slot::of(obj)))
        },
    );

    // ---- sources --------------------------------------------------------------
    register_native(
        rt,
        "Landroid/telephony/TelephonyManager;",
        "getDeviceId",
        &[],
        "Ljava/lang/String;",
        |rt, _, _| Ok(source_native(rt, SourceKind::DeviceId, "358240051111110")),
    );
    register_native(
        rt,
        "Landroid/telephony/TelephonyManager;",
        "getSimSerialNumber",
        &[],
        "Ljava/lang/String;",
        |rt, _, _| {
            Ok(source_native(
                rt,
                SourceKind::DeviceId,
                "89014103211118510720",
            ))
        },
    );
    register_native(
        rt,
        "Landroid/location/LocationManager;",
        "getLastKnownLocation",
        &["Ljava/lang/String;"],
        "Ljava/lang/String;",
        |rt, _, _| Ok(source_native(rt, SourceKind::Location, "42.3314,-83.0458")),
    );
    register_native(
        rt,
        "Landroid/net/wifi/WifiInfo;",
        "getSSID",
        &[],
        "Ljava/lang/String;",
        |rt, _, _| Ok(source_native(rt, SourceKind::Ssid, "\"compass-lab\"")),
    );
    register_native(
        rt,
        "Lcom/dexlego/Sensitive;",
        "getSensitiveData",
        &[],
        "Ljava/lang/String;",
        |rt, _, _| Ok(source_native(rt, SourceKind::Generic, "top-secret")),
    );

    // ---- sinks ---------------------------------------------------------------
    register_native(
        rt,
        "Landroid/telephony/SmsManager;",
        "getDefault",
        &[],
        "Landroid/telephony/SmsManager;",
        |rt, obs, _| {
            let r = {
                let _ = &obs;
                let class = rt
                    .find_class("Landroid/telephony/SmsManager;")
                    .unwrap_or_else(|| rt.ensure_class_stub("Landroid/telephony/SmsManager;"));
                rt.heap.alloc_instance(class)
            };
            Ok(RetVal::Single(Slot::of(r)))
        },
    );
    register_native(
        rt,
        "Landroid/telephony/SmsManager;",
        "sendTextMessage",
        &[
            "Ljava/lang/String;",
            "Ljava/lang/String;",
            "Ljava/lang/String;",
            "Ljava/lang/String;",
            "Ljava/lang/String;",
        ],
        "V",
        |rt, _, args| {
            // args: this, dest, scAddr, text, sentIntent, deliveryIntent.
            sink_native(rt, SinkKind::Sms, &[args[3]]);
            Ok(RetVal::Void)
        },
    );
    register_native(
        rt,
        "Landroid/util/Log;",
        "i",
        &["Ljava/lang/String;", "Ljava/lang/String;"],
        "I",
        |rt, _, args| {
            sink_native(rt, SinkKind::Log, &[args[1]]);
            Ok(RetVal::Single(Slot::of(0)))
        },
    );
    register_native(
        rt,
        "Lcom/dexlego/Net;",
        "send",
        &["Ljava/lang/String;"],
        "V",
        |rt, _, args| {
            sink_native(rt, SinkKind::Network, &[args[0]]);
            Ok(RetVal::Void)
        },
    );

    // ---- simulated external files (PrivateDataLeak3 pattern) ------------------
    register_native(
        rt,
        "Lcom/dexlego/Files;",
        "write",
        &["Ljava/lang/String;", "Ljava/lang/String;"],
        "V",
        |rt, _, args| {
            let (path, _) = string_of(rt, args[0]);
            let (data, taint) = string_of(rt, args[1]);
            if taint != 0 {
                rt.log.push(RuntimeEvent::FileRoundTrip { taint });
            }
            rt.external_files.insert(path, (data, taint));
            Ok(RetVal::Void)
        },
    );
    register_native(
        rt,
        "Lcom/dexlego/Files;",
        "read",
        &["Ljava/lang/String;"],
        "Ljava/lang/String;",
        |rt, _, args| {
            let (path, _) = string_of(rt, args[0]);
            let (data, _stored_taint) = rt.external_files.get(&path).cloned().unwrap_or_default();
            // Taint is intentionally dropped across the file boundary: no
            // runtime taint tracker in the paper's evaluation follows this
            // flow (Table IV, PrivateDataLeak3).
            Ok(ret_string(rt, data, 0))
        },
    );

    // ---- environment probes ----------------------------------------------------
    register_native(
        rt,
        "Lcom/dexlego/Env;",
        "isEmulator",
        &[],
        "Z",
        |rt, _, _| Ok(RetVal::Single(Slot::of(u32::from(rt.env.is_emulator)))),
    );
    register_native(rt, "Lcom/dexlego/Env;", "isTablet", &[], "Z", |rt, _, _| {
        Ok(RetVal::Single(Slot::of(u32::from(rt.env.is_tablet))))
    });

    // ---- UI callbacks -----------------------------------------------------------
    register_native(
        rt,
        "Landroid/view/View;",
        "setOnClickListener",
        &["Landroid/view/View$OnClickListener;"],
        "V",
        |rt, _, args| {
            let listener = args[1].raw;
            if let Some(class) = crate::interp::runtime_class_of_obj(rt, listener) {
                if let Some(m) =
                    rt.resolve_method(class, &SigKey::new("onClick", "(Landroid/view/View;)V"))
                {
                    rt.callbacks.push(crate::runtime::Callback {
                        receiver: listener,
                        method: m,
                        kind: "onClick".to_owned(),
                    });
                }
            }
            Ok(RetVal::Void)
        },
    );

    // ---- reflection ---------------------------------------------------------------
    register_native(
        rt,
        "Ljava/lang/Class;",
        "forName",
        &["Ljava/lang/String;"],
        "Ljava/lang/Class;",
        |rt, _, args| {
            let (name, _) = string_of(rt, args[0]);
            // Accept both dotted names and descriptors.
            let desc = if name.starts_with('L') && name.ends_with(';') {
                name.clone()
            } else {
                format!("L{};", name.replace('.', "/"))
            };
            match rt.find_class(&desc) {
                Some(c) => {
                    let r = rt.heap.alloc(ObjKind::Class(c), 0);
                    Ok(RetVal::Single(Slot::of(r)))
                }
                None => Ok(RetVal::Single(Slot::of(0))),
            }
        },
    );
    register_native(
        rt,
        "Ljava/lang/Class;",
        "getMethod",
        &["Ljava/lang/String;"],
        "Ljava/lang/reflect/Method;",
        |rt, _, args| {
            let class = match rt.heap.get(args[0].raw).map(|o| &o.kind) {
                Some(&ObjKind::Class(c)) => c,
                _ => return Ok(RetVal::Single(Slot::of(0))),
            };
            let (name, _) = string_of(rt, args[1]);
            // Simplified reflection: match by name only, as the samples do.
            let found = rt.class(class).methods.iter().find_map(|(sig, &m)| {
                if sig.name == name {
                    Some(m)
                } else {
                    None
                }
            });
            match found {
                Some(m) => {
                    let r = rt.heap.alloc(ObjKind::Method(m), 0);
                    Ok(RetVal::Single(Slot::of(r)))
                }
                None => Ok(RetVal::Single(Slot::of(0))),
            }
        },
    );
    register_native(
        rt,
        "Ljava/lang/Class;",
        "getDeclaredMethods",
        &[],
        "[Ljava/lang/reflect/Method;",
        |rt, _, args| {
            let class = match rt.heap.get(args[0].raw).map(|o| &o.kind) {
                Some(&ObjKind::Class(c)) => c,
                _ => return Ok(RetVal::Single(Slot::of(0))),
            };
            // Deterministic order: sort by name for reproducibility.
            let mut methods: Vec<(String, MethodId)> = rt
                .class(class)
                .methods
                .iter()
                .filter(|(sig, _)| !sig.name.starts_with('<'))
                .map(|(sig, &m)| (sig.name.clone(), m))
                .collect();
            methods.sort();
            let arr = rt
                .heap
                .alloc_array("Ljava/lang/reflect/Method;", methods.len());
            for (i, (_, m)) in methods.into_iter().enumerate() {
                let h = rt.heap.alloc(ObjKind::Method(m), 0);
                if let Some(obj) = rt.heap.get_mut(arr) {
                    if let ObjKind::Array { data, .. } = &mut obj.kind {
                        data[i] = WideValue::of(u64::from(h));
                    }
                }
            }
            Ok(RetVal::Single(Slot::of(arr)))
        },
    );
    register_native(
        rt,
        "Ljava/lang/reflect/Method;",
        "invoke",
        &["Ljava/lang/Object;", "[Ljava/lang/Object;"],
        "Ljava/lang/Object;",
        |rt, obs, args| {
            let target = match rt.heap.get(args[0].raw).map(|o| &o.kind) {
                Some(&ObjKind::Method(m)) => m,
                _ => {
                    return Err(RuntimeError::UncaughtException {
                        type_desc: "Ljava/lang/NullPointerException;".into(),
                        message: "Method.invoke on null Method".into(),
                    })
                }
            };
            // Report the resolved target to the observer with the *caller's*
            // call site (the invoke instruction on Method.invoke).
            if let Some(&(caller, site)) = rt.exec_stack.last() {
                obs.on_reflective_call(rt, caller, site, target);
            }
            rt.log.push(RuntimeEvent::ReflectiveInvoke { target });
            // Unpack arguments: receiver + boxed array elements.
            let mut call_args: Vec<Slot> = Vec::new();
            let is_static = rt.method(target).access.is_static();
            if !is_static {
                call_args.push(args[1]);
            }
            if args[2].raw != 0 {
                if let Some(obj) = rt.heap.get(args[2].raw) {
                    if let ObjKind::Array { data, .. } = &obj.kind {
                        for w in data.clone() {
                            call_args.push(Slot {
                                raw: w.raw as u32,
                                taint: w.taint,
                            });
                        }
                    }
                }
            }
            match crate::interp::execute(rt, obs, target, &call_args)? {
                RetVal::Void => Ok(RetVal::Single(Slot::of(0))),
                other => Ok(other),
            }
        },
    );

    // ---- dynamic loading ------------------------------------------------------------
    register_native(
        rt,
        "Ldalvik/system/DexClassLoader;",
        "loadDexBytes",
        &["[B"],
        "V",
        |rt, obs, args| {
            // Instance-method convention: args[0] is the loader (may be
            // null), args[1] the byte array.
            let bytes: Vec<u8> = match rt.heap.get(args[1].raw).map(|o| &o.kind) {
                Some(ObjKind::Array { data, .. }) => data.iter().map(|w| w.raw as u8).collect(),
                _ => {
                    return Err(RuntimeError::Internal(
                        "loadDexBytes expects a byte array".into(),
                    ))
                }
            };
            let dex = dexlego_dex::reader::read_dex_unchecked(&bytes)?;
            let tag = format!("dynamic:{}", rt.dex_source_count());
            let classes = rt.load_dex_observed(&dex, &tag, obs)?;
            rt.log.push(RuntimeEvent::DynamicLoad {
                source: tag.clone(),
                classes: classes.len(),
            });
            obs.on_dynamic_load(rt, &tag, &classes);
            Ok(RetVal::Void)
        },
    );

    // ---- string decryption helper (encrypted-reflection samples) --------------------
    register_native(
        rt,
        "Lcom/dexlego/Crypto;",
        "decrypt",
        &["Ljava/lang/String;"],
        "Ljava/lang/String;",
        |rt, _, args| {
            let (enc, t) = string_of(rt, args[0]);
            let dec: String = enc.chars().map(|c| ((c as u8) ^ 0x20) as char).collect();
            Ok(ret_string(rt, dec, t))
        },
    );

    // ---- inter-component extras (Intent putExtra/getExtra analogue) ------------------
    register_native(
        rt,
        "Lcom/dexlego/Icc;",
        "putExtra",
        &["Ljava/lang/String;", "Ljava/lang/String;"],
        "V",
        |rt, _, args| {
            let (key, _) = string_of(rt, args[0]);
            let (value, taint) = string_of(rt, args[1]);
            rt.icc_extras.insert(key, (value, taint));
            Ok(RetVal::Void)
        },
    );
    register_native(
        rt,
        "Lcom/dexlego/Icc;",
        "getExtra",
        &["Ljava/lang/String;"],
        "Ljava/lang/String;",
        |rt, _, args| {
            let (key, _) = string_of(rt, args[0]);
            let (value, taint) = rt.icc_extras.get(&key).cloned().unwrap_or_default();
            Ok(ret_string(rt, value, taint))
        },
    );

    // ---- fuzz input -------------------------------------------------------------------
    register_native(
        rt,
        "Lcom/dexlego/Input;",
        "nextInt",
        &[],
        "I",
        |rt, _, _| {
            rt.input_state ^= rt.input_state << 13;
            rt.input_state ^= rt.input_state >> 7;
            rt.input_state ^= rt.input_state << 17;
            Ok(RetVal::Single(Slot::of(rt.input_state as u32)))
        },
    );
    register_native(
        rt,
        "Lcom/dexlego/Input;",
        "nextIntBound",
        &["I"],
        "I",
        |rt, _, args| {
            rt.input_state ^= rt.input_state << 13;
            rt.input_state ^= rt.input_state >> 7;
            rt.input_state ^= rt.input_state << 17;
            let bound = args[0].as_int().max(1) as u64;
            Ok(RetVal::Single(Slot::of((rt.input_state % bound) as u32)))
        },
    );

    // ---- Integer helpers --------------------------------------------------------------
    register_native(
        rt,
        "Ljava/lang/Integer;",
        "parseInt",
        &["Ljava/lang/String;"],
        "I",
        |rt, _, args| {
            let (s, t) = string_of(rt, args[0]);
            Ok(RetVal::Single(Slot {
                raw: s.trim().parse::<i32>().unwrap_or(0) as u32,
                taint: t,
            }))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;

    #[test]
    fn framework_registers_nonempty() {
        let rt = Runtime::new();
        assert!(rt.natives.len() > 20);
        assert!(rt
            .natives
            .lookup("Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;")
            .is_some());
    }

    #[test]
    fn source_mints_taint_and_logs() {
        let mut rt = Runtime::new();
        let mut obs = NullObserver;
        let ret = rt
            .call_static(
                &mut obs,
                "Lcom/dexlego/Sensitive;",
                "getSensitiveData",
                "()Ljava/lang/String;",
                &[Slot::of(0)],
            )
            .unwrap();
        let slot = match ret {
            RetVal::Single(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(slot.taint, 0);
        assert_eq!(rt.heap.as_string(slot.raw), Some("top-secret"));
        assert_eq!(rt.log.events().len(), 1);
    }

    #[test]
    fn sink_records_arg_taint() {
        let mut rt = Runtime::new();
        let tainted = rt.heap.alloc_string("leak".into(), 0);
        let mut obs = NullObserver;
        // this, dest, scAddr, text (tainted via slot), sentIntent, deliveryIntent
        let args = [
            Slot::of(0),
            Slot::of(0),
            Slot::of(0),
            Slot {
                raw: tainted,
                taint: 0b100,
            },
            Slot::of(0),
            Slot::of(0),
        ];
        rt.call_static(
            &mut obs,
            "Landroid/telephony/SmsManager;",
            "sendTextMessage",
            "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
            &args,
        )
        .unwrap();
        assert_eq!(rt.log.tainted_sinks().count(), 1);
    }

    #[test]
    fn file_roundtrip_drops_taint_but_logs() {
        let mut rt = Runtime::new();
        let mut obs = NullObserver;
        let path = rt.heap.alloc_string("/sdcard/x".into(), 0);
        let data = rt.heap.alloc_string("secret".into(), 0);
        rt.call_static(
            &mut obs,
            "Lcom/dexlego/Files;",
            "write",
            "(Ljava/lang/String;Ljava/lang/String;)V",
            &[
                Slot::of(path),
                Slot {
                    raw: data,
                    taint: 1,
                },
            ],
        )
        .unwrap();
        let back = rt
            .call_static(
                &mut obs,
                "Lcom/dexlego/Files;",
                "read",
                "(Ljava/lang/String;)Ljava/lang/String;",
                &[Slot::of(path)],
            )
            .unwrap();
        let slot = match back {
            RetVal::Single(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(slot.taint, 0);
        assert_eq!(rt.heap.as_string(slot.raw), Some("secret"));
        assert!(rt
            .log
            .events()
            .iter()
            .any(|e| matches!(e, RuntimeEvent::FileRoundTrip { .. })));
    }

    #[test]
    fn crypto_decrypt_is_involution() {
        let mut rt = Runtime::new();
        let mut obs = NullObserver;
        let encrypt = |rt: &mut Runtime, obs: &mut NullObserver, s: &str| {
            let h = rt.heap.alloc_string(s.into(), 0);
            let ret = rt
                .call_static(
                    obs,
                    "Lcom/dexlego/Crypto;",
                    "decrypt",
                    "(Ljava/lang/String;)Ljava/lang/String;",
                    &[Slot::of(h)],
                )
                .unwrap();
            rt.heap.as_string(ret.as_obj().unwrap()).unwrap().to_owned()
        };
        let once = encrypt(&mut rt, &mut obs, "advancedLeak");
        let twice = encrypt(&mut rt, &mut obs, &once);
        assert_eq!(twice, "advancedLeak");
    }
}
