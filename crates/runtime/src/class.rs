//! Runtime class, field, and method representations produced by the linker.

use std::collections::HashMap;

use dexlego_dex::AccessFlags;

use crate::value::WideValue;

/// Identifier of a linked runtime class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub usize);

/// Identifier of a linked runtime field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub usize);

/// Identifier of a linked runtime method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub usize);

/// A method signature key used for resolution: name plus descriptor string
/// (e.g. `("advancedLeak", "()V")`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SigKey {
    /// Method name.
    pub name: String,
    /// Descriptor: `(` parameter descriptors `)` return descriptor.
    pub descriptor: String,
}

impl SigKey {
    /// Builds a key from name and descriptor.
    pub fn new(name: &str, descriptor: &str) -> SigKey {
        SigKey {
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
        }
    }
}

/// A linked class.
#[derive(Debug, Clone)]
pub struct RuntimeClass {
    /// Type descriptor, e.g. `Lcom/test/Main;`.
    pub descriptor: String,
    /// Superclass, if linked.
    pub superclass: Option<ClassId>,
    /// Implemented interfaces.
    pub interfaces: Vec<ClassId>,
    /// Access flags.
    pub access: AccessFlags,
    /// Declared methods, keyed by signature.
    pub methods: HashMap<SigKey, MethodId>,
    /// Declared fields, keyed by name.
    pub fields: HashMap<String, FieldId>,
    /// Static field storage (populated at initialisation).
    pub statics: HashMap<FieldId, WideValue>,
    /// Whether `<clinit>` has run.
    pub initialized: bool,
    /// Tag of the DEX source this class came from (APK name, dynamic load
    /// tag, or `"<framework>"`).
    pub source: String,
}

/// Category of a method's implementation.
#[derive(Debug, Clone)]
pub enum MethodImpl {
    /// Interpreted bytecode. The code units are mutable at runtime —
    /// self-modifying code rewrites them in place.
    Bytecode {
        /// Number of registers.
        registers: u16,
        /// Number of argument registers (highest registers).
        ins: u16,
        /// The instruction stream, mutable.
        insns: Vec<u16>,
        /// Try/catch ranges, as in the code item.
        tries: Vec<dexlego_dex::TryItem>,
        /// Handler lists.
        handlers: Vec<dexlego_dex::EncodedCatchHandler>,
    },
    /// Dispatched to the native registry by signature.
    Native,
    /// Abstract — resolved via virtual dispatch, never executed directly.
    Abstract,
}

/// A linked method.
#[derive(Debug, Clone)]
pub struct RuntimeMethod {
    /// Declaring class.
    pub class: ClassId,
    /// Method name.
    pub name: String,
    /// Full descriptor, e.g. `(ILjava/lang/String;)V`.
    pub descriptor: String,
    /// Parameter type descriptors.
    pub params: Vec<String>,
    /// Return type descriptor.
    pub return_type: String,
    /// Access flags.
    pub access: AccessFlags,
    /// Implementation.
    pub body: MethodImpl,
}

impl RuntimeMethod {
    /// Number of argument slots (wide parameters count twice), including
    /// `this` for instance methods.
    pub fn arg_slots(&self) -> usize {
        let mut n = if self.access.is_static() { 0 } else { 1 };
        for p in &self.params {
            n += match p.as_str() {
                "J" | "D" => 2,
                _ => 1,
            };
        }
        n
    }

    /// Whether the return type is wide (`J` or `D`).
    pub fn returns_wide(&self) -> bool {
        matches!(self.return_type.as_str(), "J" | "D")
    }

    /// Signature key for resolution.
    pub fn sig_key(&self) -> SigKey {
        SigKey::new(&self.name, &self.descriptor)
    }
}

/// A linked field.
#[derive(Debug, Clone)]
pub struct RuntimeField {
    /// Declaring class.
    pub class: ClassId,
    /// Field name.
    pub name: String,
    /// Type descriptor.
    pub type_desc: String,
    /// Access flags.
    pub access: AccessFlags,
}

/// Builds a descriptor string from parameter and return descriptors.
pub fn descriptor_of(params: &[String], return_type: &str) -> String {
    let mut d = String::from("(");
    for p in params {
        d.push_str(p);
    }
    d.push(')');
    d.push_str(return_type);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn method(params: &[&str], ret: &str, is_static: bool) -> RuntimeMethod {
        let params: Vec<String> = params.iter().map(|s| s.to_string()).collect();
        RuntimeMethod {
            class: ClassId(0),
            name: "m".into(),
            descriptor: descriptor_of(&params, ret),
            params,
            return_type: ret.into(),
            access: if is_static {
                AccessFlags::STATIC
            } else {
                AccessFlags::PUBLIC
            },
            body: MethodImpl::Native,
        }
    }

    #[test]
    fn arg_slots_counts_this_and_wides() {
        assert_eq!(method(&[], "V", true).arg_slots(), 0);
        assert_eq!(method(&[], "V", false).arg_slots(), 1);
        assert_eq!(method(&["I", "J", "D", "Lfoo;"], "V", true).arg_slots(), 6);
        assert_eq!(method(&["J"], "V", false).arg_slots(), 3);
    }

    #[test]
    fn descriptor_formatting() {
        assert_eq!(
            descriptor_of(&["I".into(), "Lfoo;".into()], "V"),
            "(ILfoo;)V"
        );
        assert_eq!(descriptor_of(&[], "J"), "()J");
    }

    #[test]
    fn wide_returns_detected() {
        assert!(method(&[], "J", true).returns_wide());
        assert!(method(&[], "D", true).returns_wide());
        assert!(!method(&[], "I", true).returns_wide());
        assert!(!method(&[], "Lfoo;", true).returns_wide());
    }
}
