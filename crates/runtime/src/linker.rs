//! The class linker: loading [`DexFile`] models into the runtime.
//!
//! Mirrors ART's flow from the paper's Figure 2: the DEX is "extracted from
//! the APK" (here: passed in as a model), classes are linked, and static
//! values are installed when `<clinit>` runs. Dynamic loading
//! (`DexClassLoader`) goes through the same path with a different source
//! tag, which is how the paper's dynamic-loading samples work.

use std::collections::HashMap;

use dexlego_dex::value::EncodedValue;
use dexlego_dex::{AccessFlags, DexFile};

use crate::class::{
    descriptor_of, ClassId, FieldId, MethodId, MethodImpl, RuntimeClass, RuntimeField,
    RuntimeMethod, SigKey,
};
use crate::observer::RuntimeObserver;
use crate::runtime::{DexTable, Result, Runtime, RuntimeError};
use crate::value::WideValue;

impl Runtime {
    /// Loads every class of `dex` under the given source tag, returning the
    /// new class ids. The DEX's constant pools are captured in a
    /// [`DexTable`] for instruction-operand resolution.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Dex`] if the model's indices are inconsistent.
    pub fn load_dex(&mut self, dex: &DexFile, source: &str) -> Result<Vec<ClassId>> {
        self.load_dex_observed(dex, source, &mut crate::observer::NullObserver)
    }

    /// [`Self::load_dex`] with observer notifications (class-load events are
    /// part of DexLego's collection).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Dex`] if the model's indices are inconsistent.
    pub fn load_dex_observed(
        &mut self,
        dex: &DexFile,
        source: &str,
        obs: &mut dyn RuntimeObserver,
    ) -> Result<Vec<ClassId>> {
        let source_idx = self.dex_tables.len();
        self.dex_tables.push(build_table(dex, source)?);

        // First pass: create classes (so forward references resolve).
        let mut new_classes = Vec::new();
        let mut def_of: HashMap<ClassId, usize> = HashMap::new();
        for (i, def) in dex.class_defs().iter().enumerate() {
            let desc = dex.type_descriptor(def.class_idx)?.to_owned();
            if self.class_by_desc.contains_key(&desc) {
                // Re-definition (e.g. unpacked original over shell): later
                // definitions shadow by replacing the registry entry.
                let id = ClassId(self.classes.len());
                self.classes.push(empty_class(&desc, def.access, source));
                self.class_by_desc.insert(desc, id);
                new_classes.push(id);
                def_of.insert(id, i);
                continue;
            }
            let id = ClassId(self.classes.len());
            self.classes.push(empty_class(&desc, def.access, source));
            self.class_by_desc.insert(desc, id);
            new_classes.push(id);
            def_of.insert(id, i);
        }

        // Second pass: link supertypes, members, bodies.
        for &class_id in &new_classes {
            let def = &dex.class_defs()[def_of[&class_id]];
            let superclass = match def.superclass {
                Some(t) => {
                    let sdesc = dex.type_descriptor(t)?.to_owned();
                    Some(
                        self.find_class(&sdesc)
                            .unwrap_or_else(|| self.ensure_class_stub(&sdesc)),
                    )
                }
                None => None,
            };
            let mut interfaces = Vec::new();
            for &t in &def.interfaces {
                let idesc = dex.type_descriptor(t)?.to_owned();
                interfaces.push(
                    self.find_class(&idesc)
                        .unwrap_or_else(|| self.ensure_class_stub(&idesc)),
                );
            }
            self.class_mut(class_id).superclass = superclass;
            self.class_mut(class_id).interfaces = interfaces;

            let Some(data) = &def.class_data else {
                continue;
            };

            // Fields.
            let mut static_fields_in_order = Vec::new();
            for (is_static, list) in [(true, &data.static_fields), (false, &data.instance_fields)] {
                for ef in list {
                    let fid_item = dex.field_id(ef.field_idx)?;
                    let name = dex.string(fid_item.name)?.to_owned();
                    let type_desc = dex.type_descriptor(fid_item.type_)?.to_owned();
                    let id = FieldId(self.fields.len());
                    self.fields.push(RuntimeField {
                        class: class_id,
                        name: name.clone(),
                        type_desc,
                        access: ef.access,
                    });
                    self.class_mut(class_id).fields.insert(name, id);
                    if is_static {
                        static_fields_in_order.push(id);
                    }
                }
            }

            // Static values from the encoded array (by position).
            for (i, value) in def.static_values.iter().enumerate() {
                if let Some(&fid) = static_fields_in_order.get(i) {
                    let wide = encoded_to_wide(self, dex, value)?;
                    self.class_mut(class_id).statics.insert(fid, wide);
                }
            }

            // Methods.
            for (_is_direct, list) in [(true, &data.direct_methods), (false, &data.virtual_methods)]
            {
                for em in list {
                    let mid_item = dex.method_id(em.method_idx)?;
                    let name = dex.string(mid_item.name)?.to_owned();
                    let proto = dex.proto(mid_item.proto)?;
                    let params: Vec<String> = proto
                        .parameters
                        .iter()
                        .map(|&t| dex.type_descriptor(t).map(str::to_owned))
                        .collect::<std::result::Result<_, _>>()?;
                    let return_type = dex.type_descriptor(proto.return_type)?.to_owned();
                    let descriptor = descriptor_of(&params, &return_type);
                    let body = match &em.code {
                        Some(code) => MethodImpl::Bytecode {
                            registers: code.registers_size,
                            ins: code.ins_size,
                            insns: code.insns.clone(),
                            tries: code.tries.clone(),
                            handlers: code.handlers.clone(),
                        },
                        None if em.access.is_native() => MethodImpl::Native,
                        None => MethodImpl::Abstract,
                    };
                    let id = MethodId(self.methods.len());
                    self.methods.push(RuntimeMethod {
                        class: class_id,
                        name: name.clone(),
                        descriptor: descriptor.clone(),
                        params,
                        return_type,
                        access: em.access,
                        body,
                    });
                    self.class_mut(class_id)
                        .methods
                        .insert(SigKey::new(&name, &descriptor), id);
                }
            }
        }

        // Attach the dex source index to bytecode methods (needed to resolve
        // instruction operands against the right pools).
        for &class_id in &new_classes {
            let method_ids: Vec<MethodId> =
                self.class(class_id).methods.values().copied().collect();
            for m in method_ids {
                self.method_source.insert(m, source_idx);
            }
        }

        for &c in &new_classes {
            obs.on_class_load(self, c);
        }
        Ok(new_classes)
    }
}

fn empty_class(descriptor: &str, access: AccessFlags, source: &str) -> RuntimeClass {
    RuntimeClass {
        descriptor: descriptor.to_owned(),
        superclass: None,
        interfaces: Vec::new(),
        access,
        methods: HashMap::new(),
        fields: HashMap::new(),
        statics: HashMap::new(),
        initialized: false,
        source: source.to_owned(),
    }
}

fn build_table(dex: &DexFile, source: &str) -> Result<DexTable> {
    let mut table = DexTable {
        source: source.to_owned(),
        ..DexTable::default()
    };
    table.strings = dex.strings().to_vec();
    for i in 0..dex.type_ids().len() {
        table.types.push(dex.type_descriptor(i as u32)?.to_owned());
    }
    for m in dex.method_ids() {
        let class = dex.type_descriptor(m.class)?.to_owned();
        let name = dex.string(m.name)?.to_owned();
        let proto = dex.proto(m.proto)?;
        let params: Vec<String> = proto
            .parameters
            .iter()
            .map(|&t| dex.type_descriptor(t).map(str::to_owned))
            .collect::<std::result::Result<_, _>>()?;
        let ret = dex.type_descriptor(proto.return_type)?.to_owned();
        table
            .methods
            .push((class, SigKey::new(&name, &descriptor_of(&params, &ret))));
    }
    for f in dex.field_ids() {
        table.fields.push((
            dex.type_descriptor(f.class)?.to_owned(),
            dex.string(f.name)?.to_owned(),
            dex.type_descriptor(f.type_)?.to_owned(),
        ));
    }
    Ok(table)
}

fn encoded_to_wide(rt: &mut Runtime, dex: &DexFile, value: &EncodedValue) -> Result<WideValue> {
    Ok(match value {
        EncodedValue::Byte(v) => WideValue::from_long(i64::from(*v)),
        EncodedValue::Short(v) => WideValue::from_long(i64::from(*v)),
        EncodedValue::Char(v) => WideValue::of(u64::from(*v)),
        EncodedValue::Int(v) => WideValue::of(*v as u32 as u64),
        EncodedValue::Long(v) => WideValue::from_long(*v),
        EncodedValue::Float(v) => WideValue::of(u64::from(v.to_bits())),
        EncodedValue::Double(v) => WideValue::from_double(*v),
        EncodedValue::Boolean(b) => WideValue::of(u64::from(*b)),
        EncodedValue::Null => WideValue::of(0),
        EncodedValue::String(idx) => {
            let s = dex.string(*idx)?.to_owned();
            WideValue::of(u64::from(rt.intern_string(&s)))
        }
        EncodedValue::Type(_)
        | EncodedValue::Field(_)
        | EncodedValue::Method(_)
        | EncodedValue::Enum(_)
        | EncodedValue::Array(_) => {
            return Err(RuntimeError::Internal(
                "unsupported encoded static value kind".into(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dexlego_dex::file::{EncodedField, EncodedMethod};
    use dexlego_dex::{ClassDef, CodeItem};

    fn tiny_dex() -> DexFile {
        let mut dex = DexFile::new();
        let obj = dex.intern_type("Ljava/lang/Object;");
        let t = dex.intern_type("Lcom/test/Main;");
        let m = dex.intern_method("Lcom/test/Main;", "answer", "I", &[]);
        let f = dex.intern_field("Lcom/test/Main;", "Ljava/lang/String;", "PHONE");
        let phone = dex.intern_string("800-123-456");
        let mut def = ClassDef::new(t);
        def.superclass = Some(obj);
        def.static_values.push(EncodedValue::String(phone));
        let data = def.class_data.as_mut().unwrap();
        data.static_fields.push(EncodedField {
            field_idx: f,
            access: AccessFlags::STATIC | AccessFlags::FINAL,
        });
        data.direct_methods.push(EncodedMethod {
            method_idx: m,
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            // const/16 v0, #42 ; return v0
            code: Some(CodeItem::new(1, 0, 0, vec![0x0013, 42, 0x000f])),
        });
        dex.add_class(def);
        dex
    }

    #[test]
    fn classes_link_with_stub_superclass() {
        let mut rt = Runtime::new();
        let classes = rt.load_dex(&tiny_dex(), "app").unwrap();
        assert_eq!(classes.len(), 1);
        let main = rt.find_class("Lcom/test/Main;").unwrap();
        let sup = rt.class(main).superclass.unwrap();
        assert_eq!(rt.class(sup).descriptor, "Ljava/lang/Object;");
        assert_eq!(rt.class(main).source, "app");
    }

    #[test]
    fn static_string_values_install_on_init() {
        let mut rt = Runtime::new();
        rt.load_dex(&tiny_dex(), "app").unwrap();
        let main = rt.find_class("Lcom/test/Main;").unwrap();
        let f = rt.resolve_field(main, "PHONE").unwrap();
        let mut obs = crate::observer::NullObserver;
        let v = rt.static_get(&mut obs, f).unwrap();
        let s = rt.heap.as_string(v.raw as u32).unwrap();
        assert_eq!(s, "800-123-456");
    }

    #[test]
    fn dex_table_captures_pools() {
        let mut rt = Runtime::new();
        rt.load_dex(&tiny_dex(), "app").unwrap();
        let table = rt.dex_table(0);
        assert!(table.strings.iter().any(|s| s == "800-123-456"));
        assert!(table
            .methods
            .iter()
            .any(|(c, s)| c == "Lcom/test/Main;" && s.name == "answer"));
        assert!(table.fields.iter().any(|(_, n, _)| n == "PHONE"));
    }

    #[test]
    fn redefinition_shadows_earlier_class() {
        let mut rt = Runtime::new();
        rt.load_dex(&tiny_dex(), "shell").unwrap();
        let first = rt.find_class("Lcom/test/Main;").unwrap();
        rt.load_dex(&tiny_dex(), "unpacked").unwrap();
        let second = rt.find_class("Lcom/test/Main;").unwrap();
        assert_ne!(first, second);
        assert_eq!(rt.class(second).source, "unpacked");
    }
}
