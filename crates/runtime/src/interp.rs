//! The bytecode interpreter.
//!
//! A faithful (if simplified) analogue of ART's `ExecuteSwitchImpl`: a
//! register frame of 32-bit slots, a `dex_pc` into the method's 16-bit code
//! unit array, and a fetch→observe→execute loop. Observers see every
//! instruction *before* it executes, with its raw units — the hook DexLego's
//! Algorithm 1 builds its collection trees on.
//!
//! Fetching is served from the runtime's predecoded code cache (the analogue
//! of ART's mterp/predecoded representation): a method body is decoded once
//! into a dense [`dexlego_dalvik::PredecodedMethod`] and each step borrows
//! `&Insn` / `&[u16]` views out of it. Method bodies stay mutable — every
//! frame re-validates the body's *code epoch* before each step and
//! re-predecodes on change, so self-modifying native code behaves exactly as
//! on Android, where units are re-fetched from the live method. Streams that
//! resist linear predecoding (garbage past unreachable code) and jumps to
//! non-boundary pcs fall back to per-step decoding with identical semantics.
//!
//! On top of the predecoded form, the default
//! [`FetchMode::Quickened`](crate::runtime::FetchMode) adds the three
//! stacked hot-loop optimisations ART's quickening pass performs:
//!
//! * **Table dispatch** — each step indexes a 256-entry function-pointer
//!   table by the instruction's *dispatch byte* instead of matching on the
//!   full opcode enum. Cold opcodes share a generic handler that runs the
//!   classic match.
//! * **Quickening** — field accesses, direct/static invokes, and string
//!   constants rewrite their dispatch byte in the cached
//!   [`quick::QuickCells`] overlay to a pre-resolved `*-quick` form after
//!   first execution, skipping constant-pool resolution on every later hit.
//! * **Superinstructions** — at predecode time, hot adjacent pairs
//!   (alu+alu, alu+goto, if+alu, cmp+if, const+move, iget+iget) are fused
//!   into one dispatch. The second half keeps its own cell, so branches
//!   into the middle of a pair execute it standalone; observers that want
//!   per-instruction events disable fusion entirely (the event stream is
//!   bit-identical across fetch modes).
//!
//! All three are invalidated together by the code epoch: a method mutation
//! discards the cache entry *and* its quickened cells (de-quickening), so
//! self-modifying packers never observe stale resolutions.
//!
//! Taint is propagated through explicit data flow only (moves, arithmetic,
//! field/array traffic, call arguments and returns) — deliberately *not*
//! through branch conditions, reproducing the implicit-flow blind spot of
//! runtime taint trackers that Table IV of the paper demonstrates.

use std::sync::Arc;

use dexlego_dalvik::quick::{self, QuickCells};
use dexlego_dalvik::{decode_insn, Decoded, Insn, Opcode, PredecodedMethod};

use crate::class::{FieldId, MethodId, MethodImpl};
use crate::heap::{ObjKind, ObjRef};
use crate::natives::native_key;
use crate::observer::{InsnEvent, RuntimeObserver};
use crate::runtime::{FetchMode, Result, Runtime, RuntimeError};
use crate::value::{RetVal, Slot, WideValue};

/// Outcome of running one frame: a return value or a thrown exception that
/// escaped the frame.
enum Outcome {
    Ret(RetVal),
    Threw(ObjRef),
}

/// Executes `method` with `args` (argument slots, wide values pre-split).
///
/// # Errors
///
/// Returns [`RuntimeError::UncaughtException`] if a Java exception escapes
/// the outermost frame (unless the observer tolerates exceptions), or a
/// hard error for linkage/decoding/budget failures.
pub fn execute(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    args: &[Slot],
) -> Result<RetVal> {
    if rt.exec_stack.is_empty() {
        rt.budget_start = rt.stats.insns;
    }
    match execute_inner(rt, obs, method, args, 0)? {
        Outcome::Ret(v) => Ok(v),
        Outcome::Threw(exc) => {
            let (type_desc, message) = describe_throwable(rt, exc);
            Err(RuntimeError::UncaughtException { type_desc, message })
        }
    }
}

fn describe_throwable(rt: &Runtime, exc: ObjRef) -> (String, String) {
    match rt.heap.get(exc).map(|o| &o.kind) {
        Some(ObjKind::Throwable { type_desc, message }) => (type_desc.clone(), message.clone()),
        Some(ObjKind::Instance { class, .. }) => {
            (rt.class(*class).descriptor.clone(), String::new())
        }
        _ => ("Ljava/lang/Throwable;".to_owned(), String::new()),
    }
}

/// The runtime class of an arbitrary heap object (strings and reflection
/// objects map to their framework classes).
pub fn runtime_class_of_obj(rt: &mut Runtime, obj: ObjRef) -> Option<crate::class::ClassId> {
    match rt.heap.get(obj).map(|o| o.kind.clone()) {
        Some(ObjKind::Instance { class, .. }) => Some(class),
        Some(ObjKind::Str(_)) => Some(rt.ensure_class_stub("Ljava/lang/String;")),
        Some(ObjKind::Class(_)) => Some(rt.ensure_class_stub("Ljava/lang/Class;")),
        Some(ObjKind::Method(_)) => Some(rt.ensure_class_stub("Ljava/lang/reflect/Method;")),
        Some(ObjKind::Array { .. }) => Some(rt.ensure_class_stub("Ljava/lang/Object;")),
        Some(ObjKind::Throwable { type_desc, .. }) => Some(rt.ensure_class_stub(&type_desc)),
        None => None,
    }
}

fn execute_inner(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    args: &[Slot],
    depth: usize,
) -> Result<Outcome> {
    if depth >= rt.env.max_depth {
        return Err(RuntimeError::StackOverflow);
    }
    rt.stats.frames += 1;
    obs.on_method_enter(rt, method);

    let outcome = match &rt.method(method).body {
        MethodImpl::Native => {
            rt.stats.native_calls += 1;
            let m = rt.method(method);
            let key = native_key(&rt.class(m.class).descriptor, &m.name, &m.descriptor);
            let f = rt
                .natives
                .lookup(&key)
                .ok_or(RuntimeError::NativeMissing(key))?;
            match f(rt, obs, args) {
                Ok(v) => Ok(Outcome::Ret(v)),
                Err(RuntimeError::UncaughtException { type_desc, message }) => {
                    // Natives throw by returning UncaughtException; convert
                    // to a heap throwable so callers can catch it.
                    let exc = rt.heap.alloc(ObjKind::Throwable { type_desc, message }, 0);
                    Ok(Outcome::Threw(exc))
                }
                Err(e) => Err(e),
            }
        }
        MethodImpl::Abstract => Err(RuntimeError::MethodNotFound(format!(
            "abstract method invoked: {}",
            rt.method_name(method)
        ))),
        MethodImpl::Bytecode { registers, ins, .. } => {
            let registers = *registers as usize;
            let ins = *ins as usize;
            if args.len() != ins {
                return Err(RuntimeError::Internal(format!(
                    "{}: expected {} argument slots, got {}",
                    rt.method_name(method),
                    ins,
                    args.len()
                )));
            }
            rt.exec_stack.push((method, 0));
            let result = run_frame(rt, obs, method, registers, ins, args, depth);
            rt.exec_stack.pop();
            result
        }
    };

    obs.on_method_exit(rt, method);
    outcome
}

/// Longest Dalvik instruction, in 16-bit code units (`const-wide`, 51l).
const MAX_INSN_UNITS: usize = 5;

/// The fetch source a frame executes from.
///
/// `Pre` serves borrowed `&Insn` / `&[u16]` views out of the runtime's
/// predecoded code cache; the frame re-validates its epoch before every
/// step, so self-modifying code (which bumps the epoch via
/// [`Runtime::method_mut`]) is re-predecoded before the next instruction.
/// Under [`FetchMode::Quickened`] the entry's [`QuickCells`] overlay drives
/// table dispatch; `qc` is `None` for the plain `Predecoded` baseline.
/// `Step` decodes from the live method body on every step — the fallback
/// for unpredecodable streams and the explicit
/// [`FetchMode::DecodePerStep`] baseline.
enum FrameCode {
    Pre {
        pre: Arc<PredecodedMethod>,
        qc: Option<Arc<QuickCells>>,
        epoch: u64,
    },
    Step,
}

/// Chooses the fetch source for a frame of `method` right now.
fn acquire_code(rt: &mut Runtime, method: MethodId) -> FrameCode {
    if rt.env.fetch_mode == FetchMode::DecodePerStep {
        return FrameCode::Step;
    }
    let epoch = rt.code_epoch(method);
    match rt.predecoded(method) {
        Some((pre, cells)) => FrameCode::Pre {
            pre,
            qc: (rt.env.fetch_mode == FetchMode::Quickened).then_some(cells),
            epoch,
        },
        None => FrameCode::Step,
    }
}

/// Decodes the instruction at `pc` from the live method body, copying its
/// raw units into a caller-provided fixed buffer — no heap allocation.
fn fetch_step(
    rt: &Runtime,
    method: MethodId,
    pc: u32,
    unit_buf: &mut [u16; MAX_INSN_UNITS],
) -> Result<(Insn, usize)> {
    let MethodImpl::Bytecode { insns, .. } = &rt.method(method).body else {
        return Err(RuntimeError::Internal(
            "fetch on non-bytecode method".into(),
        ));
    };
    if pc as usize >= insns.len() {
        return Err(RuntimeError::Internal(format!(
            "{}: dex_pc {} past end of {}-unit method",
            rt.method_name(method),
            pc,
            insns.len()
        )));
    }
    match decode_insn(insns, pc as usize)? {
        Decoded::Insn(insn) => {
            let len = insn.units();
            unit_buf[..len].copy_from_slice(&insns[pc as usize..pc as usize + len]);
            Ok((insn, len))
        }
        _ => Err(RuntimeError::Internal(format!(
            "{}: execution reached payload at dex_pc {}",
            rt.method_name(method),
            pc
        ))),
    }
}

/// Reads the payload referenced by a 31t instruction from the live body.
fn fetch_payload(rt: &Runtime, method: MethodId, payload_pc: u32) -> Result<Decoded> {
    let MethodImpl::Bytecode { insns, .. } = &rt.method(method).body else {
        return Err(RuntimeError::Internal(
            "fetch on non-bytecode method".into(),
        ));
    };
    Ok(decode_insn(insns, payload_pc as usize)?)
}

struct Frame<'r> {
    regs: &'r mut [Slot],
    last_result: RetVal,
    caught: Option<ObjRef>,
}

impl Frame<'_> {
    fn reg(&self, i: u32) -> Slot {
        self.regs[i as usize]
    }
    fn set(&mut self, i: u32, v: Slot) {
        self.regs[i as usize] = v;
    }
    fn wide(&self, i: u32) -> WideValue {
        WideValue::join(self.regs[i as usize], self.regs[i as usize + 1])
    }
    fn set_wide(&mut self, i: u32, v: WideValue) {
        let (lo, hi) = v.split();
        self.regs[i as usize] = lo;
        self.regs[i as usize + 1] = hi;
    }
}

enum Thrown {
    Java(&'static str, String),
}

/// Serves the payload at `ppc` from the frame's predecoded tables when
/// available, decoding it from the live method body otherwise. `storage`
/// anchors the decoded fallback so both paths return a borrow.
fn payload_ref<'a>(
    code: &'a FrameCode,
    storage: &'a mut Option<Decoded>,
    rt: &Runtime,
    method: MethodId,
    ppc: u32,
) -> Result<&'a Decoded> {
    if let FrameCode::Pre { pre, .. } = code {
        if let Some(p) = pre.payload_at(ppc) {
            return Ok(p);
        }
    }
    Ok(storage.insert(fetch_payload(rt, method, ppc)?))
}

/// Invoke argument counts at or below this use a stack buffer; longer
/// range invokes (rare) fall back to a heap vector.
const INLINE_ARGS: usize = 8;

/// Marshalled invoke arguments: an inline stack array for the common case,
/// a spill vector only for long range invokes. Keeps the steady-state call
/// path allocation-free.
struct ArgBuf {
    inline: [Slot; INLINE_ARGS],
    len: usize,
    spill: Vec<Slot>,
}

impl ArgBuf {
    fn slots(&self) -> &[Slot] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

/// Copies the invoke's argument registers out of the frame.
fn marshal_args(frame: &Frame, insn: &Insn) -> ArgBuf {
    let mut buf = ArgBuf {
        inline: [Slot::default(); INLINE_ARGS],
        len: 0,
        spill: Vec::new(),
    };
    if insn.regs.len() <= INLINE_ARGS {
        for (i, &r) in insn.regs.iter().enumerate() {
            buf.inline[i] = frame.reg(r);
        }
        buf.len = insn.regs.len();
    } else {
        buf.spill = insn.regs.iter().map(|&r| frame.reg(r)).collect();
    }
    buf
}

/// What an executed instruction asks the frame loop to do next.
enum Flow {
    /// Fall through to the instruction after the one(s) just executed.
    Next,
    /// Transfer control to an absolute dex pc.
    Jump(u32),
    /// Return from the frame.
    Ret(RetVal),
    /// Raise a freshly described Java exception at the faulting pc.
    Throw(Thrown),
    /// Raise an existing throwable object at the faulting pc.
    ThrowObj(ObjRef),
}

/// Per-step execution context handed to dispatch handlers.
///
/// `pc`/`next_pc` are *live*: a superinstruction handler advances them to
/// its second half before executing it, so exception delivery and
/// forced-execution resume see the precise faulting instruction — identical
/// to per-step semantics.
struct Ctx<'a, 'r> {
    rt: &'a mut Runtime,
    obs: &'a mut dyn RuntimeObserver,
    method: MethodId,
    frame: &'a mut Frame<'r>,
    code: &'a FrameCode,
    depth: usize,
    pc: u32,
    next_pc: u32,
    /// Set by handlers that transfer control out of the frame (invokes,
    /// the generic fallback): the lean segment loop ends the segment so
    /// the code epoch is re-validated before the next fetch — nested
    /// execution is the only way this frame's body can be mutated.
    called_out: bool,
    /// Hoisted [`RuntimeObserver::wants_branch_hooks`]: when `false`,
    /// conditional branches skip both observer calls.
    branch_hooks: bool,
    /// Hoisted budget ceiling (`budget_start + insn_budget`, saturating):
    /// constant while this context lives, since only call-outs can start
    /// nested budgeted execution and those rebuild the context.
    budget_limit: u64,
}

impl Ctx<'_, '_> {
    /// Marks the current instruction as a call-out: publishes the precise
    /// pc on the exec stack for natives that read their call site, and
    /// requests a lean-segment restart (see [`Self::called_out`]).
    fn mark_call_out(&mut self) {
        if let Some(top) = self.rt.exec_stack.last_mut() {
            top.1 = self.pc;
        }
        self.called_out = true;
    }

    /// The pre-resolved data slot of cell `qidx`, or [`quick::NO_DATA`]
    /// when the frame has no quickening overlay.
    fn cell_data(&self, qidx: u32) -> u32 {
        match self.code {
            FrameCode::Pre { qc: Some(qc), .. } => qc.data(qidx),
            _ => quick::NO_DATA,
        }
    }

    /// Rewrites cell `qidx` to dispatch byte `byte` with resolved `data`,
    /// counting a successful first-time rewrite in the runtime stats.
    fn quicken(&mut self, qidx: u32, byte: u8, data: u32) {
        if let FrameCode::Pre { qc: Some(qc), .. } = self.code {
            if qc.quicken(qidx, byte, data) {
                self.rt.stats.quickens += 1;
            }
        }
    }
}

/// One dispatch-table entry: executes an instruction under its dispatch
/// byte. `qidx` is the instruction's dense cell index in the frame's
/// [`QuickCells`] overlay (meaningless — and unused — on the generic path).
type Handler = fn(&mut Ctx<'_, '_>, &Insn, u32) -> Result<Flow>;

/// Dispatch value meaning "no table entry — run the generic match". Used
/// for per-step fetches and the plain `Predecoded` baseline, which by
/// design does not pay for (or benefit from) the table.
const DISPATCH_GENERIC: u16 = 0x100;

/// The 256-entry dispatch table, indexed by dispatch byte (a Dalvik opcode
/// byte or an internal [`quick`] byte). Cold opcodes share [`h_generic`].
static TABLE: [Handler; 256] = dispatch_table();

const fn dispatch_table() -> [Handler; 256] {
    let mut t = [h_generic as Handler; 256];
    t[0x00] = h_nop as Handler;
    let mut b = 0x01; // move, move/from16, move/16
    while b <= 0x03 {
        t[b] = h_move as Handler;
        b += 1;
    }
    let mut b = 0x04; // move-wide family
    while b <= 0x06 {
        t[b] = h_move_wide as Handler;
        b += 1;
    }
    let mut b = 0x07; // move-object family
    while b <= 0x09 {
        t[b] = h_move as Handler;
        b += 1;
    }
    t[0x0a] = h_move_result as Handler;
    t[0x0b] = h_move_result_wide as Handler;
    t[0x0c] = h_move_result as Handler; // move-result-object
    t[0x0d] = h_move_exception as Handler;
    t[0x0e] = h_return_void as Handler;
    t[0x0f] = h_return as Handler;
    t[0x10] = h_return_wide as Handler;
    t[0x11] = h_return as Handler; // return-object
    let mut b = 0x12; // const/4, const/16, const, const/high16
    while b <= 0x15 {
        t[b] = h_const as Handler;
        b += 1;
    }
    let mut b = 0x16; // const-wide family
    while b <= 0x19 {
        t[b] = h_const_wide as Handler;
        b += 1;
    }
    t[0x1a] = h_const_string as Handler;
    t[0x1b] = h_const_string as Handler; // const-string/jumbo
    let mut b = 0x28; // goto, goto/16, goto/32
    while b <= 0x2a {
        t[b] = h_goto as Handler;
        b += 1;
    }
    let mut b = 0x2d; // cmpl-float .. cmp-long
    while b <= 0x31 {
        t[b] = h_cmp as Handler;
        b += 1;
    }
    let mut b = 0x32; // if-eq .. if-lez (both reg-reg and -z forms)
    while b <= 0x3d {
        t[b] = h_if as Handler;
        b += 1;
    }
    let mut b = 0x52; // iget .. iget-short
    while b <= 0x58 {
        t[b] = h_iget as Handler;
        b += 1;
    }
    let mut b = 0x59; // iput .. iput-short
    while b <= 0x5f {
        t[b] = h_iput as Handler;
        b += 1;
    }
    let mut b = 0x6e; // invoke-virtual .. invoke-interface
    while b <= 0x72 {
        t[b] = h_invoke as Handler;
        b += 1;
    }
    let mut b = 0x74; // invoke-*/range
    while b <= 0x78 {
        t[b] = h_invoke as Handler;
        b += 1;
    }
    let mut b = 0x90; // add-int .. ushr-int
    while b <= 0x9a {
        t[b] = h_int_alu as Handler;
        b += 1;
    }
    let mut b = 0xb0; // add-int/2addr .. ushr-int/2addr
    while b <= 0xba {
        t[b] = h_int_alu as Handler;
        b += 1;
    }
    let mut b = 0xd0; // add-int/lit16 .. ushr-int/lit8
    while b <= 0xe2 {
        t[b] = h_int_alu as Handler;
        b += 1;
    }
    t[quick::IGET_QUICK as usize] = h_iget_quick as Handler;
    t[quick::IGET_WIDE_QUICK as usize] = h_iget_wide_quick as Handler;
    t[quick::IPUT_QUICK as usize] = h_iput_quick as Handler;
    t[quick::IPUT_WIDE_QUICK as usize] = h_iput_wide_quick as Handler;
    t[quick::INVOKE_STATIC_QUICK as usize] = h_invoke_static_quick as Handler;
    t[quick::INVOKE_DIRECT_QUICK as usize] = h_invoke_direct_quick as Handler;
    t[quick::CONST_STRING_QUICK as usize] = h_const_string_quick as Handler;
    t[quick::SWITCH_PRE as usize] = h_switch_pre as Handler;
    t[quick::FUSE_ALU_ALU as usize] = h_fuse_alu_alu as Handler;
    t[quick::FUSE_ALU_GOTO as usize] = h_fuse_alu_goto as Handler;
    t[quick::FUSE_IF_ALU as usize] = h_fuse_if_alu as Handler;
    t[quick::FUSE_CMP_IF as usize] = h_fuse_cmp_if as Handler;
    t[quick::FUSE_CONST_MOVE as usize] = h_fuse_const_move as Handler;
    t[quick::FUSE_IGET_IGET as usize] = h_fuse_iget_iget as Handler;
    t
}

fn run_frame(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    registers: usize,
    ins: usize,
    args: &[Slot],
    depth: usize,
) -> Result<Outcome> {
    let mut regs = rt.acquire_regs(registers);
    regs[registers - ins..].copy_from_slice(args);
    let result = run_frame_inner(rt, obs, method, &mut regs, depth);
    rt.release_regs(regs);
    result
}

fn run_frame_inner(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    regs: &mut [Slot],
    depth: usize,
) -> Result<Outcome> {
    let mut frame = Frame {
        regs,
        last_result: RetVal::Void,
        caught: None,
    };
    let mut pc: u32 = 0;
    // Hoisted once per frame: passive observers skip event construction,
    // and (only) event-wanting observers disable superinstruction fusion so
    // the per-instruction event stream stays identical across fetch modes.
    let wants_events = obs.wants_insn_events();
    let branch_hooks = obs.wants_branch_hooks();
    let mut code = acquire_code(rt, method);
    // Scratch for the per-step fallback path — fixed-size, so the
    // steady-state loop performs no per-instruction heap allocation.
    let mut unit_buf = [0u16; MAX_INSN_UNITS];

    // Lean fast path: a quickened frame under a passive observer runs in
    // `run_quick_segment`, which strips the per-step protocol overhead
    // (exec-stack pc publication, epoch re-validation, context rebuild)
    // the generic loop below pays on every instruction. A segment ends
    // whenever an instruction called out of the frame — the only way this
    // frame's body can be mutated — and the epoch is re-validated here
    // before the next segment starts. A pc the predecoded index does not
    // know (a jump into the middle of an instruction) drops the frame to
    // the fully general loop below for good.
    if !wants_events {
        while let FrameCode::Pre { qc: Some(_), .. } = &code {
            match run_quick_segment(rt, obs, method, &mut frame, depth, &code, pc)? {
                Seg::Done(outcome) => return Ok(outcome),
                Seg::Resume(at) => {
                    pc = at;
                    if let FrameCode::Pre { epoch, .. } = &code {
                        if *epoch != rt.code_epoch(method) {
                            code = acquire_code(rt, method);
                        }
                    }
                }
                Seg::Fallback(at) => {
                    pc = at;
                    break;
                }
            }
        }
    }

    'dispatch: loop {
        rt.stats.insns += 1;
        if rt.stats.insns - rt.budget_start > rt.env.insn_budget {
            return Err(RuntimeError::BudgetExhausted);
        }
        // Self-modification check: a bumped epoch means the body may have
        // changed (possibly by a nested call) — re-predecode before fetch.
        // Discarding the stale entry also de-quickened its cells.
        if let FrameCode::Pre { epoch, .. } = &code {
            if *epoch != rt.code_epoch(method) {
                code = acquire_code(rt, method);
            }
        }
        let step_insn;
        let mut qidx: u32 = 0;
        let mut dbyte: u16 = DISPATCH_GENERIC;
        let (insn, units): (&Insn, &[u16]) = 'fetch: {
            if let FrameCode::Pre { pre, qc, .. } = &code {
                if let Some((idx, insn, units)) = pre.entry_at(pc) {
                    if let Some(qc) = qc {
                        qidx = idx;
                        // Never fused here: quickened frames only reach
                        // this loop for event-wanting observers or after a
                        // per-step fallback, and both demand per-insn
                        // granularity.
                        dbyte = u16::from(qc.dispatch_byte(idx, false));
                    }
                    break 'fetch (insn, units);
                }
                // A pc the linear predecode did not mark as an instruction
                // boundary (payload, or a jump into the middle of an
                // instruction): decode from the live body, exactly as
                // per-step mode would.
            }
            let (decoded, len) = fetch_step(rt, method, pc, &mut unit_buf)?;
            step_insn = decoded;
            (&step_insn, &unit_buf[..len])
        };
        if let Some(top) = rt.exec_stack.last_mut() {
            top.1 = pc;
        }
        if wants_events {
            obs.on_instruction(
                rt,
                &InsnEvent {
                    method,
                    dex_pc: pc,
                    insn,
                    units,
                },
            );
        }
        let next_pc = pc + units.len() as u32;

        let budget_limit = rt.budget_start.saturating_add(rt.env.insn_budget);
        let mut ctx = Ctx {
            rt: &mut *rt,
            obs: &mut *obs,
            method,
            frame: &mut frame,
            code: &code,
            depth,
            pc,
            next_pc,
            called_out: false,
            branch_hooks,
            budget_limit,
        };
        let flow = if dbyte == DISPATCH_GENERIC {
            exec_generic(&mut ctx, insn)?
        } else {
            TABLE[dbyte as usize](&mut ctx, insn, qidx)?
        };
        // A superinstruction may have advanced these to its second half;
        // faults are attributed to — and forced execution resumes after —
        // the precise sub-instruction that was executing.
        let (fault_pc, resume_pc) = (ctx.pc, ctx.next_pc);

        let exc = match flow {
            Flow::Next => {
                pc = resume_pc;
                continue 'dispatch;
            }
            Flow::Jump(target) => {
                pc = target;
                continue 'dispatch;
            }
            Flow::Ret(v) => return Ok(Outcome::Ret(v)),
            Flow::Throw(Thrown::Java(ty, msg)) => rt.heap.alloc(
                ObjKind::Throwable {
                    type_desc: ty.to_owned(),
                    message: msg,
                },
                0,
            ),
            Flow::ThrowObj(exc) => exc,
        };

        // ---- exception delivery ----------------------------------------
        obs.on_exception(rt, method, fault_pc);
        match find_handler(rt, method, fault_pc, exc) {
            Some(handler_pc) => {
                frame.caught = Some(exc);
                rt.last_exception = Some(exc);
                pc = handler_pc;
            }
            None => {
                if obs.tolerate_exceptions() {
                    // Force execution: clear the exception and step over
                    // the faulting instruction (paper §IV-E).
                    rt.last_exception = None;
                    pc = resume_pc;
                } else {
                    return Ok(Outcome::Threw(exc));
                }
            }
        }
    }
}

/// Why a lean segment returned to [`run_frame_inner`].
enum Seg {
    /// The frame finished (return or uncaught exception).
    Done(Outcome),
    /// An instruction called out of the frame (or delivered an exception
    /// whose handler search may have loaded classes): re-validate the code
    /// epoch, then continue at this pc.
    Resume(u32),
    /// The pc is not a predecoded instruction boundary: continue in the
    /// fully general per-step loop.
    Fallback(u32),
}

/// The lean dispatch loop for a quickened frame under a passive observer.
///
/// Compared to the general loop this elides, per instruction: the epoch
/// re-validation (pure computation cannot mutate code, and every
/// instruction that can — an invoke, the generic fallback — marks itself
/// via [`Ctx::mark_call_out`] and ends the segment), the exec-stack pc
/// publication (only natives read it, and they are only reachable through
/// those same call-outs, which publish the pc themselves), and the
/// per-step context rebuild (one [`Ctx`] lives for the whole segment).
/// Instruction counting and budget enforcement stay exact.
fn run_quick_segment(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    frame: &mut Frame<'_>,
    depth: usize,
    code: &FrameCode,
    start_pc: u32,
) -> Result<Seg> {
    let FrameCode::Pre {
        pre, qc: Some(qc), ..
    } = code
    else {
        return Ok(Seg::Fallback(start_pc));
    };
    let obs_branch_hooks = obs.wants_branch_hooks();
    // Constant within a segment: only call-outs can start nested budgeted
    // execution, and a call-out ends the segment.
    let budget_limit = rt.budget_start.saturating_add(rt.env.insn_budget);
    let mut ctx = Ctx {
        rt,
        obs,
        method,
        frame,
        code,
        depth,
        pc: start_pc,
        next_pc: start_pc,
        called_out: false,
        branch_hooks: obs_branch_hooks,
        budget_limit,
    };
    loop {
        let Some((idx, insn, len)) = pre.fetch_at(ctx.pc) else {
            return Ok(Seg::Fallback(ctx.pc));
        };
        ctx.rt.stats.insns += 1;
        if ctx.rt.stats.insns > budget_limit {
            return Err(RuntimeError::BudgetExhausted);
        }
        ctx.next_pc = ctx.pc + len;
        // The hottest dispatch bytes are direct calls the compiler can
        // inline, so loop state survives in registers; everything else
        // goes through the opaque function-pointer table.
        let byte = qc.dispatch_byte(idx, true);
        let flow = match byte {
            quick::FUSE_ALU_ALU => h_fuse_alu_alu(&mut ctx, insn, idx)?,
            quick::FUSE_ALU_GOTO => h_fuse_alu_goto(&mut ctx, insn, idx)?,
            quick::FUSE_IF_ALU => h_fuse_if_alu(&mut ctx, insn, idx)?,
            quick::FUSE_CMP_IF => h_fuse_cmp_if(&mut ctx, insn, idx)?,
            quick::SWITCH_PRE => h_switch_pre(&mut ctx, insn, idx)?,
            _ => TABLE[byte as usize](&mut ctx, insn, idx)?,
        };
        let (fault_pc, resume_pc) = (ctx.pc, ctx.next_pc);
        let exc = match flow {
            Flow::Next => {
                if ctx.called_out {
                    return Ok(Seg::Resume(resume_pc));
                }
                ctx.pc = resume_pc;
                continue;
            }
            Flow::Jump(target) => {
                if ctx.called_out {
                    return Ok(Seg::Resume(target));
                }
                ctx.pc = target;
                continue;
            }
            Flow::Ret(v) => return Ok(Seg::Done(Outcome::Ret(v))),
            Flow::Throw(Thrown::Java(ty, msg)) => ctx.rt.heap.alloc(
                ObjKind::Throwable {
                    type_desc: ty.to_owned(),
                    message: msg,
                },
                0,
            ),
            Flow::ThrowObj(exc) => exc,
        };

        // ---- exception delivery (rare) ---------------------------------
        if let Some(top) = ctx.rt.exec_stack.last_mut() {
            top.1 = fault_pc;
        }
        ctx.obs.on_exception(ctx.rt, method, fault_pc);
        match find_handler(ctx.rt, method, fault_pc, exc) {
            Some(handler_pc) => {
                ctx.frame.caught = Some(exc);
                ctx.rt.last_exception = Some(exc);
                return Ok(Seg::Resume(handler_pc));
            }
            None => {
                if ctx.obs.tolerate_exceptions() {
                    // Force execution: clear the exception and step over
                    // the faulting instruction (paper §IV-E).
                    ctx.rt.last_exception = None;
                    return Ok(Seg::Resume(resume_pc));
                }
                return Ok(Seg::Done(Outcome::Threw(exc)));
            }
        }
    }
}

// ---- dedicated dispatch handlers (hot opcodes) -----------------------------

fn h_generic(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    // Conservatively treated as a call-out: some generic-match opcodes
    // (invokes, class-initialising accesses, throw) run nested code.
    ctx.mark_call_out();
    exec_generic(ctx, insn)
}

fn h_nop(_ctx: &mut Ctx<'_, '_>, _insn: &Insn, _qidx: u32) -> Result<Flow> {
    Ok(Flow::Next)
}

fn h_move(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    let v = ctx.frame.reg(insn.b);
    ctx.frame.set(insn.a, v);
    Ok(Flow::Next)
}

fn h_move_wide(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    let v = ctx.frame.wide(insn.b);
    ctx.frame.set_wide(insn.a, v);
    Ok(Flow::Next)
}

fn h_move_result(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    match ctx.frame.last_result {
        RetVal::Single(s) => ctx.frame.set(insn.a, s),
        _ => ctx.frame.set(insn.a, Slot::default()),
    }
    Ok(Flow::Next)
}

fn h_move_result_wide(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    match ctx.frame.last_result {
        RetVal::Wide(w) => ctx.frame.set_wide(insn.a, w),
        _ => ctx.frame.set_wide(insn.a, WideValue::default()),
    }
    Ok(Flow::Next)
}

fn h_move_exception(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    let caught = ctx.frame.caught.take().unwrap_or(0);
    ctx.frame.set(insn.a, Slot::of(caught));
    Ok(Flow::Next)
}

fn h_return_void(_ctx: &mut Ctx<'_, '_>, _insn: &Insn, _qidx: u32) -> Result<Flow> {
    Ok(Flow::Ret(RetVal::Void))
}

fn h_return(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    Ok(Flow::Ret(RetVal::Single(ctx.frame.reg(insn.a))))
}

fn h_return_wide(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    Ok(Flow::Ret(RetVal::Wide(ctx.frame.wide(insn.a))))
}

fn h_const(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    ctx.frame.set(insn.a, Slot::of(insn.lit as i32 as u32));
    Ok(Flow::Next)
}

fn h_const_wide(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    ctx.frame.set_wide(insn.a, WideValue::from_long(insn.lit));
    Ok(Flow::Next)
}

fn h_goto(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    Ok(Flow::Jump(insn.target(ctx.pc)))
}

fn h_cmp(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    exec_cmp(ctx.frame, insn);
    Ok(Flow::Next)
}

fn h_if(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    let would_take = eval_branch(ctx.frame, insn);
    Ok(branch_flow(ctx, insn, would_take))
}

fn h_int_alu(ctx: &mut Ctx<'_, '_>, insn: &Insn, _qidx: u32) -> Result<Flow> {
    match exec_int_alu(ctx.frame, insn) {
        Ok(()) => Ok(Flow::Next),
        Err(t) => Ok(Flow::Throw(t)),
    }
}

/// `iget*` under table dispatch: identical to the generic arm, plus a
/// one-time rewrite of the cell to its pre-resolved quick form.
fn h_iget(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let obj = ctx.frame.reg(insn.b).raw;
    if obj == 0 {
        return Ok(Flow::Throw(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "iget on null".into(),
        )));
    }
    let field = resolve_field_ref(ctx.rt, ctx.method, insn.idx)?;
    let byte = if insn.op == Opcode::IgetWide {
        quick::IGET_WIDE_QUICK
    } else {
        quick::IGET_QUICK
    };
    ctx.quicken(qidx, byte, field.0 as u32);
    let v = ctx.rt.heap.read_field(obj, field).unwrap_or_default();
    if insn.op == Opcode::IgetWide {
        ctx.frame.set_wide(insn.a, v);
    } else {
        ctx.frame.set(
            insn.a,
            Slot {
                raw: v.raw as u32,
                taint: v.taint,
            },
        );
    }
    Ok(Flow::Next)
}

/// `iput*` under table dispatch, with the same one-time quickening.
fn h_iput(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let obj = ctx.frame.reg(insn.b).raw;
    if obj == 0 {
        return Ok(Flow::Throw(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "iput on null".into(),
        )));
    }
    let field = resolve_field_ref(ctx.rt, ctx.method, insn.idx)?;
    let byte = if insn.op == Opcode::IputWide {
        quick::IPUT_WIDE_QUICK
    } else {
        quick::IPUT_QUICK
    };
    ctx.quicken(qidx, byte, field.0 as u32);
    let v = if insn.op == Opcode::IputWide {
        ctx.frame.wide(insn.a)
    } else {
        let s = ctx.frame.reg(insn.a);
        WideValue {
            raw: u64::from(s.raw),
            taint: s.taint,
        }
    };
    ctx.rt.heap.write_field(obj, field, v);
    Ok(Flow::Next)
}

/// Invokes under table dispatch. Static/direct/super call sites whose
/// target resolves to a non-framework bytecode method quicken to a
/// pre-resolved method id; everything else takes the full resolution path.
fn h_invoke(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    ctx.mark_call_out();
    let args = marshal_args(ctx.frame, insn);
    let is_static = matches!(insn.op, Opcode::InvokeStatic | Opcode::InvokeStaticRange);
    let quickable = is_static
        || matches!(
            insn.op,
            Opcode::InvokeDirect
                | Opcode::InvokeDirectRange
                | Opcode::InvokeSuper
                | Opcode::InvokeSuperRange
        );
    if quickable {
        if let Some(target) = resolve_direct_target(ctx.rt, ctx.method, insn)? {
            let byte = if is_static {
                quick::INVOKE_STATIC_QUICK
            } else {
                quick::INVOKE_DIRECT_QUICK
            };
            ctx.quicken(qidx, byte, target.0 as u32);
            return invoke_resolved(ctx, target, args.slots(), is_static);
        }
    }
    match dispatch_invoke(ctx.rt, ctx.obs, ctx.method, insn, args.slots(), ctx.depth)? {
        Outcome::Ret(v) => {
            ctx.frame.last_result = v;
            Ok(Flow::Next)
        }
        Outcome::Threw(exc) => Ok(Flow::ThrowObj(exc)),
    }
}

/// `const-string[/jumbo]`: resolve, intern, and cache the interned object
/// reference in the cell (string interning is stable for the heap's life).
fn h_const_string(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let s = resolve_string(ctx.rt, ctx.method, insn.idx)?;
    let r = ctx.rt.intern_string(&s);
    ctx.frame.set(insn.a, Slot::of(r));
    ctx.quicken(qidx, quick::CONST_STRING_QUICK, r);
    Ok(Flow::Next)
}

// ---- quickened handlers ----------------------------------------------------
//
// These run only for cells already rewritten by their slow-path
// counterparts, so the data slot is authoritative; the NO_DATA fallbacks
// are defensive. Null checks and taint flow are identical to the generic
// arms — only the constant-pool resolution is skipped.

fn h_iget_quick(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let obj = ctx.frame.reg(insn.b).raw;
    if obj == 0 {
        return Ok(Flow::Throw(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "iget on null".into(),
        )));
    }
    let data = ctx.cell_data(qidx);
    if data == quick::NO_DATA {
        return exec_generic(ctx, insn);
    }
    let v = ctx
        .rt
        .heap
        .read_field(obj, FieldId(data as usize))
        .unwrap_or_default();
    ctx.frame.set(
        insn.a,
        Slot {
            raw: v.raw as u32,
            taint: v.taint,
        },
    );
    Ok(Flow::Next)
}

fn h_iget_wide_quick(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let obj = ctx.frame.reg(insn.b).raw;
    if obj == 0 {
        return Ok(Flow::Throw(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "iget on null".into(),
        )));
    }
    let data = ctx.cell_data(qidx);
    if data == quick::NO_DATA {
        return exec_generic(ctx, insn);
    }
    let v = ctx
        .rt
        .heap
        .read_field(obj, FieldId(data as usize))
        .unwrap_or_default();
    ctx.frame.set_wide(insn.a, v);
    Ok(Flow::Next)
}

fn h_iput_quick(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let obj = ctx.frame.reg(insn.b).raw;
    if obj == 0 {
        return Ok(Flow::Throw(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "iput on null".into(),
        )));
    }
    let data = ctx.cell_data(qidx);
    if data == quick::NO_DATA {
        return exec_generic(ctx, insn);
    }
    let s = ctx.frame.reg(insn.a);
    ctx.rt.heap.write_field(
        obj,
        FieldId(data as usize),
        WideValue {
            raw: u64::from(s.raw),
            taint: s.taint,
        },
    );
    Ok(Flow::Next)
}

fn h_iput_wide_quick(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let obj = ctx.frame.reg(insn.b).raw;
    if obj == 0 {
        return Ok(Flow::Throw(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "iput on null".into(),
        )));
    }
    let data = ctx.cell_data(qidx);
    if data == quick::NO_DATA {
        return exec_generic(ctx, insn);
    }
    let v = ctx.frame.wide(insn.a);
    ctx.rt.heap.write_field(obj, FieldId(data as usize), v);
    Ok(Flow::Next)
}

fn h_invoke_static_quick(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let data = ctx.cell_data(qidx);
    if data == quick::NO_DATA {
        return exec_generic(ctx, insn);
    }
    let args = marshal_args(ctx.frame, insn);
    invoke_resolved(ctx, MethodId(data as usize), args.slots(), true)
}

fn h_invoke_direct_quick(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let data = ctx.cell_data(qidx);
    if data == quick::NO_DATA {
        return exec_generic(ctx, insn);
    }
    let args = marshal_args(ctx.frame, insn);
    invoke_resolved(ctx, MethodId(data as usize), args.slots(), false)
}

fn h_const_string_quick(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let data = ctx.cell_data(qidx);
    if data == quick::NO_DATA {
        return exec_generic(ctx, insn);
    }
    ctx.frame.set(insn.a, Slot::of(data));
    Ok(Flow::Next)
}

/// `packed-switch`/`sparse-switch` through the table pre-resolved at
/// predecode time (absolute targets, no payload walk).
#[inline]
fn h_switch_pre(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    let FrameCode::Pre { qc: Some(qc), .. } = ctx.code else {
        return exec_generic(ctx, insn);
    };
    let key = ctx.frame.reg(insn.a).as_int();
    match qc.switch_table(qc.data(qidx)).lookup(key) {
        Some(target) => Ok(Flow::Jump(target)),
        None => Ok(Flow::Next),
    }
}

// ---- superinstruction handlers ---------------------------------------------
//
// A fused handler executes the head, then *advances the context* to the
// second half (`begin_second`: instruction count, budget check,
// fault/resume pcs) before executing it — so counters, exceptions, and
// forced execution are indistinguishable from two separate steps. The
// second half keeps its own dispatch cell, so a branch into the middle of
// a pair executes it standalone. Fused bytes are only ever served when the
// observer does not want per-instruction events (see `dispatch_byte`), and
// no fusable sub-instruction can mutate code, so the mid-pair epoch check
// is safely elided.

/// The predecoded second half of the fused pair headed by `head_idx`.
/// Fusion only pairs adjacent instructions, so the second half is always
/// the next dense index — no pc lookup needed.
fn fused_second(code: &FrameCode, head_idx: u32) -> Option<(&Insn, u32)> {
    if let FrameCode::Pre { pre, .. } = code {
        return pre.at_index(head_idx + 1);
    }
    None
}

/// Starts the second half of a fused pair: mirrors the top of the dispatch
/// loop so instruction counts and budget enforcement match per-step
/// execution exactly.
fn begin_second(ctx: &mut Ctx<'_, '_>, pc2: u32, units2: u32) -> Result<()> {
    ctx.rt.stats.insns += 1;
    if ctx.rt.stats.insns > ctx.budget_limit {
        return Err(RuntimeError::BudgetExhausted);
    }
    ctx.pc = pc2;
    ctx.next_pc = pc2 + units2;
    Ok(())
}

#[inline]
fn h_fuse_alu_alu(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    ctx.rt.stats.superinsn_hits += 1;
    if let Err(t) = exec_int_alu(ctx.frame, insn) {
        return Ok(Flow::Throw(t));
    }
    let pc2 = ctx.next_pc;
    let Some((insn2, len2)) = fused_second(ctx.code, qidx) else {
        return Ok(Flow::Next);
    };
    begin_second(ctx, pc2, len2)?;
    match exec_int_alu(ctx.frame, insn2) {
        Ok(()) => Ok(Flow::Next),
        Err(t) => Ok(Flow::Throw(t)),
    }
}

#[inline]
fn h_fuse_alu_goto(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    ctx.rt.stats.superinsn_hits += 1;
    if let Err(t) = exec_int_alu(ctx.frame, insn) {
        return Ok(Flow::Throw(t));
    }
    let pc2 = ctx.next_pc;
    let Some((insn2, len2)) = fused_second(ctx.code, qidx) else {
        return Ok(Flow::Next);
    };
    begin_second(ctx, pc2, len2)?;
    Ok(Flow::Jump(insn2.target(pc2)))
}

#[inline]
fn h_fuse_if_alu(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    ctx.rt.stats.superinsn_hits += 1;
    let would_take = eval_branch(ctx.frame, insn);
    if let Flow::Jump(target) = branch_flow(ctx, insn, would_take) {
        return Ok(Flow::Jump(target));
    }
    let pc2 = ctx.next_pc;
    let Some((insn2, len2)) = fused_second(ctx.code, qidx) else {
        return Ok(Flow::Next);
    };
    begin_second(ctx, pc2, len2)?;
    match exec_int_alu(ctx.frame, insn2) {
        Ok(()) => Ok(Flow::Next),
        Err(t) => Ok(Flow::Throw(t)),
    }
}

#[inline]
fn h_fuse_cmp_if(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    ctx.rt.stats.superinsn_hits += 1;
    exec_cmp(ctx.frame, insn);
    let pc2 = ctx.next_pc;
    let Some((insn2, len2)) = fused_second(ctx.code, qidx) else {
        return Ok(Flow::Next);
    };
    begin_second(ctx, pc2, len2)?;
    let would_take = eval_branch(ctx.frame, insn2);
    // branch_flow reads ctx.pc, which begin_second moved to the `if` — the
    // branch hooks fire at the if's own pc, exactly as per-step.
    Ok(branch_flow(ctx, insn2, would_take))
}

fn h_fuse_const_move(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    ctx.rt.stats.superinsn_hits += 1;
    ctx.frame.set(insn.a, Slot::of(insn.lit as i32 as u32));
    let pc2 = ctx.next_pc;
    let Some((insn2, len2)) = fused_second(ctx.code, qidx) else {
        return Ok(Flow::Next);
    };
    begin_second(ctx, pc2, len2)?;
    let v = ctx.frame.reg(insn2.b);
    ctx.frame.set(insn2.a, v);
    Ok(Flow::Next)
}

/// Two narrow `iget`s off the same object register (fusion requires the
/// first destination not clobber the object register, so one null check
/// and one receiver read cover both).
fn h_fuse_iget_iget(ctx: &mut Ctx<'_, '_>, insn: &Insn, qidx: u32) -> Result<Flow> {
    ctx.rt.stats.superinsn_hits += 1;
    let obj = ctx.frame.reg(insn.b).raw;
    if obj == 0 {
        return Ok(Flow::Throw(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "iget on null".into(),
        )));
    }
    let field = quick_field(ctx, qidx, insn)?;
    let v = ctx.rt.heap.read_field(obj, field).unwrap_or_default();
    ctx.frame.set(
        insn.a,
        Slot {
            raw: v.raw as u32,
            taint: v.taint,
        },
    );
    let pc2 = ctx.next_pc;
    let idx2 = qidx + 1;
    let Some((insn2, len2)) = fused_second(ctx.code, qidx) else {
        return Ok(Flow::Next);
    };
    begin_second(ctx, pc2, len2)?;
    let field2 = quick_field(ctx, idx2, insn2)?;
    let v2 = ctx.rt.heap.read_field(obj, field2).unwrap_or_default();
    ctx.frame.set(
        insn2.a,
        Slot {
            raw: v2.raw as u32,
            taint: v2.taint,
        },
    );
    Ok(Flow::Next)
}

// ---- shared execution helpers ----------------------------------------------

/// The field a narrow `iget` cell refers to: its pre-resolved data slot if
/// quickened, else a full resolution that also quickens the cell.
fn quick_field(ctx: &mut Ctx<'_, '_>, qidx: u32, insn: &Insn) -> Result<FieldId> {
    let data = ctx.cell_data(qidx);
    if data != quick::NO_DATA {
        return Ok(FieldId(data as usize));
    }
    let field = resolve_field_ref(ctx.rt, ctx.method, insn.idx)?;
    ctx.quicken(qidx, quick::IGET_QUICK, field.0 as u32);
    Ok(field)
}

/// Runs the observer branch hooks at `ctx.pc` and converts the decision
/// into control flow. Used by both the dedicated `if` handler and the
/// fused forms, so override/trace semantics are identical everywhere.
fn branch_flow(ctx: &mut Ctx<'_, '_>, insn: &Insn, would_take: bool) -> Flow {
    let take = if ctx.branch_hooks {
        let take = ctx
            .obs
            .override_branch(ctx.rt, ctx.method, ctx.pc, would_take)
            .unwrap_or(would_take);
        ctx.obs.on_branch(ctx.rt, ctx.method, ctx.pc, take);
        take
    } else {
        would_take
    };
    if take {
        Flow::Jump(insn.target(ctx.pc))
    } else {
        Flow::Next
    }
}

/// Evaluates a conditional branch's predicate (all 12 `if*` forms).
fn eval_branch(frame: &Frame, insn: &Insn) -> bool {
    match insn.op {
        Opcode::IfEq => frame.reg(insn.a).as_int() == frame.reg(insn.b).as_int(),
        Opcode::IfNe => frame.reg(insn.a).as_int() != frame.reg(insn.b).as_int(),
        Opcode::IfLt => frame.reg(insn.a).as_int() < frame.reg(insn.b).as_int(),
        Opcode::IfGe => frame.reg(insn.a).as_int() >= frame.reg(insn.b).as_int(),
        Opcode::IfGt => frame.reg(insn.a).as_int() > frame.reg(insn.b).as_int(),
        Opcode::IfLe => frame.reg(insn.a).as_int() <= frame.reg(insn.b).as_int(),
        Opcode::IfEqz => frame.reg(insn.a).as_int() == 0,
        Opcode::IfNez => frame.reg(insn.a).as_int() != 0,
        Opcode::IfLtz => frame.reg(insn.a).as_int() < 0,
        Opcode::IfGez => frame.reg(insn.a).as_int() >= 0,
        Opcode::IfGtz => frame.reg(insn.a).as_int() > 0,
        Opcode::IfLez => frame.reg(insn.a).as_int() <= 0,
        _ => false,
    }
}

/// Executes a `cmp*` instruction (the five comparison opcodes).
fn exec_cmp(frame: &mut Frame, insn: &Insn) {
    let (r, taint) = match insn.op {
        Opcode::CmplFloat | Opcode::CmpgFloat => {
            let a = frame.reg(insn.b);
            let b = frame.reg(insn.c);
            let (x, y) = (a.as_float(), b.as_float());
            let r = if x.is_nan() || y.is_nan() {
                if insn.op == Opcode::CmplFloat {
                    -1
                } else {
                    1
                }
            } else if x < y {
                -1
            } else {
                i32::from(x > y)
            };
            (r, a.taint | b.taint)
        }
        Opcode::CmplDouble | Opcode::CmpgDouble => {
            let a = frame.wide(insn.b);
            let b = frame.wide(insn.c);
            let (x, y) = (a.as_double(), b.as_double());
            let r = if x.is_nan() || y.is_nan() {
                if insn.op == Opcode::CmplDouble {
                    -1
                } else {
                    1
                }
            } else if x < y {
                -1
            } else {
                i32::from(x > y)
            };
            (r, a.taint | b.taint)
        }
        _ => {
            // CmpLong — the only remaining cmp opcode.
            let a = frame.wide(insn.b);
            let b = frame.wide(insn.c);
            let r = match a.as_long().cmp(&b.as_long()) {
                std::cmp::Ordering::Less => -1i32,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            };
            (r, a.taint | b.taint)
        }
    };
    frame.set(
        insn.a,
        Slot {
            raw: r as u32,
            taint,
        },
    );
}

/// Executes an int ALU instruction — 23x, 2addr, lit16, or lit8 form.
fn exec_int_alu(frame: &mut Frame, insn: &Insn) -> std::result::Result<(), Thrown> {
    // One inline jump-table match per operand shape — the hot path must
    // not pay a fn-pointer indirection per arithmetic instruction.
    let op = insn.op;
    if let Some(f) = int_binop(op) {
        let two_addr = (op as u8) >= 0xb0;
        let (b, c) = if two_addr {
            (insn.a, insn.b)
        } else {
            (insn.b, insn.c)
        };
        let x = frame.reg(b);
        let y = frame.reg(c);
        let xi = x.as_int();
        let yi = y.as_int();
        let raw = match op {
            Opcode::AddInt | Opcode::AddInt2addr => xi.wrapping_add(yi),
            Opcode::SubInt | Opcode::SubInt2addr => xi.wrapping_sub(yi),
            Opcode::MulInt | Opcode::MulInt2addr => xi.wrapping_mul(yi),
            Opcode::AndInt | Opcode::AndInt2addr => xi & yi,
            Opcode::OrInt | Opcode::OrInt2addr => xi | yi,
            Opcode::XorInt | Opcode::XorInt2addr => xi ^ yi,
            Opcode::ShlInt | Opcode::ShlInt2addr => xi.wrapping_shl(yi as u32 & 31),
            Opcode::ShrInt | Opcode::ShrInt2addr => xi.wrapping_shr(yi as u32 & 31),
            Opcode::UshrInt | Opcode::UshrInt2addr => ((xi as u32) >> (yi as u32 & 31)) as i32,
            _ => {
                // div/rem share the zero check; f is the matched operation.
                if yi == 0 {
                    return Err(Thrown::Java(
                        "Ljava/lang/ArithmeticException;",
                        "divide by zero".into(),
                    ));
                }
                f(xi, yi)
            }
        };
        frame.set(
            insn.a,
            Slot {
                raw: raw as u32,
                taint: x.taint | y.taint,
            },
        );
        return Ok(());
    }
    if let Some(f) = lit_binop(op) {
        let x = frame.reg(insn.b);
        let lit = insn.lit as i32;
        let xi = x.as_int();
        let raw = match op {
            Opcode::AddIntLit16 | Opcode::AddIntLit8 => xi.wrapping_add(lit),
            Opcode::RsubInt | Opcode::RsubIntLit8 => lit.wrapping_sub(xi),
            Opcode::MulIntLit16 | Opcode::MulIntLit8 => xi.wrapping_mul(lit),
            Opcode::AndIntLit16 | Opcode::AndIntLit8 => xi & lit,
            Opcode::OrIntLit16 | Opcode::OrIntLit8 => xi | lit,
            Opcode::XorIntLit16 | Opcode::XorIntLit8 => xi ^ lit,
            Opcode::ShlIntLit8 => xi.wrapping_shl(lit as u32 & 31),
            Opcode::ShrIntLit8 => xi.wrapping_shr(lit as u32 & 31),
            Opcode::UshrIntLit8 => ((xi as u32) >> (lit as u32 & 31)) as i32,
            _ => {
                if lit == 0 {
                    return Err(Thrown::Java(
                        "Ljava/lang/ArithmeticException;",
                        "divide by zero".into(),
                    ));
                }
                f(xi, lit)
            }
        };
        frame.set(
            insn.a,
            Slot {
                raw: raw as u32,
                taint: x.taint,
            },
        );
        return Ok(());
    }
    debug_assert!(false, "exec_int_alu on non-int-alu opcode {op:?}");
    Ok(())
}

/// Resolves a static/direct/super call site to a concrete target eligible
/// for quickening: the named class and the resolved method's declaring
/// class must both be real loaded classes (framework stubs can gain
/// methods after the fact via native registration, so resolutions through
/// them are never cached).
fn resolve_direct_target(
    rt: &mut Runtime,
    caller: MethodId,
    insn: &Insn,
) -> Result<Option<MethodId>> {
    let table = rt.dex_table(source_of(rt, caller)?);
    let (class_desc, sig) = table
        .methods
        .get(insn.idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("method index {} out of range", insn.idx)))?;
    let Some(class) = rt.find_class(&class_desc) else {
        return Ok(None);
    };
    if rt.class(class).source == "<framework>" {
        return Ok(None);
    }
    let Some(target) = rt.resolve_method(class, &sig) else {
        return Ok(None);
    };
    let declaring = rt.method(target).class;
    if rt.class(declaring).source == "<framework>" {
        return Ok(None);
    }
    // Cross-source calls (e.g. into a dynamically loaded DEX) must keep
    // resolving dynamically: reloading the same payload registers a fresh
    // copy of the class, and a cached target would pin the call site to a
    // stale copy — observably different from per-step execution.
    if rt.class(declaring).source != rt.class(rt.method(caller).class).source {
        return Ok(None);
    }
    Ok(Some(target))
}

/// Invokes an already-resolved target and folds the outcome into control
/// flow — the fast path shared by quickened invokes and first-execution
/// quickening.
fn invoke_resolved(
    ctx: &mut Ctx<'_, '_>,
    target: MethodId,
    args: &[Slot],
    is_static: bool,
) -> Result<Flow> {
    ctx.mark_call_out();
    if is_static {
        let class = ctx.rt.method(target).class;
        ctx.rt.ensure_initialized(ctx.obs, class)?;
    }
    match execute_inner(ctx.rt, ctx.obs, target, args, ctx.depth + 1)? {
        Outcome::Ret(v) => {
            ctx.frame.last_result = v;
            Ok(Flow::Next)
        }
        Outcome::Threw(exc) => Ok(Flow::ThrowObj(exc)),
    }
}

/// The classic full-opcode match — the single source of semantics for every
/// opcode without a dedicated table handler, and the whole interpreter for
/// the `Predecoded` and `DecodePerStep` baselines. Never quickens: the
/// baselines measure the unquickened cost.
#[allow(clippy::too_many_lines)]
fn exec_generic(ctx: &mut Ctx<'_, '_>, insn: &Insn) -> Result<Flow> {
    let method = ctx.method;
    let pc = ctx.pc;
    let depth = ctx.depth;
    let Ctx {
        rt,
        obs,
        frame,
        code,
        ..
    } = ctx;
    let rt = &mut **rt;
    let obs = &mut **obs;
    let frame = &mut **frame;
    let code = &**code;

    // `thrown` carries a pending Java exception raised by this instruction.
    let mut thrown: Option<Thrown> = None;
    let mut thrown_obj: Option<ObjRef> = None;

    macro_rules! throw_java {
        ($ty:expr, $msg:expr) => {{
            thrown = Some(Thrown::Java($ty, $msg));
        }};
    }

    match insn.op {
        Opcode::Nop => {}

        // ---- moves -----------------------------------------------------
        Opcode::Move
        | Opcode::MoveFrom16
        | Opcode::Move16
        | Opcode::MoveObject
        | Opcode::MoveObjectFrom16
        | Opcode::MoveObject16 => {
            frame.set(insn.a, frame.reg(insn.b));
        }
        Opcode::MoveWide | Opcode::MoveWideFrom16 | Opcode::MoveWide16 => {
            let v = frame.wide(insn.b);
            frame.set_wide(insn.a, v);
        }
        Opcode::MoveResult | Opcode::MoveResultObject => match frame.last_result {
            RetVal::Single(s) => frame.set(insn.a, s),
            _ => frame.set(insn.a, Slot::default()),
        },
        Opcode::MoveResultWide => match frame.last_result {
            RetVal::Wide(w) => frame.set_wide(insn.a, w),
            _ => frame.set_wide(insn.a, WideValue::default()),
        },
        Opcode::MoveException => {
            let caught = frame.caught.take().unwrap_or(0);
            frame.set(insn.a, Slot::of(caught));
        }

        // ---- returns ---------------------------------------------------
        Opcode::ReturnVoid => return Ok(Flow::Ret(RetVal::Void)),
        Opcode::Return | Opcode::ReturnObject => {
            return Ok(Flow::Ret(RetVal::Single(frame.reg(insn.a))))
        }
        Opcode::ReturnWide => return Ok(Flow::Ret(RetVal::Wide(frame.wide(insn.a)))),

        // ---- constants -------------------------------------------------
        Opcode::Const4 | Opcode::Const16 | Opcode::Const | Opcode::ConstHigh16 => {
            frame.set(insn.a, Slot::of(insn.lit as i32 as u32));
        }
        Opcode::ConstWide16 | Opcode::ConstWide32 | Opcode::ConstWide | Opcode::ConstWideHigh16 => {
            frame.set_wide(insn.a, WideValue::from_long(insn.lit));
        }
        Opcode::ConstString | Opcode::ConstStringJumbo => {
            let s = resolve_string(rt, method, insn.idx)?;
            let r = rt.intern_string(&s);
            frame.set(insn.a, Slot::of(r));
        }
        Opcode::ConstClass => {
            let desc = resolve_type(rt, method, insn.idx)?;
            let class = rt
                .find_class(&desc)
                .unwrap_or_else(|| rt.ensure_class_stub(&desc));
            let r = rt.heap.alloc(ObjKind::Class(class), 0);
            frame.set(insn.a, Slot::of(r));
        }

        // ---- monitors (single-threaded: no-ops) -------------------------
        Opcode::MonitorEnter | Opcode::MonitorExit => {
            if frame.reg(insn.a).raw == 0 {
                throw_java!("Ljava/lang/NullPointerException;", "monitor on null".into());
            }
        }

        // ---- casts / type tests -----------------------------------------
        Opcode::CheckCast => {
            let obj = frame.reg(insn.a).raw;
            if obj != 0 {
                let desc = resolve_type(rt, method, insn.idx)?;
                if let (Some(target), Some(actual)) =
                    (rt.find_class(&desc), runtime_class_of_obj(rt, obj))
                {
                    // Lenient where hierarchy is only partially known
                    // (stub classes report Object as supertype).
                    let target_is_stub = rt.class(target).source == "<framework>";
                    if !target_is_stub && !rt.is_subtype(actual, target) {
                        throw_java!(
                            "Ljava/lang/ClassCastException;",
                            format!("{} -> {}", rt.class(actual).descriptor, desc)
                        );
                    }
                }
            }
        }
        Opcode::InstanceOf => {
            let obj = frame.reg(insn.b).raw;
            let desc = resolve_type(rt, method, insn.idx)?;
            let result = if obj == 0 {
                false
            } else {
                match (rt.find_class(&desc), runtime_class_of_obj(rt, obj)) {
                    (Some(target), Some(actual)) => rt.is_subtype(actual, target),
                    _ => false,
                }
            };
            frame.set(insn.a, Slot::of(u32::from(result)));
        }

        // ---- allocation --------------------------------------------------
        Opcode::NewInstance => {
            let desc = resolve_type(rt, method, insn.idx)?;
            let class = rt
                .find_class(&desc)
                .unwrap_or_else(|| rt.ensure_class_stub(&desc));
            rt.ensure_initialized(obs, class)?;
            let r = rt.heap.alloc_instance(class);
            frame.set(insn.a, Slot::of(r));
        }
        Opcode::NewArray => {
            let len = frame.reg(insn.b).as_int();
            if len < 0 {
                throw_java!("Ljava/lang/NegativeArraySizeException;", len.to_string());
            } else {
                let desc = resolve_type(rt, method, insn.idx)?;
                let elem = desc.strip_prefix('[').unwrap_or("I").to_owned();
                let r = rt.heap.alloc_array(&elem, len as usize);
                frame.set(insn.a, Slot::of(r));
            }
        }
        Opcode::ArrayLength => {
            let arr = frame.reg(insn.b).raw;
            match rt.heap.array_len(arr) {
                Some(n) => frame.set(insn.a, Slot::of(n as u32)),
                None => throw_java!(
                    "Ljava/lang/NullPointerException;",
                    "array-length on null".into()
                ),
            }
        }
        Opcode::FilledNewArray | Opcode::FilledNewArrayRange => {
            let desc = resolve_type(rt, method, insn.idx)?;
            let elem = desc.strip_prefix('[').unwrap_or("I").to_owned();
            let r = rt.heap.alloc_array(&elem, insn.regs.len());
            for (i, &reg) in insn.regs.iter().enumerate() {
                let v = frame.reg(reg);
                if let Some(obj) = rt.heap.get_mut(r) {
                    if let ObjKind::Array { data, .. } = &mut obj.kind {
                        data[i] = WideValue {
                            raw: u64::from(v.raw),
                            taint: v.taint,
                        };
                    }
                }
            }
            frame.last_result = RetVal::Single(Slot::of(r));
        }
        Opcode::FillArrayData => {
            let arr = frame.reg(insn.a).raw;
            let mut storage = None;
            let payload = payload_ref(code, &mut storage, rt, method, insn.target(pc))?;
            if let Decoded::FillArrayDataPayload {
                element_width,
                data,
            } = payload
            {
                if rt.heap.array_len(arr).is_none() {
                    throw_java!(
                        "Ljava/lang/NullPointerException;",
                        "fill-array-data on null".into()
                    );
                } else if let Some(obj) = rt.heap.get_mut(arr) {
                    if let ObjKind::Array { data: dst, .. } = &mut obj.kind {
                        let w = *element_width as usize;
                        for (i, chunk) in data.chunks(w).enumerate() {
                            if i >= dst.len() {
                                break;
                            }
                            let mut v: u64 = 0;
                            for (j, &b) in chunk.iter().enumerate() {
                                v |= u64::from(b) << (8 * j);
                            }
                            dst[i] = WideValue::of(v);
                        }
                    }
                }
            } else {
                return Err(RuntimeError::Internal(
                    "fill-array-data target is not an array payload".into(),
                ));
            }
        }

        // ---- exceptions ---------------------------------------------------
        Opcode::Throw => {
            let exc = frame.reg(insn.a).raw;
            if exc == 0 {
                throw_java!("Ljava/lang/NullPointerException;", "throw null".into());
            } else {
                thrown_obj = Some(exc);
            }
        }

        // ---- unconditional branches ----------------------------------------
        Opcode::Goto | Opcode::Goto16 | Opcode::Goto32 => {
            return Ok(Flow::Jump(insn.target(pc)));
        }

        // ---- switches --------------------------------------------------------
        Opcode::PackedSwitch | Opcode::SparseSwitch => {
            let key = frame.reg(insn.a).as_int();
            let mut storage = None;
            let payload = payload_ref(code, &mut storage, rt, method, insn.target(pc))?;
            let target = match payload {
                Decoded::PackedSwitchPayload { first_key, targets } => {
                    let idx = i64::from(key) - i64::from(*first_key);
                    if idx >= 0 && (idx as usize) < targets.len() {
                        Some(targets[idx as usize])
                    } else {
                        None
                    }
                }
                Decoded::SparseSwitchPayload { keys, targets } => {
                    keys.iter().position(|&k| k == key).map(|i| targets[i])
                }
                _ => {
                    return Err(RuntimeError::Internal(
                        "switch target is not a switch payload".into(),
                    ))
                }
            };
            if let Some(off) = target {
                return Ok(Flow::Jump(pc.wrapping_add(off as u32)));
            }
        }

        // ---- comparisons ------------------------------------------------------
        Opcode::CmplFloat
        | Opcode::CmpgFloat
        | Opcode::CmplDouble
        | Opcode::CmpgDouble
        | Opcode::CmpLong => exec_cmp(frame, insn),

        // ---- conditional branches ------------------------------------------------
        Opcode::IfEq
        | Opcode::IfNe
        | Opcode::IfLt
        | Opcode::IfGe
        | Opcode::IfGt
        | Opcode::IfLe
        | Opcode::IfEqz
        | Opcode::IfNez
        | Opcode::IfLtz
        | Opcode::IfGez
        | Opcode::IfGtz
        | Opcode::IfLez => {
            let would_take = eval_branch(frame, insn);
            let take = obs
                .override_branch(rt, method, pc, would_take)
                .unwrap_or(would_take);
            obs.on_branch(rt, method, pc, take);
            if take {
                return Ok(Flow::Jump(insn.target(pc)));
            }
        }

        // ---- array element access ---------------------------------------------------
        Opcode::Aget
        | Opcode::AgetObject
        | Opcode::AgetBoolean
        | Opcode::AgetByte
        | Opcode::AgetChar
        | Opcode::AgetShort => match array_read(rt, frame, insn.b, insn.c) {
            Ok(v) => frame.set(
                insn.a,
                Slot {
                    raw: v.raw as u32,
                    taint: v.taint,
                },
            ),
            Err(t) => thrown = Some(t),
        },
        Opcode::AgetWide => match array_read(rt, frame, insn.b, insn.c) {
            Ok(v) => frame.set_wide(insn.a, v),
            Err(t) => thrown = Some(t),
        },
        Opcode::Aput
        | Opcode::AputObject
        | Opcode::AputBoolean
        | Opcode::AputByte
        | Opcode::AputChar
        | Opcode::AputShort => {
            let v = frame.reg(insn.a);
            if let Err(t) = array_write(
                rt,
                frame,
                insn.b,
                insn.c,
                WideValue {
                    raw: u64::from(v.raw),
                    taint: v.taint,
                },
            ) {
                thrown = Some(t);
            }
        }
        Opcode::AputWide => {
            let v = frame.wide(insn.a);
            if let Err(t) = array_write(rt, frame, insn.b, insn.c, v) {
                thrown = Some(t);
            }
        }

        // ---- instance fields -----------------------------------------------------------
        Opcode::Iget
        | Opcode::IgetObject
        | Opcode::IgetBoolean
        | Opcode::IgetByte
        | Opcode::IgetChar
        | Opcode::IgetShort
        | Opcode::IgetWide => {
            let obj = frame.reg(insn.b).raw;
            if obj == 0 {
                throw_java!("Ljava/lang/NullPointerException;", "iget on null".into());
            } else {
                let field = resolve_field_ref(rt, method, insn.idx)?;
                let v = rt.heap.read_field(obj, field).unwrap_or_default();
                if insn.op == Opcode::IgetWide {
                    frame.set_wide(insn.a, v);
                } else {
                    frame.set(
                        insn.a,
                        Slot {
                            raw: v.raw as u32,
                            taint: v.taint,
                        },
                    );
                }
            }
        }
        Opcode::Iput
        | Opcode::IputObject
        | Opcode::IputBoolean
        | Opcode::IputByte
        | Opcode::IputChar
        | Opcode::IputShort
        | Opcode::IputWide => {
            let obj = frame.reg(insn.b).raw;
            if obj == 0 {
                throw_java!("Ljava/lang/NullPointerException;", "iput on null".into());
            } else {
                let field = resolve_field_ref(rt, method, insn.idx)?;
                let v = if insn.op == Opcode::IputWide {
                    frame.wide(insn.a)
                } else {
                    let s = frame.reg(insn.a);
                    WideValue {
                        raw: u64::from(s.raw),
                        taint: s.taint,
                    }
                };
                rt.heap.write_field(obj, field, v);
            }
        }

        // ---- static fields ---------------------------------------------------------------
        Opcode::Sget
        | Opcode::SgetObject
        | Opcode::SgetBoolean
        | Opcode::SgetByte
        | Opcode::SgetChar
        | Opcode::SgetShort
        | Opcode::SgetWide => {
            let field = resolve_field_ref(rt, method, insn.idx)?;
            let v = rt.static_get(obs, field)?;
            if insn.op == Opcode::SgetWide {
                frame.set_wide(insn.a, v);
            } else {
                frame.set(
                    insn.a,
                    Slot {
                        raw: v.raw as u32,
                        taint: v.taint,
                    },
                );
            }
        }
        Opcode::Sput
        | Opcode::SputObject
        | Opcode::SputBoolean
        | Opcode::SputByte
        | Opcode::SputChar
        | Opcode::SputShort
        | Opcode::SputWide => {
            let field = resolve_field_ref(rt, method, insn.idx)?;
            let v = if insn.op == Opcode::SputWide {
                frame.wide(insn.a)
            } else {
                let s = frame.reg(insn.a);
                WideValue {
                    raw: u64::from(s.raw),
                    taint: s.taint,
                }
            };
            rt.static_put(obs, field, v)?;
        }

        // ---- invocations --------------------------------------------------------------------
        op if op.is_invoke() => {
            let args = marshal_args(frame, insn);
            match dispatch_invoke(rt, obs, method, insn, args.slots(), depth)? {
                Outcome::Ret(v) => frame.last_result = v,
                Outcome::Threw(exc) => thrown_obj = Some(exc),
            }
        }

        // ---- unary ops --------------------------------------------------------------------
        Opcode::NegInt => unary_int(frame, insn, |v| v.wrapping_neg()),
        Opcode::NotInt => unary_int(frame, insn, |v| !v),
        Opcode::NegLong => unary_long(frame, insn, |v| v.wrapping_neg()),
        Opcode::NotLong => unary_long(frame, insn, |v| !v),
        Opcode::NegFloat => {
            let v = frame.reg(insn.b);
            frame.set(
                insn.a,
                Slot {
                    raw: (-v.as_float()).to_bits(),
                    taint: v.taint,
                },
            );
        }
        Opcode::NegDouble => {
            let v = frame.wide(insn.b);
            frame.set_wide(
                insn.a,
                WideValue {
                    raw: (-v.as_double()).to_bits(),
                    taint: v.taint,
                },
            );
        }

        // ---- conversions ------------------------------------------------------------------
        Opcode::IntToLong => {
            let v = frame.reg(insn.b);
            frame.set_wide(
                insn.a,
                WideValue {
                    raw: i64::from(v.as_int()) as u64,
                    taint: v.taint,
                },
            );
        }
        Opcode::IntToFloat => {
            let v = frame.reg(insn.b);
            frame.set(
                insn.a,
                Slot {
                    raw: (v.as_int() as f32).to_bits(),
                    taint: v.taint,
                },
            );
        }
        Opcode::IntToDouble => {
            let v = frame.reg(insn.b);
            frame.set_wide(
                insn.a,
                WideValue {
                    raw: f64::from(v.as_int()).to_bits(),
                    taint: v.taint,
                },
            );
        }
        Opcode::LongToInt => {
            let v = frame.wide(insn.b);
            frame.set(
                insn.a,
                Slot {
                    raw: v.as_long() as i32 as u32,
                    taint: v.taint,
                },
            );
        }
        Opcode::LongToFloat => {
            let v = frame.wide(insn.b);
            frame.set(
                insn.a,
                Slot {
                    raw: (v.as_long() as f32).to_bits(),
                    taint: v.taint,
                },
            );
        }
        Opcode::LongToDouble => {
            let v = frame.wide(insn.b);
            frame.set_wide(
                insn.a,
                WideValue {
                    raw: (v.as_long() as f64).to_bits(),
                    taint: v.taint,
                },
            );
        }
        Opcode::FloatToInt => {
            let v = frame.reg(insn.b);
            frame.set(
                insn.a,
                Slot {
                    raw: clamp_f2i(v.as_float()) as u32,
                    taint: v.taint,
                },
            );
        }
        Opcode::FloatToLong => {
            let v = frame.reg(insn.b);
            frame.set_wide(
                insn.a,
                WideValue {
                    raw: clamp_f2l(f64::from(v.as_float())) as u64,
                    taint: v.taint,
                },
            );
        }
        Opcode::FloatToDouble => {
            let v = frame.reg(insn.b);
            frame.set_wide(
                insn.a,
                WideValue {
                    raw: f64::from(v.as_float()).to_bits(),
                    taint: v.taint,
                },
            );
        }
        Opcode::DoubleToInt => {
            let v = frame.wide(insn.b);
            frame.set(
                insn.a,
                Slot {
                    raw: clamp_f2i(v.as_double() as f32) as u32,
                    taint: v.taint,
                },
            );
        }
        Opcode::DoubleToLong => {
            let v = frame.wide(insn.b);
            frame.set_wide(
                insn.a,
                WideValue {
                    raw: clamp_f2l(v.as_double()) as u64,
                    taint: v.taint,
                },
            );
        }
        Opcode::DoubleToFloat => {
            let v = frame.wide(insn.b);
            frame.set(
                insn.a,
                Slot {
                    raw: (v.as_double() as f32).to_bits(),
                    taint: v.taint,
                },
            );
        }
        Opcode::IntToByte => unary_int(frame, insn, |v| i32::from(v as i8)),
        Opcode::IntToChar => unary_int(frame, insn, |v| i32::from(v as u16)),
        Opcode::IntToShort => unary_int(frame, insn, |v| i32::from(v as i16)),

        // ---- int arithmetic (23x, 2addr, lit16, lit8) --------------------------------------
        op if int_binop(op).is_some() || lit_binop(op).is_some() => {
            if let Err(t) = exec_int_alu(frame, insn) {
                thrown = Some(t);
            }
        }

        // ---- long arithmetic -----------------------------------------------------------------
        op if long_binop(op).is_some() => {
            let f = long_binop(op).expect("guard");
            let two_addr = (op as u8) >= 0xb0;
            let (b, c) = if two_addr {
                (insn.a, insn.b)
            } else {
                (insn.b, insn.c)
            };
            let x = frame.wide(b);
            // Shift amounts for longs are int registers.
            let is_shift = matches!(
                op,
                Opcode::ShlLong
                    | Opcode::ShrLong
                    | Opcode::UshrLong
                    | Opcode::ShlLong2addr
                    | Opcode::ShrLong2addr
                    | Opcode::UshrLong2addr
            );
            let (y_val, y_taint) = if is_shift {
                let s = frame.reg(c);
                (i64::from(s.as_int()), s.taint)
            } else {
                let w = frame.wide(c);
                (w.as_long(), w.taint)
            };
            if matches!(
                op,
                Opcode::DivLong | Opcode::RemLong | Opcode::DivLong2addr | Opcode::RemLong2addr
            ) && y_val == 0
            {
                throw_java!("Ljava/lang/ArithmeticException;", "divide by zero".into());
            } else {
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: f(x.as_long(), y_val) as u64,
                        taint: x.taint | y_taint,
                    },
                );
            }
        }

        // ---- float/double arithmetic ------------------------------------------------------------
        op if float_binop(op).is_some() => {
            let f = float_binop(op).expect("guard");
            let two_addr = (op as u8) >= 0xb0;
            let (b, c) = if two_addr {
                (insn.a, insn.b)
            } else {
                (insn.b, insn.c)
            };
            let x = frame.reg(b);
            let y = frame.reg(c);
            frame.set(
                insn.a,
                Slot {
                    raw: f(x.as_float(), y.as_float()).to_bits(),
                    taint: x.taint | y.taint,
                },
            );
        }
        op if double_binop(op).is_some() => {
            let f = double_binop(op).expect("guard");
            let two_addr = (op as u8) >= 0xb0;
            let (b, c) = if two_addr {
                (insn.a, insn.b)
            } else {
                (insn.b, insn.c)
            };
            let x = frame.wide(b);
            let y = frame.wide(c);
            frame.set_wide(
                insn.a,
                WideValue {
                    raw: f(x.as_double(), y.as_double()).to_bits(),
                    taint: x.taint | y.taint,
                },
            );
        }

        other => {
            return Err(RuntimeError::UnimplementedOpcode {
                opcode: other,
                dex_pc: pc,
            })
        }
    }

    if let Some(t) = thrown {
        return Ok(Flow::Throw(t));
    }
    if let Some(exc) = thrown_obj {
        return Ok(Flow::ThrowObj(exc));
    }
    Ok(Flow::Next)
}

fn clamp_f2i(v: f32) -> i32 {
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f32 {
        i32::MAX
    } else if v <= i32::MIN as f32 {
        i32::MIN
    } else {
        v as i32
    }
}

fn clamp_f2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

fn unary_int(frame: &mut Frame, insn: &Insn, f: impl Fn(i32) -> i32) {
    let v = frame.reg(insn.b);
    frame.set(
        insn.a,
        Slot {
            raw: f(v.as_int()) as u32,
            taint: v.taint,
        },
    );
}

fn unary_long(frame: &mut Frame, insn: &Insn, f: impl Fn(i64) -> i64) {
    let v = frame.wide(insn.b);
    frame.set_wide(
        insn.a,
        WideValue {
            raw: f(v.as_long()) as u64,
            taint: v.taint,
        },
    );
}

type IntOp = fn(i32, i32) -> i32;
type LongOp = fn(i64, i64) -> i64;

fn int_binop(op: Opcode) -> Option<IntOp> {
    Some(match op {
        Opcode::AddInt | Opcode::AddInt2addr => |a, b| a.wrapping_add(b),
        Opcode::SubInt | Opcode::SubInt2addr => |a, b| a.wrapping_sub(b),
        Opcode::MulInt | Opcode::MulInt2addr => |a, b| a.wrapping_mul(b),
        Opcode::DivInt | Opcode::DivInt2addr => |a, b| a.wrapping_div(b),
        Opcode::RemInt | Opcode::RemInt2addr => |a, b| a.wrapping_rem(b),
        Opcode::AndInt | Opcode::AndInt2addr => |a, b| a & b,
        Opcode::OrInt | Opcode::OrInt2addr => |a, b| a | b,
        Opcode::XorInt | Opcode::XorInt2addr => |a, b| a ^ b,
        Opcode::ShlInt | Opcode::ShlInt2addr => |a, b| a.wrapping_shl(b as u32 & 31),
        Opcode::ShrInt | Opcode::ShrInt2addr => |a, b| a.wrapping_shr(b as u32 & 31),
        Opcode::UshrInt | Opcode::UshrInt2addr => |a, b| ((a as u32) >> (b as u32 & 31)) as i32,
        _ => return None,
    })
}

fn long_binop(op: Opcode) -> Option<LongOp> {
    Some(match op {
        Opcode::AddLong | Opcode::AddLong2addr => |a: i64, b| a.wrapping_add(b),
        Opcode::SubLong | Opcode::SubLong2addr => |a: i64, b| a.wrapping_sub(b),
        Opcode::MulLong | Opcode::MulLong2addr => |a: i64, b| a.wrapping_mul(b),
        Opcode::DivLong | Opcode::DivLong2addr => |a: i64, b| a.wrapping_div(b),
        Opcode::RemLong | Opcode::RemLong2addr => |a: i64, b| a.wrapping_rem(b),
        Opcode::AndLong | Opcode::AndLong2addr => |a, b| a & b,
        Opcode::OrLong | Opcode::OrLong2addr => |a, b| a | b,
        Opcode::XorLong | Opcode::XorLong2addr => |a, b| a ^ b,
        Opcode::ShlLong | Opcode::ShlLong2addr => |a: i64, b| a.wrapping_shl(b as u32 & 63),
        Opcode::ShrLong | Opcode::ShrLong2addr => |a: i64, b| a.wrapping_shr(b as u32 & 63),
        Opcode::UshrLong | Opcode::UshrLong2addr => {
            |a: i64, b| ((a as u64) >> (b as u32 & 63)) as i64
        }
        _ => return None,
    })
}

fn float_binop(op: Opcode) -> Option<fn(f32, f32) -> f32> {
    Some(match op {
        Opcode::AddFloat | Opcode::AddFloat2addr => |a, b| a + b,
        Opcode::SubFloat | Opcode::SubFloat2addr => |a, b| a - b,
        Opcode::MulFloat | Opcode::MulFloat2addr => |a, b| a * b,
        Opcode::DivFloat | Opcode::DivFloat2addr => |a, b| a / b,
        Opcode::RemFloat | Opcode::RemFloat2addr => |a, b| a % b,
        _ => return None,
    })
}

fn double_binop(op: Opcode) -> Option<fn(f64, f64) -> f64> {
    Some(match op {
        Opcode::AddDouble | Opcode::AddDouble2addr => |a, b| a + b,
        Opcode::SubDouble | Opcode::SubDouble2addr => |a, b| a - b,
        Opcode::MulDouble | Opcode::MulDouble2addr => |a, b| a * b,
        Opcode::DivDouble | Opcode::DivDouble2addr => |a, b| a / b,
        Opcode::RemDouble | Opcode::RemDouble2addr => |a, b| a % b,
        _ => return None,
    })
}

fn lit_binop(op: Opcode) -> Option<IntOp> {
    Some(match op {
        Opcode::AddIntLit16 | Opcode::AddIntLit8 => |a, b| a.wrapping_add(b),
        Opcode::RsubInt | Opcode::RsubIntLit8 => |a, b| b.wrapping_sub(a),
        Opcode::MulIntLit16 | Opcode::MulIntLit8 => |a, b| a.wrapping_mul(b),
        Opcode::DivIntLit16 | Opcode::DivIntLit8 => |a, b| a.wrapping_div(b),
        Opcode::RemIntLit16 | Opcode::RemIntLit8 => |a, b| a.wrapping_rem(b),
        Opcode::AndIntLit16 | Opcode::AndIntLit8 => |a, b| a & b,
        Opcode::OrIntLit16 | Opcode::OrIntLit8 => |a, b| a | b,
        Opcode::XorIntLit16 | Opcode::XorIntLit8 => |a, b| a ^ b,
        Opcode::ShlIntLit8 => |a, b| a.wrapping_shl(b as u32 & 31),
        Opcode::ShrIntLit8 => |a, b| a.wrapping_shr(b as u32 & 31),
        Opcode::UshrIntLit8 => |a, b| ((a as u32) >> (b as u32 & 31)) as i32,
        _ => return None,
    })
}

fn array_read(
    rt: &Runtime,
    frame: &Frame,
    arr_reg: u32,
    idx_reg: u32,
) -> std::result::Result<WideValue, Thrown> {
    let arr = frame.reg(arr_reg).raw;
    let idx = frame.reg(idx_reg).as_int();
    match rt.heap.get(arr).map(|o| &o.kind) {
        Some(ObjKind::Array { data, .. }) => {
            if idx < 0 || idx as usize >= data.len() {
                Err(Thrown::Java(
                    "Ljava/lang/ArrayIndexOutOfBoundsException;",
                    format!("index {idx}, length {}", data.len()),
                ))
            } else {
                Ok(data[idx as usize])
            }
        }
        _ => Err(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "array access on null".into(),
        )),
    }
}

fn array_write(
    rt: &mut Runtime,
    frame: &Frame,
    arr_reg: u32,
    idx_reg: u32,
    value: WideValue,
) -> std::result::Result<(), Thrown> {
    let arr = frame.reg(arr_reg).raw;
    let idx = frame.reg(idx_reg).as_int();
    match rt.heap.get_mut(arr).map(|o| &mut o.kind) {
        Some(ObjKind::Array { data, .. }) => {
            if idx < 0 || idx as usize >= data.len() {
                Err(Thrown::Java(
                    "Ljava/lang/ArrayIndexOutOfBoundsException;",
                    format!("index {idx}, length {}", data.len()),
                ))
            } else {
                data[idx as usize] = value;
                Ok(())
            }
        }
        _ => Err(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "array access on null".into(),
        )),
    }
}

// ---- operand resolution against the method's dex table ----------------------

fn source_of(rt: &Runtime, method: MethodId) -> Result<usize> {
    rt.method_source(method).ok_or_else(|| {
        RuntimeError::Internal(format!(
            "no dex source for bytecode method {}",
            rt.method_name(method)
        ))
    })
}

fn resolve_string(rt: &Runtime, method: MethodId, idx: u32) -> Result<String> {
    let table = rt.dex_table(source_of(rt, method)?);
    table
        .strings
        .get(idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("string index {idx} out of range")))
}

fn resolve_type(rt: &Runtime, method: MethodId, idx: u32) -> Result<String> {
    let table = rt.dex_table(source_of(rt, method)?);
    table
        .types
        .get(idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("type index {idx} out of range")))
}

fn resolve_field_ref(rt: &mut Runtime, method: MethodId, idx: u32) -> Result<FieldId> {
    let table = rt.dex_table(source_of(rt, method)?);
    let (class_desc, name, type_desc) = table
        .fields
        .get(idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("field index {idx} out of range")))?;
    let class = match rt.find_class(&class_desc) {
        Some(c) => c,
        None => rt.ensure_class_stub(&class_desc),
    };
    match rt.resolve_field(class, &name) {
        Some(f) => Ok(f),
        // Framework fields appear on demand (e.g. instrument-class guards).
        None => Ok(rt.register_field(&class_desc, &name, &type_desc)),
    }
}

fn dispatch_invoke(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    caller: MethodId,
    insn: &Insn,
    args: &[Slot],
    depth: usize,
) -> Result<Outcome> {
    let table = rt.dex_table(source_of(rt, caller)?);
    let (class_desc, sig) = table
        .methods
        .get(insn.idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("method index {} out of range", insn.idx)))?;

    let is_static = matches!(insn.op, Opcode::InvokeStatic | Opcode::InvokeStaticRange);
    let is_virtual = matches!(
        insn.op,
        Opcode::InvokeVirtual
            | Opcode::InvokeVirtualRange
            | Opcode::InvokeInterface
            | Opcode::InvokeInterfaceRange
    );

    let start_class = if is_virtual {
        let receiver = args.first().copied().unwrap_or_default().raw;
        if receiver == 0 {
            let exc = rt.heap.alloc(
                ObjKind::Throwable {
                    type_desc: "Ljava/lang/NullPointerException;".to_owned(),
                    message: format!("invoke on null receiver: {class_desc}->{}", sig.name),
                },
                0,
            );
            return Ok(Outcome::Threw(exc));
        }
        runtime_class_of_obj(rt, receiver).unwrap_or_else(|| rt.ensure_class_stub(&class_desc))
    } else {
        match rt.find_class(&class_desc) {
            Some(c) => c,
            None => rt.ensure_class_stub(&class_desc),
        }
    };

    let resolved = rt.resolve_method(start_class, &sig).or_else(|| {
        // Fall back to the statically named class (e.g. receiver is a
        // stub but the declaration exists elsewhere).
        rt.find_class(&class_desc)
            .and_then(|c| rt.resolve_method(c, &sig))
    });
    let target = match resolved {
        Some(t) => t,
        None => {
            // Framework fallback: a native registered under the statically
            // named class (e.g. `Context.getSystemService` invoked on an
            // `Activity` receiver) is callable without stub wiring.
            let key = native_key(&class_desc, &sig.name, &sig.descriptor);
            if let Some(f) = rt.natives.lookup(&key) {
                rt.stats.native_calls += 1;
                return match f(rt, obs, args) {
                    Ok(v) => Ok(Outcome::Ret(v)),
                    Err(RuntimeError::UncaughtException { type_desc, message }) => {
                        let exc = rt.heap.alloc(ObjKind::Throwable { type_desc, message }, 0);
                        Ok(Outcome::Threw(exc))
                    }
                    Err(e) => Err(e),
                };
            }
            return Err(RuntimeError::MethodNotFound(format!(
                "{class_desc}->{}{}",
                sig.name, sig.descriptor
            )));
        }
    };

    if is_static {
        let class = rt.method(target).class;
        rt.ensure_initialized(obs, class)?;
    }
    execute_inner(rt, obs, target, args, depth + 1)
}

fn find_handler(rt: &mut Runtime, method: MethodId, pc: u32, exc: ObjRef) -> Option<u32> {
    let exc_desc = describe_throwable(rt, exc).0;
    let MethodImpl::Bytecode {
        tries, handlers, ..
    } = &rt.method(method).body
    else {
        return None;
    };
    let tries = tries.clone();
    let handlers = handlers.clone();
    let source = rt.method_source(method)?;
    for t in &tries {
        if pc < t.start_addr || pc >= t.start_addr + u32::from(t.insn_count) {
            continue;
        }
        let Some(handler) = handlers.get(t.handler_index) else {
            continue;
        };
        for clause in &handler.catches {
            let catch_desc = rt
                .dex_table(source)
                .types
                .get(clause.type_idx as usize)
                .cloned();
            let Some(catch_desc) = catch_desc else {
                continue;
            };
            // Match exact type, or catch broad throwable supertypes.
            let matches = catch_desc == exc_desc
                || catch_desc == "Ljava/lang/Throwable;"
                || catch_desc == "Ljava/lang/Exception;"
                || catch_desc == "Ljava/lang/RuntimeException;";
            if matches {
                return Some(clause.addr);
            }
        }
        if let Some(addr) = handler.catch_all_addr {
            return Some(addr);
        }
    }
    None
}
