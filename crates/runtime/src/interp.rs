//! The bytecode interpreter.
//!
//! A faithful (if simplified) analogue of ART's `ExecuteSwitchImpl`: a
//! register frame of 32-bit slots, a `dex_pc` into the method's 16-bit code
//! unit array, and a fetch→observe→execute loop. Observers see every
//! instruction *before* it executes, with its raw units — the hook DexLego's
//! Algorithm 1 builds its collection trees on.
//!
//! Fetching is served from the runtime's predecoded code cache (the analogue
//! of ART's mterp/predecoded representation): a method body is decoded once
//! into a dense [`dexlego_dalvik::PredecodedMethod`] and each step borrows
//! `&Insn` / `&[u16]` views out of it. Method bodies stay mutable — every
//! frame re-validates the body's *code epoch* before each step and
//! re-predecodes on change, so self-modifying native code behaves exactly as
//! on Android, where units are re-fetched from the live method. Streams that
//! resist linear predecoding (garbage past unreachable code) and jumps to
//! non-boundary pcs fall back to per-step decoding with identical semantics.
//!
//! Taint is propagated through explicit data flow only (moves, arithmetic,
//! field/array traffic, call arguments and returns) — deliberately *not*
//! through branch conditions, reproducing the implicit-flow blind spot of
//! runtime taint trackers that Table IV of the paper demonstrates.

use dexlego_dalvik::{decode_insn, Decoded, Insn, Opcode};

use crate::class::{MethodId, MethodImpl};
use crate::heap::{ObjKind, ObjRef};
use crate::natives::native_key;
use crate::observer::{InsnEvent, RuntimeObserver};
use crate::runtime::{Result, Runtime, RuntimeError};
use crate::value::{RetVal, Slot, WideValue};

/// Outcome of running one frame: a return value or a thrown exception that
/// escaped the frame.
enum Outcome {
    Ret(RetVal),
    Threw(ObjRef),
}

/// Executes `method` with `args` (argument slots, wide values pre-split).
///
/// # Errors
///
/// Returns [`RuntimeError::UncaughtException`] if a Java exception escapes
/// the outermost frame (unless the observer tolerates exceptions), or a
/// hard error for linkage/decoding/budget failures.
pub fn execute(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    args: &[Slot],
) -> Result<RetVal> {
    if rt.exec_stack.is_empty() {
        rt.budget_start = rt.stats.insns;
    }
    match execute_inner(rt, obs, method, args, 0)? {
        Outcome::Ret(v) => Ok(v),
        Outcome::Threw(exc) => {
            let (type_desc, message) = describe_throwable(rt, exc);
            Err(RuntimeError::UncaughtException { type_desc, message })
        }
    }
}

fn describe_throwable(rt: &Runtime, exc: ObjRef) -> (String, String) {
    match rt.heap.get(exc).map(|o| &o.kind) {
        Some(ObjKind::Throwable { type_desc, message }) => (type_desc.clone(), message.clone()),
        Some(ObjKind::Instance { class, .. }) => {
            (rt.class(*class).descriptor.clone(), String::new())
        }
        _ => ("Ljava/lang/Throwable;".to_owned(), String::new()),
    }
}

/// The runtime class of an arbitrary heap object (strings and reflection
/// objects map to their framework classes).
pub fn runtime_class_of_obj(rt: &mut Runtime, obj: ObjRef) -> Option<crate::class::ClassId> {
    match rt.heap.get(obj).map(|o| o.kind.clone()) {
        Some(ObjKind::Instance { class, .. }) => Some(class),
        Some(ObjKind::Str(_)) => Some(rt.ensure_class_stub("Ljava/lang/String;")),
        Some(ObjKind::Class(_)) => Some(rt.ensure_class_stub("Ljava/lang/Class;")),
        Some(ObjKind::Method(_)) => Some(rt.ensure_class_stub("Ljava/lang/reflect/Method;")),
        Some(ObjKind::Array { .. }) => Some(rt.ensure_class_stub("Ljava/lang/Object;")),
        Some(ObjKind::Throwable { type_desc, .. }) => Some(rt.ensure_class_stub(&type_desc)),
        None => None,
    }
}

fn execute_inner(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    args: &[Slot],
    depth: usize,
) -> Result<Outcome> {
    if depth >= rt.env.max_depth {
        return Err(RuntimeError::StackOverflow);
    }
    rt.stats.frames += 1;
    obs.on_method_enter(rt, method);

    let outcome = match &rt.method(method).body {
        MethodImpl::Native => {
            rt.stats.native_calls += 1;
            let m = rt.method(method);
            let key = native_key(&rt.class(m.class).descriptor, &m.name, &m.descriptor);
            let f = rt
                .natives
                .lookup(&key)
                .ok_or(RuntimeError::NativeMissing(key))?;
            match f(rt, obs, args) {
                Ok(v) => Ok(Outcome::Ret(v)),
                Err(RuntimeError::UncaughtException { type_desc, message }) => {
                    // Natives throw by returning UncaughtException; convert
                    // to a heap throwable so callers can catch it.
                    let exc = rt.heap.alloc(ObjKind::Throwable { type_desc, message }, 0);
                    Ok(Outcome::Threw(exc))
                }
                Err(e) => Err(e),
            }
        }
        MethodImpl::Abstract => Err(RuntimeError::MethodNotFound(format!(
            "abstract method invoked: {}",
            rt.method_name(method)
        ))),
        MethodImpl::Bytecode { registers, ins, .. } => {
            let registers = *registers as usize;
            let ins = *ins as usize;
            if args.len() != ins {
                return Err(RuntimeError::Internal(format!(
                    "{}: expected {} argument slots, got {}",
                    rt.method_name(method),
                    ins,
                    args.len()
                )));
            }
            rt.exec_stack.push((method, 0));
            let result = run_frame(rt, obs, method, registers, ins, args, depth);
            rt.exec_stack.pop();
            result
        }
    };

    obs.on_method_exit(rt, method);
    outcome
}

/// Longest Dalvik instruction, in 16-bit code units (`const-wide`, 51l).
const MAX_INSN_UNITS: usize = 5;

/// The fetch source a frame executes from.
///
/// `Pre` serves borrowed `&Insn` / `&[u16]` views out of the runtime's
/// predecoded code cache; the frame re-validates its epoch before every
/// step, so self-modifying code (which bumps the epoch via
/// [`Runtime::method_mut`]) is re-predecoded before the next instruction.
/// `Step` decodes from the live method body on every step — the fallback
/// for unpredecodable streams and the explicit
/// [`FetchMode::DecodePerStep`](crate::runtime::FetchMode) baseline.
enum FrameCode {
    Pre {
        pre: std::sync::Arc<dexlego_dalvik::PredecodedMethod>,
        epoch: u64,
    },
    Step,
}

/// Chooses the fetch source for a frame of `method` right now.
fn acquire_code(rt: &mut Runtime, method: MethodId) -> FrameCode {
    if rt.env.fetch_mode == crate::runtime::FetchMode::DecodePerStep {
        return FrameCode::Step;
    }
    let epoch = rt.code_epoch(method);
    match rt.predecoded(method) {
        Some(pre) => FrameCode::Pre { pre, epoch },
        None => FrameCode::Step,
    }
}

/// Decodes the instruction at `pc` from the live method body, copying its
/// raw units into a caller-provided fixed buffer — no heap allocation.
fn fetch_step(
    rt: &Runtime,
    method: MethodId,
    pc: u32,
    unit_buf: &mut [u16; MAX_INSN_UNITS],
) -> Result<(Insn, usize)> {
    let MethodImpl::Bytecode { insns, .. } = &rt.method(method).body else {
        return Err(RuntimeError::Internal(
            "fetch on non-bytecode method".into(),
        ));
    };
    if pc as usize >= insns.len() {
        return Err(RuntimeError::Internal(format!(
            "{}: dex_pc {} past end of {}-unit method",
            rt.method_name(method),
            pc,
            insns.len()
        )));
    }
    match decode_insn(insns, pc as usize)? {
        Decoded::Insn(insn) => {
            let len = insn.units();
            unit_buf[..len].copy_from_slice(&insns[pc as usize..pc as usize + len]);
            Ok((insn, len))
        }
        _ => Err(RuntimeError::Internal(format!(
            "{}: execution reached payload at dex_pc {}",
            rt.method_name(method),
            pc
        ))),
    }
}

/// Reads the payload referenced by a 31t instruction from the live body.
fn fetch_payload(rt: &Runtime, method: MethodId, payload_pc: u32) -> Result<Decoded> {
    let MethodImpl::Bytecode { insns, .. } = &rt.method(method).body else {
        return Err(RuntimeError::Internal(
            "fetch on non-bytecode method".into(),
        ));
    };
    Ok(decode_insn(insns, payload_pc as usize)?)
}

struct Frame<'r> {
    regs: &'r mut [Slot],
    last_result: RetVal,
    caught: Option<ObjRef>,
}

impl Frame<'_> {
    fn reg(&self, i: u32) -> Slot {
        self.regs[i as usize]
    }
    fn set(&mut self, i: u32, v: Slot) {
        self.regs[i as usize] = v;
    }
    fn wide(&self, i: u32) -> WideValue {
        WideValue::join(self.regs[i as usize], self.regs[i as usize + 1])
    }
    fn set_wide(&mut self, i: u32, v: WideValue) {
        let (lo, hi) = v.split();
        self.regs[i as usize] = lo;
        self.regs[i as usize + 1] = hi;
    }
}

enum Thrown {
    Java(&'static str, String),
}

/// Serves the payload at `ppc` from the frame's predecoded tables when
/// available, decoding it from the live method body otherwise. `storage`
/// anchors the decoded fallback so both paths return a borrow.
fn payload_ref<'a>(
    code: &'a FrameCode,
    storage: &'a mut Option<Decoded>,
    rt: &Runtime,
    method: MethodId,
    ppc: u32,
) -> Result<&'a Decoded> {
    if let FrameCode::Pre { pre, .. } = code {
        if let Some(p) = pre.payload_at(ppc) {
            return Ok(p);
        }
    }
    Ok(storage.insert(fetch_payload(rt, method, ppc)?))
}

/// Invoke argument counts at or below this use a stack buffer; longer
/// range invokes (rare) fall back to a heap vector.
const INLINE_ARGS: usize = 8;

fn run_frame(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    registers: usize,
    ins: usize,
    args: &[Slot],
    depth: usize,
) -> Result<Outcome> {
    let mut regs = rt.acquire_regs(registers);
    regs[registers - ins..].copy_from_slice(args);
    let result = run_frame_inner(rt, obs, method, &mut regs, depth);
    rt.release_regs(regs);
    result
}

#[allow(clippy::too_many_lines)]
fn run_frame_inner(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    method: MethodId,
    regs: &mut [Slot],
    depth: usize,
) -> Result<Outcome> {
    let mut frame = Frame {
        regs,
        last_result: RetVal::Void,
        caught: None,
    };
    let mut pc: u32 = 0;
    // Hoisted once per frame: passive observers skip event construction.
    let wants_events = obs.wants_insn_events();
    let mut code = acquire_code(rt, method);
    // Scratch for the per-step fallback path — fixed-size, so the
    // steady-state loop performs no per-instruction heap allocation.
    let mut unit_buf = [0u16; MAX_INSN_UNITS];

    'dispatch: loop {
        rt.stats.insns += 1;
        if rt.stats.insns - rt.budget_start > rt.env.insn_budget {
            return Err(RuntimeError::BudgetExhausted);
        }
        // Self-modification check: a bumped epoch means the body may have
        // changed (possibly by a nested call) — re-predecode before fetch.
        if let FrameCode::Pre { epoch, .. } = &code {
            if *epoch != rt.code_epoch(method) {
                code = acquire_code(rt, method);
            }
        }
        let step_insn;
        let (insn, units): (&Insn, &[u16]) = 'fetch: {
            if let FrameCode::Pre { pre, .. } = &code {
                if let Some(hit) = pre.insn_at(pc) {
                    break 'fetch hit;
                }
                // A pc the linear predecode did not mark as an instruction
                // boundary (payload, or a jump into the middle of an
                // instruction): decode from the live body, exactly as
                // per-step mode would.
            }
            let (decoded, len) = fetch_step(rt, method, pc, &mut unit_buf)?;
            step_insn = decoded;
            (&step_insn, &unit_buf[..len])
        };
        if let Some(top) = rt.exec_stack.last_mut() {
            top.1 = pc;
        }
        if wants_events {
            obs.on_instruction(
                rt,
                &InsnEvent {
                    method,
                    dex_pc: pc,
                    insn,
                    units,
                },
            );
        }
        let next_pc = pc + insn.units() as u32;

        // Instruction execution. `thrown` carries a pending Java exception
        // raised by this instruction.
        let mut thrown: Option<Thrown> = None;
        let mut thrown_obj: Option<ObjRef> = None;

        macro_rules! throw_java {
            ($ty:expr, $msg:expr) => {{
                thrown = Some(Thrown::Java($ty, $msg));
            }};
        }

        match insn.op {
            Opcode::Nop => {}

            // ---- moves -----------------------------------------------------
            Opcode::Move
            | Opcode::MoveFrom16
            | Opcode::Move16
            | Opcode::MoveObject
            | Opcode::MoveObjectFrom16
            | Opcode::MoveObject16 => {
                frame.set(insn.a, frame.reg(insn.b));
            }
            Opcode::MoveWide | Opcode::MoveWideFrom16 | Opcode::MoveWide16 => {
                let v = frame.wide(insn.b);
                frame.set_wide(insn.a, v);
            }
            Opcode::MoveResult | Opcode::MoveResultObject => match frame.last_result {
                RetVal::Single(s) => frame.set(insn.a, s),
                _ => frame.set(insn.a, Slot::default()),
            },
            Opcode::MoveResultWide => match frame.last_result {
                RetVal::Wide(w) => frame.set_wide(insn.a, w),
                _ => frame.set_wide(insn.a, WideValue::default()),
            },
            Opcode::MoveException => {
                let caught = frame.caught.take().unwrap_or(0);
                frame.set(insn.a, Slot::of(caught));
            }

            // ---- returns ---------------------------------------------------
            Opcode::ReturnVoid => return Ok(Outcome::Ret(RetVal::Void)),
            Opcode::Return | Opcode::ReturnObject => {
                return Ok(Outcome::Ret(RetVal::Single(frame.reg(insn.a))))
            }
            Opcode::ReturnWide => return Ok(Outcome::Ret(RetVal::Wide(frame.wide(insn.a)))),

            // ---- constants -------------------------------------------------
            Opcode::Const4 | Opcode::Const16 | Opcode::Const | Opcode::ConstHigh16 => {
                frame.set(insn.a, Slot::of(insn.lit as i32 as u32));
            }
            Opcode::ConstWide16
            | Opcode::ConstWide32
            | Opcode::ConstWide
            | Opcode::ConstWideHigh16 => {
                frame.set_wide(insn.a, WideValue::from_long(insn.lit));
            }
            Opcode::ConstString | Opcode::ConstStringJumbo => {
                let s = resolve_string(rt, method, insn.idx)?;
                let r = rt.intern_string(&s);
                frame.set(insn.a, Slot::of(r));
            }
            Opcode::ConstClass => {
                let desc = resolve_type(rt, method, insn.idx)?;
                let class = rt
                    .find_class(&desc)
                    .unwrap_or_else(|| rt.ensure_class_stub(&desc));
                let r = rt.heap.alloc(ObjKind::Class(class), 0);
                frame.set(insn.a, Slot::of(r));
            }

            // ---- monitors (single-threaded: no-ops) -------------------------
            Opcode::MonitorEnter | Opcode::MonitorExit => {
                if frame.reg(insn.a).raw == 0 {
                    throw_java!("Ljava/lang/NullPointerException;", "monitor on null".into());
                }
            }

            // ---- casts / type tests -----------------------------------------
            Opcode::CheckCast => {
                let obj = frame.reg(insn.a).raw;
                if obj != 0 {
                    let desc = resolve_type(rt, method, insn.idx)?;
                    if let (Some(target), Some(actual)) =
                        (rt.find_class(&desc), runtime_class_of_obj(rt, obj))
                    {
                        // Lenient where hierarchy is only partially known
                        // (stub classes report Object as supertype).
                        let target_is_stub = rt.class(target).source == "<framework>";
                        if !target_is_stub && !rt.is_subtype(actual, target) {
                            throw_java!(
                                "Ljava/lang/ClassCastException;",
                                format!("{} -> {}", rt.class(actual).descriptor, desc)
                            );
                        }
                    }
                }
            }
            Opcode::InstanceOf => {
                let obj = frame.reg(insn.b).raw;
                let desc = resolve_type(rt, method, insn.idx)?;
                let result = if obj == 0 {
                    false
                } else {
                    match (rt.find_class(&desc), runtime_class_of_obj(rt, obj)) {
                        (Some(target), Some(actual)) => rt.is_subtype(actual, target),
                        _ => false,
                    }
                };
                frame.set(insn.a, Slot::of(u32::from(result)));
            }

            // ---- allocation --------------------------------------------------
            Opcode::NewInstance => {
                let desc = resolve_type(rt, method, insn.idx)?;
                let class = rt
                    .find_class(&desc)
                    .unwrap_or_else(|| rt.ensure_class_stub(&desc));
                rt.ensure_initialized(obs, class)?;
                let r = rt.heap.alloc_instance(class);
                frame.set(insn.a, Slot::of(r));
            }
            Opcode::NewArray => {
                let len = frame.reg(insn.b).as_int();
                if len < 0 {
                    throw_java!("Ljava/lang/NegativeArraySizeException;", len.to_string());
                } else {
                    let desc = resolve_type(rt, method, insn.idx)?;
                    let elem = desc.strip_prefix('[').unwrap_or("I").to_owned();
                    let r = rt.heap.alloc_array(&elem, len as usize);
                    frame.set(insn.a, Slot::of(r));
                }
            }
            Opcode::ArrayLength => {
                let arr = frame.reg(insn.b).raw;
                match rt.heap.array_len(arr) {
                    Some(n) => frame.set(insn.a, Slot::of(n as u32)),
                    None => throw_java!(
                        "Ljava/lang/NullPointerException;",
                        "array-length on null".into()
                    ),
                }
            }
            Opcode::FilledNewArray | Opcode::FilledNewArrayRange => {
                let desc = resolve_type(rt, method, insn.idx)?;
                let elem = desc.strip_prefix('[').unwrap_or("I").to_owned();
                let r = rt.heap.alloc_array(&elem, insn.regs.len());
                for (i, &reg) in insn.regs.iter().enumerate() {
                    let v = frame.reg(reg);
                    if let Some(obj) = rt.heap.get_mut(r) {
                        if let ObjKind::Array { data, .. } = &mut obj.kind {
                            data[i] = WideValue {
                                raw: u64::from(v.raw),
                                taint: v.taint,
                            };
                        }
                    }
                }
                frame.last_result = RetVal::Single(Slot::of(r));
            }
            Opcode::FillArrayData => {
                let arr = frame.reg(insn.a).raw;
                let mut storage = None;
                let payload = payload_ref(&code, &mut storage, rt, method, insn.target(pc))?;
                if let Decoded::FillArrayDataPayload {
                    element_width,
                    data,
                } = payload
                {
                    if rt.heap.array_len(arr).is_none() {
                        throw_java!(
                            "Ljava/lang/NullPointerException;",
                            "fill-array-data on null".into()
                        );
                    } else if let Some(obj) = rt.heap.get_mut(arr) {
                        if let ObjKind::Array { data: dst, .. } = &mut obj.kind {
                            let w = *element_width as usize;
                            for (i, chunk) in data.chunks(w).enumerate() {
                                if i >= dst.len() {
                                    break;
                                }
                                let mut v: u64 = 0;
                                for (j, &b) in chunk.iter().enumerate() {
                                    v |= u64::from(b) << (8 * j);
                                }
                                dst[i] = WideValue::of(v);
                            }
                        }
                    }
                } else {
                    return Err(RuntimeError::Internal(
                        "fill-array-data target is not an array payload".into(),
                    ));
                }
            }

            // ---- exceptions ---------------------------------------------------
            Opcode::Throw => {
                let exc = frame.reg(insn.a).raw;
                if exc == 0 {
                    throw_java!("Ljava/lang/NullPointerException;", "throw null".into());
                } else {
                    thrown_obj = Some(exc);
                }
            }

            // ---- unconditional branches ----------------------------------------
            Opcode::Goto | Opcode::Goto16 | Opcode::Goto32 => {
                pc = insn.target(pc);
                continue 'dispatch;
            }

            // ---- switches --------------------------------------------------------
            Opcode::PackedSwitch | Opcode::SparseSwitch => {
                let key = frame.reg(insn.a).as_int();
                let mut storage = None;
                let payload = payload_ref(&code, &mut storage, rt, method, insn.target(pc))?;
                let target = match payload {
                    Decoded::PackedSwitchPayload { first_key, targets } => {
                        let idx = i64::from(key) - i64::from(*first_key);
                        if idx >= 0 && (idx as usize) < targets.len() {
                            Some(targets[idx as usize])
                        } else {
                            None
                        }
                    }
                    Decoded::SparseSwitchPayload { keys, targets } => {
                        keys.iter().position(|&k| k == key).map(|i| targets[i])
                    }
                    _ => {
                        return Err(RuntimeError::Internal(
                            "switch target is not a switch payload".into(),
                        ))
                    }
                };
                if let Some(off) = target {
                    pc = pc.wrapping_add(off as u32);
                    continue 'dispatch;
                }
            }

            // ---- comparisons ------------------------------------------------------
            Opcode::CmplFloat | Opcode::CmpgFloat => {
                let a = frame.reg(insn.b);
                let b = frame.reg(insn.c);
                let (x, y) = (a.as_float(), b.as_float());
                let r = if x.is_nan() || y.is_nan() {
                    if insn.op == Opcode::CmplFloat {
                        -1
                    } else {
                        1
                    }
                } else if x < y {
                    -1
                } else {
                    i32::from(x > y)
                };
                frame.set(
                    insn.a,
                    Slot {
                        raw: r as u32,
                        taint: a.taint | b.taint,
                    },
                );
            }
            Opcode::CmplDouble | Opcode::CmpgDouble => {
                let a = frame.wide(insn.b);
                let b = frame.wide(insn.c);
                let (x, y) = (a.as_double(), b.as_double());
                let r = if x.is_nan() || y.is_nan() {
                    if insn.op == Opcode::CmplDouble {
                        -1
                    } else {
                        1
                    }
                } else if x < y {
                    -1
                } else {
                    i32::from(x > y)
                };
                frame.set(
                    insn.a,
                    Slot {
                        raw: r as u32,
                        taint: a.taint | b.taint,
                    },
                );
            }
            Opcode::CmpLong => {
                let a = frame.wide(insn.b);
                let b = frame.wide(insn.c);
                let r = match a.as_long().cmp(&b.as_long()) {
                    std::cmp::Ordering::Less => -1i32,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                frame.set(
                    insn.a,
                    Slot {
                        raw: r as u32,
                        taint: a.taint | b.taint,
                    },
                );
            }

            // ---- conditional branches ------------------------------------------------
            Opcode::IfEq
            | Opcode::IfNe
            | Opcode::IfLt
            | Opcode::IfGe
            | Opcode::IfGt
            | Opcode::IfLe => {
                let a = frame.reg(insn.a).as_int();
                let b = frame.reg(insn.b).as_int();
                let would_take = match insn.op {
                    Opcode::IfEq => a == b,
                    Opcode::IfNe => a != b,
                    Opcode::IfLt => a < b,
                    Opcode::IfGe => a >= b,
                    Opcode::IfGt => a > b,
                    _ => a <= b,
                };
                let take = obs
                    .override_branch(rt, method, pc, would_take)
                    .unwrap_or(would_take);
                obs.on_branch(rt, method, pc, take);
                if take {
                    pc = insn.target(pc);
                    continue 'dispatch;
                }
            }
            Opcode::IfEqz
            | Opcode::IfNez
            | Opcode::IfLtz
            | Opcode::IfGez
            | Opcode::IfGtz
            | Opcode::IfLez => {
                let a = frame.reg(insn.a).as_int();
                let would_take = match insn.op {
                    Opcode::IfEqz => a == 0,
                    Opcode::IfNez => a != 0,
                    Opcode::IfLtz => a < 0,
                    Opcode::IfGez => a >= 0,
                    Opcode::IfGtz => a > 0,
                    _ => a <= 0,
                };
                let take = obs
                    .override_branch(rt, method, pc, would_take)
                    .unwrap_or(would_take);
                obs.on_branch(rt, method, pc, take);
                if take {
                    pc = insn.target(pc);
                    continue 'dispatch;
                }
            }

            // ---- array element access ---------------------------------------------------
            Opcode::Aget
            | Opcode::AgetObject
            | Opcode::AgetBoolean
            | Opcode::AgetByte
            | Opcode::AgetChar
            | Opcode::AgetShort => match array_read(rt, &frame, insn.b, insn.c) {
                Ok(v) => frame.set(
                    insn.a,
                    Slot {
                        raw: v.raw as u32,
                        taint: v.taint,
                    },
                ),
                Err(t) => thrown = Some(t),
            },
            Opcode::AgetWide => match array_read(rt, &frame, insn.b, insn.c) {
                Ok(v) => frame.set_wide(insn.a, v),
                Err(t) => thrown = Some(t),
            },
            Opcode::Aput
            | Opcode::AputObject
            | Opcode::AputBoolean
            | Opcode::AputByte
            | Opcode::AputChar
            | Opcode::AputShort => {
                let v = frame.reg(insn.a);
                if let Err(t) = array_write(
                    rt,
                    &frame,
                    insn.b,
                    insn.c,
                    WideValue {
                        raw: u64::from(v.raw),
                        taint: v.taint,
                    },
                ) {
                    thrown = Some(t);
                }
            }
            Opcode::AputWide => {
                let v = frame.wide(insn.a);
                if let Err(t) = array_write(rt, &frame, insn.b, insn.c, v) {
                    thrown = Some(t);
                }
            }

            // ---- instance fields -----------------------------------------------------------
            Opcode::Iget
            | Opcode::IgetObject
            | Opcode::IgetBoolean
            | Opcode::IgetByte
            | Opcode::IgetChar
            | Opcode::IgetShort
            | Opcode::IgetWide => {
                let obj = frame.reg(insn.b).raw;
                if obj == 0 {
                    throw_java!("Ljava/lang/NullPointerException;", "iget on null".into());
                } else {
                    let field = resolve_field_ref(rt, method, insn.idx)?;
                    let v = rt.heap.read_field(obj, field).unwrap_or_default();
                    if insn.op == Opcode::IgetWide {
                        frame.set_wide(insn.a, v);
                    } else {
                        frame.set(
                            insn.a,
                            Slot {
                                raw: v.raw as u32,
                                taint: v.taint,
                            },
                        );
                    }
                }
            }
            Opcode::Iput
            | Opcode::IputObject
            | Opcode::IputBoolean
            | Opcode::IputByte
            | Opcode::IputChar
            | Opcode::IputShort
            | Opcode::IputWide => {
                let obj = frame.reg(insn.b).raw;
                if obj == 0 {
                    throw_java!("Ljava/lang/NullPointerException;", "iput on null".into());
                } else {
                    let field = resolve_field_ref(rt, method, insn.idx)?;
                    let v = if insn.op == Opcode::IputWide {
                        frame.wide(insn.a)
                    } else {
                        let s = frame.reg(insn.a);
                        WideValue {
                            raw: u64::from(s.raw),
                            taint: s.taint,
                        }
                    };
                    rt.heap.write_field(obj, field, v);
                }
            }

            // ---- static fields ---------------------------------------------------------------
            Opcode::Sget
            | Opcode::SgetObject
            | Opcode::SgetBoolean
            | Opcode::SgetByte
            | Opcode::SgetChar
            | Opcode::SgetShort
            | Opcode::SgetWide => {
                let field = resolve_field_ref(rt, method, insn.idx)?;
                let v = rt.static_get(obs, field)?;
                if insn.op == Opcode::SgetWide {
                    frame.set_wide(insn.a, v);
                } else {
                    frame.set(
                        insn.a,
                        Slot {
                            raw: v.raw as u32,
                            taint: v.taint,
                        },
                    );
                }
            }
            Opcode::Sput
            | Opcode::SputObject
            | Opcode::SputBoolean
            | Opcode::SputByte
            | Opcode::SputChar
            | Opcode::SputShort
            | Opcode::SputWide => {
                let field = resolve_field_ref(rt, method, insn.idx)?;
                let v = if insn.op == Opcode::SputWide {
                    frame.wide(insn.a)
                } else {
                    let s = frame.reg(insn.a);
                    WideValue {
                        raw: u64::from(s.raw),
                        taint: s.taint,
                    }
                };
                rt.static_put(obs, field, v)?;
            }

            // ---- invocations --------------------------------------------------------------------
            op if op.is_invoke() => {
                let mut argbuf = [Slot::default(); INLINE_ARGS];
                let heap_args: Vec<Slot>;
                let call_args: &[Slot] = if insn.regs.len() <= INLINE_ARGS {
                    for (i, &r) in insn.regs.iter().enumerate() {
                        argbuf[i] = frame.reg(r);
                    }
                    &argbuf[..insn.regs.len()]
                } else {
                    heap_args = insn.regs.iter().map(|&r| frame.reg(r)).collect();
                    &heap_args
                };
                match dispatch_invoke(rt, obs, method, insn, call_args, depth)? {
                    Outcome::Ret(v) => frame.last_result = v,
                    Outcome::Threw(exc) => thrown_obj = Some(exc),
                }
            }

            // ---- unary ops --------------------------------------------------------------------
            Opcode::NegInt => unary_int(&mut frame, insn, |v| v.wrapping_neg()),
            Opcode::NotInt => unary_int(&mut frame, insn, |v| !v),
            Opcode::NegLong => unary_long(&mut frame, insn, |v| v.wrapping_neg()),
            Opcode::NotLong => unary_long(&mut frame, insn, |v| !v),
            Opcode::NegFloat => {
                let v = frame.reg(insn.b);
                frame.set(
                    insn.a,
                    Slot {
                        raw: (-v.as_float()).to_bits(),
                        taint: v.taint,
                    },
                );
            }
            Opcode::NegDouble => {
                let v = frame.wide(insn.b);
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: (-v.as_double()).to_bits(),
                        taint: v.taint,
                    },
                );
            }

            // ---- conversions ------------------------------------------------------------------
            Opcode::IntToLong => {
                let v = frame.reg(insn.b);
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: i64::from(v.as_int()) as u64,
                        taint: v.taint,
                    },
                );
            }
            Opcode::IntToFloat => {
                let v = frame.reg(insn.b);
                frame.set(
                    insn.a,
                    Slot {
                        raw: (v.as_int() as f32).to_bits(),
                        taint: v.taint,
                    },
                );
            }
            Opcode::IntToDouble => {
                let v = frame.reg(insn.b);
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: f64::from(v.as_int()).to_bits(),
                        taint: v.taint,
                    },
                );
            }
            Opcode::LongToInt => {
                let v = frame.wide(insn.b);
                frame.set(
                    insn.a,
                    Slot {
                        raw: v.as_long() as i32 as u32,
                        taint: v.taint,
                    },
                );
            }
            Opcode::LongToFloat => {
                let v = frame.wide(insn.b);
                frame.set(
                    insn.a,
                    Slot {
                        raw: (v.as_long() as f32).to_bits(),
                        taint: v.taint,
                    },
                );
            }
            Opcode::LongToDouble => {
                let v = frame.wide(insn.b);
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: (v.as_long() as f64).to_bits(),
                        taint: v.taint,
                    },
                );
            }
            Opcode::FloatToInt => {
                let v = frame.reg(insn.b);
                frame.set(
                    insn.a,
                    Slot {
                        raw: clamp_f2i(v.as_float()) as u32,
                        taint: v.taint,
                    },
                );
            }
            Opcode::FloatToLong => {
                let v = frame.reg(insn.b);
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: clamp_f2l(f64::from(v.as_float())) as u64,
                        taint: v.taint,
                    },
                );
            }
            Opcode::FloatToDouble => {
                let v = frame.reg(insn.b);
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: f64::from(v.as_float()).to_bits(),
                        taint: v.taint,
                    },
                );
            }
            Opcode::DoubleToInt => {
                let v = frame.wide(insn.b);
                frame.set(
                    insn.a,
                    Slot {
                        raw: clamp_f2i(v.as_double() as f32) as u32,
                        taint: v.taint,
                    },
                );
            }
            Opcode::DoubleToLong => {
                let v = frame.wide(insn.b);
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: clamp_f2l(v.as_double()) as u64,
                        taint: v.taint,
                    },
                );
            }
            Opcode::DoubleToFloat => {
                let v = frame.wide(insn.b);
                frame.set(
                    insn.a,
                    Slot {
                        raw: (v.as_double() as f32).to_bits(),
                        taint: v.taint,
                    },
                );
            }
            Opcode::IntToByte => unary_int(&mut frame, insn, |v| i32::from(v as i8)),
            Opcode::IntToChar => unary_int(&mut frame, insn, |v| i32::from(v as u16)),
            Opcode::IntToShort => unary_int(&mut frame, insn, |v| i32::from(v as i16)),

            // ---- int arithmetic (23x and 2addr) ------------------------------------------------
            op if int_binop(op).is_some() => {
                let f = int_binop(op).expect("guard");
                let two_addr = (op as u8) >= 0xb0;
                let (b, c) = if two_addr {
                    (insn.a, insn.b)
                } else {
                    (insn.b, insn.c)
                };
                let x = frame.reg(b);
                let y = frame.reg(c);
                if matches!(
                    op,
                    Opcode::DivInt | Opcode::RemInt | Opcode::DivInt2addr | Opcode::RemInt2addr
                ) && y.as_int() == 0
                {
                    throw_java!("Ljava/lang/ArithmeticException;", "divide by zero".into());
                } else {
                    frame.set(
                        insn.a,
                        Slot {
                            raw: f(x.as_int(), y.as_int()) as u32,
                            taint: x.taint | y.taint,
                        },
                    );
                }
            }

            // ---- long arithmetic -----------------------------------------------------------------
            op if long_binop(op).is_some() => {
                let f = long_binop(op).expect("guard");
                let two_addr = (op as u8) >= 0xb0;
                let (b, c) = if two_addr {
                    (insn.a, insn.b)
                } else {
                    (insn.b, insn.c)
                };
                let x = frame.wide(b);
                // Shift amounts for longs are int registers.
                let is_shift = matches!(
                    op,
                    Opcode::ShlLong
                        | Opcode::ShrLong
                        | Opcode::UshrLong
                        | Opcode::ShlLong2addr
                        | Opcode::ShrLong2addr
                        | Opcode::UshrLong2addr
                );
                let (y_val, y_taint) = if is_shift {
                    let s = frame.reg(c);
                    (i64::from(s.as_int()), s.taint)
                } else {
                    let w = frame.wide(c);
                    (w.as_long(), w.taint)
                };
                if matches!(
                    op,
                    Opcode::DivLong | Opcode::RemLong | Opcode::DivLong2addr | Opcode::RemLong2addr
                ) && y_val == 0
                {
                    throw_java!("Ljava/lang/ArithmeticException;", "divide by zero".into());
                } else {
                    frame.set_wide(
                        insn.a,
                        WideValue {
                            raw: f(x.as_long(), y_val) as u64,
                            taint: x.taint | y_taint,
                        },
                    );
                }
            }

            // ---- float/double arithmetic ------------------------------------------------------------
            op if float_binop(op).is_some() => {
                let f = float_binop(op).expect("guard");
                let two_addr = (op as u8) >= 0xb0;
                let (b, c) = if two_addr {
                    (insn.a, insn.b)
                } else {
                    (insn.b, insn.c)
                };
                let x = frame.reg(b);
                let y = frame.reg(c);
                frame.set(
                    insn.a,
                    Slot {
                        raw: f(x.as_float(), y.as_float()).to_bits(),
                        taint: x.taint | y.taint,
                    },
                );
            }
            op if double_binop(op).is_some() => {
                let f = double_binop(op).expect("guard");
                let two_addr = (op as u8) >= 0xb0;
                let (b, c) = if two_addr {
                    (insn.a, insn.b)
                } else {
                    (insn.b, insn.c)
                };
                let x = frame.wide(b);
                let y = frame.wide(c);
                frame.set_wide(
                    insn.a,
                    WideValue {
                        raw: f(x.as_double(), y.as_double()).to_bits(),
                        taint: x.taint | y.taint,
                    },
                );
            }

            // ---- literal int arithmetic ----------------------------------------------------------------
            op if lit_binop(op).is_some() => {
                let f = lit_binop(op).expect("guard");
                let x = frame.reg(insn.b);
                let lit = insn.lit as i32;
                if matches!(
                    op,
                    Opcode::DivIntLit16
                        | Opcode::RemIntLit16
                        | Opcode::DivIntLit8
                        | Opcode::RemIntLit8
                ) && lit == 0
                {
                    throw_java!("Ljava/lang/ArithmeticException;", "divide by zero".into());
                } else {
                    frame.set(
                        insn.a,
                        Slot {
                            raw: f(x.as_int(), lit) as u32,
                            taint: x.taint,
                        },
                    );
                }
            }

            other => {
                return Err(RuntimeError::UnimplementedOpcode {
                    opcode: other,
                    dex_pc: pc,
                })
            }
        }

        // ---- exception delivery --------------------------------------------
        if let Some(Thrown::Java(ty, msg)) = thrown {
            let exc = rt.heap.alloc(
                ObjKind::Throwable {
                    type_desc: ty.to_owned(),
                    message: msg,
                },
                0,
            );
            thrown_obj = Some(exc);
        }
        if let Some(exc) = thrown_obj {
            obs.on_exception(rt, method, pc);
            match find_handler(rt, method, pc, exc) {
                Some(handler_pc) => {
                    frame.caught = Some(exc);
                    rt.last_exception = Some(exc);
                    pc = handler_pc;
                    continue 'dispatch;
                }
                None => {
                    if obs.tolerate_exceptions() {
                        // Force execution: clear the exception and step over
                        // the faulting instruction (paper §IV-E).
                        rt.last_exception = None;
                        pc = next_pc;
                        continue 'dispatch;
                    }
                    return Ok(Outcome::Threw(exc));
                }
            }
        }

        pc = next_pc;
    }
}

fn clamp_f2i(v: f32) -> i32 {
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f32 {
        i32::MAX
    } else if v <= i32::MIN as f32 {
        i32::MIN
    } else {
        v as i32
    }
}

fn clamp_f2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

fn unary_int(frame: &mut Frame, insn: &Insn, f: impl Fn(i32) -> i32) {
    let v = frame.reg(insn.b);
    frame.set(
        insn.a,
        Slot {
            raw: f(v.as_int()) as u32,
            taint: v.taint,
        },
    );
}

fn unary_long(frame: &mut Frame, insn: &Insn, f: impl Fn(i64) -> i64) {
    let v = frame.wide(insn.b);
    frame.set_wide(
        insn.a,
        WideValue {
            raw: f(v.as_long()) as u64,
            taint: v.taint,
        },
    );
}

type IntOp = fn(i32, i32) -> i32;
type LongOp = fn(i64, i64) -> i64;

fn int_binop(op: Opcode) -> Option<IntOp> {
    Some(match op {
        Opcode::AddInt | Opcode::AddInt2addr => |a, b| a.wrapping_add(b),
        Opcode::SubInt | Opcode::SubInt2addr => |a, b| a.wrapping_sub(b),
        Opcode::MulInt | Opcode::MulInt2addr => |a, b| a.wrapping_mul(b),
        Opcode::DivInt | Opcode::DivInt2addr => |a, b| a.wrapping_div(b),
        Opcode::RemInt | Opcode::RemInt2addr => |a, b| a.wrapping_rem(b),
        Opcode::AndInt | Opcode::AndInt2addr => |a, b| a & b,
        Opcode::OrInt | Opcode::OrInt2addr => |a, b| a | b,
        Opcode::XorInt | Opcode::XorInt2addr => |a, b| a ^ b,
        Opcode::ShlInt | Opcode::ShlInt2addr => |a, b| a.wrapping_shl(b as u32 & 31),
        Opcode::ShrInt | Opcode::ShrInt2addr => |a, b| a.wrapping_shr(b as u32 & 31),
        Opcode::UshrInt | Opcode::UshrInt2addr => |a, b| ((a as u32) >> (b as u32 & 31)) as i32,
        _ => return None,
    })
}

fn long_binop(op: Opcode) -> Option<LongOp> {
    Some(match op {
        Opcode::AddLong | Opcode::AddLong2addr => |a: i64, b| a.wrapping_add(b),
        Opcode::SubLong | Opcode::SubLong2addr => |a: i64, b| a.wrapping_sub(b),
        Opcode::MulLong | Opcode::MulLong2addr => |a: i64, b| a.wrapping_mul(b),
        Opcode::DivLong | Opcode::DivLong2addr => |a: i64, b| a.wrapping_div(b),
        Opcode::RemLong | Opcode::RemLong2addr => |a: i64, b| a.wrapping_rem(b),
        Opcode::AndLong | Opcode::AndLong2addr => |a, b| a & b,
        Opcode::OrLong | Opcode::OrLong2addr => |a, b| a | b,
        Opcode::XorLong | Opcode::XorLong2addr => |a, b| a ^ b,
        Opcode::ShlLong | Opcode::ShlLong2addr => |a: i64, b| a.wrapping_shl(b as u32 & 63),
        Opcode::ShrLong | Opcode::ShrLong2addr => |a: i64, b| a.wrapping_shr(b as u32 & 63),
        Opcode::UshrLong | Opcode::UshrLong2addr => {
            |a: i64, b| ((a as u64) >> (b as u32 & 63)) as i64
        }
        _ => return None,
    })
}

fn float_binop(op: Opcode) -> Option<fn(f32, f32) -> f32> {
    Some(match op {
        Opcode::AddFloat | Opcode::AddFloat2addr => |a, b| a + b,
        Opcode::SubFloat | Opcode::SubFloat2addr => |a, b| a - b,
        Opcode::MulFloat | Opcode::MulFloat2addr => |a, b| a * b,
        Opcode::DivFloat | Opcode::DivFloat2addr => |a, b| a / b,
        Opcode::RemFloat | Opcode::RemFloat2addr => |a, b| a % b,
        _ => return None,
    })
}

fn double_binop(op: Opcode) -> Option<fn(f64, f64) -> f64> {
    Some(match op {
        Opcode::AddDouble | Opcode::AddDouble2addr => |a, b| a + b,
        Opcode::SubDouble | Opcode::SubDouble2addr => |a, b| a - b,
        Opcode::MulDouble | Opcode::MulDouble2addr => |a, b| a * b,
        Opcode::DivDouble | Opcode::DivDouble2addr => |a, b| a / b,
        Opcode::RemDouble | Opcode::RemDouble2addr => |a, b| a % b,
        _ => return None,
    })
}

fn lit_binop(op: Opcode) -> Option<IntOp> {
    Some(match op {
        Opcode::AddIntLit16 | Opcode::AddIntLit8 => |a, b| a.wrapping_add(b),
        Opcode::RsubInt | Opcode::RsubIntLit8 => |a, b| b.wrapping_sub(a),
        Opcode::MulIntLit16 | Opcode::MulIntLit8 => |a, b| a.wrapping_mul(b),
        Opcode::DivIntLit16 | Opcode::DivIntLit8 => |a, b| a.wrapping_div(b),
        Opcode::RemIntLit16 | Opcode::RemIntLit8 => |a, b| a.wrapping_rem(b),
        Opcode::AndIntLit16 | Opcode::AndIntLit8 => |a, b| a & b,
        Opcode::OrIntLit16 | Opcode::OrIntLit8 => |a, b| a | b,
        Opcode::XorIntLit16 | Opcode::XorIntLit8 => |a, b| a ^ b,
        Opcode::ShlIntLit8 => |a, b| a.wrapping_shl(b as u32 & 31),
        Opcode::ShrIntLit8 => |a, b| a.wrapping_shr(b as u32 & 31),
        Opcode::UshrIntLit8 => |a, b| ((a as u32) >> (b as u32 & 31)) as i32,
        _ => return None,
    })
}

enum ArrayFault {}

fn array_read(
    rt: &Runtime,
    frame: &Frame,
    arr_reg: u32,
    idx_reg: u32,
) -> std::result::Result<WideValue, Thrown> {
    let _phantom: Option<ArrayFault> = None;
    let arr = frame.reg(arr_reg).raw;
    let idx = frame.reg(idx_reg).as_int();
    match rt.heap.get(arr).map(|o| &o.kind) {
        Some(ObjKind::Array { data, .. }) => {
            if idx < 0 || idx as usize >= data.len() {
                Err(Thrown::Java(
                    "Ljava/lang/ArrayIndexOutOfBoundsException;",
                    format!("index {idx}, length {}", data.len()),
                ))
            } else {
                Ok(data[idx as usize])
            }
        }
        _ => Err(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "array access on null".into(),
        )),
    }
}

fn array_write(
    rt: &mut Runtime,
    frame: &Frame,
    arr_reg: u32,
    idx_reg: u32,
    value: WideValue,
) -> std::result::Result<(), Thrown> {
    let arr = frame.reg(arr_reg).raw;
    let idx = frame.reg(idx_reg).as_int();
    match rt.heap.get_mut(arr).map(|o| &mut o.kind) {
        Some(ObjKind::Array { data, .. }) => {
            if idx < 0 || idx as usize >= data.len() {
                Err(Thrown::Java(
                    "Ljava/lang/ArrayIndexOutOfBoundsException;",
                    format!("index {idx}, length {}", data.len()),
                ))
            } else {
                data[idx as usize] = value;
                Ok(())
            }
        }
        _ => Err(Thrown::Java(
            "Ljava/lang/NullPointerException;",
            "array access on null".into(),
        )),
    }
}

// ---- operand resolution against the method's dex table ----------------------

fn source_of(rt: &Runtime, method: MethodId) -> Result<usize> {
    rt.method_source(method).ok_or_else(|| {
        RuntimeError::Internal(format!(
            "no dex source for bytecode method {}",
            rt.method_name(method)
        ))
    })
}

fn resolve_string(rt: &Runtime, method: MethodId, idx: u32) -> Result<String> {
    let table = rt.dex_table(source_of(rt, method)?);
    table
        .strings
        .get(idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("string index {idx} out of range")))
}

fn resolve_type(rt: &Runtime, method: MethodId, idx: u32) -> Result<String> {
    let table = rt.dex_table(source_of(rt, method)?);
    table
        .types
        .get(idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("type index {idx} out of range")))
}

fn resolve_field_ref(
    rt: &mut Runtime,
    method: MethodId,
    idx: u32,
) -> Result<crate::class::FieldId> {
    let table = rt.dex_table(source_of(rt, method)?);
    let (class_desc, name, type_desc) = table
        .fields
        .get(idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("field index {idx} out of range")))?;
    let class = match rt.find_class(&class_desc) {
        Some(c) => c,
        None => rt.ensure_class_stub(&class_desc),
    };
    match rt.resolve_field(class, &name) {
        Some(f) => Ok(f),
        // Framework fields appear on demand (e.g. instrument-class guards).
        None => Ok(rt.register_field(&class_desc, &name, &type_desc)),
    }
}

fn dispatch_invoke(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    caller: MethodId,
    insn: &Insn,
    args: &[Slot],
    depth: usize,
) -> Result<Outcome> {
    let table = rt.dex_table(source_of(rt, caller)?);
    let (class_desc, sig) = table
        .methods
        .get(insn.idx as usize)
        .cloned()
        .ok_or_else(|| RuntimeError::Internal(format!("method index {} out of range", insn.idx)))?;

    let is_static = matches!(insn.op, Opcode::InvokeStatic | Opcode::InvokeStaticRange);
    let is_virtual = matches!(
        insn.op,
        Opcode::InvokeVirtual
            | Opcode::InvokeVirtualRange
            | Opcode::InvokeInterface
            | Opcode::InvokeInterfaceRange
    );

    let start_class = if is_virtual {
        let receiver = args.first().copied().unwrap_or_default().raw;
        if receiver == 0 {
            let exc = rt.heap.alloc(
                ObjKind::Throwable {
                    type_desc: "Ljava/lang/NullPointerException;".to_owned(),
                    message: format!("invoke on null receiver: {class_desc}->{}", sig.name),
                },
                0,
            );
            return Ok(Outcome::Threw(exc));
        }
        runtime_class_of_obj(rt, receiver).unwrap_or_else(|| rt.ensure_class_stub(&class_desc))
    } else {
        match rt.find_class(&class_desc) {
            Some(c) => c,
            None => rt.ensure_class_stub(&class_desc),
        }
    };

    let resolved = rt.resolve_method(start_class, &sig).or_else(|| {
        // Fall back to the statically named class (e.g. receiver is a
        // stub but the declaration exists elsewhere).
        rt.find_class(&class_desc)
            .and_then(|c| rt.resolve_method(c, &sig))
    });
    let target = match resolved {
        Some(t) => t,
        None => {
            // Framework fallback: a native registered under the statically
            // named class (e.g. `Context.getSystemService` invoked on an
            // `Activity` receiver) is callable without stub wiring.
            let key = native_key(&class_desc, &sig.name, &sig.descriptor);
            if let Some(f) = rt.natives.lookup(&key) {
                rt.stats.native_calls += 1;
                return match f(rt, obs, args) {
                    Ok(v) => Ok(Outcome::Ret(v)),
                    Err(RuntimeError::UncaughtException { type_desc, message }) => {
                        let exc = rt.heap.alloc(ObjKind::Throwable { type_desc, message }, 0);
                        Ok(Outcome::Threw(exc))
                    }
                    Err(e) => Err(e),
                };
            }
            return Err(RuntimeError::MethodNotFound(format!(
                "{class_desc}->{}{}",
                sig.name, sig.descriptor
            )));
        }
    };

    if is_static {
        let class = rt.method(target).class;
        rt.ensure_initialized(obs, class)?;
    }
    execute_inner(rt, obs, target, args, depth + 1)
}

fn find_handler(rt: &mut Runtime, method: MethodId, pc: u32, exc: ObjRef) -> Option<u32> {
    let exc_desc = describe_throwable(rt, exc).0;
    let MethodImpl::Bytecode {
        tries, handlers, ..
    } = &rt.method(method).body
    else {
        return None;
    };
    let tries = tries.clone();
    let handlers = handlers.clone();
    let source = rt.method_source(method)?;
    for t in &tries {
        if pc < t.start_addr || pc >= t.start_addr + u32::from(t.insn_count) {
            continue;
        }
        let Some(handler) = handlers.get(t.handler_index) else {
            continue;
        };
        for clause in &handler.catches {
            let catch_desc = rt
                .dex_table(source)
                .types
                .get(clause.type_idx as usize)
                .cloned();
            let Some(catch_desc) = catch_desc else {
                continue;
            };
            // Match exact type, or catch broad throwable supertypes.
            let matches = catch_desc == exc_desc
                || catch_desc == "Ljava/lang/Throwable;"
                || catch_desc == "Ljava/lang/Exception;"
                || catch_desc == "Ljava/lang/RuntimeException;";
            if matches {
                return Some(clause.addr);
            }
        }
        if let Some(addr) = handler.catch_all_addr {
            return Some(addr);
        }
    }
    None
}
