//! The object heap: instances, arrays, strings, and reflection objects.

use std::collections::HashMap;

use crate::class::{ClassId, FieldId, MethodId};
use crate::value::WideValue;

/// An object handle. `0` is the null reference.
pub type ObjRef = u32;

/// The payload of a heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjKind {
    /// A class instance with per-field 64-bit storage.
    Instance {
        /// The instance's runtime class.
        class: ClassId,
        /// Field values; absent entries read as zero/null.
        fields: HashMap<FieldId, WideValue>,
    },
    /// An array of 64-bit element storage (category narrowing is applied by
    /// the typed `aget`/`aput` instructions).
    Array {
        /// Element type descriptor (e.g. `"I"` or `"Ljava/lang/String;"`).
        elem_desc: String,
        /// Element storage.
        data: Vec<WideValue>,
    },
    /// A `java.lang.String`.
    Str(String),
    /// A `java.lang.Class` reflection object.
    Class(ClassId),
    /// A `java.lang.reflect.Method` reflection object.
    Method(MethodId),
    /// A `java.lang.Throwable`-like exception object.
    Throwable {
        /// The exception's type descriptor.
        type_desc: String,
        /// Detail message.
        message: String,
    },
}

/// One heap cell: payload plus an object-level taint used for objects whose
/// contents are opaque (strings in particular).
#[derive(Debug, Clone, PartialEq)]
pub struct HeapObject {
    /// The object payload.
    pub kind: ObjKind,
    /// Object-level taint mask.
    pub taint: u32,
}

/// A growable heap of [`HeapObject`]s addressed by [`ObjRef`] handles.
///
/// # Example
///
/// ```
/// use dexlego_runtime::heap::{Heap, ObjKind};
/// let mut heap = Heap::new();
/// let h = heap.alloc_string("imei-123".to_owned(), 0);
/// assert_eq!(heap.as_string(h), Some("imei-123"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Heap {
    objects: Vec<HeapObject>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of live objects (handles are never reclaimed).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates an object, returning its non-null handle.
    pub fn alloc(&mut self, kind: ObjKind, taint: u32) -> ObjRef {
        self.objects.push(HeapObject { kind, taint });
        self.objects.len() as ObjRef
    }

    /// Allocates a string object.
    pub fn alloc_string(&mut self, s: String, taint: u32) -> ObjRef {
        self.alloc(ObjKind::Str(s), taint)
    }

    /// Allocates an instance of `class` with zeroed fields.
    pub fn alloc_instance(&mut self, class: ClassId) -> ObjRef {
        self.alloc(
            ObjKind::Instance {
                class,
                fields: HashMap::new(),
            },
            0,
        )
    }

    /// Allocates an array of `len` zeroed elements.
    pub fn alloc_array(&mut self, elem_desc: &str, len: usize) -> ObjRef {
        self.alloc(
            ObjKind::Array {
                elem_desc: elem_desc.to_owned(),
                data: vec![WideValue::default(); len],
            },
            0,
        )
    }

    /// The object behind `r`, or `None` for null/dangling handles.
    pub fn get(&self, r: ObjRef) -> Option<&HeapObject> {
        if r == 0 {
            return None;
        }
        self.objects.get(r as usize - 1)
    }

    /// Mutable access to the object behind `r`.
    pub fn get_mut(&mut self, r: ObjRef) -> Option<&mut HeapObject> {
        if r == 0 {
            return None;
        }
        self.objects.get_mut(r as usize - 1)
    }

    /// The string contents if `r` is a string object.
    pub fn as_string(&self, r: ObjRef) -> Option<&str> {
        match self.get(r) {
            Some(HeapObject {
                kind: ObjKind::Str(s),
                ..
            }) => Some(s),
            _ => None,
        }
    }

    /// The runtime class if `r` is an instance.
    pub fn instance_class(&self, r: ObjRef) -> Option<ClassId> {
        match self.get(r) {
            Some(HeapObject {
                kind: ObjKind::Instance { class, .. },
                ..
            }) => Some(*class),
            _ => None,
        }
    }

    /// Array length if `r` is an array.
    pub fn array_len(&self, r: ObjRef) -> Option<usize> {
        match self.get(r) {
            Some(HeapObject {
                kind: ObjKind::Array { data, .. },
                ..
            }) => Some(data.len()),
            _ => None,
        }
    }

    /// Reads an instance field (zero/null if never written).
    pub fn read_field(&self, r: ObjRef, field: FieldId) -> Option<WideValue> {
        match self.get(r) {
            Some(HeapObject {
                kind: ObjKind::Instance { fields, .. },
                ..
            }) => Some(fields.get(&field).copied().unwrap_or_default()),
            _ => None,
        }
    }

    /// Writes an instance field.
    pub fn write_field(&mut self, r: ObjRef, field: FieldId, value: WideValue) -> bool {
        match self.get_mut(r) {
            Some(HeapObject {
                kind: ObjKind::Instance { fields, .. },
                ..
            }) => {
                fields.insert(field, value);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_reads_as_none() {
        let heap = Heap::new();
        assert!(heap.get(0).is_none());
        assert!(heap.as_string(0).is_none());
    }

    #[test]
    fn handles_are_one_based_and_stable() {
        let mut heap = Heap::new();
        let a = heap.alloc_string("a".into(), 0);
        let b = heap.alloc_string("b".into(), 0);
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(heap.as_string(a), Some("a"));
        assert_eq!(heap.as_string(b), Some("b"));
    }

    #[test]
    fn instance_fields_default_to_zero() {
        let mut heap = Heap::new();
        let obj = heap.alloc_instance(ClassId(3));
        let f = FieldId(7);
        assert_eq!(heap.read_field(obj, f), Some(WideValue::default()));
        assert!(heap.write_field(obj, f, WideValue::from_long(42)));
        assert_eq!(heap.read_field(obj, f).unwrap().as_long(), 42);
    }

    #[test]
    fn field_access_on_non_instance_fails() {
        let mut heap = Heap::new();
        let s = heap.alloc_string("x".into(), 0);
        assert!(heap.read_field(s, FieldId(0)).is_none());
        assert!(!heap.write_field(s, FieldId(0), WideValue::default()));
    }

    #[test]
    fn arrays_track_length() {
        let mut heap = Heap::new();
        let arr = heap.alloc_array("I", 5);
        assert_eq!(heap.array_len(arr), Some(5));
        assert_eq!(heap.array_len(0), None);
    }
}
