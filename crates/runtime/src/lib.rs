#![forbid(unsafe_code)]

//! A simulated Android Runtime (ART).
//!
//! This crate plays the role of the modified ART that the DexLego paper
//! instruments on a real device: a class linker that loads [`DexFile`]s, a
//! heap of objects/arrays/strings, and a switch-dispatch register-machine
//! interpreter executing Dalvik bytecode one instruction at a time, with a
//! `dex_pc` program counter exactly as in ART's `ExecuteSwitchImpl`.
//!
//! Everything DexLego needs to observe is exposed through the
//! [`observer::RuntimeObserver`] trait: class loading and initialisation,
//! static-value installation, method entry/exit, per-instruction execution
//! (with the raw code units, which is what the collection tree compares),
//! branch outcomes, reflective-call resolution, and exception flow.
//! Observers can also *steer* execution — overriding branch outcomes (force
//! execution) and tolerating unhandled exceptions.
//!
//! Self-modifying code is supported the same way it exists on Android: a
//! registered native method receives `&mut Runtime` and may rewrite the
//! in-memory code units of any loaded method. Mutation bumps the method's
//! *code epoch*, invalidating its entry in the predecoded code cache
//! ([`code_cache`]); the interpreter re-validates the epoch before every
//! instruction, so modifications take effect immediately even mid-frame.
//!
//! [`DexFile`]: dexlego_dex::DexFile
//!
//! # Example
//!
//! ```
//! use dexlego_runtime::{Runtime, observer::NullObserver};
//! use dexlego_dex::{DexFile, ClassDef, CodeItem, AccessFlags, file::EncodedMethod};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dex = DexFile::new();
//! let t = dex.intern_type("La;");
//! let m = dex.intern_method("La;", "four", "I", &[]);
//! let mut def = ClassDef::new(t);
//! def.class_data.as_mut().unwrap().direct_methods.push(EncodedMethod {
//!     method_idx: m,
//!     access: AccessFlags::PUBLIC | AccessFlags::STATIC,
//!     // const/4 v0, #4 ; return v0
//!     code: Some(CodeItem::new(1, 0, 0, vec![0x4012, 0x000f])),
//! });
//! dex.add_class(def);
//!
//! let mut rt = Runtime::new();
//! rt.load_dex(&dex, "app")?;
//! let mut obs = NullObserver;
//! let result = rt.call_static(&mut obs, "La;", "four", "()I", &[])?;
//! assert_eq!(result.as_int(), Some(4));
//! # Ok(())
//! # }
//! ```

pub mod class;
pub mod code_cache;
pub mod events;
pub mod heap;
pub mod interp;
pub mod linker;
pub mod natives;
pub mod observer;
pub mod runtime;
pub mod value;

pub use class::{ClassId, FieldId, MethodId};
pub use events::RuntimeEvent;
pub use heap::{Heap, ObjKind, ObjRef};
pub use observer::RuntimeObserver;
pub use runtime::{Env, FetchMode, Runtime, RuntimeError};
pub use value::{RetVal, Slot};
