//! The predecoded code cache.
//!
//! On first execution of a bytecode method the interpreter decodes the whole
//! instruction stream once into a [`PredecodedMethod`] and caches it here;
//! subsequent executions fetch borrowed `&Insn` / `&[u16]` views out of the
//! cache instead of re-decoding per instruction (the same per-instruction
//! tax ART avoids with its predecoded/mterp representation). Each entry
//! carries a [`QuickCells`] overlay: per-instruction dispatch bytes the
//! interpreter rewrites in place as instructions quicken, superinstruction
//! heads, and pre-resolved switch tables.
//!
//! Because method bodies are mutable at runtime (self-modifying natives,
//! packer shells), every mutable access to a method bumps a per-method
//! *code epoch*; a cache entry is valid only for the epoch it was built at.
//! The interpreter re-checks the epoch every step, so a body rewritten
//! mid-frame is re-predecoded before the next instruction executes —
//! self-modifying code behaves exactly as with per-step fetching. An epoch
//! bump also *de-quickens*: the stale entry (and every resolved cell in its
//! overlay) is discarded immediately, and the count of discarded quickened
//! cells is accumulated in [`CodeCache::dequickens`].

use std::collections::HashMap;
use std::sync::Arc;

use dexlego_dalvik::quick::QuickCells;
use dexlego_dalvik::{predecode, PredecodedMethod};

use crate::class::MethodId;

/// One cache slot: the outcome of predecoding a method at a given epoch.
#[derive(Debug, Clone)]
enum Entry {
    /// Predecoding succeeded; serve fetches from this representation and
    /// quicken through its overlay.
    Pre(Arc<PredecodedMethod>, Arc<QuickCells>),
    /// Predecoding failed (stream not linearly decodable); the interpreter
    /// uses per-step fetching until the body changes again.
    Unpredecodable,
}

/// Per-runtime cache of predecoded method bodies with epoch invalidation.
#[derive(Debug, Default)]
pub struct CodeCache {
    /// Cache entries tagged with the epoch they were built at.
    entries: HashMap<MethodId, (u64, Entry)>,
    /// Per-method code epoch, bumped on every mutable method access.
    /// Indexed by `MethodId`; methods beyond the end are at epoch 0.
    epochs: Vec<u64>,
    /// Number of full-method predecodes performed (cache misses + rebuilds).
    pub builds: u64,
    /// Number of quickened cells discarded by epoch bumps (self-modifying
    /// code forcing de-quickening).
    pub dequickens: u64,
}

impl CodeCache {
    /// The current code epoch of `method`.
    #[inline]
    pub fn epoch(&self, method: MethodId) -> u64 {
        self.epochs.get(method.0).copied().unwrap_or(0)
    }

    /// Records that `method`'s body may have been mutated, invalidating any
    /// cached predecoded representation. The stale entry is dropped on the
    /// spot and its runtime-quickened cells are charged to
    /// [`Self::dequickens`].
    pub fn bump_epoch(&mut self, method: MethodId) {
        if method.0 >= self.epochs.len() {
            self.epochs.resize(method.0 + 1, 0);
        }
        self.epochs[method.0] += 1;
        if let Some((_, Entry::Pre(_, cells))) = self.entries.remove(&method) {
            self.dequickens += u64::from(cells.quickened_count());
        }
    }

    /// The cached representation for `method` if it is valid at the current
    /// epoch — read-only: never builds. Observers holding `&Runtime` use
    /// this to serve payload slices without re-decoding.
    pub fn get(&self, method: MethodId) -> Option<&Arc<PredecodedMethod>> {
        match self.entries.get(&method) {
            Some((epoch, Entry::Pre(pre, _))) if *epoch == self.epoch(method) => Some(pre),
            _ => None,
        }
    }

    /// The predecoded representation of `method` whose body is `units`,
    /// building (or rebuilding) it if the cached one is missing or stale.
    /// Returns `None` if the stream cannot be predecoded — the caller must
    /// fall back to per-step fetching; the negative outcome is cached too,
    /// so an unpredecodable body is not re-attempted every frame.
    pub fn get_or_build(
        &mut self,
        method: MethodId,
        units: &[u16],
    ) -> Option<(Arc<PredecodedMethod>, Arc<QuickCells>)> {
        let epoch = self.epoch(method);
        if let Some((cached_epoch, entry)) = self.entries.get(&method) {
            if *cached_epoch == epoch {
                return match entry {
                    Entry::Pre(pre, cells) => Some((Arc::clone(pre), Arc::clone(cells))),
                    Entry::Unpredecodable => None,
                };
            }
        }
        self.builds += 1;
        let (entry, result) = match predecode(units) {
            Ok(pre) => {
                let cells = Arc::new(QuickCells::build(&pre));
                let pre = Arc::new(pre);
                (
                    Entry::Pre(Arc::clone(&pre), Arc::clone(&cells)),
                    Some((pre, cells)),
                )
            }
            Err(_) => (Entry::Unpredecodable, None),
        };
        self.entries.insert(method, (epoch, entry));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dexlego_dalvik::quick;

    #[test]
    fn build_is_cached_until_epoch_bump() {
        let mut cache = CodeCache::default();
        let m = MethodId(3);
        let code = [0x000e]; // return-void
        let (a, _) = cache.get_or_build(m, &code).unwrap();
        let (b, _) = cache.get_or_build(m, &code).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds, 1);
        assert!(cache.get(m).is_some());

        cache.bump_epoch(m);
        assert!(cache.get(m).is_none(), "stale entry must not be served");
        let (c, _) = cache.get_or_build(m, &code).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.builds, 2);
    }

    #[test]
    fn unpredecodable_outcome_is_cached() {
        let mut cache = CodeCache::default();
        let m = MethodId(0);
        let garbage = [0x000e, 0x0040]; // return-void, unknown opcode
        assert!(cache.get_or_build(m, &garbage).is_none());
        assert!(cache.get_or_build(m, &garbage).is_none());
        assert_eq!(cache.builds, 1, "failure must not be re-attempted");
        assert!(cache.get(m).is_none());
    }

    #[test]
    fn epochs_default_to_zero_past_end() {
        let cache = CodeCache::default();
        assert_eq!(cache.epoch(MethodId(99)), 0);
    }

    #[test]
    fn epoch_bump_charges_quickened_cells_to_dequickens() {
        let mut cache = CodeCache::default();
        let m = MethodId(1);
        // iget v0, v0, field@0 ; return-void
        let code = [0x0052, 0x0000, 0x000e];
        let (_, cells) = cache.get_or_build(m, &code).unwrap();
        assert!(cells.quicken(0, quick::IGET_QUICK, 5));
        assert_eq!(cache.dequickens, 0);

        cache.bump_epoch(m);
        assert_eq!(cache.dequickens, 1, "discarded quickened cell counted");
        // A bump with nothing quickened (or nothing cached) adds nothing.
        cache.bump_epoch(m);
        assert_eq!(cache.dequickens, 1);
        let (_, fresh) = cache.get_or_build(m, &code).unwrap();
        assert_eq!(fresh.quickened_count(), 0, "rebuild starts de-quickened");
    }
}
