//! The [`Runtime`] — owner of linked classes, heap, natives, and the event
//! log — plus name resolution and class initialisation.

use std::collections::HashMap;
use std::sync::Arc;

use dexlego_dex::AccessFlags;

use crate::class::{
    ClassId, FieldId, MethodId, MethodImpl, RuntimeClass, RuntimeField, RuntimeMethod, SigKey,
};
use crate::code_cache::CodeCache;
use crate::events::EventLog;
use crate::heap::{Heap, ObjRef};
use crate::natives::NativeRegistry;
use crate::observer::RuntimeObserver;
use crate::value::{RetVal, Slot, WideValue};

/// Hard (non-Java-exception) runtime failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A class descriptor could not be resolved.
    ClassNotFound(String),
    /// A method signature could not be resolved.
    MethodNotFound(String),
    /// A field could not be resolved.
    FieldNotFound(String),
    /// An instruction stream failed to decode.
    Dalvik(dexlego_dalvik::DalvikError),
    /// A DEX model was inconsistent.
    Dex(dexlego_dex::DexError),
    /// A Java exception propagated out of the outermost frame.
    UncaughtException {
        /// Exception type descriptor.
        type_desc: String,
        /// Detail message.
        message: String,
    },
    /// The per-execution instruction budget was exhausted (runaway loop).
    BudgetExhausted,
    /// Interpreter frame depth limit exceeded.
    StackOverflow,
    /// A native method had no registered implementation.
    NativeMissing(String),
    /// The interpreter reached an opcode it does not implement.
    UnimplementedOpcode {
        /// The decoded opcode.
        opcode: dexlego_dalvik::Opcode,
        /// Code-unit offset of the instruction within its method.
        dex_pc: u32,
    },
    /// Internal invariant violation.
    Internal(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ClassNotFound(d) => write!(f, "class not found: {d}"),
            RuntimeError::MethodNotFound(m) => write!(f, "method not found: {m}"),
            RuntimeError::FieldNotFound(x) => write!(f, "field not found: {x}"),
            RuntimeError::Dalvik(e) => write!(f, "bytecode error: {e}"),
            RuntimeError::Dex(e) => write!(f, "dex error: {e}"),
            RuntimeError::UncaughtException { type_desc, message } => {
                write!(f, "uncaught exception {type_desc}: {message}")
            }
            RuntimeError::BudgetExhausted => write!(f, "instruction budget exhausted"),
            RuntimeError::StackOverflow => write!(f, "interpreter stack overflow"),
            RuntimeError::NativeMissing(m) => write!(f, "native method not registered: {m}"),
            RuntimeError::UnimplementedOpcode { opcode, dex_pc } => write!(
                f,
                "unimplemented opcode {} ({:#04x}) at {dex_pc:#06x}",
                opcode.mnemonic(),
                *opcode as u8
            ),
            RuntimeError::Internal(m) => write!(f, "internal runtime error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<dexlego_dalvik::DalvikError> for RuntimeError {
    fn from(e: dexlego_dalvik::DalvikError) -> RuntimeError {
        RuntimeError::Dalvik(e)
    }
}

impl From<dexlego_dex::DexError> for RuntimeError {
    fn from(e: dexlego_dex::DexError) -> RuntimeError {
        RuntimeError::Dex(e)
    }
}

/// Convenience alias for results with [`RuntimeError`].
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Per-DEX-source constant-pool resolution table: maps the indices embedded
/// in a loaded DEX's instructions to symbolic names resolvable at runtime
/// (how ART's dex caches behave).
#[derive(Debug, Clone, Default)]
pub struct DexTable {
    /// String pool.
    pub strings: Vec<String>,
    /// Type descriptors.
    pub types: Vec<String>,
    /// Method references: (class descriptor, signature).
    pub methods: Vec<(String, SigKey)>,
    /// Field references: (class descriptor, field name, type descriptor).
    pub fields: Vec<(String, String, String)>,
    /// Tag this table was loaded under.
    pub source: String,
}

/// How the interpreter fetches and dispatches instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchMode {
    /// Serve instructions from the predecoded code cache and dispatch
    /// through the function-pointer table, rewriting field/method/string
    /// accesses to pre-resolved quickened forms and executing fused
    /// superinstructions (the fast path).
    #[default]
    Quickened,
    /// Predecoded fetching with the plain match-based dispatcher: no
    /// quickening, no superinstructions. Kept as the mid-tier baseline for
    /// differential tests and the `bench --bin interp` comparison.
    Predecoded,
    /// Decode every instruction on every execution (the pre-cache
    /// behaviour); kept as a conformance baseline for differential tests
    /// and the `bench --bin interp` comparison.
    DecodePerStep,
}

/// Environment knobs that samples can probe (anti-analysis behaviours).
#[derive(Debug, Clone)]
pub struct Env {
    /// Whether the runtime reports itself as an emulator
    /// (`EmulatorDetection1` probes this).
    pub is_emulator: bool,
    /// Whether the device is a tablet (the paper's one missed flow leaks
    /// only on tablets).
    pub is_tablet: bool,
    /// Maximum instructions per outermost execution.
    pub insn_budget: u64,
    /// Maximum interpreter frame depth.
    pub max_depth: usize,
    /// Instruction fetch strategy.
    pub fetch_mode: FetchMode,
}

impl Default for Env {
    fn default() -> Env {
        Env {
            is_emulator: false,
            is_tablet: false,
            insn_budget: 50_000_000,
            // Each interpreter frame is a sizeable recursive Rust call;
            // 64 nested frames stay well inside a 2 MiB test-thread stack
            // while exceeding any call depth the corpus needs.
            max_depth: 64,
            fetch_mode: FetchMode::Quickened,
        }
    }
}

/// Execution statistics for the performance experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Total bytecode instructions interpreted.
    pub insns: u64,
    /// Total method frames entered.
    pub frames: u64,
    /// Total native invocations.
    pub native_calls: u64,
    /// Full-method predecodes performed by the code cache (misses and
    /// invalidation rebuilds; steady state stays flat).
    pub predecodes: u64,
    /// Instructions rewritten in place to a pre-resolved quickened form
    /// (each cell quickens at most once per predecode).
    pub quickens: u64,
    /// Quickened cells discarded because a method body was mutated
    /// (self-modifying code forcing de-quickening).
    pub dequickens: u64,
    /// Superinstruction executions: each hit dispatches one fused pair
    /// (two bytecode instructions) through a single handler.
    pub superinsn_hits: u64,
}

/// A callback registered with the framework (e.g. an `OnClickListener`),
/// invocable later by the event driver.
#[derive(Debug, Clone)]
pub struct Callback {
    /// Receiver object.
    pub receiver: ObjRef,
    /// Bound method.
    pub method: MethodId,
    /// Framework slot name, e.g. `"onClick"`.
    pub kind: String,
}

/// The simulated Android Runtime. See the crate docs for an overview.
pub struct Runtime {
    pub(crate) classes: Vec<RuntimeClass>,
    pub(crate) methods: Vec<RuntimeMethod>,
    pub(crate) fields: Vec<RuntimeField>,
    pub(crate) class_by_desc: HashMap<String, ClassId>,
    pub(crate) dex_tables: Vec<DexTable>,
    /// The object heap.
    pub heap: Heap,
    /// Registered native methods.
    pub natives: NativeRegistry,
    /// Security event log.
    pub log: EventLog,
    /// Environment configuration.
    pub env: Env,
    /// Framework-registered callbacks awaiting events.
    pub callbacks: Vec<Callback>,
    /// Execution statistics.
    pub stats: ExecStats,
    /// Current framework-callback nesting depth.
    pub callback_depth: u32,
    pub(crate) interned: HashMap<String, ObjRef>,
    pub(crate) next_taint_bit: u32,
    pub(crate) last_exception: Option<ObjRef>,
    /// DEX source index for each bytecode method (operand resolution).
    pub(crate) method_source: HashMap<MethodId, usize>,
    /// StringBuilder backing buffers (content, taint) keyed by object.
    pub sb_buffers: HashMap<ObjRef, (String, u32)>,
    /// Interpreter call stack: (method, current dex_pc) per frame. Natives
    /// read this to learn their call site (reflection resolution).
    pub exec_stack: Vec<(MethodId, u32)>,
    /// Simulated external file storage (path → (content handle taint)).
    pub external_files: HashMap<String, (String, u32)>,
    /// Xorshift state backing the `Lcom/dexlego/Input;` fuzz-input native.
    pub input_state: u64,
    /// Inter-component extras store backing `Lcom/dexlego/Icc;` (key →
    /// (value, taint)).
    pub icc_extras: HashMap<String, (String, u32)>,
    /// `stats.insns` value when the current outermost execution began; the
    /// instruction budget is enforced per outermost execution.
    pub(crate) budget_start: u64,
    /// Predecoded method bodies with epoch invalidation.
    pub(crate) code_cache: CodeCache,
    /// Retired register files, reused by new frames so recursive invokes
    /// stop allocating fresh `Vec<Slot>` storage.
    pub(crate) frame_pool: Vec<Vec<Slot>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("classes", &self.classes.len())
            .field("methods", &self.methods.len())
            .field("fields", &self.fields.len())
            .field("heap", &self.heap.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::new()
    }
}

impl Runtime {
    /// Creates a runtime with the framework natives registered.
    pub fn new() -> Runtime {
        let mut rt = Runtime {
            classes: Vec::new(),
            methods: Vec::new(),
            fields: Vec::new(),
            class_by_desc: HashMap::new(),
            dex_tables: Vec::new(),
            heap: Heap::new(),
            natives: NativeRegistry::new(),
            log: EventLog::new(),
            env: Env::default(),
            callbacks: Vec::new(),
            stats: ExecStats::default(),
            callback_depth: 0,
            interned: HashMap::new(),
            next_taint_bit: 0,
            last_exception: None,
            method_source: HashMap::new(),
            sb_buffers: HashMap::new(),
            exec_stack: Vec::new(),
            external_files: HashMap::new(),
            input_state: 0x2545_f491_4f6c_dd1d,
            icc_extras: HashMap::new(),
            budget_start: 0,
            code_cache: CodeCache::default(),
            frame_pool: Vec::new(),
        };
        crate::natives::register_framework(&mut rt);
        rt
    }

    /// Creates a runtime with a caller-supplied [`Env`] — the re-entrant
    /// construction used by batch harnesses, where every job gets its own
    /// runtime with its own instruction (fuel) budget and depth limit.
    pub fn with_env(env: Env) -> Runtime {
        let mut rt = Runtime::new();
        rt.env = env;
        rt
    }

    // ---- class/method/field access ----------------------------------------

    /// The class with the given id.
    pub fn class(&self, id: ClassId) -> &RuntimeClass {
        &self.classes[id.0]
    }

    /// Mutable access to a class.
    pub fn class_mut(&mut self, id: ClassId) -> &mut RuntimeClass {
        &mut self.classes[id.0]
    }

    /// The method with the given id.
    pub fn method(&self, id: MethodId) -> &RuntimeMethod {
        &self.methods[id.0]
    }

    /// Mutable access to a method (self-modifying natives use this to
    /// rewrite code units). Bumps the method's code epoch, invalidating any
    /// predecoded representation — conservatively, since the caller may
    /// rewrite the body through the returned reference.
    pub fn method_mut(&mut self, id: MethodId) -> &mut RuntimeMethod {
        self.code_cache.bump_epoch(id);
        self.stats.dequickens = self.code_cache.dequickens;
        &mut self.methods[id.0]
    }

    // ---- predecoded code cache ---------------------------------------------

    /// The current code epoch of `method` (bumped by [`Self::method_mut`]).
    #[inline]
    pub fn code_epoch(&self, method: MethodId) -> u64 {
        self.code_cache.epoch(method)
    }

    /// The predecoded representation of `method` with its quickening
    /// overlay, building both on first use and rebuilding after
    /// invalidation. `None` for non-bytecode methods and for bodies that
    /// cannot be linearly decoded (the interpreter then falls back to
    /// per-step fetching).
    pub fn predecoded(
        &mut self,
        method: MethodId,
    ) -> Option<(
        Arc<dexlego_dalvik::PredecodedMethod>,
        Arc<dexlego_dalvik::quick::QuickCells>,
    )> {
        // Split borrow: the cache reads the unit slice while holding its own
        // mutable state; `code_cache` and `methods` are disjoint fields.
        let Runtime {
            code_cache,
            methods,
            stats,
            ..
        } = self;
        let MethodImpl::Bytecode { insns, .. } = &methods[method.0].body else {
            return None;
        };
        let result = code_cache.get_or_build(method, insns);
        stats.predecodes = code_cache.builds;
        stats.dequickens = code_cache.dequickens;
        result
    }

    /// Read-only view of the valid cached predecoded body, if any.
    /// Observers holding `&Runtime` use this to serve payload slices
    /// without re-decoding; never builds.
    pub fn predecoded_cached(&self, method: MethodId) -> Option<&dexlego_dalvik::PredecodedMethod> {
        self.code_cache.get(method).map(Arc::as_ref)
    }

    // ---- frame pool --------------------------------------------------------

    /// A zeroed register file of `n` slots, reusing pooled storage.
    pub(crate) fn acquire_regs(&mut self, n: usize) -> Vec<Slot> {
        let mut regs = self.frame_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(n, Slot::default());
        regs
    }

    /// Returns a register file to the pool for reuse.
    pub(crate) fn release_regs(&mut self, regs: Vec<Slot>) {
        // Bound the pool by the frame-depth limit: deeper recursion than
        // this never existed, so extra capacity would be dead weight.
        if self.frame_pool.len() < self.env.max_depth {
            self.frame_pool.push(regs);
        }
    }

    /// The field with the given id.
    pub fn field(&self, id: FieldId) -> &RuntimeField {
        &self.fields[id.0]
    }

    /// All linked method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len()).map(MethodId)
    }

    /// All linked class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len()).map(ClassId)
    }

    /// Looks up a class by descriptor.
    pub fn find_class(&self, descriptor: &str) -> Option<ClassId> {
        self.class_by_desc.get(descriptor).copied()
    }

    /// Pretty name of a method (`class->name(descriptor)`).
    pub fn method_name(&self, id: MethodId) -> String {
        let m = self.method(id);
        format!(
            "{}->{}{}",
            self.class(m.class).descriptor,
            m.name,
            m.descriptor
        )
    }

    /// The DEX resolution table for a loaded source.
    pub fn dex_table(&self, source: usize) -> &DexTable {
        &self.dex_tables[source]
    }

    /// DEX source index a bytecode method was loaded from.
    pub fn method_source(&self, method: MethodId) -> Option<usize> {
        self.method_source.get(&method).copied()
    }

    /// Number of loaded DEX sources.
    pub fn dex_source_count(&self) -> usize {
        self.dex_tables.len()
    }

    // ---- resolution --------------------------------------------------------

    /// Resolves `sig` starting at `class`, walking the superclass chain and
    /// interfaces (virtual-dispatch resolution).
    pub fn resolve_method(&self, class: ClassId, sig: &SigKey) -> Option<MethodId> {
        let mut current = Some(class);
        while let Some(c) = current {
            let rc = self.class(c);
            if let Some(&m) = rc.methods.get(sig) {
                return Some(m);
            }
            for &iface in &rc.interfaces {
                if let Some(m) = self.resolve_method(iface, sig) {
                    return Some(m);
                }
            }
            current = rc.superclass;
        }
        None
    }

    /// Resolves a field by name starting at `class`.
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut current = Some(class);
        while let Some(c) = current {
            let rc = self.class(c);
            if let Some(&f) = rc.fields.get(name) {
                return Some(f);
            }
            current = rc.superclass;
        }
        None
    }

    /// Whether `sub` is `sup` or a transitive subclass/implementor of it.
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let rc = self.class(sub);
        if rc.interfaces.iter().any(|&i| self.is_subtype(i, sup)) {
            return true;
        }
        rc.superclass.is_some_and(|s| self.is_subtype(s, sup))
    }

    // ---- statics & strings -------------------------------------------------

    /// Reads a static field (runs `<clinit>` first if needed).
    pub fn static_get(
        &mut self,
        obs: &mut dyn RuntimeObserver,
        field: FieldId,
    ) -> Result<WideValue> {
        let class = self.field(field).class;
        self.ensure_initialized(obs, class)?;
        Ok(self
            .class(class)
            .statics
            .get(&field)
            .copied()
            .unwrap_or_default())
    }

    /// Writes a static field (runs `<clinit>` first if needed).
    pub fn static_put(
        &mut self,
        obs: &mut dyn RuntimeObserver,
        field: FieldId,
        value: WideValue,
    ) -> Result<()> {
        let class = self.field(field).class;
        self.ensure_initialized(obs, class)?;
        self.class_mut(class).statics.insert(field, value);
        Ok(())
    }

    /// Interns a string object.
    pub fn intern_string(&mut self, s: &str) -> ObjRef {
        if let Some(&r) = self.interned.get(s) {
            return r;
        }
        let r = self.heap.alloc_string(s.to_owned(), 0);
        self.interned.insert(s.to_owned(), r);
        r
    }

    /// Mints a fresh taint label bit (wraps after 32 sources).
    pub fn mint_taint(&mut self) -> u32 {
        let bit = 1u32 << (self.next_taint_bit % 32);
        self.next_taint_bit += 1;
        bit
    }

    /// Runs `<clinit>` for `class` if it has not been initialised yet
    /// (superclasses first), installing static values.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors from the initialiser.
    pub fn ensure_initialized(
        &mut self,
        obs: &mut dyn RuntimeObserver,
        class: ClassId,
    ) -> Result<()> {
        if self.class(class).initialized {
            return Ok(());
        }
        self.class_mut(class).initialized = true; // set first: cycles are benign
        if let Some(sup) = self.class(class).superclass {
            self.ensure_initialized(obs, sup)?;
        }
        let clinit = self
            .class(class)
            .methods
            .get(&SigKey::new("<clinit>", "()V"))
            .copied();
        if let Some(m) = clinit {
            crate::interp::execute(self, obs, m, &[])?;
        }
        obs.on_class_init(self, class);
        Ok(())
    }

    // ---- invocation entry points -------------------------------------------

    /// Calls a static method by name.
    ///
    /// # Errors
    ///
    /// Fails with [`RuntimeError::ClassNotFound`] / `MethodNotFound` for bad
    /// names, and propagates execution failures.
    pub fn call_static(
        &mut self,
        obs: &mut dyn RuntimeObserver,
        class_desc: &str,
        name: &str,
        descriptor: &str,
        args: &[Slot],
    ) -> Result<RetVal> {
        let class = self
            .find_class(class_desc)
            .ok_or_else(|| RuntimeError::ClassNotFound(class_desc.to_owned()))?;
        let method = self
            .resolve_method(class, &SigKey::new(name, descriptor))
            .ok_or_else(|| {
                RuntimeError::MethodNotFound(format!("{class_desc}->{name}{descriptor}"))
            })?;
        self.ensure_initialized(obs, class)?;
        crate::interp::execute(self, obs, method, args)
    }

    /// Calls an already-resolved method.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn call_method(
        &mut self,
        obs: &mut dyn RuntimeObserver,
        method: MethodId,
        args: &[Slot],
    ) -> Result<RetVal> {
        let class = self.method(method).class;
        self.ensure_initialized(obs, class)?;
        crate::interp::execute(self, obs, method, args)
    }

    /// Creates an instance of `class_desc`, runs its no-arg `<init>` if
    /// present, and returns the handle.
    ///
    /// # Errors
    ///
    /// Fails if the class is unknown or its constructor fails.
    pub fn new_instance(
        &mut self,
        obs: &mut dyn RuntimeObserver,
        class_desc: &str,
    ) -> Result<ObjRef> {
        let class = self
            .find_class(class_desc)
            .ok_or_else(|| RuntimeError::ClassNotFound(class_desc.to_owned()))?;
        self.ensure_initialized(obs, class)?;
        let obj = self.heap.alloc_instance(class);
        if let Some(init) = self.resolve_method(class, &SigKey::new("<init>", "()V")) {
            crate::interp::execute(self, obs, init, &[Slot::of(obj)])?;
        }
        Ok(obj)
    }

    /// Registers a phantom class (framework superclass referenced but not
    /// defined in any loaded DEX), returning its id.
    pub fn ensure_class_stub(&mut self, descriptor: &str) -> ClassId {
        if let Some(id) = self.find_class(descriptor) {
            return id;
        }
        let superclass = if descriptor == "Ljava/lang/Object;" {
            None
        } else {
            Some(self.ensure_class_stub_inner("Ljava/lang/Object;"))
        };
        let id = ClassId(self.classes.len());
        self.classes.push(RuntimeClass {
            descriptor: descriptor.to_owned(),
            superclass,
            interfaces: Vec::new(),
            access: AccessFlags::PUBLIC,
            methods: HashMap::new(),
            fields: HashMap::new(),
            statics: HashMap::new(),
            initialized: true,
            source: "<framework>".to_owned(),
        });
        self.class_by_desc.insert(descriptor.to_owned(), id);
        id
    }

    fn ensure_class_stub_inner(&mut self, descriptor: &str) -> ClassId {
        self.ensure_class_stub(descriptor)
    }

    /// Registers a native method stub on a (possibly phantom) class so the
    /// resolver can find it; the implementation must be present in
    /// [`Self::natives`].
    pub fn register_native_method(
        &mut self,
        class_desc: &str,
        name: &str,
        params: &[&str],
        return_type: &str,
    ) -> MethodId {
        let class = self.ensure_class_stub(class_desc);
        let params: Vec<String> = params.iter().map(|s| s.to_string()).collect();
        let descriptor = crate::class::descriptor_of(&params, return_type);
        let sig = SigKey::new(name, &descriptor);
        if let Some(&m) = self.class(class).methods.get(&sig) {
            return m;
        }
        let id = MethodId(self.methods.len());
        self.methods.push(RuntimeMethod {
            class,
            name: name.to_owned(),
            descriptor,
            params,
            return_type: return_type.to_owned(),
            access: AccessFlags::PUBLIC | AccessFlags::NATIVE,
            body: crate::class::MethodImpl::Native,
        });
        self.class_mut(class).methods.insert(sig, id);
        id
    }

    /// Registers a field on a (possibly phantom) class.
    pub fn register_field(&mut self, class_desc: &str, name: &str, type_desc: &str) -> FieldId {
        let class = self.ensure_class_stub(class_desc);
        if let Some(&f) = self.class(class).fields.get(name) {
            return f;
        }
        let id = FieldId(self.fields.len());
        self.fields.push(RuntimeField {
            class,
            name: name.to_owned(),
            type_desc: type_desc.to_owned(),
            access: AccessFlags::PUBLIC,
        });
        self.class_mut(class).fields.insert(name.to_owned(), id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;

    #[test]
    fn runtime_is_send() {
        // Batch harnesses move whole runtimes (inside job closures) across
        // worker threads; a non-Send field regression breaks corpus-scale
        // extraction, so pin the bound here.
        fn assert_send<T: Send>() {}
        assert_send::<Runtime>();
    }

    #[test]
    fn with_env_applies_budget_and_depth() {
        let env = Env {
            insn_budget: 123,
            max_depth: 7,
            ..Env::default()
        };
        let rt = Runtime::with_env(env);
        assert_eq!(rt.env.insn_budget, 123);
        assert_eq!(rt.env.max_depth, 7);
        // The framework natives are still registered (re-entrant construction
        // must not skip initialisation).
        assert!(!rt.natives.is_empty());
    }

    #[test]
    fn stub_classes_chain_to_object() {
        let mut rt = Runtime::new();
        let act = rt.ensure_class_stub("Landroid/app/Activity;");
        let obj = rt.find_class("Ljava/lang/Object;").unwrap();
        assert!(rt.is_subtype(act, obj));
        assert!(!rt.is_subtype(obj, act));
    }

    #[test]
    fn stub_registration_is_idempotent() {
        let mut rt = Runtime::new();
        let a = rt.ensure_class_stub("Lx/Y;");
        let b = rt.ensure_class_stub("Lx/Y;");
        assert_eq!(a, b);
        let m1 = rt.register_native_method("Lx/Y;", "go", &["I"], "V");
        let m2 = rt.register_native_method("Lx/Y;", "go", &["I"], "V");
        assert_eq!(m1, m2);
    }

    #[test]
    fn interned_strings_are_shared() {
        let mut rt = Runtime::new();
        let a = rt.intern_string("hello");
        let b = rt.intern_string("hello");
        let c = rt.intern_string("other");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn taint_labels_are_distinct_bits() {
        let mut rt = Runtime::new();
        let a = rt.mint_taint();
        let b = rt.mint_taint();
        assert_eq!(a.count_ones(), 1);
        assert_eq!(b.count_ones(), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn missing_class_call_fails_cleanly() {
        let mut rt = Runtime::new();
        let mut obs = NullObserver;
        let err = rt
            .call_static(&mut obs, "Lno/Such;", "m", "()V", &[])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ClassNotFound(_)));
    }
}
