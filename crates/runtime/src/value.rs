//! Register slots and return values.
//!
//! Like real Dalvik, registers are 32-bit slots; `long`/`double` values
//! occupy two consecutive slots. Each slot additionally carries a taint
//! bitmask, which the interpreter propagates through data flow (the
//! substrate for the TaintDroid/TaintART emulations in `dexlego-analysis`).

/// One 32-bit register slot with an attached taint bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Slot {
    /// Raw 32-bit contents (int bits, float bits, or an object handle).
    pub raw: u32,
    /// Taint label bitmask; zero means untainted.
    pub taint: u32,
}

impl Slot {
    /// An untainted slot holding `raw`.
    pub const fn of(raw: u32) -> Slot {
        Slot { raw, taint: 0 }
    }

    /// A slot holding a signed integer.
    pub const fn from_int(v: i32) -> Slot {
        Slot::of(v as u32)
    }

    /// A slot holding a float's bit pattern.
    pub fn from_float(v: f32) -> Slot {
        Slot::of(v.to_bits())
    }

    /// The slot value as a signed integer.
    pub const fn as_int(self) -> i32 {
        self.raw as i32
    }

    /// The slot value as a float.
    pub fn as_float(self) -> f32 {
        f32::from_bits(self.raw)
    }

    /// Returns this slot with `taint` OR-ed in.
    pub const fn tainted(self, taint: u32) -> Slot {
        Slot {
            raw: self.raw,
            taint: self.taint | taint,
        }
    }
}

/// A 64-bit value as a pair of slots (lo, hi) with a combined taint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WideValue {
    /// Raw 64 bits.
    pub raw: u64,
    /// Combined taint of both halves.
    pub taint: u32,
}

impl WideValue {
    /// An untainted wide value.
    pub const fn of(raw: u64) -> WideValue {
        WideValue { raw, taint: 0 }
    }

    /// From a signed long.
    pub const fn from_long(v: i64) -> WideValue {
        WideValue::of(v as u64)
    }

    /// From a double.
    pub fn from_double(v: f64) -> WideValue {
        WideValue::of(v.to_bits())
    }

    /// As a signed long.
    pub const fn as_long(self) -> i64 {
        self.raw as i64
    }

    /// As a double.
    pub fn as_double(self) -> f64 {
        f64::from_bits(self.raw)
    }

    /// Splits into (lo, hi) slots sharing this value's taint.
    pub const fn split(self) -> (Slot, Slot) {
        (
            Slot {
                raw: self.raw as u32,
                taint: self.taint,
            },
            Slot {
                raw: (self.raw >> 32) as u32,
                taint: self.taint,
            },
        )
    }

    /// Joins (lo, hi) slots.
    pub const fn join(lo: Slot, hi: Slot) -> WideValue {
        WideValue {
            raw: lo.raw as u64 | ((hi.raw as u64) << 32),
            taint: lo.taint | hi.taint,
        }
    }
}

/// The result of a method invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetVal {
    /// `void` return.
    #[default]
    Void,
    /// A 32-bit or reference return.
    Single(Slot),
    /// A 64-bit return.
    Wide(WideValue),
}

impl RetVal {
    /// The value as a signed integer, if it is a single slot.
    pub fn as_int(self) -> Option<i32> {
        match self {
            RetVal::Single(s) => Some(s.as_int()),
            _ => None,
        }
    }

    /// The value as an object handle, if it is a single slot.
    pub fn as_obj(self) -> Option<u32> {
        match self {
            RetVal::Single(s) => Some(s.raw),
            _ => None,
        }
    }

    /// The value as a long, if wide.
    pub fn as_long(self) -> Option<i64> {
        match self {
            RetVal::Wide(w) => Some(w.as_long()),
            _ => None,
        }
    }

    /// The combined taint of the returned value (zero for void).
    pub fn taint(self) -> u32 {
        match self {
            RetVal::Void => 0,
            RetVal::Single(s) => s.taint,
            RetVal::Wide(w) => w.taint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_split_join_roundtrip() {
        let w = WideValue::from_long(-0x1234_5678_9abc_def0);
        let (lo, hi) = w.split();
        assert_eq!(WideValue::join(lo, hi), w);
    }

    #[test]
    fn taint_combines_on_join() {
        let lo = Slot {
            raw: 1,
            taint: 0b01,
        };
        let hi = Slot {
            raw: 2,
            taint: 0b10,
        };
        assert_eq!(WideValue::join(lo, hi).taint, 0b11);
    }

    #[test]
    fn float_bits_roundtrip() {
        let s = Slot::from_float(-1.5);
        assert_eq!(s.as_float(), -1.5);
        let w = WideValue::from_double(std::f64::consts::E);
        assert_eq!(w.as_double(), std::f64::consts::E);
    }

    #[test]
    fn retval_accessors() {
        assert_eq!(RetVal::Single(Slot::from_int(-3)).as_int(), Some(-3));
        assert_eq!(RetVal::Void.as_int(), None);
        assert_eq!(RetVal::Wide(WideValue::from_long(9)).as_long(), Some(9));
        assert_eq!(RetVal::Single(Slot { raw: 0, taint: 5 }).taint(), 5);
    }
}
