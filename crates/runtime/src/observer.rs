//! The instrumentation surface of the runtime.
//!
//! [`RuntimeObserver`] is the seam where DexLego's just-in-time collection
//! attaches: every hook corresponds to an instrumentation point the paper
//! adds to ART (class-linker collection, interpreter instruction collection,
//! reflective-target resolution, and the force-execution branch override).

use dexlego_dalvik::Insn;

use crate::class::{ClassId, MethodId};
use crate::runtime::Runtime;

/// Per-instruction event delivered to observers before the instruction
/// executes.
#[derive(Debug, Clone)]
pub struct InsnEvent<'a> {
    /// The executing method.
    pub method: MethodId,
    /// The `dex_pc` — index of the instruction in the method's unit array.
    pub dex_pc: u32,
    /// The decoded instruction.
    pub insn: &'a Insn,
    /// The raw code units of the instruction (what `SameIns` compares).
    pub units: &'a [u16],
}

/// Callbacks and steering hooks invoked by the class linker and interpreter.
///
/// All methods have no-op defaults, so observers implement only what they
/// need. [`NullObserver`] is the trivial implementation.
pub trait RuntimeObserver {
    /// A class was linked (loaded) from a DEX source.
    fn on_class_load(&mut self, _rt: &Runtime, _class: ClassId) {}

    /// A class finished `<clinit>` initialisation, statics installed.
    fn on_class_init(&mut self, _rt: &Runtime, _class: ClassId) {}

    /// A method frame was entered.
    fn on_method_enter(&mut self, _rt: &Runtime, _method: MethodId) {}

    /// A method frame exited (normally or via exception).
    fn on_method_exit(&mut self, _rt: &Runtime, _method: MethodId) {}

    /// An instruction is about to execute.
    ///
    /// Only delivered when [`Self::wants_insn_events`] returns `true`.
    fn on_instruction(&mut self, _rt: &Runtime, _event: &InsnEvent<'_>) {}

    /// Whether this observer consumes [`Self::on_instruction`] events.
    ///
    /// The interpreter hoists this per frame and skips event construction
    /// entirely for passive observers, so plain replay (conformance re-runs,
    /// warm verification) pays near-zero observation cost. Defaults to
    /// `true`; an observer that leaves `on_instruction` as the no-op default
    /// should override this to `false` ([`NullObserver`] does). All other
    /// hooks — branches, method enter/exit, exceptions — are unaffected.
    fn wants_insn_events(&self) -> bool {
        true
    }

    /// A conditional branch at `dex_pc` evaluated to `taken`.
    fn on_branch(&mut self, _rt: &Runtime, _method: MethodId, _dex_pc: u32, _taken: bool) {}

    /// Whether this observer consumes [`Self::on_branch`] or wants a say in
    /// [`Self::override_branch`].
    ///
    /// Like [`Self::wants_insn_events`], the interpreter hoists this per
    /// frame: for passive observers every conditional branch skips both
    /// virtual calls. Defaults to `true`; an observer that leaves both
    /// branch hooks as their no-op defaults should override this to `false`
    /// ([`NullObserver`] does).
    fn wants_branch_hooks(&self) -> bool {
        true
    }

    /// A reflective call site resolved to `target` (the hook DexLego uses to
    /// replace reflection with direct calls).
    fn on_reflective_call(
        &mut self,
        _rt: &Runtime,
        _caller: MethodId,
        _call_site: u32,
        _target: MethodId,
    ) {
    }

    /// A secondary DEX was loaded at runtime.
    fn on_dynamic_load(&mut self, _rt: &Runtime, _source: &str, _classes: &[ClassId]) {}

    /// An exception was thrown at `dex_pc` (before handler search).
    fn on_exception(&mut self, _rt: &Runtime, _method: MethodId, _dex_pc: u32) {}

    /// Force-execution hook: return `Some(outcome)` to override a
    /// conditional branch's decision at `dex_pc`. `would_take` is the
    /// outcome the condition actually evaluated to.
    fn override_branch(
        &mut self,
        _rt: &Runtime,
        _method: MethodId,
        _dex_pc: u32,
        _would_take: bool,
    ) -> Option<bool> {
        None
    }

    /// Whether unhandled exceptions should be cleared and execution resumed
    /// at the next instruction (force-execution crash tolerance).
    fn tolerate_exceptions(&self) -> bool {
        false
    }
}

/// An observer that does nothing. Declares itself passive, so the
/// interpreter's no-event fast path applies.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RuntimeObserver for NullObserver {
    fn wants_insn_events(&self) -> bool {
        false
    }
    fn wants_branch_hooks(&self) -> bool {
        false
    }
}

/// Chains two observers; both receive every event, the first non-`None`
/// branch override wins, and exception tolerance is the OR of the two.
///
/// # Example
///
/// ```
/// use dexlego_runtime::observer::{NullObserver, Pair, RuntimeObserver};
/// let mut pair = Pair(NullObserver, NullObserver);
/// assert!(!pair.tolerate_exceptions());
/// ```
#[derive(Debug, Default)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: RuntimeObserver, B: RuntimeObserver> RuntimeObserver for Pair<A, B> {
    fn on_class_load(&mut self, rt: &Runtime, class: ClassId) {
        self.0.on_class_load(rt, class);
        self.1.on_class_load(rt, class);
    }
    fn on_class_init(&mut self, rt: &Runtime, class: ClassId) {
        self.0.on_class_init(rt, class);
        self.1.on_class_init(rt, class);
    }
    fn on_method_enter(&mut self, rt: &Runtime, method: MethodId) {
        self.0.on_method_enter(rt, method);
        self.1.on_method_enter(rt, method);
    }
    fn on_method_exit(&mut self, rt: &Runtime, method: MethodId) {
        self.0.on_method_exit(rt, method);
        self.1.on_method_exit(rt, method);
    }
    fn on_instruction(&mut self, rt: &Runtime, event: &InsnEvent<'_>) {
        self.0.on_instruction(rt, event);
        self.1.on_instruction(rt, event);
    }
    fn wants_insn_events(&self) -> bool {
        self.0.wants_insn_events() || self.1.wants_insn_events()
    }
    fn on_branch(&mut self, rt: &Runtime, method: MethodId, dex_pc: u32, taken: bool) {
        self.0.on_branch(rt, method, dex_pc, taken);
        self.1.on_branch(rt, method, dex_pc, taken);
    }
    fn wants_branch_hooks(&self) -> bool {
        self.0.wants_branch_hooks() || self.1.wants_branch_hooks()
    }
    fn on_reflective_call(&mut self, rt: &Runtime, caller: MethodId, site: u32, target: MethodId) {
        self.0.on_reflective_call(rt, caller, site, target);
        self.1.on_reflective_call(rt, caller, site, target);
    }
    fn on_dynamic_load(&mut self, rt: &Runtime, source: &str, classes: &[ClassId]) {
        self.0.on_dynamic_load(rt, source, classes);
        self.1.on_dynamic_load(rt, source, classes);
    }
    fn on_exception(&mut self, rt: &Runtime, method: MethodId, dex_pc: u32) {
        self.0.on_exception(rt, method, dex_pc);
        self.1.on_exception(rt, method, dex_pc);
    }
    fn override_branch(
        &mut self,
        rt: &Runtime,
        method: MethodId,
        dex_pc: u32,
        would_take: bool,
    ) -> Option<bool> {
        self.0
            .override_branch(rt, method, dex_pc, would_take)
            .or_else(|| self.1.override_branch(rt, method, dex_pc, would_take))
    }
    fn tolerate_exceptions(&self) -> bool {
        self.0.tolerate_exceptions() || self.1.tolerate_exceptions()
    }
}
