//! Runtime event log: sources, sinks, and other security-relevant events
//! recorded by framework natives.
//!
//! The dynamic-analysis emulations in `dexlego-analysis` read this log; the
//! benchmark ground truth is defined in terms of tainted sink events.

use crate::class::MethodId;

/// The kind of sensitive source an API models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Device identifier (IMEI).
    DeviceId,
    /// Location (latitude/longitude).
    Location,
    /// Wi-Fi SSID.
    Ssid,
    /// Contact data.
    Contacts,
    /// Generic sensitive data (DroidBench's `getSensitiveData`).
    Generic,
}

/// The kind of sink an API models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SinkKind {
    /// Outgoing SMS (`sendTextMessage`).
    Sms,
    /// Network transmission.
    Network,
    /// Log output.
    Log,
    /// External file write.
    FileWrite,
}

/// One entry in the runtime's security event log.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeEvent {
    /// A sensitive source API returned data carrying `taint`.
    SourceRead {
        /// What kind of source.
        kind: SourceKind,
        /// Taint label minted for the returned data.
        taint: u32,
        /// Method that called the source.
        caller: Option<MethodId>,
        /// Nesting depth of framework-invoked callbacks at the time.
        callback_depth: u32,
    },
    /// A sink API was invoked; `arg_taint` is the union of taints on its
    /// data arguments.
    SinkCall {
        /// What kind of sink.
        kind: SinkKind,
        /// Combined taint of the data arguments.
        arg_taint: u32,
        /// Stringified payload (for reports).
        payload: String,
        /// Method that called the sink.
        caller: Option<MethodId>,
        /// Nesting depth of framework-invoked callbacks at the time.
        callback_depth: u32,
    },
    /// An external file was written with tainted data (PrivateDataLeak3
    /// pattern: leak through the filesystem).
    FileRoundTrip {
        /// Taint written.
        taint: u32,
    },
    /// A secondary DEX was loaded dynamically.
    DynamicLoad {
        /// Source tag under which it was linked.
        source: String,
        /// Number of classes it contributed.
        classes: usize,
    },
    /// A reflective invocation was resolved to a concrete target.
    ReflectiveInvoke {
        /// The resolved target.
        target: MethodId,
    },
}

/// An append-only event log.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<RuntimeEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: RuntimeEvent) {
        self.events.push(event);
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[RuntimeEvent] {
        &self.events
    }

    /// Clears the log (between fuzzing iterations).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Sink calls whose arguments carried taint.
    pub fn tainted_sinks(&self) -> impl Iterator<Item = &RuntimeEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, RuntimeEvent::SinkCall { arg_taint, .. } if *arg_taint != 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tainted_sinks_filters() {
        let mut log = EventLog::new();
        log.push(RuntimeEvent::SinkCall {
            kind: SinkKind::Sms,
            arg_taint: 0,
            payload: "clean".into(),
            caller: None,
            callback_depth: 0,
        });
        log.push(RuntimeEvent::SinkCall {
            kind: SinkKind::Sms,
            arg_taint: 1,
            payload: "dirty".into(),
            caller: None,
            callback_depth: 0,
        });
        assert_eq!(log.tainted_sinks().count(), 1);
        log.clear();
        assert!(log.events().is_empty());
    }
}
