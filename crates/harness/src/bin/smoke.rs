//! Corpus smoke run: generate a small corpus, shard it across the worker
//! pool, and fail (exit 1) if any job panics, times out, or fails the
//! verifier/validation/conformance gates.
//!
//! ```text
//! harness-smoke [--workers N] [--apps N] [--insns N] [--fuel N]
//!               [--packers all|default] [--no-conformance] [--json PATH]
//!               [--store DIR]
//! ```
//!
//! The worker count defaults to the `DEXLEGO_WORKERS` environment variable
//! (then to the machine's parallelism), so CI boxes can pin parallelism
//! without editing invocations; `--workers` still wins. With `--store DIR`
//! the run is routed through the persistent result store: extractions
//! already cached there are served from disk, and the summary reports the
//! hit count.

use std::process::ExitCode;

use dexlego_harness::{cache, corpus, pool};
use dexlego_store::{Store, StoreConfig};

struct Options {
    workers: Option<usize>,
    spec: corpus::CorpusSpec,
    json: Option<String>,
    store: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workers: None,
        spec: corpus::CorpusSpec::default(),
        json: None,
        store: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--workers" => opts.workers = Some(parse(&value("--workers")?)?),
            "--apps" => opts.spec.apps = parse(&value("--apps")?)?,
            "--insns" => opts.spec.base_insns = parse(&value("--insns")?)?,
            "--fuel" => opts.spec.fuel = parse(&value("--fuel")?)?,
            "--packers" => {
                opts.spec.packers = match value("--packers")?.as_str() {
                    "all" => corpus::all_packers(),
                    "default" => corpus::CorpusSpec::default().packers,
                    other => return Err(format!("unknown packer set: {other}")),
                }
            }
            "--no-conformance" => opts.spec.conformance = false,
            "--json" => opts.json = Some(value("--json")?),
            "--store" => opts.store = Some(value("--store")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number: {s}"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("harness-smoke: {e}");
            return ExitCode::FAILURE;
        }
    };
    let workers = pool::resolve_workers(opts.workers);
    let jobs = corpus::work_list(&opts.spec);
    eprintln!(
        "harness-smoke: {} jobs ({} apps x {} profiles), {} workers",
        jobs.len(),
        opts.spec.apps,
        opts.spec.packers.len(),
        workers
    );
    let config = pool::HarnessConfig::with_workers(workers);
    let report = match &opts.store {
        Some(dir) => {
            let store = match Store::open(StoreConfig::new(dir)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("harness-smoke: cannot open store {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = cache::run_batch_cached(jobs, &config, &store);
            let stats = store.stats();
            eprintln!(
                "harness-smoke: store {dir}: {} hits, {} misses, {} entries ({} bytes)",
                stats.hits, stats.misses, stats.entries, stats.bytes
            );
            report
        }
        None => pool::run_batch(jobs, &config),
    };
    println!("{}", report.summary());
    match &opts.json {
        Some(path) if path == "-" => println!("{}", report.to_json()),
        Some(path) => {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("harness-smoke: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("harness-smoke: report written to {path}");
        }
        None => {}
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
