//! Cache-aware job execution through the content-addressed result store.
//!
//! A [`JobSpec`] is pure data: the original DEX, the packer profile, and
//! the driving parameters fully determine the revealed DEX. [`job_key`]
//! folds all of them (plus the extractor version) into a
//! [`dexlego_core::digest::InputDigest`], and [`execute_job_cached`] turns
//! every extraction into lookup-or-fill against a shared [`Store`]:
//! concurrent workers extracting the same key run the pipeline exactly
//! once, and a second batch run over the same corpus is near-free.
//!
//! Jobs with registered tamper natives are never cached: the natives are
//! arbitrary code, so their effect on the collection is not captured by
//! the input digest.

use std::time::Instant;

use dexlego_core::digest::InputDigest;
use dexlego_dex::writer::write_dex;
use dexlego_store::{CachedResult, Key, Store};

use crate::job::{execute_job_revealing, JobSpec, JobStatus};
use crate::pool::{run_batch_with, HarnessConfig};
use crate::report::{JobReport, RunReport};

/// The content-address of a job: a stable digest over the original DEX
/// bytes, packer profile, entry descriptor, every driving parameter, and
/// the extractor version. `None` when the job is uncacheable (tamper
/// natives registered, or the input DEX cannot be serialised).
pub fn job_key(spec: &JobSpec) -> Option<Key> {
    if !spec.tampers.is_empty() {
        return None;
    }
    let dex_bytes = write_dex(&spec.dex).ok()?;
    let mut d = InputDigest::new();
    d.bytes("dex", &dex_bytes);
    d.str("entry", &spec.entry);
    d.str(
        "packer",
        spec.packer.map_or("plain", |id| id.profile().name),
    );
    for &seed in &spec.seeds {
        d.u64("seed", seed);
    }
    d.u64("events", spec.events as u64);
    d.u64("fuel", spec.fuel);
    d.flag("conformance", spec.check_conformance);
    Some(Key::new(d.finish()))
}

/// Converts a *successful* job's report and revealed DEX into the store's
/// entry form.
pub fn to_cached(report: &JobReport, dex_bytes: &[u8]) -> CachedResult {
    CachedResult {
        dex_bytes: dex_bytes.to_vec(),
        wall_us: report.wall_us,
        insns: report.insns,
        frames: report.frames,
        quickens: report.quickens,
        dequickens: report.dequickens,
        superinsn_hits: report.superinsn_hits,
        methods_collected: report.methods_collected as u64,
        insns_collected: report.insns_collected,
        dump_size: report.dump_size as u64,
        verifier_lints: report.verifier_lints as u64,
        typed_methods: report.typed_methods as u64,
        typed_insns: report.typed_insns,
        verify_cache_hits: report.verify_cache_hits,
        verify_cache_misses: report.verify_cache_misses,
        validation: Vec::new(), // a cached job passed validation
        phases_us: report.phases_us.clone(),
    }
}

/// Reconstructs a job report from a cache hit. Collection counters and
/// phase timings describe the original extraction; `wall_us` is the
/// lookup time and [`JobReport::cached`] is set.
pub fn from_cached(name: &str, packer: Option<&'static str>, hit: &CachedResult) -> JobReport {
    JobReport {
        status: JobStatus::Ok,
        cached: true,
        insns: hit.insns,
        frames: hit.frames,
        quickens: hit.quickens,
        dequickens: hit.dequickens,
        superinsn_hits: hit.superinsn_hits,
        methods_collected: hit.methods_collected as usize,
        insns_collected: hit.insns_collected,
        dump_size: hit.dump_size as usize,
        verifier_lints: hit.verifier_lints as usize,
        typed_methods: hit.typed_methods as usize,
        typed_insns: hit.typed_insns,
        verify_cache_hits: hit.verify_cache_hits,
        verify_cache_misses: hit.verify_cache_misses,
        phases_us: hit.phases_us.clone(),
        ..JobReport::empty(name.to_owned(), packer)
    }
}

/// Executes `spec` through `store`: a verified cache hit is served without
/// running the pipeline; a miss extracts (deduplicated per key across
/// concurrent callers) and caches the result if the job succeeded. Returns
/// the report and, when available, the revealed DEX bytes.
pub fn execute_job_cached(spec: JobSpec, store: &Store) -> (JobReport, Option<Vec<u8>>) {
    let Some(key) = job_key(&spec) else {
        return execute_job_revealing(spec);
    };
    let name = spec.name.clone();
    let packer = spec.packer.map(|id| id.profile().name);
    let start = Instant::now();

    let mut fresh: Option<(JobReport, Option<Vec<u8>>)> = None;
    let (cached, hit) = store.get_or_fill(&key, || {
        let (report, bytes) = execute_job_revealing(spec);
        let entry = match (&report.status, &bytes) {
            (JobStatus::Ok, Some(b)) => Some(to_cached(&report, b)),
            _ => None,
        };
        fresh = Some((report, bytes));
        entry
    });

    match fresh {
        // This caller ran the extraction: report it verbatim.
        Some(result) => result,
        None => {
            let hit_entry = cached.expect("a hit always carries the entry");
            debug_assert!(hit);
            let mut report = from_cached(&name, packer, &hit_entry);
            report.wall_us = start.elapsed().as_micros() as u64;
            (report, Some(hit_entry.dex_bytes))
        }
    }
}

/// [`crate::pool::run_batch`] with every job routed through `store`:
/// workers share the cache, identical jobs extract once, and a rerun of
/// the same corpus is served almost entirely from disk (see
/// [`RunReport::cache_hits`]).
pub fn run_batch_cached(jobs: Vec<JobSpec>, config: &HarnessConfig, store: &Store) -> RunReport {
    run_batch_with(jobs, config, |spec| execute_job_cached(spec, store).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dexlego_packer::PackerId;

    fn sample_spec() -> JobSpec {
        let apps = dexlego_droidbench::appgen::corpus_apps(1, 60);
        let (_, app) = &apps[0];
        JobSpec::new("k", app.dex.clone(), &app.entry)
    }

    #[test]
    fn key_is_stable_and_parameter_sensitive() {
        let spec = sample_spec();
        assert_eq!(job_key(&spec), job_key(&spec.clone()));
        let mut packed = spec.clone();
        packed.packer = Some(PackerId::P360);
        assert_ne!(job_key(&spec), job_key(&packed));
        let mut fueled = spec.clone();
        fueled.fuel += 1;
        assert_ne!(job_key(&spec), job_key(&fueled));
        let mut seeded = spec.clone();
        seeded.seeds = vec![2];
        assert_ne!(job_key(&spec), job_key(&seeded));
        let mut conformant = spec.clone();
        conformant.check_conformance = true;
        assert_ne!(job_key(&spec), job_key(&conformant));
        // The job *name* is reporting identity, not pipeline input.
        let mut renamed = spec.clone();
        renamed.name = "other".to_owned();
        assert_eq!(job_key(&spec), job_key(&renamed));
    }

    #[test]
    fn tampered_jobs_are_uncacheable() {
        let mut spec = sample_spec();
        spec.tampers = vec![dexlego_droidbench::TamperSpec {
            native_class: "Lx;".to_owned(),
            native_name: "t".to_owned(),
            target: ("Lx;".to_owned(), "u".to_owned(), "()V".to_owned()),
            patches: Vec::new(),
        }];
        assert_eq!(job_key(&spec), None);
    }

    #[test]
    fn report_roundtrips_through_cache_entry() {
        let report = JobReport {
            wall_us: 900,
            insns: 11,
            frames: 2,
            quickens: 4,
            dequickens: 1,
            superinsn_hits: 5,
            methods_collected: 3,
            insns_collected: 40,
            dump_size: 512,
            verifier_lints: 1,
            typed_methods: 2,
            typed_insns: 33,
            verify_cache_hits: 6,
            verify_cache_misses: 3,
            phases_us: vec![("collect".to_owned(), 7)],
            ..JobReport::empty("j".to_owned(), Some("360"))
        };
        let entry = to_cached(&report, &[1, 2, 3]);
        let back = from_cached("j", Some("360"), &entry);
        assert!(back.cached);
        assert!(back.status.is_ok());
        assert_eq!(back.insns, report.insns);
        assert_eq!(back.quickens, report.quickens);
        assert_eq!(back.dequickens, report.dequickens);
        assert_eq!(back.superinsn_hits, report.superinsn_hits);
        assert_eq!(back.methods_collected, report.methods_collected);
        assert_eq!(back.typed_methods, report.typed_methods);
        assert_eq!(back.typed_insns, report.typed_insns);
        assert_eq!(back.verify_cache_hits, report.verify_cache_hits);
        assert_eq!(back.verify_cache_misses, report.verify_cache_misses);
        assert_eq!(back.phases_us, report.phases_us);
        assert_eq!(entry.dex_bytes, vec![1, 2, 3]);
    }
}
