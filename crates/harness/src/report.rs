//! Structured run reports.
//!
//! Every job produces a [`JobReport`]; [`run_batch`](crate::pool::run_batch)
//! aggregates them into a [`RunReport`]. Both serialise to JSON (hand-rolled
//! — the workspace is dependency-free) so corpus runs can be archived and
//! compared across revisions.

use dexlego_core::RevealOutcome;
use dexlego_packer::PackerId;

use crate::job::JobStatus;
use crate::json::{self, Value};

/// Everything recorded about one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job name from the spec.
    pub name: String,
    /// Packer profile display name, if the app was packed.
    pub packer: Option<&'static str>,
    /// Terminal status.
    pub status: JobStatus,
    /// Whether this report was served from the content-addressed result
    /// store instead of a fresh pipeline run (collection counters and phase
    /// timings then describe the original extraction; `wall_us` is the
    /// lookup time).
    pub cached: bool,
    /// Wall-clock time of the whole job, microseconds.
    pub wall_us: u64,
    /// Bytecode instructions interpreted while driving the app.
    pub insns: u64,
    /// Method frames entered while driving the app.
    pub frames: u64,
    /// Instruction cells rewritten to pre-resolved quickened forms.
    pub quickens: u64,
    /// Quickened cells discarded by code-epoch invalidation
    /// (self-modifying code forcing de-quickening).
    pub dequickens: u64,
    /// Fused superinstruction dispatches in the interpreter hot loop.
    pub superinsn_hits: u64,
    /// Methods with collected trees.
    pub methods_collected: usize,
    /// Instructions collected across all trees.
    pub insns_collected: u64,
    /// Serialised collection-file size in bytes.
    pub dump_size: usize,
    /// Warning-severity verifier lints on the reassembled DEX.
    pub verifier_lints: usize,
    /// Error-severity verifier diagnostics (nonzero only when the job was
    /// rejected by the verification gate).
    pub verifier_errors: usize,
    /// Method bodies with typed IR materialized by the verifier.
    pub typed_methods: usize,
    /// Instructions across all typed-IR methods.
    pub typed_insns: u64,
    /// Method verifications served from the digest-keyed verify cache
    /// during the pipeline's verification gate.
    pub verify_cache_hits: u64,
    /// Method verifications that ran the fixpoint (verify-cache misses).
    pub verify_cache_misses: u64,
    /// Per-phase pipeline timings in microseconds, in execution order
    /// (collect, serialize, tree_merge, dexgen, canonicalize, verify,
    /// validate).
    pub phases_us: Vec<(String, u64)>,
}

impl JobReport {
    /// A zeroed report carrying only identity; callers fill in what the
    /// job managed to produce before it stopped.
    pub fn empty(name: String, packer: Option<&'static str>) -> JobReport {
        JobReport {
            name,
            packer,
            status: JobStatus::Ok,
            cached: false,
            wall_us: 0,
            insns: 0,
            frames: 0,
            quickens: 0,
            dequickens: 0,
            superinsn_hits: 0,
            methods_collected: 0,
            insns_collected: 0,
            dump_size: 0,
            verifier_lints: 0,
            verifier_errors: 0,
            typed_methods: 0,
            typed_insns: 0,
            verify_cache_hits: 0,
            verify_cache_misses: 0,
            phases_us: Vec::new(),
        }
    }

    /// Copies collection counts and phase timings out of a reveal outcome.
    pub fn absorb(&mut self, outcome: &RevealOutcome) {
        self.methods_collected = outcome.files.methods.len();
        self.insns_collected = outcome.metrics.counter("insns_collected").unwrap_or(0);
        self.dump_size = outcome.dump_size;
        self.verifier_lints = outcome.lints.len();
        self.typed_methods = outcome.typed_methods;
        self.typed_insns = outcome.typed_insns;
        self.verify_cache_hits = outcome.metrics.counter("verify_cache_hits").unwrap_or(0);
        self.verify_cache_misses = outcome.metrics.counter("verify_cache_misses").unwrap_or(0);
        self.phases_us = outcome
            .metrics
            .phases()
            .iter()
            .map(|&(name, us)| (name.to_owned(), us))
            .collect();
    }

    /// Whether the job failed.
    pub fn failed(&self) -> bool {
        !self.status.is_ok()
    }

    /// Timing of a named phase, if recorded.
    pub fn phase_us(&self, phase: &str) -> Option<u64> {
        self.phases_us
            .iter()
            .find(|(name, _)| name == phase)
            .map(|&(_, us)| us)
    }

    /// Reconstructs a report from the parsed JSON object emitted by
    /// [`JobReport::to_json`] — the receive side of a report travelling
    /// over the daemon wire protocol (the routing tier rebuilds batch-run
    /// reports from extract replies). Missing numeric members default to
    /// zero; an unknown packer name degrades to `None` (the display name
    /// is reporting identity, not pipeline input).
    ///
    /// # Errors
    ///
    /// A missing `name` or an unrecognisable `status` label.
    pub fn from_json(value: &Value) -> Result<JobReport, String> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| "report without \"name\"".to_owned())?
            .to_owned();
        let label = value
            .get("status")
            .and_then(Value::as_str)
            .ok_or_else(|| "report without \"status\"".to_owned())?;
        let detail = value.get("detail").and_then(Value::as_str);
        let status = JobStatus::from_label(label, detail)
            .ok_or_else(|| format!("unknown report status: {label}"))?;
        let packer = value
            .get("packer")
            .and_then(Value::as_str)
            .and_then(PackerId::by_name)
            .map(|id| id.profile().name);
        let num = |key: &str| value.get(key).and_then(Value::as_u64).unwrap_or(0);
        let phases_us = match value.get("phases_us") {
            Some(Value::Obj(members)) => members
                .iter()
                .filter_map(|(phase, us)| us.as_u64().map(|us| (phase.clone(), us)))
                .collect(),
            _ => Vec::new(),
        };
        Ok(JobReport {
            name,
            packer,
            status,
            cached: value
                .get("cached")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            wall_us: num("wall_us"),
            insns: num("insns"),
            frames: num("frames"),
            quickens: num("quickens"),
            dequickens: num("dequickens"),
            superinsn_hits: num("superinsn_hits"),
            methods_collected: num("methods_collected") as usize,
            insns_collected: num("insns_collected"),
            dump_size: num("dump_size") as usize,
            verifier_lints: num("verifier_lints") as usize,
            verifier_errors: num("verifier_errors") as usize,
            typed_methods: num("typed_methods") as usize,
            typed_insns: num("typed_insns"),
            verify_cache_hits: num("verify_cache_hits"),
            verify_cache_misses: num("verify_cache_misses"),
            phases_us,
        })
    }

    /// This job as a JSON object.
    pub fn to_json(&self) -> String {
        let phases: Vec<(&str, String)> = self
            .phases_us
            .iter()
            .map(|(name, us)| (name.as_str(), us.to_string()))
            .collect();
        json::object(&[
            ("name", json::string(&self.name)),
            (
                "packer",
                self.packer.map_or("null".to_owned(), json::string),
            ),
            ("status", json::string(self.status.label())),
            ("cached", self.cached.to_string()),
            (
                "detail",
                self.status
                    .detail()
                    .map_or("null".to_owned(), |d| json::string(&d)),
            ),
            ("wall_us", self.wall_us.to_string()),
            ("insns", self.insns.to_string()),
            ("frames", self.frames.to_string()),
            ("quickens", self.quickens.to_string()),
            ("dequickens", self.dequickens.to_string()),
            ("superinsn_hits", self.superinsn_hits.to_string()),
            ("methods_collected", self.methods_collected.to_string()),
            ("insns_collected", self.insns_collected.to_string()),
            ("dump_size", self.dump_size.to_string()),
            ("verifier_lints", self.verifier_lints.to_string()),
            ("verifier_errors", self.verifier_errors.to_string()),
            ("typed_methods", self.typed_methods.to_string()),
            ("typed_insns", self.typed_insns.to_string()),
            ("verify_cache_hits", self.verify_cache_hits.to_string()),
            ("verify_cache_misses", self.verify_cache_misses.to_string()),
            ("phases_us", json::object(&phases)),
        ])
    }
}

/// Aggregate result of a batch run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole batch, microseconds.
    pub wall_us: u64,
    /// Per-job reports, in submission order.
    pub jobs: Vec<JobReport>,
}

impl RunReport {
    /// Whether every job succeeded.
    pub fn ok(&self) -> bool {
        self.jobs.iter().all(|j| !j.failed())
    }

    /// The jobs that failed.
    pub fn failed(&self) -> Vec<&JobReport> {
        self.jobs.iter().filter(|j| j.failed()).collect()
    }

    /// How many jobs were served from the result store.
    pub fn cache_hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.cached).count()
    }

    /// One-line human summary, plus one line per failed job.
    pub fn summary(&self) -> String {
        let failed = self.failed();
        let hits = self.cache_hits();
        let cached = if hits > 0 {
            format!(", {hits} cached")
        } else {
            String::new()
        };
        let mut out = format!(
            "{} jobs: {} ok, {} failed{cached} ({} workers, {:.1} ms)",
            self.jobs.len(),
            self.jobs.len() - failed.len(),
            failed.len(),
            self.workers,
            self.wall_us as f64 / 1000.0
        );
        for job in failed {
            out.push_str(&format!(
                "\n  FAILED {} [{}]{}",
                job.name,
                job.status.label(),
                job.status
                    .detail()
                    .map_or(String::new(), |d| format!(": {d}"))
            ));
        }
        out
    }

    /// The whole run as a JSON document.
    pub fn to_json(&self) -> String {
        let jobs: Vec<String> = self.jobs.iter().map(JobReport::to_json).collect();
        json::object(&[
            ("workers", self.workers.to_string()),
            ("wall_us", self.wall_us.to_string()),
            ("ok", self.ok().to_string()),
            ("jobs", json::array(&jobs)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(status: JobStatus) -> JobReport {
        JobReport {
            status,
            wall_us: 1500,
            phases_us: vec![("collect".to_owned(), 42), ("verify".to_owned(), 7)],
            ..JobReport::empty("j1".to_owned(), Some("360"))
        }
    }

    #[test]
    fn json_includes_status_and_phases() {
        let j = sample_report(JobStatus::Ok).to_json();
        assert!(j.contains("\"status\": \"ok\""), "{j}");
        assert!(j.contains("\"detail\": null"), "{j}");
        assert!(
            j.contains("\"phases_us\": {\"collect\": 42, \"verify\": 7}"),
            "{j}"
        );
        let j = sample_report(JobStatus::Panicked("boom \"quoted\"".to_owned())).to_json();
        assert!(j.contains("\"status\": \"panicked\""), "{j}");
        assert!(j.contains("boom \\\"quoted\\\""), "{j}");
    }

    #[test]
    fn run_report_summarises_failures() {
        let run = RunReport {
            workers: 2,
            wall_us: 2000,
            jobs: vec![
                sample_report(JobStatus::Ok),
                sample_report(JobStatus::Timeout),
            ],
        };
        assert!(!run.ok());
        assert_eq!(run.failed().len(), 1);
        let s = run.summary();
        assert!(s.contains("1 ok, 1 failed"), "{s}");
        assert!(s.contains("FAILED j1 [timeout]"), "{s}");
        assert!(run.to_json().contains("\"ok\": false"));
    }

    #[test]
    fn phase_lookup() {
        let j = sample_report(JobStatus::Ok);
        assert_eq!(j.phase_us("collect"), Some(42));
        assert_eq!(j.phase_us("missing"), None);
    }

    #[test]
    fn report_round_trips_through_json() {
        for status in [
            JobStatus::Ok,
            JobStatus::Timeout,
            JobStatus::Panicked("boom".to_owned()),
            JobStatus::ValidationFailed(vec!["a".to_owned(), "b".to_owned()]),
        ] {
            let mut report = sample_report(status);
            report.cached = true;
            report.insns = 12;
            report.typed_insns = 9;
            report.verify_cache_hits = 5;
            report.verify_cache_misses = 2;
            let value = json::parse(&report.to_json()).expect("emitted JSON parses");
            let back = JobReport::from_json(&value).expect("round trip");
            assert_eq!(back.name, report.name);
            assert_eq!(back.packer, report.packer);
            assert_eq!(back.status.label(), report.status.label());
            assert_eq!(back.status.detail(), report.status.detail());
            assert_eq!(back.cached, report.cached);
            assert_eq!(back.wall_us, report.wall_us);
            assert_eq!(back.insns, report.insns);
            assert_eq!(back.typed_insns, report.typed_insns);
            assert_eq!(back.verify_cache_hits, report.verify_cache_hits);
            assert_eq!(back.verify_cache_misses, report.verify_cache_misses);
            assert_eq!(back.phases_us, report.phases_us);
        }
        let bad = json::parse(r#"{"name": "x", "status": "warped"}"#).unwrap();
        assert!(JobReport::from_json(&bad).is_err());
        let anonymous = json::parse(r#"{"status": "ok"}"#).unwrap();
        assert!(JobReport::from_json(&anonymous).is_err());
    }
}
