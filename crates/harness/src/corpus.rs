//! Corpus construction: (generated app × packer profile) work-lists for
//! smoke runs and scale experiments.

use dexlego_droidbench::appgen::corpus_apps;
use dexlego_packer::PackerId;

use crate::job::{JobSpec, DEFAULT_FUEL};

/// Parameters of a generated corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of generated apps.
    pub apps: usize,
    /// Instruction-count base; app sizes step up from here.
    pub base_insns: usize,
    /// Packer profiles to cross with every app (`None` = plain).
    pub packers: Vec<Option<PackerId>>,
    /// Fuzzing seeds per job.
    pub seeds: Vec<u64>,
    /// Callback events per session.
    pub events: usize,
    /// Per-job fuel.
    pub fuel: u64,
    /// Whether jobs differentially check extracted behaviour.
    pub conformance: bool,
}

impl Default for CorpusSpec {
    fn default() -> CorpusSpec {
        CorpusSpec {
            apps: 4,
            base_insns: 200,
            packers: vec![None, Some(PackerId::P360)],
            seeds: vec![1],
            events: 2,
            fuel: DEFAULT_FUEL,
            conformance: true,
        }
    }
}

/// Every packer profile plus the plain (unpacked) configuration — the full
/// Table I sweep.
pub fn all_packers() -> Vec<Option<PackerId>> {
    vec![
        None,
        Some(PackerId::P360),
        Some(PackerId::Alibaba),
        Some(PackerId::Tencent),
        Some(PackerId::Baidu),
        Some(PackerId::Bangcle),
        Some(PackerId::Advanced),
    ]
}

/// Builds the job list: the cross product of generated apps and packer
/// profiles, named `corpus000@plain`, `corpus000@360`, …
pub fn work_list(spec: &CorpusSpec) -> Vec<JobSpec> {
    let apps = corpus_apps(spec.apps, spec.base_insns);
    let mut jobs = Vec::with_capacity(apps.len() * spec.packers.len());
    for (name, app) in &apps {
        for &packer in &spec.packers {
            let tag = packer.map_or("plain", |id| id.profile().name);
            let mut job = JobSpec::new(&format!("{name}@{tag}"), app.dex.clone(), &app.entry);
            job.packer = packer;
            job.seeds = spec.seeds.clone();
            job.events = spec.events;
            job.fuel = spec.fuel;
            job.check_conformance = spec.conformance;
            jobs.push(job);
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_list_is_the_cross_product() {
        let spec = CorpusSpec {
            apps: 2,
            base_insns: 80,
            packers: all_packers(),
            ..CorpusSpec::default()
        };
        let jobs = work_list(&spec);
        assert_eq!(jobs.len(), 2 * 7);
        assert_eq!(jobs[0].name, "corpus000@plain");
        assert_eq!(jobs[1].name, "corpus000@360");
        // Names are unique.
        let mut names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
        // The re-hiding profile drives onCreate only (see
        // JobSpec::effective_events).
        let advanced = jobs
            .iter()
            .find(|j| j.packer == Some(PackerId::Advanced))
            .unwrap();
        assert_eq!(advanced.effective_events(), 0);
        assert!(jobs[0].effective_events() > 0);
    }
}
