#![forbid(unsafe_code)]

//! The corpus-scale batch-extraction harness.
//!
//! DexLego's evaluation runs the collect/reassemble pipeline over whole
//! corpora of (application, packer-profile) pairs. This crate makes such
//! runs practical:
//!
//! - **Sharding** ([`pool`]): a work-list of [`JobSpec`]s is fed through a
//!   bounded queue to a `std::thread` worker pool; results stream back and
//!   are reassembled in submission order.
//! - **Fault isolation** ([`job`]): each job runs in its own freshly
//!   constructed [`Runtime`], wrapped in `catch_unwind` so a panicking
//!   interpreter run is reported as a failed job instead of killing the
//!   batch, and with a *fuel* (instruction-budget) timeout so a runaway
//!   loop in a sample becomes a reported [`JobStatus::Timeout`].
//! - **Reporting** ([`report`]): every job yields a structured
//!   [`JobReport`] — status, collection counts, reassembly/verifier
//!   outcome, wall time, interpreted-instruction count, and the per-phase
//!   pipeline timings recorded by [`dexlego_core::PipelineMetrics`] —
//!   aggregated into a [`RunReport`] serialisable as JSON.
//! - **Conformance** ([`conformance`]): differential checking that the
//!   extracted+reassembled DEX behaves like the original — equal observable
//!   event streams (method entries, field writes, branch outcomes).
//! - **Corpus generation** ([`corpus`]): work-lists over generated apps ×
//!   packer profiles for smoke runs and scale experiments.
//! - **Result caching** ([`cache`]): jobs are content-addressed
//!   (input DEX + profile + parameters + extractor version) into the
//!   persistent `dexlego-store`, so identical extractions are served from
//!   disk and a rerun of the same corpus is near-free
//!   ([`cache::run_batch_cached`]).
//! - **Persistent pool** ([`pool::JobPool`]): the long-lived,
//!   bounded-admission variant of the batch pool that the `dexlegod`
//!   service dispatches requests onto.
//!
//! The generic layer ([`pool::parallel_map`], [`pool::run_tasks`]) is what
//! `dexlego-bench` uses to execute every paper experiment with parallel
//! execution and panic capture.
//!
//! [`Runtime`]: dexlego_runtime::Runtime
//! [`JobStatus::Timeout`]: job::JobStatus::Timeout
//!
//! # Example
//!
//! ```
//! use dexlego_harness::{corpus, pool};
//!
//! let spec = corpus::CorpusSpec {
//!     apps: 2,
//!     base_insns: 80,
//!     ..corpus::CorpusSpec::default()
//! };
//! let jobs = corpus::work_list(&spec);
//! let report = pool::run_batch(jobs, &pool::HarnessConfig::with_workers(2));
//! assert!(report.ok(), "{}", report.summary());
//! ```

pub mod cache;
pub mod conformance;
pub mod corpus;
pub mod job;
pub mod json;
pub mod pool;
pub mod report;

pub use cache::{execute_job_cached, job_key, run_batch_cached};
pub use conformance::{check_reveal, diff_traces, trace_app, TraceEvent, TraceRecorder};
pub use corpus::{all_packers, work_list, CorpusSpec};
pub use job::{execute_job, execute_job_revealing, JobSpec, JobStatus, DEFAULT_FUEL};
pub use pool::{
    default_workers, parallel_map, parallel_map_expect, resolve_workers, run_batch, run_batch_with,
    run_tasks, HarnessConfig, JobPool, JobResult, PoolExecutor, Task, WORKERS_ENV,
};
pub use report::{JobReport, RunReport};
