//! Minimal hand-rolled JSON (the workspace is dependency-free, so there is
//! no serde).
//!
//! Two halves:
//!
//! * **Emission** ([`escape`], [`string`], [`object`], [`array`]) — what
//!   the run reports need: objects, arrays, strings, unsigned integers.
//! * **Parsing** ([`parse`], [`Value`]) — what the `dexlegod` wire
//!   protocol needs: a strict recursive-descent parser for one JSON
//!   document. Numbers keep their raw token ([`Value::Num`]) so `u64`
//!   values (e.g. fuzzing seeds) survive without a float round-trip.

/// Escapes `s` for use inside a JSON string literal (quotes not included).
///
/// Besides the mandatory escapes, U+2028 LINE SEPARATOR and U+2029
/// PARAGRAPH SEPARATOR are escaped: both are legal raw in JSON but are
/// line terminators in JavaScript source, so leaving them raw would make
/// emitted reports unsafe to embed in JS consumers.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{2028}' => out.push_str("\\u2028"),
            '\u{2029}' => out.push_str("\\u2029"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON string literal, quotes included.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// An object from already-serialised `(key, value)` members.
pub fn object(members: &[(&str, String)]) -> String {
    let body: Vec<String> = members
        .iter()
        .map(|(k, v)| format!("{}: {v}", string(k)))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// An array from already-serialised elements.
pub fn array(elements: &[String]) -> String {
    format!("[{}]", elements.join(", "))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token so integer values are lossless.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys: first wins on lookup).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact `u64` (integers only — floats and negatives
    /// return `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialises the value back to one JSON document. Numbers re-emit
    /// their raw token, so a parse→serialise round trip is lossless for
    /// `u64` payloads; object member order is preserved.
    pub fn to_json(&self) -> String {
        match self {
            Value::Null => "null".to_owned(),
            Value::Bool(b) => b.to_string(),
            Value::Num(raw) => raw.clone(),
            Value::Str(s) => string(s),
            Value::Arr(items) => {
                let elements: Vec<String> = items.iter().map(Value::to_json).collect();
                array(&elements)
            }
            Value::Obj(members) => {
                let rendered: Vec<(String, String)> = members
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect();
                let borrowed: Vec<(&str, String)> = rendered
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.clone()))
                    .collect();
                object(&borrowed)
            }
        }
    }
}

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// content rejected).
///
/// # Errors
///
/// A message naming the byte offset and what went wrong.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { s: input, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.s[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            got => Err(format!(
                "expected '{want}' at byte {}, found {got:?}",
                self.pos
            )),
        }
    }

    fn eat(&mut self, literal: &str, value: Value) -> Result<Value, String> {
        if self.s[self.pos..].starts_with(literal) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.eat("true", Value::Bool(true)),
            Some('f') => self.eat("false", Value::Bool(false)),
            Some('n') => self.eat("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(members)),
                got => return Err(format!("expected ',' or '}}', found {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                got => return Err(format!("expected ',' or ']', found {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => return Ok(out),
                Some('\\') => out.push(self.escape_char()?),
                Some(c) if (c as u32) < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos))
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn escape_char(&mut self) -> Result<char, String> {
        match self.bump() {
            Some('"') => Ok('"'),
            Some('\\') => Ok('\\'),
            Some('/') => Ok('/'),
            Some('b') => Ok('\u{8}'),
            Some('f') => Ok('\u{c}'),
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('t') => Ok('\t'),
            Some('u') => {
                let unit = self.hex4()?;
                // Surrogate pair: a high surrogate must be followed by an
                // escaped low surrogate.
                if (0xd800..0xdc00).contains(&unit) {
                    if self.bump() != Some('\\') || self.bump() != Some('u') {
                        return Err("lone high surrogate".to_owned());
                    }
                    let low = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&low) {
                        return Err("invalid low surrogate".to_owned());
                    }
                    let cp = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                    char::from_u32(cp).ok_or_else(|| "invalid surrogate pair".to_owned())
                } else if (0xdc00..0xe000).contains(&unit) {
                    Err("lone low surrogate".to_owned())
                } else {
                    char::from_u32(unit).ok_or_else(|| "invalid \\u escape".to_owned())
                }
            }
            got => Err(format!("invalid escape {got:?}")),
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|c| c.to_digit(16))
                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
            value = (value << 4) | digit;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let raw = &self.s[start..self.pos];
        // Validate the token shape by parsing it; the raw text is kept.
        raw.parse::<f64>()
            .map_err(|_| format!("invalid number {raw:?} at byte {start}"))?;
        Ok(Value::Num(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn escapes_js_line_separators() {
        // U+2028/U+2029 are valid raw JSON but terminate lines in
        // JavaScript; they must leave as escapes.
        assert_eq!(escape("a\u{2028}b\u{2029}c"), "a\\u2028b\\u2029c");
        let emitted = string("x\u{2028}y");
        assert!(!emitted.contains('\u{2028}'));
        // And the parser round-trips them back to the real characters.
        assert_eq!(
            parse(&emitted).unwrap(),
            Value::Str("x\u{2028}y".to_owned())
        );
    }

    #[test]
    fn composes_objects() {
        let o = object(&[("a", "1".to_owned()), ("b", string("x"))]);
        assert_eq!(o, "{\"a\": 1, \"b\": \"x\"}");
        assert_eq!(array(&["1".to_owned(), "2".to_owned()]), "[1, 2]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".to_owned()));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
    }

    #[test]
    fn u64_numbers_are_lossless() {
        let big = u64::MAX.to_string();
        assert_eq!(parse(&big).unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"op": "extract", "seeds": [1, 2], "packer": null, "deep": {"x": true}}"#)
            .unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("extract"));
        let seeds: Vec<u64> = v
            .get("seeds")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        assert_eq!(seeds, vec![1, 2]);
        assert!(v.get("packer").unwrap().is_null());
        assert_eq!(
            v.get("deep").unwrap().get("x").and_then(Value::as_bool),
            Some(true)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"\\Aé""#).unwrap(),
            Value::Str("a\n\t\"\\Aé".to_owned())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".to_owned()));
    }

    #[test]
    fn emission_parses_back() {
        let doc = object(&[
            ("name", string("job \"one\"\nline")),
            ("n", "12345".to_owned()),
            ("tags", array(&[string("a"), string("b")])),
            ("none", "null".to_owned()),
        ]);
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("job \"one\"\nline")
        );
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(12345));
        assert_eq!(v.get("tags").and_then(Value::as_array).unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "true false",
            r#""\ud83d""#,
            r#""\q""#,
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn serialisation_round_trips_losslessly() {
        for doc in [
            r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"n": 18446744073709551615}}"#,
            r#"[{"k": "v"}, 0, -3.5]"#,
            r#""just a string""#,
        ] {
            let value = parse(doc).expect("parses");
            let emitted = value.to_json();
            assert_eq!(parse(&emitted).expect("re-parses"), value, "{doc}");
        }
        // Exact-token check: a u64 past f64 precision survives verbatim.
        let value = parse("18446744073709551615").unwrap();
        assert_eq!(value.to_json(), "18446744073709551615");
    }
}
