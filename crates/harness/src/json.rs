//! Minimal hand-rolled JSON emission (the workspace is dependency-free, so
//! there is no serde). Only what the run report needs: objects, arrays,
//! strings, and unsigned integers.

/// Escapes `s` for use inside a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON string literal, quotes included.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// An object from already-serialised `(key, value)` members.
pub fn object(members: &[(&str, String)]) -> String {
    let body: Vec<String> = members
        .iter()
        .map(|(k, v)| format!("{}: {v}", string(k)))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// An array from already-serialised elements.
pub fn array(elements: &[String]) -> String {
    format!("[{}]", elements.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn composes_objects() {
        let o = object(&[("a", "1".to_owned()), ("b", string("x"))]);
        assert_eq!(o, "{\"a\": 1, \"b\": \"x\"}");
        assert_eq!(array(&["1".to_owned(), "2".to_owned()]), "[1, 2]");
    }
}
