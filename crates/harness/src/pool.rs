//! The sharded worker pool.
//!
//! Two layers:
//!
//! * [`run_batch`] — the harness proper: feeds [`JobSpec`]s through a
//!   *bounded* queue (`sync_channel`) to `std::thread` workers, each of
//!   which executes jobs via [`execute_job`] (own runtime, panic capture,
//!   fuel timeout) and streams [`JobReport`]s back; results are reassembled
//!   in submission order into a [`RunReport`].
//! * [`parallel_map`] / [`run_tasks`] — the generic work-stealing layer the
//!   bench drivers use: apply a function (or a list of boxed tasks) across
//!   a worker pool with per-item panic capture.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel};
use std::sync::Mutex;
use std::time::Instant;

use crate::job::{execute_job, panic_message, JobSpec};
use crate::report::{JobReport, RunReport};

/// The machine's available parallelism (≥ 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Worker-pool configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded job-queue depth. Small on purpose: job specs carry whole
    /// DEX models, and a deep queue would just hold memory that workers
    /// cannot get to yet.
    pub queue_depth: usize,
}

impl HarnessConfig {
    /// A config with `workers` threads and a queue depth of twice that.
    pub fn with_workers(workers: usize) -> HarnessConfig {
        let workers = workers.max(1);
        HarnessConfig {
            workers,
            queue_depth: workers * 2,
        }
    }
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig::with_workers(default_workers())
    }
}

/// Runs every job across the worker pool and aggregates the reports in
/// submission order. Individual job failures (panic, timeout, verifier
/// rejection, …) are recorded in their report and never abort the batch.
pub fn run_batch(jobs: Vec<JobSpec>, config: &HarnessConfig) -> RunReport {
    let start = Instant::now();
    let n = jobs.len();
    let workers = config.workers.max(1).min(n.max(1));
    let (job_tx, job_rx) = sync_channel::<(usize, JobSpec)>(config.queue_depth.max(1));
    let job_rx = Mutex::new(job_rx);
    let (report_tx, report_rx) = channel::<(usize, JobReport)>();
    let mut slots: Vec<Option<JobReport>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = &job_rx;
            let report_tx = report_tx.clone();
            scope.spawn(move || loop {
                // Hold the lock only for the dequeue, not the job.
                let next = job_rx.lock().expect("job queue lock").recv();
                let Ok((index, spec)) = next else { break };
                let report = execute_job(spec);
                if report_tx.send((index, report)).is_err() {
                    break;
                }
            });
        }
        drop(report_tx);
        // The bounded send blocks once `queue_depth` jobs are in flight,
        // so producing and consuming overlap instead of buffering the
        // whole corpus. Reports drain afterwards; the report channel is
        // unbounded, so workers never block on it.
        for item in jobs.into_iter().enumerate() {
            job_tx.send(item).expect("a worker is always receiving");
        }
        drop(job_tx);
        for (index, report) in report_rx {
            slots[index] = Some(report);
        }
    });

    RunReport {
        workers,
        wall_us: start.elapsed().as_micros() as u64,
        jobs: slots
            .into_iter()
            .map(|s| s.expect("every job reports exactly once"))
            .collect(),
    }
}

/// Applies `f` to every item on a pool of `workers` threads, preserving
/// order. Each application is individually panic-captured: a panicking item
/// yields `Err(message)` without disturbing its neighbours.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<Result<R, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let items = &items;
            let results = &results;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i]
                    .lock()
                    .expect("item lock")
                    .take()
                    .expect("each index claimed once");
                let out = catch_unwind(AssertUnwindSafe(|| f(item)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                *results[i].lock().expect("result lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every index processed")
        })
        .collect()
}

/// [`parallel_map`] for infallible work: panics (with the original message)
/// if any item panicked. Bench drivers use this where a failure should
/// fail the whole experiment.
pub fn parallel_map_expect<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map(items, workers, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("parallel task failed: {e}")))
        .collect()
}

/// A named unit of heterogeneous work for [`run_tasks`].
pub struct Task<R> {
    /// Display name (used in error reporting).
    pub name: String,
    /// The work itself.
    pub run: Box<dyn FnOnce() -> R + Send>,
}

impl<R> Task<R> {
    /// Boxes `run` under `name`.
    pub fn new(name: &str, run: impl FnOnce() -> R + Send + 'static) -> Task<R> {
        Task {
            name: name.to_owned(),
            run: Box::new(run),
        }
    }
}

impl<R> std::fmt::Debug for Task<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("name", &self.name).finish()
    }
}

/// Runs named tasks across the pool, returning `(name, result)` pairs in
/// submission order.
pub fn run_tasks<R: Send>(tasks: Vec<Task<R>>, workers: usize) -> Vec<(String, Result<R, String>)> {
    let names: Vec<String> = tasks.iter().map(|t| t.name.clone()).collect();
    let results = parallel_map(tasks, workers, |t| (t.run)());
    names.into_iter().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..37).collect(), 4, |i: i32| i * 2);
        assert_eq!(out.len(), 37);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i as i32 * 2);
        }
    }

    #[test]
    fn parallel_map_captures_panics_per_item() {
        let out = parallel_map(vec![1, 2, 3], 2, |i: i32| {
            assert!(i != 2, "item two explodes");
            i
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        let err = out[1].as_ref().unwrap_err();
        assert!(err.contains("item two explodes"), "{err}");
    }

    #[test]
    fn parallel_map_handles_empty_and_single_worker() {
        assert!(parallel_map(Vec::<i32>::new(), 4, |i| i).is_empty());
        let out = parallel_map(vec![5, 6], 1, |i: i32| i + 1);
        assert_eq!(out, vec![Ok(6), Ok(7)]);
    }

    #[test]
    fn run_tasks_names_results() {
        let tasks = vec![
            Task::new("fine", || 1),
            Task::new("broken", || panic!("nope")),
        ];
        let out = run_tasks(tasks, 2);
        assert_eq!(out[0].0, "fine");
        assert_eq!(out[0].1, Ok(1));
        assert_eq!(out[1].0, "broken");
        assert!(out[1].1.as_ref().unwrap_err().contains("nope"));
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
        assert!(HarnessConfig::default().queue_depth >= 2);
    }
}
