//! The sharded worker pool.
//!
//! Two layers:
//!
//! * [`run_batch`] — the harness proper: feeds [`JobSpec`]s through a
//!   *bounded* queue (`sync_channel`) to `std::thread` workers, each of
//!   which executes jobs via [`execute_job`] (own runtime, panic capture,
//!   fuel timeout) and streams [`JobReport`]s back; results are reassembled
//!   in submission order into a [`RunReport`].
//! * [`parallel_map`] / [`run_tasks`] — the generic work-stealing layer the
//!   bench drivers use: apply a function (or a list of boxed tasks) across
//!   a worker pool with per-item panic capture.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::job::{execute_job, execute_job_revealing, JobSpec};
use crate::report::{JobReport, RunReport};

// The generic layer lives in `dexlego-pool` (dependency-free, below every
// other crate) so the verifier shares it; re-exported here so existing
// `harness::pool` callers keep their import paths.
pub use dexlego_pool::{
    default_workers, parallel_map, parallel_map_expect, resolve_workers, run_tasks, Task,
    WORKERS_ENV,
};

/// Worker-pool configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded job-queue depth. Small on purpose: job specs carry whole
    /// DEX models, and a deep queue would just hold memory that workers
    /// cannot get to yet.
    pub queue_depth: usize,
}

impl HarnessConfig {
    /// A config with `workers` threads and a queue depth of twice that.
    pub fn with_workers(workers: usize) -> HarnessConfig {
        let workers = workers.max(1);
        HarnessConfig {
            workers,
            queue_depth: workers * 2,
        }
    }
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig::with_workers(default_workers())
    }
}

/// Runs every job across the worker pool and aggregates the reports in
/// submission order. Individual job failures (panic, timeout, verifier
/// rejection, …) are recorded in their report and never abort the batch.
pub fn run_batch(jobs: Vec<JobSpec>, config: &HarnessConfig) -> RunReport {
    run_batch_with(jobs, config, execute_job)
}

/// [`run_batch`] with a pluggable per-job executor — the seam through which
/// cache-aware runs ([`crate::cache::run_batch_cached`]) reuse the sharding
/// machinery.
pub fn run_batch_with<E>(jobs: Vec<JobSpec>, config: &HarnessConfig, exec: E) -> RunReport
where
    E: Fn(JobSpec) -> JobReport + Sync,
{
    let start = Instant::now();
    let n = jobs.len();
    let workers = config.workers.max(1).min(n.max(1));
    let (job_tx, job_rx) = sync_channel::<(usize, JobSpec)>(config.queue_depth.max(1));
    let job_rx = Mutex::new(job_rx);
    let (report_tx, report_rx) = channel::<(usize, JobReport)>();
    let mut slots: Vec<Option<JobReport>> = (0..n).map(|_| None).collect();

    let exec = &exec;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = &job_rx;
            let report_tx = report_tx.clone();
            scope.spawn(move || loop {
                // Hold the lock only for the dequeue, not the job.
                let next = job_rx.lock().expect("job queue lock").recv();
                let Ok((index, spec)) = next else { break };
                let report = exec(spec);
                if report_tx.send((index, report)).is_err() {
                    break;
                }
            });
        }
        drop(report_tx);
        // The bounded send blocks once `queue_depth` jobs are in flight,
        // so producing and consuming overlap instead of buffering the
        // whole corpus. Reports drain afterwards; the report channel is
        // unbounded, so workers never block on it.
        for item in jobs.into_iter().enumerate() {
            job_tx.send(item).expect("a worker is always receiving");
        }
        drop(job_tx);
        for (index, report) in report_rx {
            slots[index] = Some(report);
        }
    });

    RunReport {
        workers,
        wall_us: start.elapsed().as_micros() as u64,
        jobs: slots
            .into_iter()
            .map(|s| s.expect("every job reports exactly once"))
            .collect(),
    }
}

/// The per-job executor a [`JobPool`] runs: job in, report plus (for
/// successful jobs) serialised revealed DEX out.
pub type PoolExecutor = Arc<dyn Fn(JobSpec) -> JobResult + Send + Sync>;

/// What a pool job yields: the report and, for successful jobs, the
/// serialised revealed DEX.
pub type JobResult = (JobReport, Option<Vec<u8>>);

/// Where a pool job's result goes: back over a channel (the blocking
/// callers) or into a callback invoked on the worker thread (the event-loop
/// server, which must never block a reader on `recv`).
enum ReplySink {
    Channel(std::sync::mpsc::Sender<JobResult>),
    Notify(Box<dyn FnOnce(JobResult) + Send>),
}

struct PoolJob {
    spec: JobSpec,
    reply: ReplySink,
}

/// A *persistent* worker pool with bounded admission — the service-facing
/// sibling of [`run_batch`]. Where `run_batch` owns a finite work-list and
/// blocks the producer on a full queue, a daemon must never block its
/// request handlers on extraction backlog: [`JobPool::try_submit`] either
/// enqueues the job and hands back a receiver for its result, or returns
/// the job to the caller immediately so it can answer `overloaded`.
///
/// Dropping the pool (or calling [`JobPool::shutdown`]) closes admission
/// and *drains*: queued and in-flight jobs run to completion before the
/// worker threads exit.
pub struct JobPool {
    tx: Option<SyncSender<PoolJob>>,
    workers: Vec<JoinHandle<()>>,
    in_flight: Arc<AtomicUsize>,
}

impl JobPool {
    /// A pool of `workers` threads executing jobs via
    /// [`execute_job_revealing`], admitting at most `queue_depth` queued
    /// jobs beyond the ones being executed.
    pub fn new(workers: usize, queue_depth: usize) -> JobPool {
        JobPool::with_executor(workers, queue_depth, Arc::new(execute_job_revealing))
    }

    /// A pool with a custom executor — how `dexlegod` threads its result
    /// store into every job, and how tests make workers block on cue.
    pub fn with_executor(workers: usize, queue_depth: usize, exec: PoolExecutor) -> JobPool {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<PoolJob>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let exec = Arc::clone(&exec);
                let in_flight = Arc::clone(&in_flight);
                std::thread::spawn(move || loop {
                    let next = rx.lock().expect("pool queue lock").recv();
                    let Ok(job) = next else { break };
                    let result = exec(job.spec);
                    // Decrement before replying: once a requester can see
                    // its result, in_flight must not still count the job.
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    match job.reply {
                        // A dropped receiver just means the requester went
                        // away; the job still ran and (if cached) was
                        // stored.
                        ReplySink::Channel(tx) => {
                            let _ = tx.send(result);
                        }
                        ReplySink::Notify(notify) => notify(result),
                    }
                })
            })
            .collect();
        JobPool {
            tx: Some(tx),
            workers: handles,
            in_flight,
        }
    }

    /// Submits `spec` if the queue has room. `Ok` carries the receiver the
    /// job's result will arrive on; `Err` returns the spec unchanged — the
    /// pool is saturated and the caller should shed load.
    #[allow(clippy::result_large_err)] // the Err *is* the returned job
    pub fn try_submit(&self, spec: JobSpec) -> Result<Receiver<JobResult>, JobSpec> {
        let (reply, result_rx) = channel();
        self.submit_sink(spec, ReplySink::Channel(reply))
            .map(|()| result_rx)
    }

    /// [`JobPool::try_submit`] delivering the result through `notify`
    /// instead of a channel — the dispatch hook the event-loop server
    /// uses. `notify` runs *on the worker thread* right after the job
    /// completes, so it must be cheap and non-blocking (the server's
    /// implementation pushes onto a completion queue and writes one wake
    /// byte). On `Err` the spec comes back and `notify` is dropped unrun.
    #[allow(clippy::result_large_err)] // the Err *is* the returned job
    pub fn try_submit_notify(
        &self,
        spec: JobSpec,
        notify: Box<dyn FnOnce(JobResult) + Send>,
    ) -> Result<(), JobSpec> {
        self.submit_sink(spec, ReplySink::Notify(notify))
    }

    #[allow(clippy::result_large_err)]
    fn submit_sink(&self, spec: JobSpec, reply: ReplySink) -> Result<(), JobSpec> {
        let tx = self.tx.as_ref().expect("pool not shut down");
        // Count before sending so a worker's decrement can never race the
        // increment below zero.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(PoolJob { spec, reply }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job) | TrySendError::Disconnected(job)) => {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                Err(job.spec)
            }
        }
    }

    /// Jobs admitted but not yet completed (queued + executing).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Closes admission and blocks until every admitted job has completed
    /// and the workers have exited.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        assert!(HarnessConfig::default().queue_depth >= 2);
        assert!(HarnessConfig::default().workers >= 1);
    }

    fn stub_spec(name: &str) -> JobSpec {
        // The blocking-executor tests never run the spec, so an empty DEX
        // is fine.
        JobSpec::new(name, dexlego_dex::DexFile::new(), "LMain;")
    }

    #[test]
    fn job_pool_rejects_when_saturated_and_drains_on_shutdown() {
        // Executor blocks until released, making queue occupancy
        // deterministic: 1 worker executing + 1 queued = full.
        let (release_tx, release_rx) = channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let done = Arc::new(AtomicUsize::new(0));
        let exec: PoolExecutor = {
            let release_rx = Arc::clone(&release_rx);
            let done = Arc::clone(&done);
            Arc::new(move |spec: JobSpec| {
                release_rx
                    .lock()
                    .expect("release lock")
                    .recv()
                    .expect("released");
                done.fetch_add(1, Ordering::SeqCst);
                (
                    crate::report::JobReport::empty(spec.name, None),
                    Some(vec![1, 2, 3]),
                )
            })
        };
        let pool = JobPool::with_executor(1, 1, exec);

        let r1 = pool.try_submit(stub_spec("a")).expect("first admitted");
        // Wait until the worker has dequeued job a (the queue is empty
        // again), then fill the queue with job b.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let r2 = loop {
            match pool.try_submit(stub_spec("b")) {
                Ok(rx) => break rx,
                Err(_) if Instant::now() < deadline => std::thread::yield_now(),
                Err(_) => panic!("queue never accepted the second job"),
            }
        };
        // Depending on dequeue timing the pool may briefly have capacity
        // for one more; saturate until it refuses.
        let mut extra = Vec::new();
        let rejected = loop {
            match pool.try_submit(stub_spec("c")) {
                Ok(rx) => {
                    extra.push(rx);
                    assert!(extra.len() <= 1, "queue depth 1 admitted too much");
                }
                Err(spec) => break spec,
            }
        };
        assert_eq!(rejected.name, "c");
        assert_eq!(pool.in_flight(), 2 + extra.len());

        // Release every admitted job and require the drain to finish them.
        for _ in 0..(2 + extra.len()) {
            release_tx.send(()).unwrap();
        }
        assert!(r1.recv().unwrap().0.status.is_ok());
        assert!(r2.recv().unwrap().0.status.is_ok());
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 2 + extra.len());
    }

    #[test]
    fn job_pool_notify_hook_delivers_from_the_worker() {
        let exec: PoolExecutor = Arc::new(|spec: JobSpec| {
            (
                crate::report::JobReport::empty(spec.name, None),
                Some(vec![9]),
            )
        });
        let pool = JobPool::with_executor(1, 1, exec);
        let (tx, rx) = channel();
        pool.try_submit_notify(
            stub_spec("n"),
            Box::new(move |(report, dex)| {
                tx.send((report.name, dex)).unwrap();
            }),
        )
        .expect("admitted");
        let (name, dex) = rx.recv().unwrap();
        assert_eq!(name, "n");
        assert_eq!(dex, Some(vec![9]));
        pool.shutdown();
    }

    #[test]
    fn job_pool_runs_real_jobs() {
        let pool = JobPool::new(2, 4);
        let apps = dexlego_droidbench::appgen::corpus_apps(1, 60);
        let (_, app) = &apps[0];
        let rx = pool
            .try_submit(JobSpec::new("real", app.dex.clone(), &app.entry))
            .expect("admitted");
        let (report, dex) = rx.recv().unwrap();
        assert!(report.status.is_ok(), "{:?}", report.status);
        let bytes = dex.expect("successful job carries revealed DEX");
        assert!(dexlego_dex::reader::read_dex(&bytes).is_ok());
        pool.shutdown();
    }
}
