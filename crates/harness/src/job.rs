//! Job specification and isolated execution.
//!
//! A [`JobSpec`] names one (application, packer-profile) extraction run.
//! [`execute_job`] runs it inside its own freshly constructed [`Runtime`]
//! with two isolation layers:
//!
//! * **panic capture** — the whole run is wrapped in `catch_unwind`, so a
//!   panicking interpreter or native becomes [`JobStatus::Panicked`]
//!   instead of tearing down the worker pool;
//! * **fuel timeout** — the runtime's per-execution instruction budget is
//!   set from [`JobSpec::fuel`]; a runaway loop exhausts it and the job is
//!   reported as [`JobStatus::Timeout`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use dexlego_core::pipeline::reveal;
use dexlego_core::{DexLegoError, RevealOutcome};
use dexlego_dex::writer::write_dex;
use dexlego_dex::DexFile;
use dexlego_droidbench::{register_tamper_specs, TamperSpec};
use dexlego_packer::{pack, PackerError, PackerId};
use dexlego_runtime::class::SigKey;
use dexlego_runtime::observer::RuntimeObserver;
use dexlego_runtime::{Env, Runtime, RuntimeError, Slot};

use crate::conformance::check_reveal;
use crate::report::JobReport;

/// Default per-job instruction budget. Generous for any corpus app (the
/// biggest scale experiments interpret a few million instructions) while
/// still bounding a runaway loop to well under a second of wall time.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// One unit of harness work: extract (and optionally conformance-check)
/// one app, optionally through a packer profile.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique job name for the report, e.g. `corpus003@360`.
    pub name: String,
    /// The original application DEX.
    pub dex: DexFile,
    /// Entry activity descriptor.
    pub entry: String,
    /// Pack the app with this profile before extraction (None = run the
    /// plain app).
    pub packer: Option<PackerId>,
    /// Bytecode-tampering natives to register (self-modifying samples).
    pub tampers: Vec<TamperSpec>,
    /// Fuzzing seeds; each seed drives one input session.
    pub seeds: Vec<u64>,
    /// Callback events to fire per session.
    pub events: usize,
    /// Instruction budget for the job's runtime (the timeout mechanism).
    pub fuel: u64,
    /// Differentially compare original vs extracted behaviour after a
    /// successful reveal. Only meaningful for non-self-modifying apps
    /// (tampering legitimately changes the original's event stream).
    pub check_conformance: bool,
}

impl JobSpec {
    /// A job with default driving parameters (one seed, three events,
    /// default fuel, plain app, no conformance check).
    pub fn new(name: &str, dex: DexFile, entry: &str) -> JobSpec {
        JobSpec {
            name: name.to_owned(),
            dex,
            entry: entry.to_owned(),
            packer: None,
            tampers: Vec::new(),
            seeds: vec![1],
            events: 3,
            fuel: DEFAULT_FUEL,
            check_conformance: false,
        }
    }

    /// Events actually fired after launch. The Advanced (re-hiding) packer
    /// garbles unpacked code in memory once the entry activity returns, so
    /// firing callbacks afterwards would enter methods whose bodies no
    /// longer decode — collection would record empty methods and the job
    /// would fail validation for a reason that is an artifact of the
    /// driver, not of extraction. Those jobs drive `onCreate` only.
    pub fn effective_events(&self) -> usize {
        match self.packer {
            Some(id) if id.profile().rehide_after_run => 0,
            _ => self.events,
        }
    }
}

/// Terminal status of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Extraction succeeded, the reassembled DEX verified, validation and
    /// (if requested) conformance passed.
    Ok,
    /// The instruction budget was exhausted while driving the app.
    Timeout,
    /// The job panicked; payload message attached.
    Panicked(String),
    /// The app could not be packed or loaded at all.
    SetupFailed(String),
    /// Reassembly of the collection failed.
    ReassemblyFailed(String),
    /// The reassembled DEX was rejected by the bytecode verifier.
    VerifierRejected(String),
    /// [`validate_reveal`](dexlego_core::pipeline::validate_reveal)
    /// findings were non-empty.
    ValidationFailed(Vec<String>),
    /// The extracted DEX's event stream diverged from the original's.
    ConformanceMismatch(String),
}

impl JobStatus {
    /// Whether the job succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }

    /// Stable machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Timeout => "timeout",
            JobStatus::Panicked(_) => "panicked",
            JobStatus::SetupFailed(_) => "setup-failed",
            JobStatus::ReassemblyFailed(_) => "reassembly-failed",
            JobStatus::VerifierRejected(_) => "verifier-rejected",
            JobStatus::ValidationFailed(_) => "validation-failed",
            JobStatus::ConformanceMismatch(_) => "conformance-mismatch",
        }
    }

    /// Reconstructs a status from its wire `label` and optional `detail` —
    /// the inverse of [`JobStatus::label`]/[`JobStatus::detail`], used when
    /// a report travels back over the daemon protocol. Unknown labels map
    /// to `None` so protocol evolution degrades to "failed, unrecognised"
    /// at the caller rather than a panic here.
    pub fn from_label(label: &str, detail: Option<&str>) -> Option<JobStatus> {
        let msg = || detail.unwrap_or_default().to_owned();
        Some(match label {
            "ok" => JobStatus::Ok,
            "timeout" => JobStatus::Timeout,
            "panicked" => JobStatus::Panicked(msg()),
            "setup-failed" => JobStatus::SetupFailed(msg()),
            "reassembly-failed" => JobStatus::ReassemblyFailed(msg()),
            "verifier-rejected" => JobStatus::VerifierRejected(msg()),
            "validation-failed" => JobStatus::ValidationFailed(
                detail
                    .map(|d| d.split("; ").map(str::to_owned).collect())
                    .unwrap_or_default(),
            ),
            "conformance-mismatch" => JobStatus::ConformanceMismatch(msg()),
            _ => return None,
        })
    }

    /// Human-readable failure detail, if any.
    pub fn detail(&self) -> Option<String> {
        match self {
            JobStatus::Ok | JobStatus::Timeout => None,
            JobStatus::Panicked(m)
            | JobStatus::SetupFailed(m)
            | JobStatus::ReassemblyFailed(m)
            | JobStatus::VerifierRejected(m)
            | JobStatus::ConformanceMismatch(m) => Some(m.clone()),
            JobStatus::ValidationFailed(findings) => Some(findings.join("; ")),
        }
    }
}

pub(crate) use dexlego_pool::panic_message;

/// Runs a job with panic capture. Never panics itself; a panicking job
/// yields a [`JobStatus::Panicked`] report.
pub fn execute_job(spec: JobSpec) -> JobReport {
    execute_job_revealing(spec).0
}

/// Like [`execute_job`], but additionally returns the serialised revealed
/// DEX when the job succeeded — what the result store caches and the
/// `dexlegod` service sends back over the wire. `None` whenever the job
/// did not produce a verified, validated DEX.
pub fn execute_job_revealing(spec: JobSpec) -> (JobReport, Option<Vec<u8>>) {
    let name = spec.name.clone();
    let packer = spec.packer.map(|id| id.profile().name);
    let start = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| run_job(&spec))) {
        Ok((report, dex)) => {
            let bytes = if report.status.is_ok() {
                dex.as_ref().and_then(|d| write_dex(d).ok())
            } else {
                None
            };
            (report, bytes)
        }
        Err(payload) => (
            JobReport {
                status: JobStatus::Panicked(panic_message(payload.as_ref())),
                wall_us: start.elapsed().as_micros() as u64,
                ..JobReport::empty(name, packer)
            },
            None,
        ),
    }
}

/// Fires up to `events` registered callbacks, mirroring the standard
/// sample driver but reporting budget exhaustion instead of swallowing it.
fn fire_callbacks(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    seed: u64,
    events: usize,
) -> Result<(), RuntimeError> {
    for n in 0..events {
        if rt.callbacks.is_empty() {
            break;
        }
        let pick = (seed as usize + n) % rt.callbacks.len();
        let cb = rt.callbacks[pick].clone();
        rt.callback_depth += 1;
        let outcome = rt.call_method(obs, cb.method, &[Slot::of(cb.receiver), Slot::of(0)]);
        rt.callback_depth -= 1;
        // Other faults are tolerated: a crashing app still yields a
        // (partial) collection.
        if let Err(RuntimeError::BudgetExhausted) = outcome {
            return Err(RuntimeError::BudgetExhausted);
        }
    }
    Ok(())
}

fn run_job(spec: &JobSpec) -> (JobReport, Option<DexFile>) {
    let start = Instant::now();
    let name = spec.name.clone();
    let packer_name = spec.packer.map(|id| id.profile().name);
    let events = spec.effective_events();

    // Pack before the runtime exists: a packing failure is a setup failure.
    let packed = match spec.packer {
        Some(id) => match pack(&spec.dex, &spec.entry, id) {
            Ok(p) => Some(p),
            Err(e) => {
                return (
                    JobReport {
                        status: JobStatus::SetupFailed(format!("pack failed: {e}")),
                        wall_us: start.elapsed().as_micros() as u64,
                        ..JobReport::empty(name, packer_name)
                    },
                    None,
                )
            }
        },
        None => None,
    };

    let mut rt = Runtime::with_env(Env {
        insn_budget: spec.fuel,
        ..Env::default()
    });
    let mut timed_out = false;
    let mut setup_err: Option<String> = None;

    let result = reveal(&mut rt, |rt, obs| match &packed {
        Some(app) => {
            if let Err(e) = app.install_observed(rt, obs) {
                setup_err = Some(format!("install failed: {e}"));
                return;
            }
            register_tamper_specs(rt, &spec.tampers);
            let first_seed = spec.seeds.first().copied().unwrap_or(1);
            rt.input_state = first_seed | 1;
            match app.launch(rt, obs) {
                Err(PackerError::Runtime(RuntimeError::BudgetExhausted)) => {
                    timed_out = true;
                    return;
                }
                Err(PackerError::BadInput(e)) => {
                    setup_err = Some(format!("launch failed: {e}"));
                    return;
                }
                _ => {} // app crashes still leave a valid partial collection
            }
            for &seed in &spec.seeds {
                rt.input_state = seed | 1;
                if fire_callbacks(rt, obs, seed, events).is_err() {
                    timed_out = true;
                    return;
                }
            }
        }
        None => {
            if let Err(e) = rt.load_dex_observed(&spec.dex, "app", obs) {
                setup_err = Some(format!("load failed: {e}"));
                return;
            }
            register_tamper_specs(rt, &spec.tampers);
            for &seed in &spec.seeds {
                rt.input_state = seed | 1;
                let activity = match rt.new_instance(obs, &spec.entry) {
                    Ok(a) => a,
                    Err(RuntimeError::BudgetExhausted) => {
                        timed_out = true;
                        return;
                    }
                    Err(e) => {
                        setup_err = Some(format!("cannot instantiate {}: {e}", spec.entry));
                        return;
                    }
                };
                let Some(class) = rt.find_class(&spec.entry) else {
                    setup_err = Some(format!("{} not linked", spec.entry));
                    return;
                };
                if let Some(on_create) =
                    rt.resolve_method(class, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
                {
                    let outcome =
                        rt.call_method(obs, on_create, &[Slot::of(activity), Slot::of(0)]);
                    if matches!(outcome, Err(RuntimeError::BudgetExhausted)) {
                        timed_out = true;
                        return;
                    }
                }
                if fire_callbacks(rt, obs, seed, events).is_err() {
                    timed_out = true;
                    return;
                }
            }
        }
    });

    let mut report = JobReport {
        insns: rt.stats.insns,
        frames: rt.stats.frames,
        quickens: rt.stats.quickens,
        dequickens: rt.stats.dequickens,
        superinsn_hits: rt.stats.superinsn_hits,
        ..JobReport::empty(name, packer_name)
    };

    // Status precedence: a setup failure means nothing was really driven; a
    // timeout trumps downstream failures (a truncated collection routinely
    // fails reassembly or validation, but the root cause is the timeout).
    let mut revealed = None;
    report.status = if let Some(e) = setup_err {
        JobStatus::SetupFailed(e)
    } else {
        match result {
            Ok(outcome) => {
                report.absorb(&outcome);
                let status = if timed_out {
                    JobStatus::Timeout
                } else {
                    finish_status(spec, events, &outcome)
                };
                if status.is_ok() {
                    revealed = Some(outcome.dex);
                }
                status
            }
            Err(_) if timed_out => JobStatus::Timeout,
            Err(DexLegoError::Verification(diags)) => {
                report.verifier_errors = diags.len();
                JobStatus::VerifierRejected(
                    diags
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; "),
                )
            }
            Err(e) => JobStatus::ReassemblyFailed(e.to_string()),
        }
    };
    report.wall_us = start.elapsed().as_micros() as u64;
    (report, revealed)
}

/// Post-reveal checks for a job that ran to completion.
fn finish_status(spec: &JobSpec, events: usize, outcome: &RevealOutcome) -> JobStatus {
    if !outcome.validation.is_empty() {
        return JobStatus::ValidationFailed(outcome.validation.clone());
    }
    if spec.check_conformance {
        if let Err(diff) = check_reveal(
            &spec.dex,
            &outcome.dex,
            &spec.entry,
            &spec.seeds,
            events,
            spec.fuel,
        ) {
            return JobStatus::ConformanceMismatch(diff);
        }
    }
    JobStatus::Ok
}
