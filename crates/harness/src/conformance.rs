//! Differential conformance checking: the extracted and reassembled DEX
//! must *behave* like the original, not merely verify. Both are executed
//! under an observer that records the observable event stream — method
//! entries, field writes, and conditional-branch outcomes — restricted to
//! the application's own package, and the two streams must be equal.
//!
//! Program counters are deliberately excluded from the trace: tree merging
//! and canonicalisation may legally shift instruction offsets, and the
//! conformance claim is about behaviour, not layout.

use dexlego_dex::DexFile;
use dexlego_runtime::class::{MethodId, SigKey};
use dexlego_runtime::observer::{InsnEvent, RuntimeObserver};
use dexlego_runtime::{Env, Runtime, RuntimeError, Slot};

/// One observable event in an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A method frame was entered (`class->name(descriptor)`).
    Enter(String),
    /// A conditional branch in `method` evaluated to `taken`.
    Branch {
        /// Pretty name of the branching method.
        method: String,
        /// Whether the branch was taken.
        taken: bool,
    },
    /// A field- or array-write instruction executed in `method`.
    FieldWrite {
        /// Pretty name of the writing method.
        method: String,
        /// The write instruction's mnemonic (`iput`, `sput-object`, …).
        mnemonic: &'static str,
    },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Enter(m) => write!(f, "enter {m}"),
            TraceEvent::Branch { method, taken } => {
                write!(
                    f,
                    "branch {} in {method}",
                    if *taken { "taken" } else { "not-taken" }
                )
            }
            TraceEvent::FieldWrite { method, mnemonic } => {
                write!(f, "{mnemonic} in {method}")
            }
        }
    }
}

/// An observer that records the conformance-relevant event stream for
/// methods whose class descriptor starts with `prefix`.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    prefix: String,
    /// The recorded stream, in execution order.
    pub events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// A recorder restricted to classes under `prefix`
    /// (e.g. `"Lconf/p360/"`).
    pub fn new(prefix: &str) -> TraceRecorder {
        TraceRecorder {
            prefix: prefix.to_owned(),
            events: Vec::new(),
        }
    }

    fn in_scope(&self, rt: &Runtime, method: MethodId) -> bool {
        rt.class(rt.method(method).class)
            .descriptor
            .starts_with(&self.prefix)
    }
}

impl RuntimeObserver for TraceRecorder {
    fn on_method_enter(&mut self, rt: &Runtime, method: MethodId) {
        if self.in_scope(rt, method) {
            self.events.push(TraceEvent::Enter(rt.method_name(method)));
        }
    }

    fn on_branch(&mut self, rt: &Runtime, method: MethodId, _dex_pc: u32, taken: bool) {
        if self.in_scope(rt, method) {
            self.events.push(TraceEvent::Branch {
                method: rt.method_name(method),
                taken,
            });
        }
    }

    fn on_instruction(&mut self, rt: &Runtime, event: &InsnEvent<'_>) {
        let mnemonic = event.insn.op.mnemonic();
        let is_write = mnemonic.starts_with("iput")
            || mnemonic.starts_with("sput")
            || mnemonic.starts_with("aput");
        if is_write && self.in_scope(rt, event.method) {
            self.events.push(TraceEvent::FieldWrite {
                method: rt.method_name(event.method),
                mnemonic,
            });
        }
    }
}

/// The package prefix of an entry descriptor: `"Lconf/p360/Main;"` →
/// `"Lconf/p360/"`. Falls back to the full descriptor for classes in the
/// unnamed package.
pub fn package_prefix(entry: &str) -> String {
    match entry.rfind('/') {
        Some(i) => entry[..=i].to_owned(),
        None => entry.to_owned(),
    }
}

/// Executes `entry` of `dex` in a fresh runtime for one fuzzing session
/// (instantiate, `onCreate`, then `events` callback firings with inputs
/// seeded by `seed`) and returns the recorded in-package event stream.
///
/// Execution faults other than budget exhaustion are swallowed, mirroring
/// the sample driver: a crashing app still has a (truncated) trace, and the
/// truncation itself will surface as a stream mismatch.
///
/// # Errors
///
/// Returns an error if the DEX cannot be loaded or the instruction budget
/// is exhausted (the trace would be meaninglessly truncated).
pub fn trace_app(
    dex: &DexFile,
    entry: &str,
    seed: u64,
    events: usize,
    fuel: u64,
) -> Result<Vec<TraceEvent>, String> {
    let mut rt = Runtime::with_env(Env {
        insn_budget: fuel,
        ..Env::default()
    });
    let mut recorder = TraceRecorder::new(&package_prefix(entry));
    rt.load_dex_observed(dex, "conformance", &mut recorder)
        .map_err(|e| format!("load failed: {e}"))?;
    rt.input_state = seed | 1;
    let check = |r: Result<_, RuntimeError>| match r {
        Err(RuntimeError::BudgetExhausted) => Err("budget exhausted during trace".to_owned()),
        _ => Ok(()),
    };
    let activity = rt
        .new_instance(&mut recorder, entry)
        .map_err(|e| format!("cannot instantiate {entry}: {e}"))?;
    let class = rt
        .find_class(entry)
        .ok_or_else(|| format!("{entry} not linked"))?;
    if let Some(on_create) =
        rt.resolve_method(class, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
    {
        check(rt.call_method(&mut recorder, on_create, &[Slot::of(activity), Slot::of(0)]))?;
    }
    for n in 0..events {
        if rt.callbacks.is_empty() {
            break;
        }
        let pick = (seed as usize + n) % rt.callbacks.len();
        let cb = rt.callbacks[pick].clone();
        rt.callback_depth += 1;
        let outcome = rt.call_method(
            &mut recorder,
            cb.method,
            &[Slot::of(cb.receiver), Slot::of(0)],
        );
        rt.callback_depth -= 1;
        check(outcome)?;
    }
    Ok(recorder.events)
}

/// Compares two traces; `None` means they are equal, otherwise a diagnostic
/// naming the first divergence.
pub fn diff_traces(original: &[TraceEvent], revealed: &[TraceEvent]) -> Option<String> {
    for (i, (a, b)) in original.iter().zip(revealed.iter()).enumerate() {
        if a != b {
            return Some(format!("event {i} differs: original [{a}], revealed [{b}]"));
        }
    }
    if original.len() != revealed.len() {
        let (longer, which) = if original.len() > revealed.len() {
            (&original[revealed.len()], "original")
        } else {
            (&revealed[original.len()], "revealed")
        };
        return Some(format!(
            "stream lengths differ ({} vs {}): {which} continues with [{longer}]",
            original.len(),
            revealed.len()
        ));
    }
    None
}

/// Full differential check: traces `entry` in `original` and in `revealed`
/// under every seed and requires identical event streams.
///
/// # Errors
///
/// Returns the first divergence (or trace failure) found.
pub fn check_reveal(
    original: &DexFile,
    revealed: &DexFile,
    entry: &str,
    seeds: &[u64],
    events: usize,
    fuel: u64,
) -> Result<(), String> {
    for &seed in seeds {
        let a = trace_app(original, entry, seed, events, fuel)
            .map_err(|e| format!("seed {seed}: original trace failed: {e}"))?;
        let b = trace_app(revealed, entry, seed, events, fuel)
            .map_err(|e| format!("seed {seed}: revealed trace failed: {e}"))?;
        if a.is_empty() {
            return Err(format!(
                "seed {seed}: original trace is empty — nothing to compare"
            ));
        }
        if let Some(diff) = diff_traces(&a, &b) {
            return Err(format!("seed {seed}: {diff}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_prefix_strips_class_name() {
        assert_eq!(package_prefix("Lconf/p360/Main;"), "Lconf/p360/");
        assert_eq!(package_prefix("LMain;"), "LMain;");
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = vec![TraceEvent::Enter("La;->m()V".into())];
        let b = vec![TraceEvent::Enter("Lb;->m()V".into())];
        assert!(diff_traces(&a, &a.clone()).is_none());
        let d = diff_traces(&a, &b).unwrap();
        assert!(d.contains("event 0"), "{d}");
        let d = diff_traces(&a, &[]).unwrap();
        assert!(d.contains("lengths differ"), "{d}");
    }

    #[test]
    fn identical_apps_trace_identically() {
        let app = dexlego_droidbench::appgen::generate(
            &dexlego_droidbench::appgen::AppSpec::plain_profile("conf/self", 120),
        );
        let a = trace_app(&app.dex, &app.entry, 7, 2, 1_000_000).unwrap();
        let b = trace_app(&app.dex, &app.entry, 7, 2, 1_000_000).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        // A different seed changes the recorded stream eventually, but the
        // deterministic onCreate prefix is shared.
        assert_eq!(a[0], b[0]);
    }
}
