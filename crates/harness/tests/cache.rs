//! Cache-aware batch runs against the persistent result store: a rerun of
//! the same corpus is served from disk, corrupted entries fall back to
//! re-extraction, and cached results are byte-identical to fresh ones.

use dexlego_harness::{cache, corpus, pool, HarnessConfig};
use dexlego_store::{object_path, Store, StoreConfig, TempDir};

fn small_corpus() -> Vec<dexlego_harness::JobSpec> {
    let spec = corpus::CorpusSpec {
        apps: 2,
        base_insns: 60,
        conformance: false,
        ..corpus::CorpusSpec::default()
    };
    corpus::work_list(&spec)
}

#[test]
fn second_batch_run_is_served_from_cache() {
    let dir = TempDir::new("harness-cache").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    let config = HarnessConfig::with_workers(2);

    let cold = cache::run_batch_cached(small_corpus(), &config, &store);
    assert!(cold.ok(), "{}", cold.summary());
    assert_eq!(cold.cache_hits(), 0, "cold run extracts everything");
    let after_cold = store.stats();
    assert_eq!(after_cold.entries as usize, cold.jobs.len());

    let warm = cache::run_batch_cached(small_corpus(), &config, &store);
    assert!(warm.ok(), "{}", warm.summary());
    assert_eq!(
        warm.cache_hits(),
        warm.jobs.len(),
        "warm run is all hits: {}",
        warm.summary()
    );
    // No new pipeline runs: the store saw no new puts.
    assert_eq!(store.stats().puts, after_cold.puts);
    // Cached reports still carry the original extraction's counters.
    for (cold_job, warm_job) in cold.jobs.iter().zip(&warm.jobs) {
        assert_eq!(cold_job.name, warm_job.name);
        assert!(warm_job.cached);
        assert_eq!(cold_job.methods_collected, warm_job.methods_collected);
        assert_eq!(cold_job.insns_collected, warm_job.insns_collected);
    }
}

#[test]
fn cached_dex_is_byte_identical_and_corruption_falls_back() {
    let dir = TempDir::new("harness-corrupt").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    let jobs = small_corpus();
    let spec = jobs.into_iter().next().unwrap();
    let key = cache::job_key(&spec).expect("plain job is cacheable");

    let (fresh, fresh_dex) = cache::execute_job_cached(spec.clone(), &store);
    assert!(fresh.status.is_ok(), "{:?}", fresh.status);
    assert!(!fresh.cached);
    let fresh_dex = fresh_dex.expect("revealed DEX");

    let (warm, warm_dex) = cache::execute_job_cached(spec.clone(), &store);
    assert!(warm.cached, "second identical job served from cache");
    assert_eq!(
        warm_dex.as_deref(),
        Some(fresh_dex.as_slice()),
        "cache hit returns byte-identical revealed DEX"
    );

    // Corrupt the entry on disk; the next request must detect it,
    // quarantine the entry, and transparently re-extract.
    let path = object_path(dir.path(), key);
    let mut blob = std::fs::read(&path).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0xff;
    std::fs::write(&path, &blob).unwrap();

    let puts_before = store.stats().puts;
    let (recovered, recovered_dex) = cache::execute_job_cached(spec, &store);
    assert!(recovered.status.is_ok(), "{:?}", recovered.status);
    assert!(!recovered.cached, "corrupt entry forced a fresh extraction");
    assert_eq!(
        recovered_dex.as_deref(),
        Some(fresh_dex.as_slice()),
        "re-extraction reproduces the same bytes"
    );
    let stats = store.stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.puts, puts_before + 1, "fresh result re-cached");
}

#[test]
fn plain_run_batch_reports_no_hits() {
    let spec = corpus::CorpusSpec {
        apps: 1,
        base_insns: 60,
        packers: vec![None],
        conformance: false,
        ..corpus::CorpusSpec::default()
    };
    let report = pool::run_batch(corpus::work_list(&spec), &HarnessConfig::with_workers(1));
    assert!(report.ok(), "{}", report.summary());
    assert_eq!(report.cache_hits(), 0);
    assert!(!report.summary().contains("cached"));
}
