//! Batch-harness integration tests: fault isolation (panic, fuel timeout),
//! corpus-scale runs across every packer profile, report structure, and the
//! hardware-gated scaling check.

use dexlego_dalvik::builder::ProgramBuilder;
use dexlego_dalvik::Opcode;
use dexlego_droidbench::samples::{Patch, TamperSpec};
use dexlego_harness::{
    all_packers, run_batch, work_list, CorpusSpec, HarnessConfig, JobSpec, JobStatus,
};

const PHASES: [&str; 7] = [
    "collect",
    "serialize",
    "tree_merge",
    "dexgen",
    "canonicalize",
    "verify",
    "validate",
];

/// An app whose `onCreate` triggers a tampering native with an
/// out-of-range patch — the native's slice write panics mid-job.
fn panic_bomb_job(name: &str) -> JobSpec {
    let entry = "Lbomb/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.native_method("boom", &["I"], "V");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
            let this = m.this_reg();
            m.asm.const4(0, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                entry,
                "boom",
                &["I"],
                "V",
                &[this, 0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let mut job = JobSpec::new(name, pb.build().expect("bomb assembles"), entry);
    job.tampers = vec![TamperSpec {
        native_class: entry.to_owned(),
        native_name: "boom".to_owned(),
        target: (
            entry.to_owned(),
            "onCreate".to_owned(),
            "(Landroid/os/Bundle;)V".to_owned(),
        ),
        // Far beyond onCreate's code length: the patch write panics.
        patches: vec![Patch {
            when_arg: 0,
            at: 100_000,
            units: vec![0, 0],
        }],
    }];
    job
}

/// An app whose `onCreate` never terminates; only the fuel budget stops it.
fn runaway_job(name: &str, fuel: u64) -> JobSpec {
    let entry = "Lspin/Main;";
    let mut pb = ProgramBuilder::new();
    pb.class(entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
            m.asm.const4(0, 0);
            let top = m.asm.new_label();
            m.asm.bind(top);
            m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 1);
            m.asm.goto(top);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let mut job = JobSpec::new(name, pb.build().expect("spinner assembles"), entry);
    job.fuel = fuel;
    job
}

/// A well-behaved plain job.
fn good_job(name: &str) -> JobSpec {
    let app = dexlego_droidbench::appgen::generate(
        &dexlego_droidbench::appgen::AppSpec::plain_profile("good/app", 150),
    );
    let mut job = JobSpec::new(name, app.dex, &app.entry);
    job.check_conformance = true;
    job
}

#[test]
fn panicking_job_is_isolated() {
    let report = run_batch(
        vec![good_job("ok-1"), panic_bomb_job("bomb"), good_job("ok-2")],
        &HarnessConfig::with_workers(2),
    );
    assert_eq!(report.jobs.len(), 3);
    // Submission order is preserved even though completion order varies.
    assert_eq!(report.jobs[0].name, "ok-1");
    assert_eq!(report.jobs[1].name, "bomb");
    assert_eq!(report.jobs[2].name, "ok-2");
    assert_eq!(report.jobs[0].status, JobStatus::Ok);
    assert_eq!(report.jobs[2].status, JobStatus::Ok);
    match &report.jobs[1].status {
        JobStatus::Panicked(msg) => {
            assert!(msg.contains("out of"), "unexpected panic message: {msg}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert!(!report.ok());
    assert_eq!(report.failed().len(), 1);
}

#[test]
fn runaway_job_times_out_without_aborting_the_run() {
    let report = run_batch(
        vec![
            good_job("ok-1"),
            runaway_job("spinner", 10_000),
            good_job("ok-2"),
        ],
        &HarnessConfig::with_workers(2),
    );
    assert_eq!(report.jobs[1].status, JobStatus::Timeout);
    assert_eq!(report.jobs[0].status, JobStatus::Ok);
    assert_eq!(report.jobs[2].status, JobStatus::Ok);
    // The spinner really did burn (roughly) its budget before stopping.
    assert!(
        report.jobs[1].insns >= 9_000,
        "spinner interpreted only {} instructions",
        report.jobs[1].insns
    );
    assert!(report.jobs[1].insns <= 20_000);
}

#[test]
fn ample_fuel_lets_the_same_shape_of_job_succeed() {
    // The timeout is a property of the budget, not of the app-driving path:
    // a terminating app with the default budget goes through the same
    // driver and completes.
    let report = run_batch(vec![good_job("plain")], &HarnessConfig::with_workers(1));
    assert!(report.ok(), "{}", report.summary());
    assert!(report.jobs[0].insns > 0);
    assert!(report.jobs[0].methods_collected > 0);
}

#[test]
fn corpus_runs_clean_across_every_packer_profile() {
    let spec = CorpusSpec {
        apps: 2,
        base_insns: 120,
        packers: all_packers(),
        ..CorpusSpec::default()
    };
    let jobs = work_list(&spec);
    assert_eq!(jobs.len(), 14);
    let report = run_batch(jobs, &HarnessConfig::with_workers(3));
    assert!(report.ok(), "{}", report.summary());

    for job in &report.jobs {
        // Every job carries complete per-phase timings, in pipeline order.
        let recorded: Vec<&str> = job.phases_us.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(recorded, PHASES, "{}: phases {recorded:?}", job.name);
        assert!(job.methods_collected > 0, "{}: empty collection", job.name);
        assert!(job.insns_collected > 0, "{}", job.name);
        assert!(job.dump_size > 0, "{}", job.name);
    }
    // Packed jobs are labelled with their profile, plain ones are not.
    assert!(report.jobs.iter().any(|j| j.packer == Some("360")));
    assert!(report.jobs.iter().any(|j| j.packer.is_none()));

    // The aggregate JSON document carries every job with its timings.
    let json = report.to_json();
    assert!(json.contains("\"ok\": true"), "{json}");
    assert!(json.contains("\"corpus000@plain\""), "{json}");
    assert!(json.contains("\"corpus001@Advanced"), "{json}");
    assert_eq!(json.matches("\"phases_us\"").count(), 14);
    assert_eq!(json.matches("\"tree_merge\"").count(), 14);
}

#[test]
#[ignore = "hardware-gated scaling check: needs >=4 CPUs, run with --ignored"]
fn four_workers_are_at_least_twice_as_fast_as_one() {
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cpus < 4 {
        eprintln!("skipping scaling check: only {cpus} CPU(s) available");
        return;
    }
    let spec = CorpusSpec {
        apps: 8,
        base_insns: 2_000,
        ..CorpusSpec::default()
    };
    let serial = run_batch(work_list(&spec), &HarnessConfig::with_workers(1));
    let parallel = run_batch(work_list(&spec), &HarnessConfig::with_workers(4));
    assert!(serial.ok() && parallel.ok());
    assert!(
        parallel.wall_us * 2 <= serial.wall_us,
        "4 workers took {} us, 1 worker took {} us (speedup {:.2}x < 2x)",
        parallel.wall_us,
        serial.wall_us,
        serial.wall_us as f64 / parallel.wall_us as f64
    );
}
