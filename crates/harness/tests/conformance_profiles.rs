//! Differential conformance per packer profile: for every profile of
//! Table I (plus the re-hiding Advanced packer), the original app and the
//! DEX that DexLego extracts *through* that packer must produce equal
//! observable event streams — method entries, field writes, and branch
//! outcomes — under the same driving inputs.

use dexlego_core::pipeline::reveal;
use dexlego_dex::DexFile;
use dexlego_harness::check_reveal;
use dexlego_packer::{pack, PackerError, PackerId};
use dexlego_runtime::{Env, Runtime, RuntimeError, Slot};

const SEEDS: [u64; 2] = [1, 5];
const EVENTS: usize = 3;
const FUEL: u64 = 5_000_000;

/// Packs a generated app with `id`, extracts it with the standard driving
/// campaign, and returns (original DEX, revealed DEX, entry, events driven).
fn extract_through(id: PackerId, tag: &str) -> (DexFile, DexFile, String, usize) {
    let app = dexlego_droidbench::appgen::generate(
        &dexlego_droidbench::appgen::AppSpec::plain_profile(&format!("conf/{tag}"), 180),
    );
    let packed = pack(&app.dex, &app.entry, id).expect("packs");
    // The re-hiding profile garbles unpacked code once the entry activity
    // returns, so only `onCreate` is driven (and compared) for it.
    let events = if id.profile().rehide_after_run {
        0
    } else {
        EVENTS
    };
    let mut rt = Runtime::with_env(Env {
        insn_budget: FUEL,
        ..Env::default()
    });
    let outcome = reveal(&mut rt, |rt, obs| {
        packed.install_observed(rt, obs).expect("installs");
        let first = SEEDS[0];
        rt.input_state = first | 1;
        if let Err(PackerError::Runtime(RuntimeError::BudgetExhausted)) = packed.launch(rt, obs) {
            panic!("launch timed out");
        }
        for &seed in &SEEDS {
            rt.input_state = seed | 1;
            for n in 0..events {
                if rt.callbacks.is_empty() {
                    break;
                }
                let pick = (seed as usize + n) % rt.callbacks.len();
                let cb = rt.callbacks[pick].clone();
                rt.callback_depth += 1;
                let _ = rt.call_method(obs, cb.method, &[Slot::of(cb.receiver), Slot::of(0)]);
                rt.callback_depth -= 1;
            }
        }
    })
    .expect("reveal succeeds");
    (app.dex, outcome.dex, app.entry, events)
}

fn assert_conformant(id: PackerId, tag: &str) {
    let (original, revealed, entry, events) = extract_through(id, tag);
    check_reveal(&original, &revealed, &entry, &SEEDS, events, FUEL)
        .unwrap_or_else(|diff| panic!("{tag}: behaviour diverged: {diff}"));
}

#[test]
fn conformance_through_360() {
    assert_conformant(PackerId::P360, "p360");
}

#[test]
fn conformance_through_alibaba() {
    assert_conformant(PackerId::Alibaba, "alibaba");
}

#[test]
fn conformance_through_tencent() {
    assert_conformant(PackerId::Tencent, "tencent");
}

#[test]
fn conformance_through_baidu() {
    assert_conformant(PackerId::Baidu, "baidu");
}

#[test]
fn conformance_through_bangcle() {
    assert_conformant(PackerId::Bangcle, "bangcle");
}

#[test]
fn conformance_through_advanced_rehiding() {
    assert_conformant(PackerId::Advanced, "advanced");
}

/// A deliberately divergent "revealed" DEX is caught: drop one method body
/// from the real revealed DEX and the differential check must report it.
#[test]
fn divergence_is_detected() {
    let (original, mut revealed, entry, events) = extract_through(PackerId::P360, "detect");
    // Garble the entry's onCreate in the revealed DEX: replace its code
    // with an immediate return-void, erasing every downstream event.
    let class_idx = (0..revealed.class_defs().len())
        .find(|&i| {
            revealed.type_descriptor(revealed.class_defs()[i].class_idx) == Ok(entry.as_str())
        })
        .expect("entry class is in the revealed DEX");
    let def = &mut revealed.class_defs_mut()[class_idx];
    let data = def.class_data.as_mut().expect("entry has class data");
    let mut truncated = false;
    for m in data
        .direct_methods
        .iter_mut()
        .chain(data.virtual_methods.iter_mut())
    {
        if let Some(code) = &mut m.code {
            if code.insns.len() > 1 {
                code.insns = vec![0x000e]; // return-void
                code.tries.clear();
                truncated = true;
                break;
            }
        }
    }
    assert!(truncated, "found a method to truncate");
    let diff = check_reveal(&original, &revealed, &entry, &SEEDS, events, FUEL)
        .expect_err("truncation must be caught");
    assert!(
        diff.contains("differ") || diff.contains("empty"),
        "unexpected diagnostic: {diff}"
    );
}
