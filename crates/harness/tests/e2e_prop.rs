//! End-to-end property tests over the whole extraction stack: a generated
//! builder app, packed with a randomly chosen profile, must reveal,
//! reassemble, verify, pass the mechanical validation and differential
//! conformance gates, and the reassembled DEX must round-trip bit-stably
//! through the writer/reader.
//!
//! Failing cases persist their RNG state in `e2e_prop.proptest-regressions`
//! (checked in) and are replayed before fresh cases on every run.

use dexlego_core::pipeline::reveal;
use dexlego_dex::{reader, writer};
use dexlego_droidbench::appgen::{generate, AppSpec};
use dexlego_droidbench::{drive_sample, Category, Sample};
use dexlego_harness::{all_packers, execute_job, JobSpec};
use dexlego_runtime::Runtime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Builder app → pack (one of the six profiles, or none) → reveal →
    /// reassemble → verify: the job must come out clean, including the
    /// validation and conformance gates.
    #[test]
    fn any_profile_extracts_cleanly(
        insns in 60usize..240,
        seed in 1u64..512,
        pick in 0usize..7,
    ) {
        let profile = all_packers()[pick];
        let app = generate(&AppSpec::plain_profile("prop/e2e", insns));
        let mut job = JobSpec::new("e2e", app.dex, &app.entry);
        job.packer = profile;
        job.seeds = vec![seed];
        job.check_conformance = true;
        let report = execute_job(job);
        prop_assert!(
            report.status.is_ok(),
            "insns={insns} seed={seed} profile={:?}: {:?}",
            profile,
            report.status
        );
    }

    /// The revealed DEX is a well-formed file: writing, re-reading, and
    /// writing again is byte-stable.
    #[test]
    fn revealed_dex_roundtrips(insns in 60usize..240, seed in 1u64..512) {
        let app = generate(&AppSpec::plain_profile("prop/rt", insns));
        let sample = Sample {
            name: "prop-rt".into(),
            category: Category::Direct,
            dex: app.dex.clone(),
            entry: app.entry.clone(),
            tampers: vec![],
        };
        let mut rt = Runtime::new();
        let outcome = reveal(&mut rt, |rt, obs| {
            if sample.install(rt, obs).is_err() {
                return;
            }
            drive_sample(rt, obs, &sample, seed, 3);
        })
        .expect("reveal succeeds");
        let bytes1 = writer::write_dex(&outcome.dex).expect("writes");
        let back = reader::read_dex(&bytes1).expect("re-reads");
        let bytes2 = writer::write_dex(&back).expect("re-writes");
        prop_assert_eq!(bytes1, bytes2, "insns={} seed={}", insns, seed);
    }
}
