//! The standard sample driver: instantiate the entry activity, run
//! `onCreate`, then fire registered callbacks with pseudo-random inputs —
//! the "Sapienz-generated inputs" role from §V-B.

use dexlego_runtime::class::SigKey;
use dexlego_runtime::observer::RuntimeObserver;
use dexlego_runtime::{Runtime, Slot};

use crate::samples::Sample;

/// Drives one sample for a complete fuzzing session; execution faults are
/// swallowed (a crashing sample still yields partial collection).
pub fn drive_sample(
    rt: &mut Runtime,
    obs: &mut dyn RuntimeObserver,
    sample: &Sample,
    seed: u64,
    events: usize,
) {
    rt.input_state = seed | 1;
    let Ok(activity) = rt.new_instance(obs, &sample.entry) else {
        return;
    };
    let Some(class) = rt.find_class(&sample.entry) else {
        return;
    };
    if let Some(on_create) =
        rt.resolve_method(class, &SigKey::new("onCreate", "(Landroid/os/Bundle;)V"))
    {
        let _ = rt.call_method(obs, on_create, &[Slot::of(activity), Slot::of(0)]);
    }
    for n in 0..events {
        if rt.callbacks.is_empty() {
            break;
        }
        let pick = (seed as usize + n) % rt.callbacks.len();
        let cb = rt.callbacks[pick].clone();
        rt.callback_depth += 1;
        let _ = rt.call_method(obs, cb.method, &[Slot::of(cb.receiver), Slot::of(0)]);
        rt.callback_depth -= 1;
    }
}

/// Installs and drives a fresh runtime for `sample`, returning the runtime
/// for event-log inspection.
pub fn run_fresh(sample: &Sample, seed: u64, events: usize) -> Runtime {
    let mut rt = Runtime::new();
    let mut obs = dexlego_runtime::observer::NullObserver;
    if sample.install(&mut rt, &mut obs).is_ok() {
        drive_sample(&mut rt, &mut obs, sample, seed, events);
    }
    rt
}
