//! Construction of the 134 benchmark samples.
//!
//! Each builder produces a complete runnable program exhibiting exactly the
//! behaviour its [`Category`] describes. Leaky samples genuinely leak at
//! runtime (modulo environment gating); benign samples genuinely do not.

use dexlego_dalvik::builder::{MethodBuilder, ProgramBuilder};
use dexlego_dalvik::canon::canonicalize;
use dexlego_dalvik::{encode_insn, Insn, Opcode};
use dexlego_dex::DexFile;
use dexlego_runtime::class::{MethodImpl, SigKey};
use dexlego_runtime::{RetVal, Runtime};

use crate::categories::Category;

/// A patch a self-modifying native applies to its target's code units.
#[derive(Debug, Clone)]
pub struct Patch {
    /// The native's `int` argument value that triggers this patch.
    pub when_arg: i32,
    /// Unit offset in the target method's code.
    pub at: usize,
    /// Replacement units.
    pub units: Vec<u16>,
}

/// Specification of a bytecode-tampering native method (the sample's
/// equivalent of the paper's `bytecodeTamper`).
#[derive(Debug, Clone)]
pub struct TamperSpec {
    /// Class declaring the native.
    pub native_class: String,
    /// Native method name (signature `(I)V`, instance).
    pub native_name: String,
    /// Target method whose code is rewritten: (class, name, descriptor).
    pub target: (String, String, String),
    /// Patches keyed by the native's argument.
    pub patches: Vec<Patch>,
}

/// One benchmark sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Unique sample name, e.g. `direct_03`.
    pub name: String,
    /// Behavioural category (determines the ground-truth label).
    pub category: Category,
    /// The sample's DEX.
    pub dex: DexFile,
    /// Entry activity descriptor.
    pub entry: String,
    /// Tampering natives to register at install time.
    pub tampers: Vec<TamperSpec>,
}

impl Sample {
    /// Ground truth: does the sample leak?
    pub fn leaky(&self) -> bool {
        self.category.leaky()
    }

    /// Loads the sample and registers its tamper natives.
    ///
    /// # Errors
    ///
    /// Propagates linker failures.
    pub fn install(
        &self,
        rt: &mut Runtime,
        obs: &mut dyn dexlego_runtime::RuntimeObserver,
    ) -> Result<(), dexlego_runtime::RuntimeError> {
        rt.load_dex_observed(&self.dex, "app", obs)?;
        self.register_tampers(rt);
        Ok(())
    }

    /// Registers the sample's tamper natives without loading its DEX —
    /// for drivers (e.g. the batch harness) that install the code some
    /// other way, such as through a packer shell.
    pub fn register_tampers(&self, rt: &mut Runtime) {
        register_tamper_specs(rt, &self.tampers);
    }
}

/// Registers tampering natives for a bare list of specs (the form batch
/// jobs carry, without a full [`Sample`] around them).
pub fn register_tamper_specs(rt: &mut Runtime, specs: &[TamperSpec]) {
    for spec in specs {
        let target = spec.target.clone();
        let patches = spec.patches.clone();
        rt.natives.register(
            &spec.native_class,
            &spec.native_name,
            "(I)V",
            move |rt, _, args| {
                let arg = args.last().copied().unwrap_or_default().as_int();
                let class = rt.find_class(&target.0).ok_or_else(|| {
                    dexlego_runtime::RuntimeError::ClassNotFound(target.0.clone())
                })?;
                let method = rt
                    .resolve_method(class, &SigKey::new(&target.1, &target.2))
                    .ok_or_else(|| {
                        dexlego_runtime::RuntimeError::MethodNotFound(target.1.clone())
                    })?;
                if let MethodImpl::Bytecode { insns, .. } = &mut rt.method_mut(method).body {
                    for patch in patches.iter().filter(|p| p.when_arg == arg) {
                        insns[patch.at..patch.at + patch.units.len()].copy_from_slice(&patch.units);
                    }
                }
                Ok(RetVal::Void)
            },
        );
    }
}

// ---- shared emission helpers --------------------------------------------------

const SOURCE_CLASS: &str = "Lcom/dexlego/Sensitive;";
const NET: &str = "Lcom/dexlego/Net;";

fn mr_obj(m: &mut MethodBuilder<'_>, reg: u32) {
    let mut mr = Insn::of(Opcode::MoveResultObject);
    mr.a = reg;
    m.asm.push(mr);
}

fn mr_int(m: &mut MethodBuilder<'_>, reg: u32) {
    let mut mr = Insn::of(Opcode::MoveResult);
    mr.a = reg;
    m.asm.push(mr);
}

fn emit_source(m: &mut MethodBuilder<'_>, reg: u32) {
    m.invoke(
        Opcode::InvokeStatic,
        SOURCE_CLASS,
        "getSensitiveData",
        &[],
        "Ljava/lang/String;",
        &[],
    );
    mr_obj(m, reg);
}

fn emit_sink(m: &mut MethodBuilder<'_>, reg: u32) {
    m.invoke(
        Opcode::InvokeStatic,
        NET,
        "send",
        &["Ljava/lang/String;"],
        "V",
        &[reg],
    );
}

fn emit_input_bound(m: &mut MethodBuilder<'_>, dst: u32, bound_reg: u32, bound: i64) {
    m.asm.const4(bound_reg, bound);
    m.invoke(
        Opcode::InvokeStatic,
        "Lcom/dexlego/Input;",
        "nextIntBound",
        &["I"],
        "I",
        &[bound_reg],
    );
    mr_int(m, dst);
}

/// XOR "encryption" matching the runtime's `Crypto.decrypt` involution.
fn enc(s: &str) -> String {
    s.chars().map(|c| ((c as u8) ^ 0x20) as char).collect()
}

/// Emits `Method m = Class.forName(name).getMethod(method)` with optionally
/// encrypted constant strings, boxes `src_reg` into an `Object[1]` at the
/// given index mode, and invokes reflectively.
///
/// Register plan (locals must be >= 8): v0 name, v1 class, v2 method name,
/// v3 Method, v4 boxed array, v5 scratch idx, v6 scratch len, v7 null.
fn emit_reflective_leak(
    m: &mut MethodBuilder<'_>,
    class_dotted: &str,
    method_name: &str,
    encrypted: bool,
    unknown_index: bool,
    src_reg: u32,
) {
    if encrypted {
        m.const_str(0, &enc(class_dotted));
        m.invoke(
            Opcode::InvokeStatic,
            "Lcom/dexlego/Crypto;",
            "decrypt",
            &["Ljava/lang/String;"],
            "Ljava/lang/String;",
            &[0],
        );
        mr_obj(m, 0);
    } else {
        m.const_str(0, class_dotted);
    }
    m.invoke(
        Opcode::InvokeStatic,
        "Ljava/lang/Class;",
        "forName",
        &["Ljava/lang/String;"],
        "Ljava/lang/Class;",
        &[0],
    );
    mr_obj(m, 1);
    if encrypted {
        m.const_str(2, &enc(method_name));
        m.invoke(
            Opcode::InvokeStatic,
            "Lcom/dexlego/Crypto;",
            "decrypt",
            &["Ljava/lang/String;"],
            "Ljava/lang/String;",
            &[2],
        );
        mr_obj(m, 2);
    } else {
        m.const_str(2, method_name);
    }
    m.invoke(
        Opcode::InvokeVirtual,
        "Ljava/lang/Class;",
        "getMethod",
        &["Ljava/lang/String;"],
        "Ljava/lang/reflect/Method;",
        &[1, 2],
    );
    mr_obj(m, 3);
    // Box the argument.
    m.asm.const4(6, 1);
    m.new_array(4, 6, "[Ljava/lang/Object;");
    if unknown_index {
        emit_input_bound(m, 5, 6, 1); // always 0 at runtime, unknown statically
    } else {
        m.asm.const4(5, 0);
    }
    m.asm.binop(Opcode::AputObject, src_reg, 4, 5);
    m.asm.const4(7, 0);
    m.invoke(
        Opcode::InvokeVirtual,
        "Ljava/lang/reflect/Method;",
        "invoke",
        &["Ljava/lang/Object;", "[Ljava/lang/Object;"],
        "Ljava/lang/Object;",
        &[3, 7, 4],
    );
}

fn finish_activity(pb: &mut ProgramBuilder, _entry: &str) -> DexFile {
    pb.build().expect("sample assembles")
}

fn class_to_dotted(desc: &str) -> String {
    desc.trim_start_matches('L')
        .trim_end_matches(';')
        .replace('/', ".")
}

// ---- category builders ---------------------------------------------------------

fn direct(i: usize) -> Sample {
    let entry = format!("Lbench/direct{i:02}/Main;");
    let mut pb = ProgramBuilder::new();
    let pattern = i % 6;
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        match pattern {
            // Plain source-to-sink.
            0 => {
                c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
                    emit_source(m, 0);
                    emit_sink(m, 0);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            }
            // Through a helper method.
            1 => {
                let entry2 = entry.clone();
                c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, move |m| {
                    emit_source(m, 0);
                    m.invoke(
                        Opcode::InvokeStatic,
                        &entry2,
                        "pass",
                        &["Ljava/lang/String;"],
                        "V",
                        &[0],
                    );
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
                c.static_method("pass", &["Ljava/lang/String;"], "V", 1, |m| {
                    let p = m.param_reg(0);
                    emit_sink(m, p);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            }
            // Through a StringBuilder.
            2 => {
                c.method("onCreate", &["Landroid/os/Bundle;"], "V", 3, |m| {
                    emit_source(m, 0);
                    m.new_instance(1, "Ljava/lang/StringBuilder;");
                    m.invoke(
                        Opcode::InvokeDirect,
                        "Ljava/lang/StringBuilder;",
                        "<init>",
                        &[],
                        "V",
                        &[1],
                    );
                    m.invoke(
                        Opcode::InvokeVirtual,
                        "Ljava/lang/StringBuilder;",
                        "append",
                        &["Ljava/lang/String;"],
                        "Ljava/lang/StringBuilder;",
                        &[1, 0],
                    );
                    m.invoke(
                        Opcode::InvokeVirtual,
                        "Ljava/lang/StringBuilder;",
                        "toString",
                        &[],
                        "Ljava/lang/String;",
                        &[1],
                    );
                    mr_obj(m, 2);
                    emit_sink(m, 2);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            }
            // Stashed in a static field, leaked from a second method.
            3 => {
                let entry2 = entry.clone();
                let entry3 = entry.clone();
                c.static_field("stash", "Ljava/lang/String;", None);
                c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, move |m| {
                    emit_source(m, 0);
                    m.sput(
                        Opcode::SputObject,
                        0,
                        &entry2,
                        "stash",
                        "Ljava/lang/String;",
                    );
                    m.invoke(Opcode::InvokeStatic, &entry2, "flush", &[], "V", &[]);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
                c.static_method("flush", &[], "V", 2, move |m| {
                    m.sget(
                        Opcode::SgetObject,
                        0,
                        &entry3,
                        "stash",
                        "Ljava/lang/String;",
                    );
                    emit_sink(m, 0);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            }
            // Accumulated through String.concat in a loop.
            4 => {
                c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, |m| {
                    m.const_str(0, "prefix:");
                    emit_source(m, 1);
                    m.asm.const4(2, 0);
                    let (top, done) = (m.asm.new_label(), m.asm.new_label());
                    m.asm.bind(top);
                    m.asm.const4(3, 2);
                    m.asm.if_cmp(Opcode::IfGe, 2, 3, done);
                    m.invoke(
                        Opcode::InvokeVirtual,
                        "Ljava/lang/String;",
                        "concat",
                        &["Ljava/lang/String;"],
                        "Ljava/lang/String;",
                        &[0, 1],
                    );
                    mr_obj(m, 0);
                    m.asm.binop_lit8(Opcode::AddIntLit8, 2, 2, 1);
                    m.asm.goto(top);
                    m.asm.bind(done);
                    emit_sink(m, 0);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            }
            // Every switch arm leaks.
            _ => {
                c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, |m| {
                    emit_source(m, 0);
                    emit_input_bound(m, 1, 2, 3);
                    let arms: Vec<_> = (0..3).map(|_| m.asm.new_label()).collect();
                    let end = m.asm.new_label();
                    m.asm.packed_switch(1, 0, arms.clone());
                    emit_sink(m, 0); // default arm
                    m.asm.goto(end);
                    for arm in arms {
                        m.asm.bind(arm);
                        emit_sink(m, 0);
                        m.asm.goto(end);
                    }
                    m.asm.bind(end);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            }
        }
    });
    Sample {
        name: format!("direct_{i:02}"),
        category: Category::Direct,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn callback(i: usize) -> Sample {
    let entry = format!("Lbench/callback{i}/Main;");
    let listener = format!("Lbench/callback{i}/Listener;");
    let mut pb = ProgramBuilder::new();
    pb.class(&listener, |c| {
        c.implements("Landroid/view/View$OnClickListener;");
        c.method("onClick", &["Landroid/view/View;"], "V", 2, |m| {
            emit_source(m, 0);
            emit_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let listener2 = listener.clone();
    pb.class(&entry, move |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, move |m| {
            m.new_instance(0, &listener2);
            m.new_instance(1, "Landroid/view/View;");
            m.invoke(
                Opcode::InvokeVirtual,
                "Landroid/view/View;",
                "setOnClickListener",
                &["Landroid/view/View$OnClickListener;"],
                "V",
                &[1, 0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("callback_{i}"),
        category: Category::Callback,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn array_index_leak(i: usize) -> Sample {
    let entry = format!("Lbench/arrleak{i}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 5, |m| {
            emit_source(m, 0);
            m.asm.const4(1, 2);
            m.new_array(2, 1, "[Ljava/lang/String;");
            m.asm.const4(3, 1);
            m.asm.binop(Opcode::AputObject, 0, 2, 3);
            m.asm.binop(Opcode::AgetObject, 4, 2, 3);
            emit_sink(m, 4);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("array_leak_{i}"),
        category: Category::ArrayIndexLeak,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn tablet_gated() -> Sample {
    let entry = "Lbench/tablet/Main;".to_owned();
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Env;",
                "isTablet",
                &[],
                "Z",
                &[],
            );
            mr_int(m, 0);
            let skip = m.asm.new_label();
            m.asm.if_z(Opcode::IfEqz, 0, skip);
            emit_source(m, 1);
            emit_sink(m, 1);
            m.asm.bind(skip);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: "tablet_gated".to_owned(),
        category: Category::TabletGated,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn reflection_const(i: usize) -> Sample {
    let entry = format!("Lbench/reflconst{i}/Main;");
    let hidden = format!("Lbench/reflconst{i}/Hidden;");
    let mut pb = ProgramBuilder::new();
    pb.class(&hidden, |c| {
        c.static_method("leakIt", &["Ljava/lang/String;"], "V", 1, |m| {
            let p = m.param_reg(0);
            emit_sink(m, p);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dotted = class_to_dotted(&hidden);
    pb.class(&entry, move |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 9, move |m| {
            emit_source(m, 8);
            emit_reflective_leak(m, &dotted, "leakIt", false, false, 8);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("reflection_const_{i}"),
        category: Category::ReflectionConst,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn reflection_hidden(i: usize, boxed: bool) -> Sample {
    let tag = if boxed { "reflbox" } else { "reflenc" };
    let entry = format!("Lbench/{tag}{i}/Main;");
    let hidden = format!("Lbench/{tag}{i}/Hidden;");
    let mut pb = ProgramBuilder::new();
    pb.class(&hidden, |c| {
        c.static_method("leakIt", &["Ljava/lang/String;"], "V", 1, |m| {
            let p = m.param_reg(0);
            emit_sink(m, p);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let dotted = class_to_dotted(&hidden);
    pb.class(&entry, move |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 9, move |m| {
            emit_source(m, 8);
            emit_reflective_leak(m, &dotted, "leakIt", true, boxed, 8);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("{tag}_{i}"),
        category: if boxed {
            Category::ReflectionBoxed
        } else {
            Category::ReflectionEncrypted
        },
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn icc(i: usize) -> Sample {
    let entry = format!("Lbench/icc{i:02}/Sender;");
    let receiver = format!("Lbench/icc{i:02}/Receiver;");
    let mut pb = ProgramBuilder::new();
    pb.class(&receiver, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
            m.const_str(0, "secret-key");
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Icc;",
                "getExtra",
                &["Ljava/lang/String;"],
                "Ljava/lang/String;",
                &[0],
            );
            mr_obj(m, 1);
            emit_sink(m, 1);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let receiver2 = receiver.clone();
    pb.class(&entry, move |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 3, move |m| {
            emit_source(m, 0);
            m.const_str(1, "secret-key");
            m.invoke(
                Opcode::InvokeStatic,
                "Lcom/dexlego/Icc;",
                "putExtra",
                &["Ljava/lang/String;", "Ljava/lang/String;"],
                "V",
                &[1, 0],
            );
            // "Start" the receiving component.
            m.new_instance(2, &receiver2);
            m.invoke(Opcode::InvokeDirect, &receiver2, "<init>", &[], "V", &[2]);
            m.asm.const4(1, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                &receiver2,
                "onCreate",
                &["Landroid/os/Bundle;"],
                "V",
                &[2, 1],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("icc_{i:02}"),
        category: Category::Icc,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn implicit(i: usize) -> Sample {
    let entry = format!("Lbench/implicit{i}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, |m| {
            emit_source(m, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/String;",
                "length",
                &[],
                "I",
                &[0],
            );
            mr_int(m, 1);
            let skip = m.asm.new_label();
            m.const_str(2, "short");
            m.asm.const4(3, 5);
            m.asm.if_cmp(Opcode::IfLt, 1, 3, skip);
            m.const_str(2, "long");
            m.asm.bind(skip);
            emit_sink(m, 2);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("implicit_{i}"),
        category: Category::Implicit,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn dynamic_loading(i: usize) -> Sample {
    let entry = format!("Lbench/dynload{i}/Main;");
    let payload_class = format!("Lbench/dynload{i}/Payload;");
    // Build the payload DEX.
    let mut payload_pb = ProgramBuilder::new();
    payload_pb.class(&payload_class, |c| {
        c.static_method("run", &[], "V", 2, |m| {
            emit_source(m, 0);
            emit_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let payload = payload_pb.build().expect("payload assembles");
    let payload_bytes =
        dexlego_dex::writer::write_dex(&canonicalize(&payload).expect("canonical payload"))
            .expect("payload serialises");

    let mut pb = ProgramBuilder::new();
    let payload_class2 = payload_class.clone();
    pb.class(&entry, move |c| {
        c.superclass("Landroid/app/Activity;");
        let bytes = payload_bytes.clone();
        let pc = payload_class2.clone();
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, move |m| {
            m.asm.const4(0, bytes.len() as i64);
            m.new_array(1, 0, "[B");
            m.asm.fill_array_data(1, 1, bytes.clone());
            m.new_instance(0, "Ldalvik/system/DexClassLoader;");
            m.invoke(
                Opcode::InvokeVirtual,
                "Ldalvik/system/DexClassLoader;",
                "loadDexBytes",
                &["[B"],
                "V",
                &[0, 1],
            );
            m.invoke(Opcode::InvokeStatic, &pc, "run", &[], "V", &[]);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("dynload_{i}"),
        category: Category::DynamicLoading,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

/// Builds the Code-1 style self-modifying `advancedLeak` layout shared by
/// the two self-modifying categories. Returns the sample with its tamper.
fn self_modifying(i: usize, deep: bool) -> Sample {
    let tag = if deep { "selfmoddeep" } else { "selfmod" };
    let entry = format!("Lbench/{tag}{i}/Main;");
    let mut pb = ProgramBuilder::new();
    let entry_for_class = entry.clone();
    pb.class(&entry, move |c| {
        let entry = entry_for_class.clone();
        c.superclass("Landroid/app/Activity;");
        // Layout identical to the paper's Code 2 (dex_pc in comments).
        let entry2 = entry.clone();
        c.method("advancedLeak", &[], "V", 3, move |m| {
            let this = m.this_reg();
            let (l0, l1) = (m.asm.new_label(), m.asm.new_label());
            emit_source(m, 0); // pc 0..3 (invoke 3 units + move-result 1)
            m.asm.const4(1, 0); // pc 4
            m.asm.bind(l0);
            m.asm.const4(2, 2); // pc 5
            m.asm.if_cmp(Opcode::IfGe, 1, 2, l1); // pc 6..7
            m.invoke(
                // pc 8..10
                Opcode::InvokeVirtual,
                &entry2,
                "normal",
                &["Ljava/lang/String;"],
                "V",
                &[this, 0],
            );
            m.invoke(
                // pc 11..13
                Opcode::InvokeVirtual,
                &entry2,
                "bytecodeTamper",
                &["I"],
                "V",
                &[this, 1],
            );
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1); // pc 14..15
            m.asm.goto(l0); // pc 16
            m.asm.bind(l1);
            m.asm.ret(Opcode::ReturnVoid, 0); // pc 17
        });
        c.method("normal", &["Ljava/lang/String;"], "V", 0, |m| {
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        if deep {
            // Wrapper chain: deep0 .. deep7 -> sink.
            for d in 0..8u32 {
                let entry3 = entry.clone();
                c.static_method(
                    &format!("deep{d}"),
                    &["Ljava/lang/String;"],
                    "V",
                    1,
                    move |m| {
                        let p = m.param_reg(0);
                        if d == 7 {
                            emit_sink(m, p);
                        } else {
                            m.invoke(
                                Opcode::InvokeStatic,
                                &entry3,
                                &format!("deep{}", d + 1),
                                &["Ljava/lang/String;"],
                                "V",
                                &[p],
                            );
                        }
                        m.asm.ret(Opcode::ReturnVoid, 0);
                    },
                );
            }
        } else {
            let entry3 = entry.clone();
            c.method("sink", &["Ljava/lang/String;"], "V", 1, move |m| {
                let _ = &entry3;
                let p = m.param_reg(0);
                emit_sink(m, p);
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        }
        c.native_method("bytecodeTamper", &["I"], "V");
        let entry4 = entry.clone();
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 0, move |m| {
            let this = m.this_reg();
            m.invoke(
                Opcode::InvokeVirtual,
                &entry4,
                "advancedLeak",
                &[],
                "V",
                &[this],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    let mut dex = pb.build().expect("sample assembles");

    // Compute patch units against the built pools.
    let original_units: Vec<u16> = {
        let class = dex.find_class(&entry).expect("entry built");
        let leak = class
            .class_data
            .as_ref()
            .expect("class data")
            .methods()
            .find(|m| {
                dex.method_signature(m.method_idx)
                    .is_ok_and(|s| s.contains("advancedLeak"))
            })
            .expect("advancedLeak");
        leak.code.as_ref().expect("code").insns.clone()
    };
    let decoy = dex.intern_string("harmless");
    let hidden_target_idx = if deep {
        dex.intern_method(&entry, "deep0", "V", &["Ljava/lang/String;"])
    } else {
        dex.intern_method(&entry, "sink", "V", &["Ljava/lang/String;"])
    };
    let normal_idx = dex.intern_method(&entry, "normal", "V", &["Ljava/lang/String;"]);

    let mut cs = Insn::of(Opcode::ConstString);
    cs.a = 0;
    cs.idx = decoy;
    let cs_units = encode_insn(&cs).expect("const-string encodes");
    let hide_prologue = vec![cs_units[0], cs_units[1], 0x0000, 0x0000];

    let mut hidden_inv = Insn::of(if deep {
        Opcode::InvokeStatic
    } else {
        Opcode::InvokeVirtual
    });
    hidden_inv.idx = hidden_target_idx;
    hidden_inv.regs = if deep { vec![0] } else { vec![3, 0] };
    let hidden_units = encode_insn(&hidden_inv).expect("hidden invoke encodes");

    let mut normal_inv = Insn::of(Opcode::InvokeVirtual);
    normal_inv.idx = normal_idx;
    normal_inv.regs = vec![3, 0];
    let normal_units = encode_insn(&normal_inv).expect("normal invoke encodes");

    let tamper = TamperSpec {
        native_class: entry.clone(),
        native_name: "bytecodeTamper".to_owned(),
        target: (entry.clone(), "advancedLeak".to_owned(), "()V".to_owned()),
        patches: vec![
            Patch {
                when_arg: 0,
                at: 0,
                units: hide_prologue,
            },
            Patch {
                when_arg: 0,
                at: 8,
                units: hidden_units,
            },
            Patch {
                when_arg: 1,
                at: 0,
                units: original_units[0..4].to_vec(),
            },
            Patch {
                when_arg: 1,
                at: 8,
                units: normal_units,
            },
        ],
    };

    Sample {
        name: format!("{tag}_{i}"),
        category: if deep {
            Category::SelfModifyingDeep
        } else {
            Category::SelfModifying
        },
        dex,
        entry,
        tampers: vec![tamper],
    }
}

fn dead_code_method(i: usize) -> Sample {
    let entry = format!("Lbench/deadm{i}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
            m.const_str(0, "benign");
            m.invoke(
                Opcode::InvokeStatic,
                "Landroid/util/Log;",
                "i",
                &["Ljava/lang/String;", "Ljava/lang/String;"],
                "I",
                &[0, 0],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        c.static_method("neverCalled", &[], "V", 2, |m| {
            emit_source(m, 0);
            emit_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("dead_method_{i}"),
        category: Category::DeadCodeMethod,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn dead_code_branch(i: usize) -> Sample {
    let entry = format!("Lbench/deadb{i}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 3, |m| {
            m.asm.const4(0, 0);
            let leak = m.asm.new_label();
            let end = m.asm.new_label();
            m.asm.if_z(Opcode::IfNez, 0, leak); // never taken: v0 == 0
            m.asm.goto(end);
            m.asm.bind(leak);
            emit_source(m, 1);
            emit_sink(m, 1);
            m.asm.bind(end);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("dead_branch_{i}"),
        category: Category::DeadCodeBranch,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn array_unknown_index(i: usize) -> Sample {
    let entry = format!("Lbench/arrsep{i}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 7, |m| {
            emit_source(m, 0);
            m.asm.const4(1, 3);
            m.new_array(2, 1, "[Ljava/lang/String;");
            // Write index in {1, 2}: statically unknown, never 0.
            emit_input_bound(m, 3, 4, 2);
            m.asm.binop_lit8(Opcode::AddIntLit8, 3, 3, 1);
            m.asm.binop(Opcode::AputObject, 0, 2, 3);
            m.asm.const4(5, 0);
            m.asm.binop(Opcode::AgetObject, 6, 2, 5);
            emit_sink(m, 6);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("array_unknown_{i}"),
        category: Category::ArrayUnknownIndex,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn overwrite_benign(i: usize) -> Sample {
    let entry = format!("Lbench/overwrite{i}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, |m| {
            emit_source(m, 0);
            m.const_str(0, "overwritten");
            emit_sink(m, 0);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("overwrite_{i}"),
        category: Category::OverwriteBenign,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn implicit_benign(i: usize) -> Sample {
    let entry = format!("Lbench/impben{i}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, |m| {
            emit_source(m, 0);
            m.invoke(
                Opcode::InvokeVirtual,
                "Ljava/lang/String;",
                "length",
                &[],
                "I",
                &[0],
            );
            mr_int(m, 1);
            let skip = m.asm.new_label();
            m.asm.if_z(Opcode::IfEqz, 1, skip);
            m.asm.nop();
            m.asm.bind(skip);
            m.const_str(2, "constant");
            emit_sink(m, 2);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("implicit_benign_{i}"),
        category: Category::ImplicitBenign,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

/// Shared shape of the three fuzz-path samples: a hidden (encrypted
/// reflection) connector, reachable only under fuzzed input, links a
/// producer `A` and a consumer `B`.
fn fuzz_path(kind: Category) -> Sample {
    let (tag, name) = match kind {
        Category::FuzzPathAll => ("fuzzall", "fuzz_path_all"),
        Category::FuzzPathFlowInsens => ("fuzzfi", "fuzz_path_flow_insensitive"),
        _ => ("fuzzimp", "fuzz_path_implicit"),
    };
    let entry = format!("Lbench/{tag}/Main;");
    let helpers = format!("Lbench/{tag}/Helpers;");
    let mut pb = ProgramBuilder::new();
    let kind2 = kind;
    pb.class(&helpers, move |c| {
        match kind2 {
            Category::FuzzPathFlowInsens => {
                // produce(): v = source; v = "clean"; return v
                c.static_method("produce", &[], "Ljava/lang/String;", 2, |m| {
                    emit_source(m, 0);
                    m.const_str(0, "clean");
                    m.asm.ret(Opcode::ReturnObject, 0);
                });
            }
            _ => {
                c.static_method("produce", &[], "Ljava/lang/String;", 2, |m| {
                    emit_source(m, 0);
                    m.asm.ret(Opcode::ReturnObject, 0);
                });
            }
        }
        match kind2 {
            Category::FuzzPathImplicit => {
                // consume(p): branch on p, sink a constant.
                c.static_method("consume", &["Ljava/lang/String;"], "V", 3, |m| {
                    let p = m.param_reg(0);
                    m.invoke(
                        Opcode::InvokeVirtual,
                        "Ljava/lang/String;",
                        "length",
                        &[],
                        "I",
                        &[p],
                    );
                    mr_int(m, 0);
                    let skip = m.asm.new_label();
                    m.asm.if_z(Opcode::IfEqz, 0, skip);
                    m.asm.nop();
                    m.asm.bind(skip);
                    m.const_str(1, "fixed");
                    emit_sink(m, 1);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            }
            _ => {
                c.static_method("consume", &["Ljava/lang/String;"], "V", 1, |m| {
                    let p = m.param_reg(0);
                    emit_sink(m, p);
                    m.asm.ret(Opcode::ReturnVoid, 0);
                });
            }
        }
    });
    let helpers_dotted = class_to_dotted(&helpers);
    pb.class(&entry, move |c| {
        c.superclass("Landroid/app/Activity;");
        let dotted = helpers_dotted.clone();
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 12, move |m| {
            // Repeatedly sample fuzz input; with pseudo-random inputs the
            // connector triggers with overwhelming probability — but no
            // realistic user input reaches it.
            let end = m.asm.new_label();
            let connector = m.asm.new_label();
            m.asm.const4(9, 0);
            let top = m.asm.new_label();
            m.asm.bind(top);
            m.asm.const4(10, 8);
            m.asm.if_cmp(Opcode::IfGe, 9, 10, end);
            emit_input_bound(m, 11, 10, 4);
            m.asm.const4(10, 2);
            m.asm.if_cmp(Opcode::IfEq, 11, 10, connector);
            m.asm.binop_lit8(Opcode::AddIntLit8, 9, 9, 1);
            m.asm.goto(top);
            m.asm.bind(connector);
            // t = Helpers.produce(); reflectively call Helpers.consume(t).
            m.invoke(
                Opcode::InvokeStatic,
                &format!("L{};", dotted.replace('.', "/")),
                "produce",
                &[],
                "Ljava/lang/String;",
                &[],
            );
            mr_obj(m, 8);
            emit_reflective_leak(m, &dotted, "consume", true, false, 8);
            m.asm.bind(end);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: name.to_owned(),
        category: kind,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

fn plain_benign(i: usize) -> Sample {
    let entry = format!("Lbench/plain{i}/Main;");
    let mut pb = ProgramBuilder::new();
    pb.class(&entry, |c| {
        c.superclass("Landroid/app/Activity;");
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 4, |m| {
            m.asm.const4(0, i as i64 % 8);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 0, 3);
            m.asm.binop(Opcode::MulInt, 2, 1, 0);
            m.invoke(
                Opcode::InvokeStatic,
                "Ljava/lang/String;",
                "valueOf",
                &["I"],
                "Ljava/lang/String;",
                &[2],
            );
            mr_obj(m, 3);
            m.invoke(
                Opcode::InvokeStatic,
                "Landroid/util/Log;",
                "i",
                &["Ljava/lang/String;", "Ljava/lang/String;"],
                "I",
                &[3, 3],
            );
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
    });
    Sample {
        name: format!("plain_{i}"),
        category: Category::PlainBenign,
        dex: finish_activity(&mut pb, &entry),
        entry,
        tampers: vec![],
    }
}

/// Builds the complete 134-sample suite.
pub fn build_suite() -> Vec<Sample> {
    let mut suite = Vec::with_capacity(134);
    for (category, count) in Category::composition() {
        for i in 0..count {
            suite.push(match category {
                Category::Direct => direct(i),
                Category::Callback => callback(i),
                Category::ArrayIndexLeak => array_index_leak(i),
                Category::TabletGated => tablet_gated(),
                Category::ReflectionConst => reflection_const(i),
                Category::Icc => icc(i),
                Category::Implicit => implicit(i),
                Category::ReflectionEncrypted => reflection_hidden(i, false),
                Category::ReflectionBoxed => reflection_hidden(i, true),
                Category::DynamicLoading => dynamic_loading(i),
                Category::SelfModifying => self_modifying(i, false),
                Category::SelfModifyingDeep => self_modifying(i, true),
                Category::DeadCodeMethod => dead_code_method(i),
                Category::DeadCodeBranch => dead_code_branch(i),
                Category::ArrayUnknownIndex => array_unknown_index(i),
                Category::OverwriteBenign => overwrite_benign(i),
                Category::ImplicitBenign => implicit_benign(i),
                Category::FuzzPathAll => fuzz_path(Category::FuzzPathAll),
                Category::FuzzPathFlowInsens => fuzz_path(Category::FuzzPathFlowInsens),
                Category::FuzzPathImplicit => fuzz_path(Category::FuzzPathImplicit),
                Category::PlainBenign => plain_benign(i),
            });
        }
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_134_samples_111_leaky() {
        let suite = build_suite();
        assert_eq!(suite.len(), 134);
        assert_eq!(suite.iter().filter(|s| s.leaky()).count(), 111);
        // Names are unique.
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 134);
    }

    #[test]
    fn every_sample_verifies() {
        let options = dexlego_verifier::VerifyOptions::errors_only();
        for sample in build_suite() {
            dexlego_dex::verify::verify(&sample.dex, dexlego_dex::verify::Strictness::Referential)
                .unwrap_or_else(|e| panic!("{}: {e}", sample.name));
            assert!(
                sample.dex.find_class(&sample.entry).is_some(),
                "{}: entry class missing",
                sample.name
            );
            // Every sample must also pass the bytecode verifier: the corpus
            // exists to be loaded, executed, and reassembled, so a body ART
            // would reject is a corpus bug.
            let diags = dexlego_verifier::verify_dex(&sample.dex, &options);
            assert!(
                diags.is_empty(),
                "{}: bytecode verifier errors: {}",
                sample.name,
                diags
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }

    #[test]
    fn enc_is_involution_of_decrypt() {
        let s = "bench.reflenc0.Hidden";
        let e = enc(s);
        assert_ne!(e, s);
        assert_eq!(enc(&e), s);
    }
}
