#![forbid(unsafe_code)]

//! The benchmark corpus: a generated DroidBench-style suite of 134
//! labelled samples (119 "existing" plus the paper's 15 contributed ones)
//! and synthetic application generators for the scale experiments.
//!
//! Every sample is a real program: it is built as bytecode, runs on the
//! simulated runtime (leaky samples actually leak), is analysable by the
//! static tools, and is packable by the packers. Sample categories are
//! chosen so that the *mechanical* interaction between category semantics
//! and tool capability profiles reproduces the per-tool true/false-positive
//! structure of the paper's Tables II and III (the full derivation is in
//! DESIGN.md).

pub mod appgen;
pub mod categories;
pub mod driver;
pub mod samples;

pub use categories::Category;
pub use driver::drive_sample;
pub use samples::{build_suite, register_tamper_specs, Sample, TamperSpec};
