//! Synthetic application generator for the scale experiments.
//!
//! Generates runnable apps with a target instruction count and a controlled
//! coverage structure: directly reachable code, input-gated code (a fuzzer
//! rarely reaches it; force execution does), dead code, and
//! exception-handler code (reached by neither — the paper's third cause of
//! missed instructions). These parameters shape Tables I, VI, VII and the
//! performance workloads of Figure 6 / Table VIII.

use dexlego_dalvik::builder::{MethodBuilder, ProgramBuilder};
use dexlego_dalvik::{decode_method, Decoded, Insn, Opcode};
use dexlego_dex::{CodeItem, DexFile};

/// Specification of a generated application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Package path, e.g. `"aosp/calculator"`.
    pub package: String,
    /// Approximate total bytecode instruction count.
    pub target_insns: usize,
    /// Fraction of filler methods reachable directly from `onCreate`.
    pub reachable_fraction: f64,
    /// Fraction reachable only under improbable fuzz input.
    pub gated_fraction: f64,
    /// Fraction in never-invoked classes (dead code).
    pub dead_fraction: f64,
    /// Fraction guarded by never-taken catch handlers.
    pub catch_fraction: f64,
    /// Number of UI callbacks to register.
    pub callbacks: usize,
}

impl AppSpec {
    /// A balanced default profile for coverage experiments, roughly shaped
    /// to reproduce Table VII's Sapienz-vs-force-execution gap.
    pub fn coverage_profile(package: &str, target_insns: usize) -> AppSpec {
        AppSpec {
            package: package.to_owned(),
            target_insns,
            reachable_fraction: 0.22,
            gated_fraction: 0.55,
            dead_fraction: 0.13,
            catch_fraction: 0.10,
            callbacks: 3,
        }
    }

    /// A fully-reachable profile for the unpacking correctness experiments
    /// (Table I apps exercise everything they contain).
    pub fn plain_profile(package: &str, target_insns: usize) -> AppSpec {
        AppSpec {
            package: package.to_owned(),
            target_insns,
            reachable_fraction: 1.0,
            gated_fraction: 0.0,
            dead_fraction: 0.0,
            catch_fraction: 0.0,
            callbacks: 1,
        }
    }
}

/// A generated application.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// The app's DEX.
    pub dex: DexFile,
    /// Entry activity descriptor.
    pub entry: String,
    /// Actual instruction count (decoded, excluding payloads).
    pub insn_count: usize,
}

/// Counts decoded instructions (not code units, not payloads) in a DEX.
pub fn count_insns(dex: &DexFile) -> usize {
    dex.class_defs()
        .iter()
        .filter_map(|c| c.class_data.as_ref())
        .flat_map(|d| d.methods())
        .filter_map(|m| m.code.as_ref())
        .map(|code: &CodeItem| {
            decode_method(&code.insns)
                .map(|v| {
                    v.iter()
                        .filter(|(_, d)| matches!(d, Decoded::Insn(_)))
                        .count()
                })
                .unwrap_or(0)
        })
        .sum()
}

/// Emits a filler body of exactly `n` instructions (including the return).
///
/// Roughly every eleventh instruction group is a conditional branch whose
/// taken direction is unreachable under normal semantics (the condition
/// register is a non-negative constant tested with `if-ltz`) — real code's
/// error paths, which only force execution covers.
fn filler_body(m: &mut MethodBuilder<'_>, n: usize, flavor: usize) {
    debug_assert!(n >= 2);
    m.asm.const4(1, 0);
    let mut emitted = 1;
    let mut chunk = 0usize;
    while emitted < n - 1 {
        if emitted % 11 == 0 && n - 1 - emitted >= 3 {
            m.asm.const4(0, ((flavor + chunk) % 7) as i64);
            let skip = m.asm.new_label();
            m.asm.if_z(Opcode::IfLtz, 0, skip);
            m.asm.binop_lit8(Opcode::AddIntLit8, 1, 1, 1);
            m.asm.bind(skip);
            emitted += 3;
            chunk += 1;
        } else {
            match (emitted + flavor) % 3 {
                0 => m.asm.binop_lit8(Opcode::MulIntLit8, 1, 1, 2),
                1 => m.asm.binop_lit8(Opcode::XorIntLit8, 1, 1, 0x15),
                _ => m.asm.binop_lit8(Opcode::ShrIntLit8, 1, 1, 1),
            };
            emitted += 1;
        }
    }
    m.asm.ret(Opcode::Return, 1);
}

/// A filler body whose second half sits in a catch handler that never runs.
fn filler_body_with_catch(m: &mut MethodBuilder<'_>, n: usize, flavor: usize) {
    // Emit half the instructions normally; the "catch" half is dead code
    // after the return, registered as a handler range by post-processing.
    let half = (n / 2).max(2);
    m.asm.const4(0, (flavor % 5) as i64);
    let mut emitted = 1;
    while emitted < half - 1 {
        m.asm.binop_lit8(Opcode::AddIntLit8, 0, 0, 1);
        emitted += 1;
    }
    m.asm.ret(Opcode::Return, 0);
    emitted += 1;
    // Handler block (reached only through the exception table): real catch
    // code branches on the failure it observed, so give it conditional
    // branches too — neither direction is ever covered, not even by force
    // execution (the expected exceptions are never thrown; paper §V-D
    // cause 3).
    let mut chunk = 0usize;
    while emitted < n - 1 {
        if chunk.is_multiple_of(6) && n - 1 - emitted >= 2 {
            let skip = m.asm.new_label();
            m.asm.if_z(Opcode::IfLtz, 0, skip);
            m.asm.bind(skip);
            emitted += 1;
        } else {
            m.asm.binop_lit8(Opcode::SubInt2addr, 0, 0, 0);
            emitted += 1;
        }
        chunk += 1;
    }
    m.asm.ret(Opcode::Return, 0);
}

/// Generates an application from `spec`. Builds twice: the first pass
/// measures the real overhead, the second sizes the padding method to land
/// on the instruction target.
pub fn generate(spec: &AppSpec) -> GeneratedApp {
    const BODY: usize = 40;
    let mut method_count = (spec.target_insns.saturating_sub(60) / (BODY + 2)).max(1);
    let mut pad = 2usize;
    let mut best = generate_with_pad(spec, method_count, pad);
    for _ in 0..4 {
        let count = best.insn_count as i64;
        let target = spec.target_insns as i64;
        if count < target {
            pad += (target - count) as usize;
        } else if count > target + 4 {
            let excess = (count - target) as usize;
            let drop = (excess / (BODY + 1)).max(1);
            method_count = method_count.saturating_sub(drop).max(1);
        } else {
            break;
        }
        best = generate_with_pad(spec, method_count, pad);
    }
    best
}

fn generate_with_pad(spec: &AppSpec, method_count: usize, remainder: usize) -> GeneratedApp {
    const BODY: usize = 40;
    let entry = format!("L{}/Main;", spec.package);

    let n_dead = (method_count as f64 * spec.dead_fraction) as usize;
    let n_catch = (method_count as f64 * spec.catch_fraction) as usize;
    let n_gated = (method_count as f64 * spec.gated_fraction) as usize;
    let n_plain = method_count - n_dead - n_catch - n_gated;

    let mut pb = ProgramBuilder::new();

    // Filler classes, ten methods each. Dead methods live in their own
    // classes (the paper's `CmdTemplate` observation).
    let mut plain_refs: Vec<(String, String)> = Vec::new();
    let mut gated_refs: Vec<(String, String)> = Vec::new();
    let mut class_i = 0usize;
    let mut emit_class = |pb: &mut ProgramBuilder,
                          kind: &str,
                          count: usize,
                          refs: Option<&mut Vec<(String, String)>>,
                          catches: bool|
     -> Vec<String> {
        let mut class_names = Vec::new();
        let mut local_refs = Vec::new();
        let mut remaining = count;
        while remaining > 0 {
            let in_class = remaining.min(10);
            let class_name = format!("L{}/{}{class_i};", spec.package, kind);
            class_i += 1;
            pb.class(&class_name, |c| {
                for k in 0..in_class {
                    let name = format!("m{k}");
                    if catches {
                        c.static_method(&name, &[], "I", 2, |m| {
                            filler_body_with_catch(m, BODY, k);
                        });
                    } else {
                        c.static_method(&name, &[], "I", 2, |m| {
                            filler_body(m, BODY, k);
                        });
                    }
                    local_refs.push((class_name.clone(), name));
                }
            });
            class_names.push(class_name);
            remaining -= in_class;
        }
        if let Some(refs) = refs {
            refs.extend(local_refs);
        }
        class_names
    };

    emit_class(&mut pb, "Reach", n_plain, Some(&mut plain_refs), false);
    emit_class(&mut pb, "Gated", n_gated, Some(&mut gated_refs), false);
    emit_class(&mut pb, "Dead", n_dead, None, false);
    let catch_fixups = emit_class(&mut pb, "Handler", n_catch, Some(&mut plain_refs), true);

    // Callback listeners.
    let mut listeners = Vec::new();
    for k in 0..spec.callbacks {
        let listener = format!("L{}/Listener{k};", spec.package);
        let target = plain_refs.get(k % plain_refs.len().max(1)).cloned();
        pb.class(&listener, |c| {
            c.implements("Landroid/view/View$OnClickListener;");
            c.method("onClick", &["Landroid/view/View;"], "V", 2, |m| {
                if let Some((class, name)) = &target {
                    m.invoke(Opcode::InvokeStatic, class, name, &[], "I", &[]);
                    let mut mr = Insn::of(Opcode::MoveResult);
                    mr.a = 0;
                    m.asm.push(mr);
                }
                m.asm.ret(Opcode::ReturnVoid, 0);
            });
        });
        listeners.push(listener);
    }

    // Entry activity: onCreate registers callbacks and runs the dispatcher;
    // the dispatcher calls every plain method and gates the gated ones
    // behind improbable input equalities.
    let entry2 = entry.clone();
    let plain2 = plain_refs.clone();
    let gated2 = gated_refs.clone();
    let listeners2 = listeners.clone();
    pb.class(&entry, move |c| {
        c.superclass("Landroid/app/Activity;");
        let listeners3 = listeners2.clone();
        let entry3 = entry2.clone();
        c.method("onCreate", &["Landroid/os/Bundle;"], "V", 2, move |m| {
            for listener in &listeners3 {
                m.new_instance(0, listener);
                m.new_instance(1, "Landroid/view/View;");
                m.invoke(
                    Opcode::InvokeVirtual,
                    "Landroid/view/View;",
                    "setOnClickListener",
                    &["Landroid/view/View$OnClickListener;"],
                    "V",
                    &[1, 0],
                );
            }
            m.invoke(Opcode::InvokeStatic, &entry3, "dispatch", &[], "V", &[]);
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        let plain3 = plain2.clone();
        let gated3 = gated2.clone();
        c.static_method("dispatch", &[], "V", 4, move |m| {
            for (class, name) in &plain3 {
                m.invoke(Opcode::InvokeStatic, class, name, &[], "I", &[]);
            }
            for (k, (class, name)) in gated3.iter().enumerate() {
                // if (Input.nextIntBound(1024) == k % 1024) gated();
                m.asm.const4(0, 1024);
                m.invoke(
                    Opcode::InvokeStatic,
                    "Lcom/dexlego/Input;",
                    "nextIntBound",
                    &["I"],
                    "I",
                    &[0],
                );
                let mut mr = Insn::of(Opcode::MoveResult);
                mr.a = 1;
                m.asm.push(mr);
                m.asm.const4(2, (k % 1024) as i64);
                let skip = m.asm.new_label();
                m.asm.if_cmp(Opcode::IfNe, 1, 2, skip);
                m.invoke(Opcode::InvokeStatic, class, name, &[], "I", &[]);
                m.asm.bind(skip);
            }
            m.asm.ret(Opcode::ReturnVoid, 0);
        });
        // Remainder filler to hit the instruction target.
        c.static_method("pad", &[], "I", 2, move |m| {
            filler_body(m, remainder.max(2), 1);
        });
    });

    let mut dex = pb.build().expect("generated app assembles");

    // Install never-firing catch handlers over the Handler classes' tails.
    install_catch_tables(&mut dex, &catch_fixups);

    let insn_count = count_insns(&dex);
    GeneratedApp {
        dex,
        entry,
        insn_count,
    }
}

/// Generates a work-list corpus for batch-extraction runs: `count` plain
/// (fully reachable) apps with sizes stepping up from `base_insns`, named
/// `corpus000`, `corpus001`, … Each app runs everything it contains, so a
/// corpus job's collection is deterministic and its reassembly must
/// validate cleanly — the property the harness smoke run asserts.
pub fn corpus_apps(count: usize, base_insns: usize) -> Vec<(String, GeneratedApp)> {
    (0..count)
        .map(|i| {
            let name = format!("corpus{i:03}");
            // Vary sizes so shards are unevenly loaded, like a real corpus.
            let target = base_insns + (i * base_insns) / 3;
            let app = generate(&AppSpec::plain_profile(&format!("corpus/app{i}"), target));
            (name, app)
        })
        .collect()
}

/// Adds a catch-all try/handler covering the first half of each method in
/// the named classes, with the handler at the post-return tail.
fn install_catch_tables(dex: &mut DexFile, class_names: &[String]) {
    let names: std::collections::HashSet<&str> = class_names.iter().map(String::as_str).collect();
    let matches: Vec<usize> = dex
        .class_defs()
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            dex.type_descriptor(c.class_idx)
                .is_ok_and(|d| names.contains(d))
        })
        .map(|(i, _)| i)
        .collect();
    for i in matches {
        let class = &mut dex.class_defs_mut()[i];
        let Some(data) = &mut class.class_data else {
            continue;
        };
        for method in data.direct_methods.iter_mut() {
            let Some(code) = &mut method.code else {
                continue;
            };
            // Find the first return; the handler starts right after it.
            let Ok(decoded) = decode_method(&code.insns) else {
                continue;
            };
            let Some((ret_pc, _)) = decoded
                .iter()
                .find(|(_, d)| matches!(d, Decoded::Insn(insn) if insn.op.is_return()))
            else {
                continue;
            };
            let handler_pc = ret_pc + 1;
            if (handler_pc as usize) >= code.insns.len() {
                continue;
            }
            code.handlers.push(dexlego_dex::EncodedCatchHandler {
                catches: vec![],
                catch_all_addr: Some(handler_pc),
            });
            code.tries.push(dexlego_dex::TryItem {
                start_addr: 0,
                insn_count: *ret_pc as u16 + 1,
                handler_index: code.handlers.len() - 1,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_instruction_targets_approximately() {
        for target in [217usize, 2_507, 8_812] {
            let app = generate(&AppSpec::plain_profile("gen/test", target));
            let err = (app.insn_count as f64 - target as f64).abs() / target as f64;
            assert!(
                err < 0.05,
                "target {target}, got {} ({:.0}% off)",
                app.insn_count,
                err * 100.0
            );
        }
    }

    #[test]
    fn generated_app_verifies_and_runs() {
        let app = generate(&AppSpec::coverage_profile("gen/run", 2_000));
        dexlego_dex::verify::verify(&app.dex, dexlego_dex::verify::Strictness::Referential)
            .unwrap();
        let diags =
            dexlego_verifier::verify_dex(&app.dex, &dexlego_verifier::VerifyOptions::errors_only());
        assert!(
            diags.is_empty(),
            "generated app has bytecode verifier errors: {}",
            diags
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        let mut rt = dexlego_runtime::Runtime::new();
        rt.load_dex(&app.dex, "app").unwrap();
        let mut obs = dexlego_runtime::observer::NullObserver;
        let activity = rt.new_instance(&mut obs, &app.entry).unwrap();
        let class = rt.find_class(&app.entry).unwrap();
        let on_create = rt
            .resolve_method(
                class,
                &dexlego_runtime::class::SigKey::new("onCreate", "(Landroid/os/Bundle;)V"),
            )
            .unwrap();
        rt.call_method(
            &mut obs,
            on_create,
            &[
                dexlego_runtime::Slot::of(activity),
                dexlego_runtime::Slot::of(0),
            ],
        )
        .unwrap();
        assert!(rt.stats.insns > 100);
        assert!(!rt.callbacks.is_empty());
    }
}
