//! Sample categories and the corpus composition.

/// The behavioural category of a benchmark sample.
///
/// Leaky categories (ground truth: a sensitive flow exists):
/// `Direct`, `Callback`, `ArrayIndexLeak`, `TabletGated`,
/// `ReflectionConst`, `Icc`, `Implicit`, `ReflectionEncrypted`,
/// `ReflectionBoxed`, `DynamicLoading`, `SelfModifying`,
/// `SelfModifyingDeep`.
///
/// Benign categories (ground truth: no realisable flow):
/// `DeadCodeMethod`, `DeadCodeBranch`, `ArrayUnknownIndex`,
/// `OverwriteBenign`, `ImplicitBenign`, `FuzzPathAll`,
/// `FuzzPathFlowInsens`, `FuzzPathImplicit`, `PlainBenign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Source reaches sink through ordinary data flow (several syntactic
    /// variants: plain, helper call, StringBuilder, field stash, loop,
    /// switch).
    Direct,
    /// The leak happens inside a registered UI callback.
    Callback,
    /// Real leak through an array element at a constant index.
    ArrayIndexLeak,
    /// Leaks only when the device is a tablet (the paper's one sample
    /// DexLego cannot cover on a phone).
    TabletGated,
    /// Reflective call with compile-time-constant name strings.
    ReflectionConst,
    /// Inter-component flow through `putExtra`/`getExtra`.
    Icc,
    /// Implicit flow through a tainted branch condition.
    Implicit,
    /// Reflective call whose name strings are decrypted at runtime
    /// (contributed advanced-reflection samples).
    ReflectionEncrypted,
    /// Advanced reflection passing the payload through a boxed `Object[]`
    /// filled at a statically unknown index.
    ReflectionBoxed,
    /// The leaking class arrives via runtime DEX loading (contributed).
    DynamicLoading,
    /// Self-modifying bytecode hides the sink (contributed, Code-1 style).
    SelfModifying,
    /// Self-modifying code whose revealed flow passes through a deep
    /// wrapper chain (contributed).
    SelfModifyingDeep,
    /// Benign: a never-invoked method contains a leak-shaped flow.
    DeadCodeMethod,
    /// Benign: a constant-guarded, never-executed branch contains a
    /// leak-shaped flow (contributed "unreachable taint flow" samples).
    DeadCodeBranch,
    /// Benign: tainted array write at an unknown index, sink reads a
    /// different constant index.
    ArrayUnknownIndex,
    /// Benign: the tainted value is overwritten before reaching the sink.
    OverwriteBenign,
    /// Benign: a tainted branch guards code that sinks only constants.
    ImplicitBenign,
    /// Benign: a leak-shaped path only reachable through unrealistic
    /// fuzzer input, hidden behind unresolvable reflection (every tool
    /// false-positives after DexLego's coverage-driven collection).
    FuzzPathAll,
    /// As above, but the revealed flow is killed on the realisable path —
    /// only a flow-insensitive tool false-positives.
    FuzzPathFlowInsens,
    /// As above, but the revealed connection is implicit-only — only an
    /// implicit-flow tool false-positives.
    FuzzPathImplicit,
    /// Benign with no leak-shaped structure at all.
    PlainBenign,
}

impl Category {
    /// Ground-truth label: does a realisable sensitive flow exist?
    pub fn leaky(self) -> bool {
        matches!(
            self,
            Category::Direct
                | Category::Callback
                | Category::ArrayIndexLeak
                | Category::TabletGated
                | Category::ReflectionConst
                | Category::Icc
                | Category::Implicit
                | Category::ReflectionEncrypted
                | Category::ReflectionBoxed
                | Category::DynamicLoading
                | Category::SelfModifying
                | Category::SelfModifyingDeep
        )
    }

    /// Whether this is one of the paper's 15 contributed samples'
    /// categories.
    pub fn contributed(self) -> bool {
        matches!(
            self,
            Category::ReflectionEncrypted
                | Category::ReflectionBoxed
                | Category::DynamicLoading
                | Category::SelfModifying
                | Category::SelfModifyingDeep
                | Category::DeadCodeBranch
        )
    }

    /// The corpus composition: (category, count) summing to 134 samples
    /// with 111 leaky ones, mirroring the paper's totals.
    pub fn composition() -> Vec<(Category, usize)> {
        vec![
            (Category::Direct, 74),
            (Category::Callback, 3),
            (Category::ArrayIndexLeak, 3),
            (Category::TabletGated, 1),
            (Category::ReflectionConst, 2),
            (Category::Icc, 12),
            (Category::Implicit, 3),
            (Category::ReflectionEncrypted, 2),
            (Category::ReflectionBoxed, 4),
            (Category::DynamicLoading, 3),
            (Category::SelfModifying, 2),
            (Category::SelfModifyingDeep, 2),
            (Category::DeadCodeMethod, 4),
            (Category::DeadCodeBranch, 3),
            (Category::ArrayUnknownIndex, 3),
            (Category::OverwriteBenign, 2),
            (Category::ImplicitBenign, 2),
            (Category::FuzzPathAll, 1),
            (Category::FuzzPathFlowInsens, 1),
            (Category::FuzzPathImplicit, 1),
            (Category::PlainBenign, 6),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_matches_paper_totals() {
        let comp = Category::composition();
        let total: usize = comp.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 134);
        let leaky: usize = comp.iter().filter(|(c, _)| c.leaky()).map(|(_, n)| n).sum();
        assert_eq!(leaky, 111);
        let contributed: usize = comp
            .iter()
            .filter(|(c, _)| c.contributed())
            .map(|(_, n)| n)
            .sum();
        // 5 advanced reflection + 3 dynamic loading + 4 self-modifying +
        // 3 unreachable taint flows (the 2 encrypted-reflection samples
        // include one standing in for DroidBench's own hard-reflection
        // sample; see DESIGN.md).
        assert_eq!(contributed, 16);
    }
}
