//! A minimal scratch-directory helper (the workspace is dependency-free,
//! so there is no `tempfile`). Used by the store/service tests, the
//! `dexlegod` default store location, and the cold-vs-warm bench driver.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed
/// (best-effort) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `"$TMPDIR/dexlego-<tag>-<pid>-<nanos>-<seq>"`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(tag: &str) -> std::io::Result<TempDir> {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "dexlego-{tag}-{}-{nanos}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("t").unwrap();
        let b = TempDir::new("t").unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}
