//! The cached extraction result and its binary codec.
//!
//! The payload format is a simple length-prefixed binary encoding (the
//! workspace is dependency-free, so there is no serde): little-endian
//! integers, `u32` length prefixes, UTF-8 strings. A leading format tag
//! (`RES4`; `RES3` lacked the verify-cache counters, `RES2` the
//! typed-verifier counters, `RES1` the quickening counters — all decode as
//! a miss) versions the payload independently of the on-disk container
//! that wraps it (see [`crate::store`]).

/// Everything the pipeline produced for one (DEX, profile, parameters)
/// input: the revealed DEX plus the report fields a cache hit must be able
/// to reconstruct without re-running extraction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CachedResult {
    /// Serialised revealed DEX (the artifact handed to static analysis).
    pub dex_bytes: Vec<u8>,
    /// Wall time of the original extraction, microseconds.
    pub wall_us: u64,
    /// Instructions interpreted while driving the app.
    pub insns: u64,
    /// Method frames entered while driving the app.
    pub frames: u64,
    /// Instruction cells rewritten to pre-resolved quickened forms.
    pub quickens: u64,
    /// Quickened cells discarded by code-epoch invalidation.
    pub dequickens: u64,
    /// Fused superinstruction dispatches in the interpreter hot loop.
    pub superinsn_hits: u64,
    /// Methods with collected trees.
    pub methods_collected: u64,
    /// Instructions collected across all trees.
    pub insns_collected: u64,
    /// Serialised collection-file size in bytes.
    pub dump_size: u64,
    /// Warning-severity verifier lints on the reassembled DEX.
    pub verifier_lints: u64,
    /// Method bodies with typed IR materialized by the verifier.
    pub typed_methods: u64,
    /// Instructions across all typed-IR methods.
    pub typed_insns: u64,
    /// Method verifications served from the digest-keyed verify cache.
    pub verify_cache_hits: u64,
    /// Method verifications that ran the fixpoint (verify-cache misses).
    pub verify_cache_misses: u64,
    /// `validate_reveal` findings (empty = validated).
    pub validation: Vec<String>,
    /// Per-phase pipeline timings in microseconds, execution order.
    pub phases_us: Vec<(String, u64)>,
}

const PAYLOAD_TAG: &[u8; 4] = b"RES4";

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    out.extend_from_slice(v);
}

fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| format!("payload truncated at offset {}", self.pos))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, String> {
        String::from_utf8(self.bytes()?).map_err(|_| "invalid UTF-8 in payload".to_owned())
    }
}

/// Serialises a result into the versioned payload format.
pub fn encode(r: &CachedResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(r.dex_bytes.len() + 128);
    out.extend_from_slice(PAYLOAD_TAG);
    put_bytes(&mut out, &r.dex_bytes);
    for v in [
        r.wall_us,
        r.insns,
        r.frames,
        r.quickens,
        r.dequickens,
        r.superinsn_hits,
        r.methods_collected,
        r.insns_collected,
        r.dump_size,
        r.verifier_lints,
        r.typed_methods,
        r.typed_insns,
        r.verify_cache_hits,
        r.verify_cache_misses,
    ] {
        put_u64(&mut out, v);
    }
    out.extend_from_slice(&(r.validation.len() as u32).to_le_bytes());
    for finding in &r.validation {
        put_str(&mut out, finding);
    }
    out.extend_from_slice(&(r.phases_us.len() as u32).to_le_bytes());
    for (phase, us) in &r.phases_us {
        put_str(&mut out, phase);
        put_u64(&mut out, *us);
    }
    out
}

/// Deserialises a payload produced by [`encode`].
///
/// # Errors
///
/// Any structural violation (wrong tag, truncation, bad UTF-8) is an error;
/// the store treats a decode error like a checksum mismatch and quarantines
/// the entry.
pub fn decode(data: &[u8]) -> Result<CachedResult, String> {
    let mut c = Cursor { data, pos: 0 };
    if c.take(4)? != PAYLOAD_TAG {
        return Err("unknown payload format tag".to_owned());
    }
    let dex_bytes = c.bytes()?;
    let wall_us = c.u64()?;
    let insns = c.u64()?;
    let frames = c.u64()?;
    let quickens = c.u64()?;
    let dequickens = c.u64()?;
    let superinsn_hits = c.u64()?;
    let methods_collected = c.u64()?;
    let insns_collected = c.u64()?;
    let dump_size = c.u64()?;
    let verifier_lints = c.u64()?;
    let typed_methods = c.u64()?;
    let typed_insns = c.u64()?;
    let verify_cache_hits = c.u64()?;
    let verify_cache_misses = c.u64()?;
    let n_validation = c.u32()? as usize;
    let mut validation = Vec::with_capacity(n_validation.min(1024));
    for _ in 0..n_validation {
        validation.push(c.string()?);
    }
    let n_phases = c.u32()? as usize;
    let mut phases_us = Vec::with_capacity(n_phases.min(1024));
    for _ in 0..n_phases {
        let phase = c.string()?;
        let us = c.u64()?;
        phases_us.push((phase, us));
    }
    if c.pos != data.len() {
        return Err(format!("{} trailing bytes in payload", data.len() - c.pos));
    }
    Ok(CachedResult {
        dex_bytes,
        wall_us,
        insns,
        frames,
        quickens,
        dequickens,
        superinsn_hits,
        methods_collected,
        insns_collected,
        dump_size,
        verifier_lints,
        typed_methods,
        typed_insns,
        verify_cache_hits,
        verify_cache_misses,
        validation,
        phases_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CachedResult {
        CachedResult {
            dex_bytes: vec![0x64, 0x65, 0x78, 0x0a, 0x00, 0xff],
            wall_us: 1234,
            insns: 5678,
            frames: 9,
            quickens: 21,
            dequickens: 2,
            superinsn_hits: 333,
            methods_collected: 3,
            insns_collected: 400,
            dump_size: 2048,
            verifier_lints: 1,
            typed_methods: 4,
            typed_insns: 77,
            verify_cache_hits: 12,
            verify_cache_misses: 4,
            validation: vec!["m1: missing".to_owned(), "m2: odd".to_owned()],
            phases_us: vec![("collect".to_owned(), 42), ("verify".to_owned(), 7)],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let r = sample();
        assert_eq!(decode(&encode(&r)).unwrap(), r);
        let empty = CachedResult::default();
        assert_eq!(decode(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn rejects_truncation_and_bad_tag() {
        let full = encode(&sample());
        for cut in [0, 3, 4, 10, full.len() - 1] {
            assert!(decode(&full[..cut]).is_err(), "cut at {cut} accepted");
        }
        let mut bad = full.clone();
        bad[0] ^= 0xff;
        assert!(decode(&bad).is_err());
        let mut trailing = full;
        trailing.push(0);
        assert!(decode(&trailing).is_err());
    }
}
