#![forbid(unsafe_code)]

//! A persistent, content-addressed store for extraction results.
//!
//! The batch harness and the `dexlegod` service both face the same cost
//! structure: extracting one (application, packer-profile) pair is
//! expensive, but the inputs are immutable — the same DEX through the same
//! profile with the same driving parameters and the same extractor version
//! always reveals the same bytes. This crate caches that work:
//!
//! - **Content addressing** ([`Key`]): entries are keyed by the SHA-1
//!   digest of the pipeline inputs (`dexlego_core::digest`), so a key
//!   *is* a correctness claim — equal key, equal result.
//! - **Sharded on-disk layout** ([`Store`]): objects live under
//!   `objects/<first-byte>/<rest>`, with an append-only `index.log`
//!   carrying sizes and LRU order across reopens.
//! - **Verified reads**: every entry embeds a checksum over its payload;
//!   a mismatching entry is *quarantined* (moved aside, never served) and
//!   the lookup reports a miss so the caller re-extracts.
//! - **LRU eviction** under a configurable byte budget.
//! - **Fill deduplication** ([`Store::get_or_fill`]): concurrent misses on
//!   one key run the expensive fill exactly once.
//!
//! # Example
//!
//! ```
//! use dexlego_store::{CachedResult, Key, Store, StoreConfig, TempDir};
//!
//! let dir = TempDir::new("doc").unwrap();
//! let store = Store::open(StoreConfig::new(dir.path())).unwrap();
//! let key = Key::new([7u8; 20]);
//! let result = CachedResult {
//!     dex_bytes: vec![1, 2, 3],
//!     ..CachedResult::default()
//! };
//! assert!(store.get(&key).is_none());
//! store.put(&key, &result).unwrap();
//! assert_eq!(store.get(&key).unwrap(), result);
//! assert_eq!(store.stats().hits, 1);
//! ```

pub mod entry;
pub mod hex;
pub mod store;
pub mod tempdir;

pub use entry::CachedResult;
pub use store::{object_path, Key, Store, StoreConfig, StoreStats};
pub use tempdir::TempDir;
