//! The on-disk store: sharded object layout, append-only index, verified
//! reads with quarantine, LRU eviction, and per-key fill deduplication.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use dexlego_dex::checksum::sha1;

use crate::entry::{decode, encode, CachedResult};
use crate::hex::{from_hex, to_hex};

/// A content-addressed store key: the SHA-1 input digest produced by
/// `dexlego_core::digest::InputDigest`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key([u8; 20]);

impl Key {
    /// Wraps a raw 20-byte digest.
    pub fn new(digest: [u8; 20]) -> Key {
        Key(digest)
    }

    /// Parses 40 hex characters.
    pub fn from_hex(s: &str) -> Option<Key> {
        let bytes = from_hex(s)?;
        let digest: [u8; 20] = bytes.try_into().ok()?;
        Some(Key(digest))
    }

    /// The key as 40 lowercase hex characters.
    pub fn to_hex(self) -> String {
        to_hex(&self.0)
    }

    /// The raw 20-byte digest (the router hashes its prefix onto the
    /// consistent-hash ring).
    #[must_use]
    pub fn bytes(self) -> [u8; 20] {
        self.0
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.to_hex())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory (created if missing).
    pub root: PathBuf,
    /// Total object-byte budget; the least-recently-accessed entries are
    /// evicted when a put pushes past it. `u64::MAX` = unbounded.
    pub byte_budget: u64,
}

impl StoreConfig {
    /// An unbounded store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            root: root.into(),
            byte_budget: u64::MAX,
        }
    }

    /// Sets the eviction budget.
    pub fn with_budget(mut self, bytes: u64) -> StoreConfig {
        self.byte_budget = bytes;
        self
    }
}

/// Counters exposed by [`Store::stats`]. `hits`/`misses`/… accumulate over
/// the handle's lifetime; `entries`/`bytes` are the current contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful verified reads.
    pub hits: u64,
    /// Lookups that found nothing servable (including quarantined reads).
    pub misses: u64,
    /// Entries written.
    pub puts: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries quarantined after failing checksum/decode verification.
    pub quarantined: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Object bytes currently resident.
    pub bytes: u64,
}

struct EntryMeta {
    size: u64,
    last_access: u64,
}

struct Inner {
    log: fs::File,
    entries: HashMap<Key, EntryMeta>,
    clock: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    puts: u64,
    evictions: u64,
    quarantined: u64,
}

/// A thread-safe handle to one on-disk store. Clone-free by design: share
/// it between harness workers or service threads behind an [`Arc`].
///
/// Layout under the root directory:
///
/// ```text
/// index.log             append-only operation log (put/get/evict/bad)
/// objects/ab/cdef…      entries, sharded by the first key byte
/// quarantine/abcdef…    entries that failed verification on read
/// ```
///
/// Every entry on disk is `magic ‖ sha1(payload) ‖ len(payload) ‖ payload`;
/// reads recompute the checksum and [quarantine](StoreStats::quarantined)
/// mismatching entries instead of serving them.
pub struct Store {
    root: PathBuf,
    budget: u64,
    inner: Mutex<Inner>,
    // One gate per key for get_or_fill deduplication. Gates are never
    // removed: the map grows with the number of distinct keys seen by this
    // handle, which is bounded by the corpus, not by traffic.
    fills: Mutex<HashMap<Key, Arc<Mutex<()>>>>,
}

const CONTAINER_MAGIC: &[u8; 8] = b"DLSTORE1";

impl Store {
    /// Opens (creating if necessary) the store at `config.root`, replaying
    /// the index log to rebuild the entry table and LRU order.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and log I/O failures.
    pub fn open(config: StoreConfig) -> io::Result<Store> {
        let root = config.root;
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("quarantine"))?;

        let mut entries: HashMap<Key, EntryMeta> = HashMap::new();
        let mut clock = 0u64;
        let log_path = root.join("index.log");
        if let Ok(text) = fs::read_to_string(&log_path) {
            for line in text.lines() {
                let mut parts = line.split_whitespace();
                let (op, key) = match (parts.next(), parts.next().and_then(Key::from_hex)) {
                    (Some(op), Some(key)) => (op, key),
                    _ => continue, // torn or foreign line: skip, don't fail
                };
                clock += 1;
                match op {
                    "put" => {
                        let size = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                        entries.insert(
                            key,
                            EntryMeta {
                                size,
                                last_access: clock,
                            },
                        );
                    }
                    "get" => {
                        if let Some(meta) = entries.get_mut(&key) {
                            meta.last_access = clock;
                        }
                    }
                    "evict" | "bad" => {
                        entries.remove(&key);
                    }
                    _ => {}
                }
            }
        }
        // Drop index entries whose object vanished out from under us (a
        // crash between log append and rename, or manual deletion).
        entries.retain(|key, _| object_path(&root, *key).exists());
        let bytes = entries.values().map(|m| m.size).sum();

        let log = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)?;
        Ok(Store {
            root,
            budget: config.byte_budget,
            inner: Mutex::new(Inner {
                log,
                entries,
                clock,
                bytes,
                hits: 0,
                misses: 0,
                puts: 0,
                evictions: 0,
                quarantined: 0,
            }),
            fills: Mutex::new(HashMap::new()),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Looks up `key`, verifying the entry's checksum. A mismatching or
    /// undecodable entry is moved to `quarantine/` and reported as a miss —
    /// corrupt data is never served.
    pub fn get(&self, key: &Key) -> Option<CachedResult> {
        let mut inner = self.inner.lock().expect("store lock");
        if !inner.entries.contains_key(key) {
            inner.misses += 1;
            return None;
        }
        let path = object_path(&self.root, *key);
        match read_verified(&path) {
            Ok(result) => {
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(meta) = inner.entries.get_mut(key) {
                    meta.last_access = clock;
                }
                inner.hits += 1;
                append_log(&mut inner.log, &format!("get {key}"));
                Some(result)
            }
            Err(_) => {
                // Quarantine: keep the bad bytes around for post-mortems,
                // but make sure no future read can serve them.
                let dest = self.root.join("quarantine").join(key.to_hex());
                if fs::rename(&path, &dest).is_ok() {
                    inner.quarantined += 1;
                }
                if let Some(meta) = inner.entries.remove(key) {
                    inner.bytes = inner.bytes.saturating_sub(meta.size);
                }
                inner.misses += 1;
                append_log(&mut inner.log, &format!("bad {key}"));
                None
            }
        }
    }

    /// Writes `result` under `key` (replacing any previous entry), then
    /// evicts least-recently-accessed entries until the store is back under
    /// its byte budget. The entry just written is exempt from its own put's
    /// eviction pass.
    ///
    /// # Errors
    ///
    /// Propagates object-file I/O failures; the index is only updated after
    /// the object is durably in place.
    pub fn put(&self, key: &Key, result: &CachedResult) -> io::Result<()> {
        let payload = encode(result);
        let mut blob = Vec::with_capacity(payload.len() + 36);
        blob.extend_from_slice(CONTAINER_MAGIC);
        blob.extend_from_slice(&sha1(&payload));
        blob.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        blob.extend_from_slice(&payload);

        let mut inner = self.inner.lock().expect("store lock");
        let path = object_path(&self.root, *key);
        fs::create_dir_all(path.parent().expect("sharded path has a parent"))?;
        // Write-then-rename so a crash mid-write never leaves a torn entry
        // under the served name.
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &blob)?;
        fs::rename(&tmp, &path)?;

        let size = blob.len() as u64;
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.insert(
            *key,
            EntryMeta {
                size,
                last_access: clock,
            },
        ) {
            inner.bytes = inner.bytes.saturating_sub(old.size);
        }
        inner.bytes += size;
        inner.puts += 1;
        append_log(&mut inner.log, &format!("put {key} {size}"));
        self.evict_to_budget(&mut inner, key);
        Ok(())
    }

    /// Runs `fill` at most once per key across concurrent callers: the
    /// first caller through the per-key gate extracts while the rest block,
    /// then find the entry cached. Returns the result (from cache or from
    /// `fill`) and whether it was a cache hit. `fill` may decline to
    /// produce a cacheable result by returning `None` (e.g. the extraction
    /// failed); nothing is stored and later callers will fill again.
    ///
    /// Store I/O errors during the fill's put are swallowed — the cache is
    /// an accelerator, and the freshly computed result is returned either
    /// way.
    pub fn get_or_fill<F>(&self, key: &Key, fill: F) -> (Option<CachedResult>, bool)
    where
        F: FnOnce() -> Option<CachedResult>,
    {
        let gate = {
            let mut fills = self.fills.lock().expect("fill map lock");
            Arc::clone(fills.entry(*key).or_default())
        };
        let _guard = gate.lock().expect("fill gate lock");
        if let Some(hit) = self.get(key) {
            return (Some(hit), true);
        }
        match fill() {
            Some(result) => {
                let _ = self.put(key, &result);
                (Some(result), false)
            }
            None => (None, false),
        }
    }

    /// The replication/read-repair write path: stores `result` under `key`
    /// only if the key is not already resident, returning whether a write
    /// happened. Unlike [`Store::put`] this never clobbers — a backfill
    /// raced by a fresh local fill must not replace the newer entry — and
    /// it routes through the same per-key fill gate, so a backfill cannot
    /// interleave with an in-progress `get_or_fill` on the same key.
    ///
    /// # Errors
    ///
    /// Propagates object-file I/O failures from the underlying put.
    pub fn put_if_absent(&self, key: &Key, result: &CachedResult) -> io::Result<bool> {
        let gate = {
            let mut fills = self.fills.lock().expect("fill map lock");
            Arc::clone(fills.entry(*key).or_default())
        };
        let _guard = gate.lock().expect("fill gate lock");
        if self.contains(key) {
            return Ok(false);
        }
        self.put(key, result)?;
        Ok(true)
    }

    /// A snapshot of the store's counters and current contents.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock");
        StoreStats {
            hits: inner.hits,
            misses: inner.misses,
            puts: inner.puts,
            evictions: inner.evictions,
            quarantined: inner.quarantined,
            entries: inner.entries.len() as u64,
            bytes: inner.bytes,
        }
    }

    /// Whether `key` is resident (no verification, no stats bump).
    pub fn contains(&self, key: &Key) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .entries
            .contains_key(key)
    }

    fn evict_to_budget(&self, inner: &mut Inner, keep: &Key) {
        while inner.bytes > self.budget {
            // Linear scan for the LRU victim: entry counts are corpus-sized
            // (thousands), and eviction only runs on puts that crossed the
            // budget, so an ordered index isn't worth its bookkeeping.
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, m)| m.last_access)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            let _ = fs::remove_file(object_path(&self.root, victim));
            if let Some(meta) = inner.entries.remove(&victim) {
                inner.bytes = inner.bytes.saturating_sub(meta.size);
            }
            inner.evictions += 1;
            append_log(&mut inner.log, &format!("evict {victim}"));
        }
    }
}

/// The sharded object path for `key` under `root`.
pub fn object_path(root: &Path, key: Key) -> PathBuf {
    let hex = key.to_hex();
    root.join("objects").join(&hex[..2]).join(&hex[2..])
}

fn append_log(log: &mut fs::File, line: &str) {
    // The index is advisory (it only carries LRU order and sizes); a failed
    // append degrades recovery fidelity, not correctness.
    let _ = writeln!(log, "{line}");
}

fn read_verified(path: &Path) -> Result<CachedResult, String> {
    let blob = fs::read(path).map_err(|e| format!("read failed: {e}"))?;
    if blob.len() < 36 || &blob[..8] != CONTAINER_MAGIC {
        return Err("bad container header".to_owned());
    }
    let stored_digest = &blob[8..28];
    let len = u64::from_le_bytes(blob[28..36].try_into().expect("8 bytes")) as usize;
    let payload = &blob[36..];
    if payload.len() != len {
        return Err(format!(
            "length mismatch: header says {len}, file has {}",
            payload.len()
        ));
    }
    if sha1(payload) != *stored_digest {
        return Err("checksum mismatch".to_owned());
    }
    decode(payload)
}
