//! Lowercase hex encoding, shared by store keys and the service wire
//! protocol (DEX payloads travel as hex strings inside JSON).

/// Encodes `bytes` as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes a hex string (either case). `None` on odd length or non-hex
/// characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        let h = to_hex(&data);
        assert_eq!(h, "00017f80ff");
        assert_eq!(from_hex(&h).unwrap(), data);
        assert_eq!(from_hex("00017F80FF").unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
