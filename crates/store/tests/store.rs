//! Integration tests for the content-addressed result store: persistence
//! across reopen, LRU eviction, checksum quarantine, and concurrent fill
//! deduplication.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dexlego_store::{object_path, CachedResult, Key, Store, StoreConfig, TempDir};

fn key(n: u8) -> Key {
    Key::new([n; 20])
}

fn result(size: usize, tag: u8) -> CachedResult {
    CachedResult {
        dex_bytes: vec![tag; size],
        wall_us: 100 + u64::from(tag),
        insns: 7,
        validation: vec![format!("finding-{tag}")],
        phases_us: vec![("collect".to_owned(), 11), ("verify".to_owned(), 3)],
        ..CachedResult::default()
    }
}

#[test]
fn roundtrip_and_stats() {
    let dir = TempDir::new("store-rt").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    assert!(store.get(&key(1)).is_none());
    store.put(&key(1), &result(64, 1)).unwrap();
    assert_eq!(store.get(&key(1)).unwrap(), result(64, 1));
    let stats = store.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.puts, stats.entries),
        (1, 1, 1, 1)
    );
    assert!(stats.bytes > 64);
}

#[test]
fn persists_across_reopen() {
    let dir = TempDir::new("store-reopen").unwrap();
    {
        let store = Store::open(StoreConfig::new(dir.path())).unwrap();
        store.put(&key(1), &result(32, 1)).unwrap();
        store.put(&key(2), &result(32, 2)).unwrap();
    }
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    assert_eq!(store.stats().entries, 2);
    assert_eq!(store.get(&key(1)).unwrap(), result(32, 1));
    assert_eq!(store.get(&key(2)).unwrap(), result(32, 2));
}

#[test]
fn lru_eviction_respects_access_order_across_reopen() {
    let dir = TempDir::new("store-lru").unwrap();
    // Size the budget for roughly two entries: each entry is payload
    // (~size + 130 bytes of codec overhead) + 36 bytes of container.
    let entry_bytes = {
        let probe = TempDir::new("store-probe").unwrap();
        let s = Store::open(StoreConfig::new(probe.path())).unwrap();
        s.put(&key(9), &result(256, 9)).unwrap();
        s.stats().bytes
    };
    {
        let store =
            Store::open(StoreConfig::new(dir.path()).with_budget(2 * entry_bytes + 10)).unwrap();
        store.put(&key(1), &result(256, 1)).unwrap();
        store.put(&key(2), &result(256, 2)).unwrap();
        // Touch key 1 so key 2 is now the LRU entry.
        assert!(store.get(&key(1)).is_some());
    }
    // The access order must survive the reopen via the index log.
    let store =
        Store::open(StoreConfig::new(dir.path()).with_budget(2 * entry_bytes + 10)).unwrap();
    store.put(&key(3), &result(256, 3)).unwrap();
    assert_eq!(store.stats().evictions, 1);
    assert!(store.contains(&key(1)), "recently used entry survived");
    assert!(!store.contains(&key(2)), "LRU entry evicted");
    assert!(store.contains(&key(3)));
    assert!(!object_path(dir.path(), key(2)).exists());
}

#[test]
fn replaced_entry_does_not_leak_bytes() {
    let dir = TempDir::new("store-replace").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    store.put(&key(1), &result(1000, 1)).unwrap();
    let after_first = store.stats().bytes;
    store.put(&key(1), &result(1000, 2)).unwrap();
    assert_eq!(store.stats().bytes, after_first);
    assert_eq!(store.stats().entries, 1);
    assert_eq!(store.get(&key(1)).unwrap(), result(1000, 2));
}

#[test]
fn corrupt_entry_is_quarantined_not_served() {
    let dir = TempDir::new("store-corrupt").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    store.put(&key(5), &result(128, 5)).unwrap();

    // Flip one byte in the middle of the payload on disk.
    let path = object_path(dir.path(), key(5));
    let mut blob = std::fs::read(&path).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0x01;
    std::fs::write(&path, &blob).unwrap();

    // The read path must detect the mismatch and quarantine the entry.
    assert!(store.get(&key(5)).is_none());
    let stats = store.stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.entries, 0);
    assert!(!path.exists(), "corrupt object removed from serving path");
    let quarantined = dir.path().join("quarantine").join(key(5).to_hex());
    assert!(
        quarantined.exists(),
        "corrupt object preserved for analysis"
    );

    // The fallback: a get_or_fill after the quarantine re-extracts.
    let fills = AtomicUsize::new(0);
    let (got, hit) = store.get_or_fill(&key(5), || {
        fills.fetch_add(1, Ordering::SeqCst);
        Some(result(128, 6))
    });
    assert!(!hit);
    assert_eq!(fills.load(Ordering::SeqCst), 1, "re-extraction ran");
    assert_eq!(got.unwrap(), result(128, 6));
    assert_eq!(store.get(&key(5)).unwrap(), result(128, 6));
}

#[test]
fn truncated_entry_is_quarantined() {
    let dir = TempDir::new("store-trunc").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    store.put(&key(7), &result(64, 7)).unwrap();
    let path = object_path(dir.path(), key(7));
    let blob = std::fs::read(&path).unwrap();
    std::fs::write(&path, &blob[..blob.len() - 5]).unwrap();
    assert!(store.get(&key(7)).is_none());
    assert_eq!(store.stats().quarantined, 1);
}

#[test]
fn concurrent_get_or_fill_runs_exactly_one_fill() {
    let dir = TempDir::new("store-conc").unwrap();
    let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
    let fills = Arc::new(AtomicUsize::new(0));
    const THREADS: usize = 8;

    let mut results = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let store = Arc::clone(&store);
                let fills = Arc::clone(&fills);
                scope.spawn(move || {
                    store.get_or_fill(&key(3), || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: the gate must hold the
                        // other threads out for the whole fill.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Some(result(256, 3))
                    })
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().unwrap());
        }
    });

    assert_eq!(
        fills.load(Ordering::SeqCst),
        1,
        "exactly one extraction across {THREADS} threads"
    );
    let hits = results.iter().filter(|(_, hit)| *hit).count();
    assert_eq!(hits, THREADS - 1, "everyone else was served from cache");
    for (got, _) in results {
        assert_eq!(got.unwrap(), result(256, 3));
    }
}

#[test]
fn fill_gate_stays_correct_while_eviction_churns() {
    // Readers hammer one hot key through the fill gate while a churn
    // thread floods the store with distinct entries under a budget tight
    // enough to keep the evictor running. The hot key may be evicted and
    // legitimately refilled any number of times, but every single read
    // must observe a complete, checksum-valid copy — never a torn or
    // mixed value — and nothing may be quarantined.
    let dir = TempDir::new("store-churn").unwrap();
    // Budget for roughly three 256-byte entries.
    let entry_bytes = {
        let probe = TempDir::new("store-churn-probe").unwrap();
        let s = Store::open(StoreConfig::new(probe.path())).unwrap();
        s.put(&key(9), &result(256, 9)).unwrap();
        s.stats().bytes
    };
    let store = Arc::new(
        Store::open(StoreConfig::new(dir.path()).with_budget(3 * entry_bytes + 10)).unwrap(),
    );
    let fills = Arc::new(AtomicUsize::new(0));
    const READERS: usize = 4;
    const READS: usize = 60;
    let hot = key(42);
    let expected = result(256, 42);

    std::thread::scope(|scope| {
        // Eviction pressure: a stream of distinct keys, each put forcing
        // the store back under budget.
        let churn_store = Arc::clone(&store);
        scope.spawn(move || {
            for i in 0..200u8 {
                if i != 42 {
                    churn_store.put(&key(i), &result(256, i)).unwrap();
                }
            }
        });
        for _ in 0..READERS {
            let store = Arc::clone(&store);
            let fills = Arc::clone(&fills);
            let expected = expected.clone();
            scope.spawn(move || {
                for _ in 0..READS {
                    let (got, _hit) = store.get_or_fill(&hot, || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        Some(result(256, 42))
                    });
                    assert_eq!(
                        got.expect("fill always produces a value"),
                        expected,
                        "read observed a torn or stale value"
                    );
                }
            });
        }
    });

    let fill_count = fills.load(Ordering::SeqCst);
    assert!(fill_count >= 1, "the first read must fill");
    assert!(
        fill_count < READERS * READS,
        "the gate deduplicated at least some concurrent fills"
    );
    assert_eq!(
        store.stats().quarantined,
        0,
        "no reader ever saw a corrupt entry under churn"
    );
}

#[test]
fn concurrent_replacement_is_atomic_to_readers() {
    // Two writers replace the same key with distinguishable payloads
    // while readers poll it: every read must decode to exactly one of the
    // two complete values (write-then-rename makes replacement atomic),
    // with no quarantines from half-written objects.
    let dir = TempDir::new("store-replace-race").unwrap();
    let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
    let k = key(7);
    store.put(&k, &result(512, 1)).unwrap();
    let one = result(512, 1);
    let two = result(512, 2);

    std::thread::scope(|scope| {
        for tag in [1u8, 2u8] {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _ in 0..50 {
                    store.put(&k, &result(512, tag)).unwrap();
                }
            });
        }
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let (one, two) = (one.clone(), two.clone());
            scope.spawn(move || {
                for _ in 0..100 {
                    let got = store.get(&k).expect("key never disappears");
                    assert!(
                        got == one || got == two,
                        "read returned a value neither writer wrote"
                    );
                }
            });
        }
    });
    assert_eq!(store.stats().quarantined, 0, "no torn object was served");
}

#[test]
fn sharded_layout_and_key_hex() {
    let dir = TempDir::new("store-shard").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    let k = Key::from_hex("ab00000000000000000000000000000000000000").unwrap();
    store.put(&k, &result(16, 1)).unwrap();
    let path = object_path(dir.path(), k);
    assert!(path.ends_with(
        std::path::Path::new("objects")
            .join("ab")
            .join("00000000000000000000000000000000000000")
    ));
    assert!(path.exists());
    assert_eq!(Key::from_hex(&k.to_hex()), Some(k));
    assert!(Key::from_hex("xyz").is_none());
    assert!(Key::from_hex("ab").is_none());
}

#[test]
fn uncacheable_fill_stores_nothing() {
    let dir = TempDir::new("store-nofill").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    let (got, hit) = store.get_or_fill(&key(4), || None);
    assert!(got.is_none());
    assert!(!hit);
    assert_eq!(store.stats().entries, 0);
    // A later fill still runs and can cache.
    let (got, hit) = store.get_or_fill(&key(4), || Some(result(8, 4)));
    assert!(!hit);
    assert_eq!(got.unwrap(), result(8, 4));
    assert_eq!(store.stats().entries, 1);
}

#[test]
fn backfill_writes_only_when_absent() {
    let dir = TempDir::new("store-backfill").unwrap();
    let store = Store::open(StoreConfig::new(dir.path())).unwrap();
    // First backfill lands and is served like any other entry.
    assert!(store.put_if_absent(&key(9), &result(32, 9)).unwrap());
    assert_eq!(store.get(&key(9)).unwrap(), result(32, 9));
    // A second backfill for the same key is a no-op: the resident entry
    // (possibly a newer local fill) wins over the repair copy.
    assert!(!store.put_if_absent(&key(9), &result(32, 7)).unwrap());
    assert_eq!(store.get(&key(9)).unwrap(), result(32, 9));
    assert_eq!(store.stats().puts, 1);
}
