//! Partial-I/O and backpressure tests: one misbehaving connection — a
//! byte-dribbling writer or a client that stops reading its replies —
//! must never stall the other connections sharing the event loop.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dexlego_dex::writer::write_dex;
use dexlego_droidbench::appgen::corpus_apps;
use dexlego_harness::{JobReport, JobSpec, PoolExecutor};
use dexlego_service::{Client, Daemon, ExtractRequest, PipelinedClient, ServiceConfig};
use dexlego_store::{Store, StoreConfig, TempDir};

fn sample_request(insns: usize) -> ExtractRequest {
    let (_, app) = corpus_apps(1, insns).into_iter().next().unwrap();
    let dex = write_dex(&app.dex).expect("serialise generated app");
    ExtractRequest::new(dex, &app.entry)
}

/// A daemon whose executor returns instantly with a fixed-size payload,
/// so reply volume (not pipeline time) is the variable under test.
fn stub_daemon(dir: &TempDir, payload: usize) -> Daemon {
    let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
    let exec: PoolExecutor = Arc::new(move |spec: JobSpec| {
        (
            JobReport::empty(spec.name.clone(), None),
            Some(vec![0xabu8; payload]),
        )
    });
    let mut config = ServiceConfig::new(dir.path());
    config.workers = 1;
    // Small enough that a stalled reader trips backpressure quickly.
    config.write_soft_cap = 16 * 1024;
    Daemon::start_with_executor(config, store, exec).expect("daemon starts")
}

#[test]
fn byte_dribbling_writer_does_not_stall_other_connections() {
    let dir = TempDir::new("service-dribble").unwrap();
    let daemon = stub_daemon(&dir, 16);
    let addr = daemon.addr().to_string();

    // The dribbler trickles a valid request one byte at a time from a
    // separate thread, holding its connection mid-frame for the whole
    // duration of the fast client's work.
    let line = {
        let mut req = sample_request(40);
        req.name = Some("dribble".to_owned());
        let mut line = req.encode();
        line.push('\n');
        line
    };
    let dribble_addr = addr.clone();
    let dribbler = std::thread::spawn(move || {
        let mut sock = TcpStream::connect(&dribble_addr).expect("dribbler connects");
        sock.set_nodelay(true).unwrap();
        for byte in line.as_bytes() {
            sock.write_all(std::slice::from_ref(byte)).expect("dribble");
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut reader = BufReader::new(sock);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("dribbler reply");
        reply
    });

    // Meanwhile a well-behaved client round-trips repeatedly; each one
    // must complete while the dribbler is still mid-frame.
    let mut fast = Client::connect(&addr).expect("fast client connects");
    let started = Instant::now();
    for _ in 0..20 {
        fast.ping().expect("fast ping");
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "pings behind a dribbling peer took {elapsed:?}"
    );

    let reply = dribbler.join().expect("dribbler thread");
    assert!(
        reply.contains("\"status\": \"ok\""),
        "dribbled request still completes: {reply}"
    );

    daemon.trigger_shutdown();
    drop(fast);
    daemon.wait();
}

#[test]
fn stalled_reader_gets_backpressure_without_stalling_others() {
    let dir = TempDir::new("service-stalled").unwrap();
    // ~16 KiB of hex per reply: a few unread replies trip the soft cap.
    let daemon = stub_daemon(&dir, 8 * 1024);
    let addr = daemon.addr().to_string();

    // The stalled client pipelines many tagged requests and reads nothing.
    // Sends run on their own thread: once the server pauses intake, the
    // socket fills and the writes themselves block — that must stall the
    // sender, not this test.
    let total = 40usize;
    let stalled = TcpStream::connect(&addr).expect("stalled connects");
    stalled.set_nodelay(true).unwrap();
    let mut stalled_writer = stalled.try_clone().unwrap();
    let mut stalled_reader = BufReader::new(stalled);
    let mut req = sample_request(40);
    req.name = Some("stalled".to_owned());
    let sender = std::thread::spawn(move || {
        for id in 0..total {
            let line = req.encode_with_id(&dexlego_service::RequestId::Num(id as u64));
            stalled_writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("stalled send");
        }
    });

    // Give the server time to execute and buffer up to the soft cap.
    std::thread::sleep(Duration::from_millis(200));

    // Other connections keep making progress while that client sulks.
    let mut fast = Client::connect(&addr).expect("fast connects");
    let started = Instant::now();
    for _ in 0..20 {
        fast.ping().expect("fast ping behind a stalled reader");
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stalled reader held up the event loop"
    );

    // The sulking client starts reading: every reply it is owed arrives,
    // each exactly once.
    let mut seen = vec![false; total];
    for _ in 0..total {
        let mut line = String::new();
        assert!(
            stalled_reader.read_line(&mut line).expect("stalled reply") > 0,
            "connection closed before all replies arrived"
        );
        let (id, _) = dexlego_service::parse_reply_line(line.trim_end()).expect("reply parses");
        let Some(dexlego_service::RequestId::Num(id)) = id else {
            panic!("reply without the sent numeric id: {line}");
        };
        let slot = usize::try_from(id).expect("small id");
        assert!(!seen[slot], "duplicate reply for id {id}");
        seen[slot] = true;
    }
    assert!(seen.iter().all(|&s| s), "every request got its reply");
    sender.join().expect("sender finished");

    daemon.trigger_shutdown();
    drop(stalled_reader);
    drop(fast);
    daemon.wait();
}

/// EOF mid-frame (client dies after half a request) must be cleaned up
/// without disturbing the daemon.
#[test]
fn half_frame_then_eof_is_cleaned_up() {
    let dir = TempDir::new("service-halfframe").unwrap();
    let daemon = stub_daemon(&dir, 16);
    let addr = daemon.addr().to_string();

    {
        let mut sock = TcpStream::connect(&addr).expect("connect");
        sock.write_all(b"{\"op\": \"pi").expect("half frame");
        // Dropped here: EOF lands with a partial line buffered.
    }

    let mut fast = Client::connect(&addr).expect("fast connects");
    fast.ping().expect("daemon unaffected by a torn-off client");

    // A client that disappears with replies still in flight is also fine.
    {
        let mut vanisher = PipelinedClient::connect(&addr).expect("vanisher");
        let req = sample_request(40);
        vanisher.send_extract(&req).expect("send then vanish");
    }
    std::thread::sleep(Duration::from_millis(100));
    fast.ping().expect("daemon survives an orphaned completion");

    daemon.trigger_shutdown();
    drop(fast);
    daemon.wait();
}

/// A connection pipelining past its pending bound gets the newest
/// requests shed with `overloaded` while everything admitted (into the
/// pool or within the bound) still completes — the per-client queue is
/// bounded, not elastic.
#[test]
fn pipelining_past_the_pending_bound_sheds_the_newest() {
    use dexlego_service::ExtractReply;
    use std::sync::mpsc;

    let dir = TempDir::new("service-bound").unwrap();
    let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
    // Every job blocks until released, so admission is fully deterministic.
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = std::sync::Mutex::new(release_rx);
    let exec: PoolExecutor = Arc::new(move |spec: dexlego_harness::JobSpec| {
        release_rx.lock().unwrap().recv().expect("release signal");
        (JobReport::empty(spec.name.clone(), None), Some(Vec::new()))
    });
    let mut config = ServiceConfig::new(dir.path());
    config.workers = 1;
    config.queue_depth = 1; // pool capacity: 1 running + 1 queued
    config.max_pending_per_conn = 5;
    let daemon = Daemon::start_with_executor(config, store, exec).expect("daemon starts");

    let total = 10u64;
    let mut client = PipelinedClient::connect(&daemon.addr().to_string()).expect("connect");
    let req = sample_request(40);
    for _ in 0..total {
        client.send_extract(&req).expect("send");
    }
    client.flush().expect("flush the burst");

    // The burst lands at once: 1 or 2 jobs enter the pool (one running,
    // one queued — how many depends on when the worker dequeues), 5 are
    // held within the bound, and the rest are shed. Whatever the split,
    // the executed ids must be exactly the oldest prefix and the shed
    // ids the newest suffix. Give the shed replies a moment to be
    // queued, then release generously — extra releases sit unread.
    std::thread::sleep(std::time::Duration::from_millis(100));
    for _ in 0..7 {
        release_tx.send(()).expect("release");
    }
    let (mut done, mut shed) = (Vec::new(), Vec::new());
    for _ in 0..total {
        let (id, reply) = client.recv_extract().expect("reply");
        match reply {
            ExtractReply::Done { .. } => done.push(id),
            ExtractReply::Overloaded => shed.push(id),
            other => panic!("unexpected reply for id {id}: {other:?}"),
        }
    }
    done.sort_unstable();
    shed.sort_unstable();
    let executed = done.len() as u64;
    assert!(
        (6..=7).contains(&executed),
        "pool admits 1 or 2 plus 5 held: {executed} executed"
    );
    assert_eq!(done, (0..executed).collect::<Vec<_>>(), "oldest kept");
    assert_eq!(shed, (executed..total).collect::<Vec<_>>(), "newest shed");

    // The shutdown op composes with the tagged dialect.
    client.shutdown().expect("graceful shutdown");
    daemon.wait();
}
