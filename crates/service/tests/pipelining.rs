//! Multiplexing semantics over a live daemon: tagged requests complete
//! out of order, id-less requests keep the old strictly-ordered contract
//! (the blocking [`Client`] compatibility dialect), and deadlines shed
//! work that cannot start in time.

use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use dexlego_dex::writer::write_dex;
use dexlego_droidbench::appgen::corpus_apps;
use dexlego_harness::json::Value;
use dexlego_harness::{JobReport, JobSpec, PoolExecutor};
use dexlego_service::{
    Client, Daemon, ExtractReply, ExtractRequest, PipelinedClient, Reply, ServiceConfig,
};
use dexlego_store::{Store, StoreConfig, TempDir};

fn sample_request(name: &str) -> ExtractRequest {
    let (_, app) = corpus_apps(1, 40).into_iter().next().unwrap();
    let dex = write_dex(&app.dex).expect("serialise generated app");
    let mut req = ExtractRequest::new(dex, &app.entry);
    req.name = Some(name.to_owned());
    req
}

/// A daemon whose executor sleeps for a per-job duration looked up by job
/// name, so tests control exactly which request finishes first.
fn delay_daemon(dir: &TempDir, delays: Vec<(&'static str, u64)>) -> Daemon {
    let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
    let exec: PoolExecutor = Arc::new(move |spec: JobSpec| {
        let ms = delays
            .iter()
            .find(|(name, _)| *name == spec.name)
            .map_or(0, |(_, ms)| *ms);
        std::thread::sleep(Duration::from_millis(ms));
        (JobReport::empty(spec.name.clone(), None), Some(Vec::new()))
    });
    let mut config = ServiceConfig::new(dir.path());
    config.workers = 2; // both jobs run concurrently
    Daemon::start_with_executor(config, store, exec).expect("daemon starts")
}

fn report_name(reply: &Reply) -> String {
    let Reply::Ok(value) = reply else {
        panic!("expected ok reply, got {reply:?}");
    };
    value
        .get("report")
        .and_then(|r| r.get("name"))
        .and_then(Value::as_str)
        .expect("report carries the job name")
        .to_owned()
}

/// Old dialect, new server: two pipelined id-less extracts — a slow one
/// then a fast one — must reply strictly in request order, even though
/// the fast one finishes first. This is the contract the blocking
/// [`Client`] silently relies on.
#[test]
fn idless_requests_reply_strictly_in_request_order() {
    let dir = TempDir::new("service-ordered").unwrap();
    let daemon = delay_daemon(&dir, vec![("slow", 400), ("fast", 0)]);

    let mut client = Client::connect(&daemon.addr().to_string()).expect("connect");
    client
        .send_line(&sample_request("slow").encode())
        .expect("send slow");
    client
        .send_line(&sample_request("fast").encode())
        .expect("send fast");

    let first = client.recv().expect("first reply");
    let second = client.recv().expect("second reply");
    assert_eq!(report_name(&first), "slow", "first in, first answered");
    assert_eq!(report_name(&second), "fast");

    client.shutdown().expect("shutdown");
    daemon.wait();
}

/// New dialect: the same slow/fast pair with ids completes out of order —
/// the fast job's reply overtakes the slow one on the same connection.
#[test]
fn tagged_requests_reply_out_of_order() {
    let dir = TempDir::new("service-unordered").unwrap();
    let daemon = delay_daemon(&dir, vec![("slow", 400), ("fast", 0)]);

    let mut client = PipelinedClient::connect(&daemon.addr().to_string()).expect("connect");
    let slow_id = client
        .send_extract(&sample_request("slow"))
        .expect("send slow");
    let fast_id = client
        .send_extract(&sample_request("fast"))
        .expect("send fast");

    let (first_id, first) = client.recv_extract().expect("first reply");
    let (second_id, second) = client.recv_extract().expect("second reply");
    assert_eq!(first_id, fast_id, "fast job overtakes the slow one");
    assert_eq!(second_id, slow_id);
    assert!(matches!(first, ExtractReply::Done { .. }));
    assert!(matches!(second, ExtractReply::Done { .. }));

    client.shutdown().expect("shutdown");
    daemon.wait();
}

/// A request whose deadline passes while it waits for pool capacity is
/// shed with `deadline_exceeded` — and the reply overtakes the jobs that
/// are still hogging the pool.
#[test]
fn deadlines_shed_requests_that_cannot_start_in_time() {
    let dir = TempDir::new("service-deadline").unwrap();
    let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Mutex::new(release_rx);
    let exec: PoolExecutor = Arc::new(move |spec: JobSpec| {
        release_rx.lock().unwrap().recv().expect("release signal");
        (JobReport::empty(spec.name.clone(), None), Some(Vec::new()))
    });
    let mut config = ServiceConfig::new(dir.path());
    config.workers = 1;
    config.queue_depth = 1;
    let daemon = Daemon::start_with_executor(config, store, exec).expect("daemon starts");

    let mut client = PipelinedClient::connect(&daemon.addr().to_string()).expect("connect");
    // A and B fill the pool (1 running + 1 queued); C can only wait, and
    // its 80ms deadline expires long before anything is released.
    let a = client.send_extract(&sample_request("a")).expect("send a");
    let b = client.send_extract(&sample_request("b")).expect("send b");
    let mut hopeless = sample_request("c");
    hopeless.deadline_ms = Some(80);
    let c = client.send_extract(&hopeless).expect("send c");

    let (first_id, first) = client.recv_extract().expect("shed reply");
    assert_eq!(first_id, c, "the deadline casualty answers first");
    let ExtractReply::DeadlineExceeded { waited_ms } = first else {
        panic!("expected deadline_exceeded, got {first:?}");
    };
    assert!(waited_ms >= 80, "waited at least the deadline: {waited_ms}");

    release_tx.send(()).expect("release a");
    release_tx.send(()).expect("release b");
    let (id1, done1) = client.recv_extract().expect("a completes");
    let (id2, done2) = client.recv_extract().expect("b completes");
    let mut ids = [id1, id2];
    ids.sort_unstable();
    assert_eq!(ids, [a, b], "admitted work still completes");
    assert!(matches!(done1, ExtractReply::Done { .. }));
    assert!(matches!(done2, ExtractReply::Done { .. }));

    client.shutdown().expect("shutdown");
    daemon.wait();
}

/// A deadline generous enough for the queue wait changes nothing: the
/// request executes normally and the deadline never appears on the wire.
#[test]
fn unexpired_deadlines_do_not_shed() {
    let dir = TempDir::new("service-deadline-ok").unwrap();
    let daemon = delay_daemon(&dir, vec![("fine", 0)]);

    let mut client = PipelinedClient::connect(&daemon.addr().to_string()).expect("connect");
    let mut req = sample_request("fine");
    req.deadline_ms = Some(30_000);
    let id = client.send_extract(&req).expect("send");
    let (got, reply) = client.recv_extract().expect("reply");
    assert_eq!(got, id);
    assert!(matches!(reply, ExtractReply::Done { .. }));

    client.shutdown().expect("shutdown");
    daemon.wait();
}
