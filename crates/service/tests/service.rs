//! End-to-end tests of the `dexlegod` daemon over a real TCP socket:
//! the ISSUE acceptance path (identical requests byte-identical, second
//! served from cache, corrupted entry transparently re-extracted),
//! overload shedding under a saturated pool, and graceful shutdown.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dexlego_dex::writer::write_dex;
use dexlego_droidbench::appgen::corpus_apps;
use dexlego_harness::json::Value;
use dexlego_harness::{job_key, JobReport, JobSpec, PoolExecutor};
use dexlego_service::{Client, Daemon, ExtractReply, ExtractRequest, ServiceConfig};
use dexlego_store::{object_path, Store, StoreConfig, TempDir};

fn sample_request(insns: usize) -> ExtractRequest {
    let (_, app) = corpus_apps(1, insns).into_iter().next().unwrap();
    let dex = write_dex(&app.dex).expect("serialise generated app");
    let mut req = ExtractRequest::new(dex, &app.entry);
    req.packer = Some("360".to_owned());
    req
}

fn extract_done(client: &mut Client, req: &ExtractRequest) -> (bool, Vec<u8>) {
    match client.extract(req).expect("extract round-trip") {
        ExtractReply::Done { cached, dex, .. } => (cached, dex),
        other => panic!("extract did not complete: {other:?}"),
    }
}

fn stat_u64(stats: &Value, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key:?}: {stats:?}"))
}

#[test]
fn identical_requests_hit_the_cache_and_corruption_reextracts() {
    let dir = TempDir::new("service-e2e").unwrap();
    let mut config = ServiceConfig::new(dir.path());
    config.workers = 2;
    let daemon = Daemon::start(config).expect("daemon starts");
    let addr = daemon.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("ping");

    let req = sample_request(60);

    // Cold: runs the pipeline.
    let (cold_cached, cold_dex) = extract_done(&mut client, &req);
    assert!(!cold_cached, "first request cannot be a cache hit");
    assert!(!cold_dex.is_empty(), "revealed DEX is non-empty");

    // Warm: byte-identical, served from the store, no new pipeline run.
    let (warm_cached, warm_dex) = extract_done(&mut client, &req);
    assert!(warm_cached, "second identical request is a cache hit");
    assert_eq!(warm_dex, cold_dex, "cache hit is byte-identical");

    let stats = client.stats().expect("stats");
    assert_eq!(stat_u64(&stats, "hits"), 1);
    assert_eq!(stat_u64(&stats, "misses"), 1);
    assert_eq!(stat_u64(&stats, "extracts"), 2);
    assert_eq!(stat_u64(&stats, "in_flight"), 0);
    let phases = stats.get("phases_us").expect("phase aggregates");
    assert!(
        phases.get("collect").is_some() || phases.get("reassemble").is_some(),
        "fresh extraction recorded phase timings: {phases:?}"
    );

    // Corrupt the stored entry on disk; the daemon must detect the bad
    // checksum, quarantine the entry, and transparently re-extract.
    let spec = req.to_spec("probe").expect("valid request");
    let key = job_key(&spec).expect("cacheable job");
    let path = object_path(dir.path(), key);
    let mut blob = std::fs::read(&path).expect("stored object exists");
    let mid = blob.len() / 2;
    blob[mid] ^= 0xff;
    std::fs::write(&path, &blob).unwrap();

    let (recovered_cached, recovered_dex) = extract_done(&mut client, &req);
    assert!(!recovered_cached, "corrupt entry forces a fresh extraction");
    assert_eq!(recovered_dex, cold_dex, "re-extraction reproduces bytes");

    let stats = client.stats().expect("stats after corruption");
    let store = stats.get("store").expect("store stats");
    assert_eq!(stat_u64(store, "quarantined"), 1);
    assert_eq!(stat_u64(store, "entries"), 1, "fresh result re-cached");

    // Malformed input gets an error reply and leaves the connection
    // usable.
    client.send_line("this is not json").unwrap();
    match client.recv().expect("error reply") {
        dexlego_service::Reply::Error(_) => {}
        other => panic!("expected error reply, got {other:?}"),
    }
    client.ping().expect("connection survives a bad request");

    client.shutdown().expect("graceful shutdown acknowledged");
    daemon.wait();
}

#[test]
fn saturated_pool_sheds_requests_and_drains_on_shutdown() {
    let dir = TempDir::new("service-overload").unwrap();
    let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());

    // Every job announces itself, then blocks until the test releases it,
    // keeping the queue full deterministically.
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let started_tx = std::sync::Mutex::new(started_tx);
    let release_rx = std::sync::Mutex::new(release_rx);
    let exec: PoolExecutor = Arc::new(move |spec: JobSpec| {
        started_tx.lock().unwrap().send(()).expect("started signal");
        release_rx.lock().unwrap().recv().expect("release signal");
        (JobReport::empty(spec.name.clone(), None), Some(Vec::new()))
    });

    let mut config = ServiceConfig::new(dir.path());
    config.workers = 1;
    config.queue_depth = 1;
    // No event-loop-side queueing: a request that cannot enter the pool
    // immediately is shed, reproducing strict admission-control shedding.
    config.max_pending_per_conn = 0;
    let daemon = Daemon::start_with_executor(config, store, exec).expect("daemon starts");
    let addr = daemon.addr().to_string();

    let req = sample_request(40);
    let line = req.encode();
    let mut control = Client::connect(&addr).expect("control connection");

    // Job A: admitted and picked up by the single worker.
    let mut client_a = Client::connect(&addr).expect("connect A");
    client_a.send_line(&line).unwrap();
    started_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("worker started job A");

    // Job B: admitted into the depth-1 queue. Wait until the pool counts
    // both before probing — in_flight is incremented at admission.
    let mut client_b = Client::connect(&addr).expect("connect B");
    client_b.send_line(&line).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = control.stats().expect("stats");
        if stat_u64(&stats, "in_flight") >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "job B was never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Job C: the queue is full, so the daemon must shed it immediately
    // with a structured reply instead of blocking.
    let mut client_c = Client::connect(&addr).expect("connect C");
    match client_c.extract(&req).expect("reply for C") {
        ExtractReply::Overloaded => {}
        other => panic!("expected overloaded, got {other:?}"),
    }

    // Release A and B; both pending clients get their results — nothing
    // admitted is lost.
    release_tx.send(()).unwrap();
    release_tx.send(()).unwrap();
    for client in [&mut client_a, &mut client_b] {
        match client.recv().expect("drained reply") {
            dexlego_service::Reply::Ok(_) => {}
            other => panic!("unexpected drained reply: {other:?}"),
        }
    }

    let stats = control.stats().expect("final stats");
    assert_eq!(stat_u64(&stats, "rejected"), 1, "rejections are counted");
    assert_eq!(stat_u64(&stats, "in_flight"), 0, "pool drained");

    control.shutdown().expect("graceful shutdown");
    daemon.wait();
}
