//! Protocol robustness properties for the multiplexed server.
//!
//! Two layers:
//!
//! 1. the [`Framer`] alone, against a reference line splitter, under
//!    adversarial chunking (byte-at-a-time, torn UTF-8 sequences, torn
//!    JSON escapes, U+2028/U+2029 inside payloads);
//! 2. a live daemon over TCP, fed a random interleaving of valid,
//!    invalid, oversized, and id-tagged frames in random write chunks.
//!    The server must never die, every request line must get exactly one
//!    reply, tagged replies must echo their ids, and id-less replies must
//!    arrive in request order with the right statuses.
//!
//! Failing cases persist their RNG state in
//! `framing_prop.proptest-regressions` (checked in) and are replayed
//! before fresh cases on every run.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use dexlego_harness::json;
use dexlego_harness::{JobReport, JobSpec, PoolExecutor};
use dexlego_service::{
    parse_reply_line, Daemon, FrameError, Framer, Reply, RequestId, ServiceConfig,
};
use dexlego_store::{Store, StoreConfig, TempDir};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

/// One request frame the wire test can emit, with its expected outcome.
#[derive(Debug, Clone)]
enum Op {
    /// A valid op (`ping`/`stats`), optionally tagged.
    Valid {
        op: &'static str,
        id: Option<RequestId>,
    },
    /// Valid JSON with an unknown op: an `error` reply that still echoes
    /// a well-formed id.
    BadOp { id: Option<RequestId> },
    /// Not JSON at all; always id-less (no id can be recovered).
    NotJson,
    /// A line past the server's frame cap: one `error` reply, connection
    /// survives.
    Oversized,
}

impl Op {
    fn line(&self) -> String {
        match self {
            Op::Valid { op, id } => match id {
                Some(id) => json::object(&[("op", json::string(op)), ("id", id.encode())]),
                None => json::object(&[("op", json::string(op))]),
            },
            Op::BadOp { id } => match id {
                Some(id) => json::object(&[("op", json::string("zorp")), ("id", id.encode())]),
                None => json::object(&[("op", json::string("zorp"))]),
            },
            Op::NotJson => "this is definitely } not json".to_owned(),
            Op::Oversized => "x".repeat(OVERSIZED_LEN),
        }
    }

    fn id(&self) -> Option<&RequestId> {
        match self {
            Op::Valid { id, .. } | Op::BadOp { id } => id.as_ref(),
            Op::NotJson | Op::Oversized => None,
        }
    }

    /// The reply status this frame must produce.
    fn expect_ok(&self) -> bool {
        matches!(self, Op::Valid { .. })
    }
}

const MAX_LINE: usize = 512;
const OVERSIZED_LEN: usize = MAX_LINE + 100;

fn id_strategy() -> BoxedStrategy<Option<RequestId>> {
    prop_oneof![
        Just(None),
        (0u64..1000).prop_map(|n| Some(RequestId::Num(n))),
        // String ids with the JS-hostile separators and non-ASCII torn
        // across chunk boundaries by the random chunking below.
        vec(
            select(vec!['a', 'é', '\u{2028}', '\u{2029}', '"', '\\', '漢']),
            1..8
        )
        .prop_map(|chars| Some(RequestId::Str(chars.into_iter().collect()))),
    ]
    .boxed()
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (id_strategy(), select(vec!["ping", "stats"])).prop_map(|(id, op)| Op::Valid { op, id }),
        id_strategy().prop_map(|id| Op::BadOp { id }),
        Just(Op::NotJson),
        Just(Op::Oversized),
    ]
    .boxed()
}

fn reply_status(reply: &Reply) -> &'static str {
    match reply {
        Reply::Ok(_) => "ok",
        Reply::Error(_) => "error",
        Reply::Failed { .. } => "failed",
        Reply::Overloaded { .. } => "overloaded",
        Reply::DeadlineExceeded { .. } => "deadline_exceeded",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The framer yields exactly the lines a straightforward whole-buffer
    /// split would, no matter how the bytes are chunked.
    #[test]
    fn framer_matches_reference_split(
        lines in vec(vec(any::<char>(), 0..40), 0..16),
        chunks in vec(1usize..17, 1..64),
    ) {
        let lines: Vec<String> = lines
            .into_iter()
            .map(|chars| chars.into_iter().collect())
            .collect();
        let mut stream = Vec::new();
        for line in &lines {
            stream.extend_from_slice(line.as_bytes());
            stream.push(b'\n');
        }
        let expected: Vec<&String> =
            lines.iter().filter(|l| !l.trim().is_empty()).collect();

        let mut framer = Framer::new(4096);
        let mut got: Vec<String> = Vec::new();
        let mut offset = 0;
        let mut chunk = chunks.iter().cycle();
        while offset < stream.len() {
            let take = (*chunk.next().unwrap()).min(stream.len() - offset);
            framer.push(&stream[offset..offset + take]);
            offset += take;
            while let Some(frame) = framer.pop() {
                match frame {
                    Ok(line) => got.push(line),
                    Err(e) => prop_assert!(false, "unexpected frame error: {e:?}"),
                }
            }
        }
        prop_assert!(!framer.has_partial(), "stream ended mid-frame");
        prop_assert_eq!(got.len(), expected.len());
        for (got, want) in got.iter().zip(expected) {
            prop_assert_eq!(got, want);
        }
    }

    /// An oversized line is reported exactly once however it is chunked,
    /// and the framer recovers cleanly on the next line.
    #[test]
    fn oversized_reports_once_under_any_chunking(
        flood_len in 64usize..2048,
        chunks in vec(1usize..33, 1..32),
    ) {
        let mut stream = Vec::new();
        stream.extend_from_slice(&vec![b'y'; flood_len]);
        stream.push(b'\n');
        stream.extend_from_slice(b"after\n");

        let mut framer = Framer::new(32);
        let mut errors = 0usize;
        let mut ok: Vec<String> = Vec::new();
        let mut offset = 0;
        let mut chunk = chunks.iter().cycle();
        while offset < stream.len() {
            let take = (*chunk.next().unwrap()).min(stream.len() - offset);
            framer.push(&stream[offset..offset + take]);
            offset += take;
            while let Some(frame) = framer.pop() {
                match frame {
                    Ok(line) => ok.push(line),
                    Err(FrameError::Oversized { .. }) => errors += 1,
                    Err(e) => prop_assert!(false, "unexpected error: {e:?}"),
                }
            }
            // The framer never buffers more than the cap plus one chunk.
            prop_assert!(framer.buffered() <= 32 + 33);
        }
        prop_assert_eq!(errors, 1, "one flood, one report");
        prop_assert_eq!(ok, vec!["after".to_owned()]);
    }

    /// Live server: a random interleaving of frames in random write
    /// chunks gets exactly one reply per request line — tagged replies
    /// bearing their ids in any order, id-less replies in request order.
    #[test]
    fn every_frame_gets_exactly_one_reply(
        ops in vec(op_strategy(), 1..14),
        chunks in vec(1usize..48, 1..48),
    ) {
        let dir = TempDir::new("service-framing-prop").unwrap();
        let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
        let exec: PoolExecutor = Arc::new(|spec: JobSpec| {
            (JobReport::empty(spec.name.clone(), None), Some(Vec::new()))
        });
        let mut config = ServiceConfig::new(dir.path());
        config.workers = 1;
        config.max_line_bytes = MAX_LINE;
        let daemon = Daemon::start_with_executor(config, store, exec).expect("daemon starts");

        let mut stream = Vec::new();
        for op in &ops {
            stream.extend_from_slice(op.line().as_bytes());
            stream.push(b'\n');
        }

        let sock = TcpStream::connect(daemon.addr()).expect("connect");
        sock.set_nodelay(true).unwrap();
        let mut writer = sock.try_clone().unwrap();
        let mut reader = BufReader::new(sock);

        let mut offset = 0;
        let mut chunk = chunks.iter().cycle();
        while offset < stream.len() {
            let take = (*chunk.next().unwrap()).min(stream.len() - offset);
            writer.write_all(&stream[offset..offset + take]).expect("write chunk");
            offset += take;
        }
        writer.flush().unwrap();

        // Exactly one reply per frame, in any order across tags.
        let mut tagged: Vec<(RequestId, &'static str)> = Vec::new();
        let mut ordered: Vec<&'static str> = Vec::new();
        for _ in 0..ops.len() {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("reply read");
            prop_assert!(n > 0, "server closed before all replies arrived");
            let (id, reply) =
                parse_reply_line(line.trim_end()).expect("reply parses");
            match id {
                Some(id) => tagged.push((id, reply_status(&reply))),
                None => ordered.push(reply_status(&reply)),
            }
        }

        // No extra replies are in flight: the connection goes quiet.
        let mut expected_tagged: Vec<(RequestId, &'static str)> = Vec::new();
        let mut expected_ordered: Vec<&'static str> = Vec::new();
        for op in &ops {
            let status = if op.expect_ok() { "ok" } else { "error" };
            match op.id() {
                Some(id) => expected_tagged.push((id.clone(), status)),
                None => expected_ordered.push(status),
            }
        }
        // Tagged replies: same multiset of (id, status); order is free.
        let sort_key = |(id, status): &(RequestId, &'static str)| {
            (format!("{id:?}"), *status)
        };
        tagged.sort_by_key(sort_key);
        expected_tagged.sort_by_key(sort_key);
        prop_assert_eq!(tagged, expected_tagged);
        // Id-less replies: exact statuses, strictly in request order.
        prop_assert_eq!(ordered, expected_ordered);

        daemon.trigger_shutdown();
        drop(reader);
        drop(writer);
        daemon.wait();
    }
}
