//! The fleet-facing protocol extensions end to end: `want_entry`
//! replies carry a shippable store entry, `backfill` installs it on a
//! second daemon (which then serves the result as a cache hit without
//! ever running the pipeline), and `cancel` revokes a pending tagged
//! request before it reaches a worker.

use std::sync::Arc;
use std::time::Duration;

use dexlego_dex::writer::write_dex;
use dexlego_droidbench::appgen::corpus_apps;
use dexlego_harness::json::Value;
use dexlego_harness::{job_key, JobReport, JobSpec, PoolExecutor};
use dexlego_service::{
    Client, Daemon, ExtractRequest, PipelinedClient, Reply, RequestId, ServiceConfig,
};
use dexlego_store::hex::from_hex;
use dexlego_store::{Store, StoreConfig, TempDir};

fn sample_request(name: &str) -> ExtractRequest {
    let (_, app) = corpus_apps(1, 40).into_iter().next().unwrap();
    let dex = write_dex(&app.dex).expect("serialise generated app");
    let mut req = ExtractRequest::new(dex, &app.entry);
    req.name = Some(name.to_owned());
    req
}

fn ok_value(reply: Reply) -> Value {
    match reply {
        Reply::Ok(value) => value,
        other => panic!("expected ok reply, got {other:?}"),
    }
}

fn stat_u64(stats: &Value, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key:?}: {stats:?}"))
}

/// A result extracted on daemon A travels to daemon B as a backfill and
/// is then served by B as a cache hit — B never runs the pipeline.
#[test]
fn want_entry_and_backfill_replicate_a_result() {
    let dir_a = TempDir::new("repl-a").unwrap();
    let dir_b = TempDir::new("repl-b").unwrap();
    let daemon_a = Daemon::start(ServiceConfig::new(dir_a.path())).expect("daemon a");
    let daemon_b = Daemon::start(ServiceConfig::new(dir_b.path())).expect("daemon b");

    let mut req = sample_request("repl");
    req.want_entry = true;
    let key = job_key(&req.to_spec("repl").expect("valid request")).expect("cacheable");

    // Extract on A, asking for the shippable entry alongside the DEX.
    let mut client_a = PipelinedClient::connect(&daemon_a.addr().to_string()).expect("connect a");
    let sent = client_a.send_extract(&req).expect("send");
    let (id, reply) = client_a.recv_any().expect("reply");
    assert_eq!(id, Some(RequestId::Num(sent)));
    let value = ok_value(reply);
    let entry_hex = value
        .get("entry")
        .and_then(Value::as_str)
        .expect("want_entry reply carries the store entry");
    let entry = from_hex(entry_hex).expect("entry is hex");
    assert!(!entry.is_empty());

    // Without want_entry the member stays absent — replies to ordinary
    // clients do not grow.
    let plain = sample_request("repl");
    client_a.send_extract(&plain).expect("send plain");
    let (_, reply) = client_a.recv_any().expect("plain reply");
    let plain_value = ok_value(reply);
    assert!(
        plain_value.get("entry").is_none(),
        "entry only ships when asked for"
    );

    // Backfill onto B: first offer lands, the repeat is a no-op.
    let mut client_b = PipelinedClient::connect(&daemon_b.addr().to_string()).expect("connect b");
    client_b.send_backfill(&key, &entry).expect("send backfill");
    let (_, reply) = client_b.recv_any().expect("backfill reply");
    assert_eq!(
        ok_value(reply).get("stored").and_then(Value::as_bool),
        Some(true)
    );
    client_b.send_backfill(&key, &entry).expect("send repeat");
    let (_, reply) = client_b.recv_any().expect("repeat reply");
    assert_eq!(
        ok_value(reply).get("stored").and_then(Value::as_bool),
        Some(false),
        "a present key is never overwritten"
    );

    // B now serves the job from its store: a hit, zero pipeline runs.
    client_b.send_extract(&plain).expect("send to b");
    let (_, reply) = client_b.recv_any().expect("b reply");
    let value = ok_value(reply);
    assert_eq!(value.get("cached").and_then(Value::as_bool), Some(true));

    let mut stats_b = Client::connect(&daemon_b.addr().to_string()).expect("stats conn");
    let stats = stats_b.stats().expect("stats");
    assert_eq!(stat_u64(&stats, "hits"), 1);
    assert_eq!(stat_u64(&stats, "misses"), 0);
    assert_eq!(stat_u64(&stats, "backfills"), 1);
    assert!(stat_u64(&stats, "uptime_ms") < 600_000, "uptime is sane");

    client_a.shutdown().expect("shutdown a");
    client_b.shutdown().expect("shutdown b");
    daemon_a.wait();
    daemon_b.wait();
}

/// Cancelling a tagged request that is still queued behind a busy pool
/// removes it: the canceller gets `cancelled: true`, the victim's reply
/// never materialises, and later requests proceed normally.
#[test]
fn cancel_revokes_a_pending_request() {
    let dir = TempDir::new("repl-cancel").unwrap();
    let store = Arc::new(Store::open(StoreConfig::new(dir.path())).unwrap());
    let exec: PoolExecutor = Arc::new(move |spec: JobSpec| {
        if spec.name == "slow" {
            std::thread::sleep(Duration::from_millis(300));
        }
        (JobReport::empty(spec.name.clone(), None), Some(Vec::new()))
    });
    let mut config = ServiceConfig::new(dir.path());
    config.workers = 1; // "slow" pins the only worker; "victim" must queue
    let daemon = Daemon::start_with_executor(config, store, exec).expect("daemon starts");

    let mut client = PipelinedClient::connect(&daemon.addr().to_string()).expect("connect");
    let slow = client.send_extract(&sample_request("slow")).expect("slow");
    let victim = client
        .send_extract(&sample_request("victim"))
        .expect("victim");
    let cancel = client.send_cancel(victim).expect("cancel");

    // The cancel is answered immediately, while "slow" still runs.
    let (id, reply) = client.recv_any().expect("cancel reply");
    assert_eq!(id, Some(RequestId::Num(cancel)));
    assert_eq!(
        ok_value(reply).get("cancelled").and_then(Value::as_bool),
        Some(true)
    );

    let (id, reply) = client.recv_any().expect("slow reply");
    assert_eq!(id, Some(RequestId::Num(slow)));
    ok_value(reply);

    // A ping overtakes nothing: if the victim had survived, its reply
    // would arrive before the ping's.
    let ping = client.send_op("ping").expect("ping");
    let (id, reply) = client.recv_any().expect("ping reply");
    assert_eq!(id, Some(RequestId::Num(ping)), "victim reply never comes");
    ok_value(reply);

    let mut stats_conn = Client::connect(&daemon.addr().to_string()).expect("stats conn");
    let stats = stats_conn.stats().expect("stats");
    assert_eq!(stat_u64(&stats, "cancelled"), 1);

    client.shutdown().expect("shutdown");
    daemon.wait();
}
