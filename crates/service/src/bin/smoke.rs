//! `dexlegod-smoke`: an end-to-end exercise of a running daemon.
//!
//! ```text
//! dexlegod-smoke --addr HOST:PORT [--insns N] [--packer NAME] [--shutdown]
//! ```
//!
//! Pings the daemon, submits the same extraction twice, and asserts the
//! second reply is a cache hit with a byte-identical revealed DEX; then
//! checks the stats endpoint saw at least one hit. With `--shutdown`, asks
//! the daemon to drain and exit afterwards. Exits 0 on success, 1 on any
//! failed assertion.

use std::process::ExitCode;

use dexlego_dex::writer::write_dex;
use dexlego_droidbench::appgen::corpus_apps;
use dexlego_harness::json::Value;
use dexlego_service::{Client, ExtractReply, ExtractRequest};

struct Args {
    addr: String,
    insns: usize,
    packer: Option<String>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut addr: Option<String> = None;
    let mut insns = 60usize;
    let mut packer = None;
    let mut shutdown = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--insns" => {
                insns = value("--insns")?
                    .parse()
                    .map_err(|_| "--insns expects a number".to_owned())?;
            }
            "--packer" => packer = Some(value("--packer")?),
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        addr: addr.ok_or_else(|| "--addr HOST:PORT is required".to_owned())?,
        insns,
        packer,
        shutdown,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let mut client =
        Client::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;

    let (_, app) = corpus_apps(1, args.insns).into_iter().next().unwrap();
    let dex = write_dex(&app.dex).map_err(|e| format!("serialise app: {e:?}"))?;
    let mut req = ExtractRequest::new(dex, &app.entry);
    req.name = Some("smoke".to_owned());
    req.packer = args.packer.clone();

    let extract = |client: &mut Client, label: &str| -> Result<(bool, Vec<u8>), String> {
        match client.extract(&req).map_err(|e| format!("{label}: {e}"))? {
            ExtractReply::Done { cached, dex, .. } => Ok((cached, dex)),
            ExtractReply::Failed { job_status, detail } => Err(format!(
                "{label}: job failed: {job_status} {}",
                detail.unwrap_or_default()
            )),
            ExtractReply::Overloaded => Err(format!("{label}: daemon overloaded")),
            ExtractReply::DeadlineExceeded { waited_ms } => {
                Err(format!("{label}: deadline exceeded after {waited_ms}ms"))
            }
        }
    };

    let (_, cold_dex) = extract(&mut client, "cold extract")?;
    if cold_dex.is_empty() {
        return Err("cold extract returned an empty DEX".to_owned());
    }
    let (warm_cached, warm_dex) = extract(&mut client, "warm extract")?;
    if !warm_cached {
        return Err("second identical extract was not served from cache".to_owned());
    }
    if warm_dex != cold_dex {
        return Err("cached DEX differs from the fresh extraction".to_owned());
    }
    eprintln!(
        "dexlegod-smoke: warm hit ok ({} bytes, byte-identical)",
        warm_dex.len()
    );

    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    let hits = stats.get("hits").and_then(Value::as_u64).unwrap_or(0);
    if hits < 1 {
        return Err(format!("stats report no cache hits: {hits}"));
    }
    eprintln!("dexlegod-smoke: stats ok (hits = {hits})");

    if args.shutdown {
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        eprintln!("dexlegod-smoke: shutdown acknowledged");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(reason) => {
            eprintln!("dexlegod-smoke: {reason}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(reason) => {
            eprintln!("dexlegod-smoke: FAIL: {reason}");
            ExitCode::FAILURE
        }
    }
}
