//! The DexLego extraction daemon.
//!
//! ```text
//! dexlegod [--addr HOST:PORT] [--workers N] [--queue N]
//!          [--store DIR] [--budget BYTES]
//!          [--backend epoll|poll] [--max-pending N]
//! ```
//!
//! Binds (port 0 picks an ephemeral port), prints
//! `dexlegod: listening on <addr>` on stdout, and serves the pipelined
//! newline-delimited JSON protocol until a `shutdown` request drains it.
//! Worker count falls back to `DEXLEGO_WORKERS`, then to the CPU count.
//! `--backend` picks the readiness backend (default: `DEXLEGO_POLL_BACKEND`,
//! then epoll on Linux); `--max-pending` caps the undispatched requests a
//! single connection may pipeline before the newest are shed `overloaded`.
//! Exits 0 after a graceful shutdown.

use std::process::ExitCode;

use dexlego_harness::pool;
use dexlego_service::{Backend, Daemon, ServiceConfig};
use dexlego_store::StoreConfig;

fn parse_args() -> Result<ServiceConfig, String> {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut workers: Option<usize> = None;
    let mut queue_depth = 16usize;
    let mut store_root = std::env::temp_dir().join("dexlegod-store");
    let mut budget: Option<u64> = None;
    let mut backend: Option<Backend> = None;
    let mut max_pending: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers expects a number".to_owned())?,
                );
            }
            "--queue" => {
                queue_depth = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue expects a number".to_owned())?;
            }
            "--store" => store_root = value("--store")?.into(),
            "--backend" => {
                let name = value("--backend")?;
                backend = Some(
                    Backend::by_name(&name)
                        .ok_or_else(|| format!("--backend: unknown backend {name:?}"))?,
                );
            }
            "--max-pending" => {
                max_pending = Some(
                    value("--max-pending")?
                        .parse()
                        .map_err(|_| "--max-pending expects a number".to_owned())?,
                );
            }
            "--budget" => {
                budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|_| "--budget expects a byte count".to_owned())?,
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }

    let mut store = StoreConfig::new(store_root);
    if let Some(bytes) = budget {
        store = store.with_budget(bytes);
    }
    let mut config = ServiceConfig::new(store.root.clone());
    config.addr = addr;
    config.workers = pool::resolve_workers(workers);
    config.queue_depth = queue_depth;
    config.store = store;
    config.backend = backend;
    if let Some(bound) = max_pending {
        config.max_pending_per_conn = bound;
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(reason) => {
            eprintln!("dexlegod: {reason}");
            return ExitCode::FAILURE;
        }
    };
    let store_root = config.store.root.display().to_string();
    let daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("dexlegod: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The launch script greps this line for the resolved port.
    println!("dexlegod: listening on {}", daemon.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!("dexlegod: store at {store_root}");
    daemon.wait();
    eprintln!("dexlegod: drained, exiting");
    ExitCode::SUCCESS
}
