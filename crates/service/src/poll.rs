//! Readiness polling for the event-loop server: epoll on Linux with a
//! portable `poll(2)` fallback, built in-crate (the build environment has
//! no registry, so `mio` is not an option).
//!
//! The abstraction is deliberately small — level-triggered readiness over
//! raw file descriptors, one `usize` token per registration:
//!
//! ```no_run
//! # use dexlego_service::poll::{Backend, Interest, Poller};
//! let mut poller = Poller::new(Backend::default()).unwrap();
//! // poller.register(fd, token, Interest::READ)?;
//! let mut events = Vec::new();
//! poller.wait(&mut events, None).unwrap();
//! for ev in &events {
//!     // ev.token, ev.readable, ev.writable
//! }
//! ```
//!
//! Error and hang-up conditions are folded into readability/writability:
//! the owner discovers them through the `read`/`write` calls it was about
//! to make anyway, which keeps the backend-visible surface identical
//! between epoll (`EPOLLERR`/`EPOLLHUP`) and `poll`
//! (`POLLERR`/`POLLHUP`/`POLLNVAL`).
//!
//! Both backends compile on Linux so the fallback is exercised by tests
//! and selectable at runtime (`DEXLEGO_POLL_BACKEND=poll`); on other Unix
//! targets only the `poll` backend exists.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or closed/errored).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read-and-write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd is readable, has hung up, or is in error.
    pub readable: bool,
    /// The fd is writable, or is in error.
    pub writable: bool,
}

/// The polling backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `epoll(7)` — Linux only.
    #[cfg(target_os = "linux")]
    Epoll,
    /// `poll(2)` — portable across Unix.
    Poll,
}

impl Default for Backend {
    #[cfg(target_os = "linux")]
    fn default() -> Backend {
        Backend::Epoll
    }

    #[cfg(not(target_os = "linux"))]
    fn default() -> Backend {
        Backend::Poll
    }
}

impl Backend {
    /// Parses a backend name (`"epoll"` / `"poll"`). Used by the
    /// `--backend` daemon flag and the `DEXLEGO_POLL_BACKEND` variable.
    pub fn by_name(name: &str) -> Option<Backend> {
        match name {
            #[cfg(target_os = "linux")]
            "epoll" => Some(Backend::Epoll),
            "poll" => Some(Backend::Poll),
            _ => None,
        }
    }

    /// The backend's display name.
    pub fn name(self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Epoll => "epoll",
            Backend::Poll => "poll",
        }
    }

    /// Resolves the backend: an explicit choice wins, then the
    /// `DEXLEGO_POLL_BACKEND` environment variable, then the platform
    /// default. Unknown names are ignored.
    pub fn resolve(explicit: Option<Backend>) -> Backend {
        explicit
            .or_else(|| {
                std::env::var("DEXLEGO_POLL_BACKEND")
                    .ok()
                    .and_then(|v| Backend::by_name(v.trim()))
            })
            .unwrap_or_default()
    }
}

enum Impl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(fallback::PollSet),
}

/// A level-triggered readiness poller over raw fds.
pub struct Poller {
    inner: Impl,
}

impl Poller {
    /// Creates a poller on the chosen backend.
    ///
    /// # Errors
    ///
    /// `epoll_create1` failures (the `poll` backend cannot fail to
    /// construct).
    pub fn new(backend: Backend) -> io::Result<Poller> {
        let inner = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Impl::Epoll(epoll::Epoll::new()?),
            Backend::Poll => Impl::Poll(fallback::PollSet::new()),
        };
        Ok(Poller { inner })
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(_) => Backend::Epoll,
            Impl::Poll(_) => Backend::Poll,
        }
    }

    /// Registers `fd` under `token`. One registration per fd; `token`
    /// values need not be distinct across fds, but routing is by token, so
    /// distinct is what you want.
    ///
    /// # Errors
    ///
    /// `epoll_ctl` failures (the `poll` backend cannot fail here).
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => ep.ctl(epoll::CTL_ADD, fd, token, interest),
            Impl::Poll(ps) => {
                ps.upsert(fd, token, interest);
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already-registered fd.
    ///
    /// # Errors
    ///
    /// `epoll_ctl` failures.
    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => ep.ctl(epoll::CTL_MOD, fd, token, interest),
            Impl::Poll(ps) => {
                ps.upsert(fd, token, interest);
                Ok(())
            }
        }
    }

    /// Removes `fd` from the poller. Deregistering an unknown fd is a
    /// no-op (closing an fd drops it from epoll implicitly, so the server
    /// treats removal as advisory either way).
    pub fn deregister(&mut self, fd: RawFd) {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => {
                let _ = ep.ctl(epoll::CTL_DEL, fd, 0, Interest::READ);
            }
            Impl::Poll(ps) => ps.remove(fd),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever), filling `events` with what became
    /// ready. `EINTR` retries internally. An empty `events` after return
    /// means the timeout fired.
    ///
    /// # Errors
    ///
    /// `epoll_wait`/`poll` failures other than `EINTR`.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            // Round up so a 100µs deadline does not busy-spin at 0ms.
            Some(d) => i32::try_from(d.as_millis().saturating_add(1)).unwrap_or(i32::MAX),
            None => -1,
        };
        loop {
            let r = match &mut self.inner {
                #[cfg(target_os = "linux")]
                Impl::Epoll(ep) => ep.wait(events, timeout_ms),
                Impl::Poll(ps) => ps.wait(events, timeout_ms),
            };
            match r {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! Raw `epoll(7)` bindings. The kernel interface is declared here
    //! directly (`extern "C"` against the libc that std already links)
    //! because the registry — and with it the `libc` crate — is
    //! unavailable. This module is the only unsafe code in the crate
    //! besides the `poll(2)` call below, and every call site is a thin,
    //! argument-checked wrapper.
    #![allow(unsafe_code)]

    use std::io;
    use std::os::fd::RawFd;

    use super::{Event, Interest};

    pub const CTL_ADD: i32 = 1;
    pub const CTL_DEL: i32 = 2;
    pub const CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CLOEXEC: i32 = 0o2_000_000;

    /// `struct epoll_event`. The kernel ABI packs this on x86; `repr(C)`
    /// alone would insert padding between `events` and `data` on 64-bit
    /// and corrupt every second event.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes a flags integer and returns an
            // fd or -1; no pointers are involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        pub fn ctl(
            &mut self,
            op: i32,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            // SAFETY: `ev` is a live, correctly-laid-out epoll_event for
            // the duration of the call; the kernel copies it out.
            let r = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if r < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            // SAFETY: the buffer outlives the call and maxevents matches
            // its length, so the kernel writes only within bounds.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for ev in &self.buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let events = { ev.events };
                let data = { ev.data };
                out.push(Event {
                    token: data as usize,
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: closing an fd we own exactly once.
            let _ = unsafe { close(self.epfd) };
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

mod fallback {
    //! Portable `poll(2)` backend: the registration table lives in user
    //! space as a flat `pollfd` array rebuilt incrementally on
    //! register/deregister. O(n) per wait, which is fine for the
    //! connection counts a fallback path serves.
    #![allow(unsafe_code)]

    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_ulong};

    use super::{Event, Interest};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    /// `struct pollfd`, identical across Unix.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub struct PollSet {
        fds: Vec<PollFd>,
        tokens: Vec<usize>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                fds: Vec::new(),
                tokens: Vec::new(),
            }
        }

        pub fn upsert(&mut self, fd: RawFd, token: usize, interest: Interest) {
            let mut events = 0;
            if interest.readable {
                events |= POLLIN;
            }
            if interest.writable {
                events |= POLLOUT;
            }
            if let Some(i) = self.fds.iter().position(|p| p.fd == fd) {
                self.fds[i].events = events;
                self.tokens[i] = token;
            } else {
                self.fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
                self.tokens.push(token);
            }
        }

        pub fn remove(&mut self, fd: RawFd) {
            if let Some(i) = self.fds.iter().position(|p| p.fd == fd) {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
            }
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            if self.fds.is_empty() {
                // poll(NULL, 0, t) is a valid sleep, but spinning forever
                // on an empty set with t = -1 would hang; the server always
                // has at least the wake pipe registered, so treat this as
                // a bug guard rather than a supported mode.
                if timeout_ms >= 0 {
                    std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
                    return Ok(());
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "wait on an empty poll set with no timeout",
                ));
            }
            // SAFETY: the slice is live for the call and nfds matches its
            // length; the kernel only writes `revents` within bounds.
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                if p.revents == 0 {
                    continue;
                }
                let err = p.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                out.push(Event {
                    token,
                    readable: p.revents & POLLIN != 0 || err,
                    writable: p.revents & POLLOUT != 0 || err,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn backends() -> Vec<Backend> {
        let mut v = vec![Backend::Poll];
        #[cfg(target_os = "linux")]
        v.push(Backend::Epoll);
        v
    }

    #[test]
    fn readiness_roundtrip_on_every_backend() {
        for backend in backends() {
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            let mut poller = Poller::new(backend).unwrap();
            assert_eq!(poller.backend(), backend);
            poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

            // Nothing to read yet: a short wait times out empty.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious readiness");

            a.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: still readable until drained.
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));
            let mut buf = [0u8; 8];
            let n = (&b).read(&mut buf).unwrap();
            assert_eq!(n, 1);

            // Write interest on an idle socket is immediately ready.
            poller
                .reregister(b.as_raw_fd(), 7, Interest::READ_WRITE)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.writable));

            // Peer hang-up surfaces as readability (read returns 0).
            drop(a);
            poller.reregister(b.as_raw_fd(), 7, Interest::READ).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));
            assert_eq!((&b).read(&mut buf).unwrap(), 0, "clean EOF after hup");

            poller.deregister(b.as_raw_fd());
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: deregistered fd woke");
        }
    }

    #[test]
    fn backend_names_resolve() {
        assert_eq!(Backend::by_name("poll"), Some(Backend::Poll));
        assert_eq!(Backend::by_name("kqueue"), None);
        #[cfg(target_os = "linux")]
        {
            assert_eq!(Backend::by_name("epoll"), Some(Backend::Epoll));
            assert_eq!(Backend::default(), Backend::Epoll);
        }
        assert_eq!(Backend::resolve(Some(Backend::Poll)), Backend::Poll);
        assert_eq!(Backend::Poll.name(), "poll");
    }
}
