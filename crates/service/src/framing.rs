//! Newline framing for the nonblocking server: an incremental splitter
//! that accepts bytes in whatever chunks the socket delivers — one byte at
//! a time, seventeen requests in one read, a UTF-8 sequence or JSON escape
//! torn across reads — and yields complete lines.
//!
//! The framer never panics on hostile input. Two failure shapes are
//! reported per-frame so the connection itself survives:
//!
//! * a line longer than the configured cap is reported as
//!   [`FrameError::Oversized`] and discarded as it streams in — the framer
//!   keeps no more than the cap buffered, so a client flooding one endless
//!   line cannot grow server memory;
//! * bytes that are not valid UTF-8 report [`FrameError::InvalidUtf8`].
//!
//! Blank lines (empty or whitespace-only) are skipped, matching the old
//! blocking server's `line.trim().is_empty()` behaviour.

/// Why a frame could not be turned into a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line exceeded the configured byte cap and was discarded.
    Oversized {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// The line was not valid UTF-8.
    InvalidUtf8,
}

impl FrameError {
    /// A human-readable reason for the protocol error reply.
    pub fn reason(&self) -> String {
        match self {
            FrameError::Oversized { limit } => {
                format!("request line exceeds {limit} bytes")
            }
            FrameError::InvalidUtf8 => "request line is not valid UTF-8".to_owned(),
        }
    }
}

/// An incremental newline-frame splitter with a line-length cap.
#[derive(Debug)]
pub struct Framer {
    buf: Vec<u8>,
    /// Bytes already scanned for `\n` (restart point for the next scan,
    /// so a dribbled megabyte is not rescanned quadratically).
    scanned: usize,
    /// The current line already blew the cap; discard until newline.
    skipping: bool,
    max_line: usize,
}

impl Framer {
    /// A framer that rejects lines longer than `max_line` bytes
    /// (exclusive of the newline).
    pub fn new(max_line: usize) -> Framer {
        Framer {
            buf: Vec::new(),
            scanned: 0,
            skipping: false,
            max_line: max_line.max(1),
        }
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, data: &[u8]) {
        if self.skipping {
            // Mid-discard: only a newline matters; buffer nothing.
            if let Some(nl) = data.iter().position(|&b| b == b'\n') {
                self.skipping = false;
                self.buf.extend_from_slice(&data[nl + 1..]);
            }
            return;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered (bounded by the line cap plus one read).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a partial line is buffered (stream ended mid-frame).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() || self.skipping
    }

    /// Pops the next complete line, if one is buffered. Blank lines are
    /// consumed silently; a trailing `\r` is stripped.
    pub fn pop(&mut self) -> Option<Result<String, FrameError>> {
        loop {
            match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    let nl = self.scanned + rel;
                    let mut line: Vec<u8> = self.buf.drain(..=nl).collect();
                    self.scanned = 0;
                    line.pop(); // the newline
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    if line.len() > self.max_line {
                        return Some(Err(FrameError::Oversized {
                            limit: self.max_line,
                        }));
                    }
                    match String::from_utf8(line) {
                        Ok(s) if s.trim().is_empty() => continue,
                        Ok(s) => return Some(Ok(s)),
                        Err(_) => return Some(Err(FrameError::InvalidUtf8)),
                    }
                }
                None => {
                    self.scanned = self.buf.len();
                    // An unterminated line past the cap: report it now and
                    // flip to discard mode, so a hostile client cannot grow
                    // the buffer without ever sending a newline. The
                    // eventual newline just ends the discard silently.
                    if self.scanned > self.max_line {
                        self.buf.clear();
                        self.scanned = 0;
                        self.skipping = true;
                        return Some(Err(FrameError::Oversized {
                            limit: self.max_line,
                        }));
                    }
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(framer: &mut Framer) -> Vec<Result<String, FrameError>> {
        std::iter::from_fn(|| framer.pop()).collect()
    }

    #[test]
    fn splits_whole_and_partial_frames() {
        let mut f = Framer::new(1024);
        f.push(b"{\"op\": \"ping\"}\n{\"op\": \"st");
        assert_eq!(lines(&mut f), vec![Ok("{\"op\": \"ping\"}".to_owned())]);
        f.push(b"ats\"}\r\n");
        assert_eq!(lines(&mut f), vec![Ok("{\"op\": \"stats\"}".to_owned())]);
        assert!(!f.has_partial());
    }

    #[test]
    fn byte_at_a_time_survives_utf8_splits() {
        let text = "{\"entry\": \"héllo\u{2028}wörld\"}\n";
        let mut f = Framer::new(1024);
        let mut got = Vec::new();
        for b in text.as_bytes() {
            f.push(&[*b]);
            got.extend(lines(&mut f));
        }
        assert_eq!(got, vec![Ok(text.trim_end().to_owned())]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut f = Framer::new(64);
        f.push(b"\n  \n\t\r\nreal\n\n");
        assert_eq!(lines(&mut f), vec![Ok("real".to_owned())]);
    }

    #[test]
    fn invalid_utf8_is_a_frame_error_not_a_panic() {
        let mut f = Framer::new(64);
        f.push(&[0xff, 0xfe, b'\n', b'o', b'k', b'\n']);
        assert_eq!(
            lines(&mut f),
            vec![Err(FrameError::InvalidUtf8), Ok("ok".to_owned())]
        );
    }

    #[test]
    fn oversized_line_is_discarded_without_buffering_it() {
        let mut f = Framer::new(8);
        // Unterminated flood: reported immediately, buffer stays bounded.
        f.push(b"0123456789abcdef");
        assert_eq!(f.pop(), Some(Err(FrameError::Oversized { limit: 8 })));
        assert_eq!(f.buffered(), 0);
        f.push(b"more flood still no newline");
        assert_eq!(f.pop(), None);
        assert_eq!(f.buffered(), 0, "discard mode buffers nothing");
        // The newline ends discard mode; the next line is clean.
        f.push(b"tail\nnext\n");
        assert_eq!(lines(&mut f), vec![Ok("next".to_owned())]);
    }

    #[test]
    fn oversized_terminated_line_reports_once() {
        let mut f = Framer::new(4);
        f.push(b"abcdef\nok\n");
        assert_eq!(
            lines(&mut f),
            vec![Err(FrameError::Oversized { limit: 4 }), Ok("ok".to_owned())]
        );
    }
}
